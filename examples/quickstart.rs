//! Quickstart: build an MPCBF, insert, query, delete, inspect.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpcbf::prelude::*;

fn main() {
    // Size the filter the way the paper does (§III.B.3): give it a memory
    // budget and an expected element count; the builder derives the word
    // layout, the Eq.-(11) per-word capacity n_max and the maximised
    // first-level size b1 = w − k·n_max.
    let config = MpcbfConfig::builder()
        .memory_bits(1_000_000) // 1 Mb
        .expected_items(20_000)
        .hashes(3) // k
        .accesses(1) // g: one memory access per op (MPCBF-1)
        .build()
        .expect("feasible configuration");

    let shape = config.shape();
    println!(
        "MPCBF-{}: {} words x {} bits, k = {}, n_max = {}, b1 = {}",
        shape.g, shape.l, shape.w, shape.k, shape.n_max, shape.b1
    );

    let mut filter = Mpcbf1::new(config);

    // Insert some members. Keys are anything byte-like: strings,
    // integers, IPv4 flow 2-tuples ...
    filter.insert(&"alice").unwrap();
    filter.insert(&"bob").unwrap();
    filter.insert(&42u64).unwrap();
    filter.insert(&(0xC0A8_0001u32, 0x0808_0808u32)).unwrap(); // a flow

    assert!(filter.contains(&"alice"));
    assert!(filter.contains(&42u64));
    // A query for "mallory" is *probably* false — false positives are
    // possible (that's the "approximate" in AMQ), false negatives never.
    println!("contains('mallory') -> {}", filter.contains(&"mallory"));

    // Counting means deletion works — the whole point over a Bloom filter.
    filter.remove(&"bob").unwrap();
    assert!(!filter.contains(&"bob"));

    // Deleting something that was never inserted is refused, not corrupting:
    assert!(filter.remove(&"never-inserted").is_err());

    // Every operation can be metered with the paper's overhead units.
    let (hit, cost) = filter.contains_bytes_cost(b"alice");
    println!(
        "query('alice') -> {hit}; {} memory access(es), {} hash bits",
        cost.word_accesses, cost.hash_bits
    );

    // Bulk behaviour: insert 20k, measure the false-positive rate.
    // The Eq.-(11) capacity heuristic deliberately leaves ~1 expected word
    // at capacity, so an insert can occasionally be refused — the filter
    // stays consistent and the caller decides (retry elsewhere, resize...).
    let mut refused = 0u64;
    for i in 0..20_000u64 {
        if filter.insert(&i).is_err() {
            refused += 1;
        }
    }
    if refused > 0 {
        println!("{refused} insert(s) refused by word overflow (state stays consistent)");
    }
    let trials = 200_000u64;
    let fp = (1_000_000..1_000_000 + trials)
        .filter(|i: &u64| filter.contains(i))
        .count();
    println!(
        "measured FPR at ~{} items in {} bits: {:.4}%",
        filter.items(),
        filter.memory_bits(),
        100.0 * fp as f64 / trials as f64
    );
    println!("word overflows so far: {}", filter.overflows());
}
