//! Flow monitor: the paper's §IV.D scenario — a measurement system
//! tracking 200 K active flows on a backbone link, answering per-packet
//! "is this a tracked flow?" at one memory access, under continuous
//! flow arrival/expiry churn.
//!
//! ```text
//! cargo run --release --example flow_monitor            # 1/20 trace scale
//! cargo run --release --example flow_monitor -- full    # paper scale
//! ```

use mpcbf::core::{CountingFilter, Filter, Mpcbf, MpcbfConfig};
use mpcbf::workloads::flowtrace::{FlowTrace, FlowTraceSpec};
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let spec = if full {
        FlowTraceSpec::default()
    } else {
        FlowTraceSpec::default().scaled_down(20)
    };
    println!(
        "generating trace: {} records over {} unique flows ...",
        spec.total_records, spec.unique_flows
    );
    let trace = FlowTrace::generate(&spec);

    // 12 Mb of filter memory at k = 3 (the Fig. 12 midpoint).
    let memory_bits = if full { 12_000_000 } else { 600_000 };
    let config = MpcbfConfig::builder()
        .memory_bits(memory_bits)
        .expected_items(trace.test_set.len() as u64)
        .hashes(3)
        .build()
        .expect("feasible configuration");
    let mut filter: Mpcbf<u64> = Mpcbf::new(config);

    // Register the tracked flows.
    let t0 = Instant::now();
    let mut refused = 0u64;
    for flow in &trace.test_set {
        if filter.insert(flow).is_err() {
            refused += 1;
        }
    }
    println!(
        "registered {} flows in {:.1} ms ({refused} refused by overflow)",
        trace.test_set.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Flow churn: expire 20% of tracked flows, pick up fresh ones —
    // the dynamic-set capability CBFs exist for.
    let t1 = Instant::now();
    for period in &trace.churn.periods {
        for old in &period.deletes {
            filter.remove(old).expect("expiring a tracked flow");
        }
        for new in &period.inserts {
            let _ = filter.insert(new);
        }
    }
    println!(
        "churned {} flows in {:.1} ms",
        trace.churn.total_deletes() + trace.churn.total_inserts(),
        t1.elapsed().as_secs_f64() * 1e3
    );

    // Per-packet path: one membership check per trace record.
    let t2 = Instant::now();
    let mut hits = 0u64;
    for record in &trace.records {
        hits += u64::from(filter.contains(record));
    }
    let elapsed = t2.elapsed();
    let mpps = trace.records.len() as f64 / elapsed.as_secs_f64() / 1e6;
    println!(
        "classified {} packets in {:.1} ms — {:.1} M packets/s, {} tracked-flow hits",
        trace.records.len(),
        elapsed.as_secs_f64() * 1e3,
        mpps,
        hits
    );

    // What the hardware path would cost (Tables I/III): meter one query.
    let (_, cost) = filter.contains_bytes_cost(&8888u64.to_le_bytes());
    println!(
        "per-query overhead: {} memory access(es), {} hash bits",
        cost.word_accesses, cost.hash_bits
    );
}
