//! Summary-Cache-style cooperative web caching — the application CBF was
//! invented for (Fan, Cao, Almeida & Broder, the paper's reference \[3\]):
//! each proxy keeps a compact *summary* of every sibling's cache and only
//! forwards a miss to a sibling whose summary claims a hit. Counting is
//! essential because cached objects are evicted continuously.
//!
//! ```text
//! cargo run --release --example web_cache
//! ```

use mpcbf::core::{CountingFilter, Filter, Mpcbf1, MpcbfConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

const PROXIES: usize = 4;
const CACHE_CAPACITY: usize = 20_000;
const REQUESTS: usize = 200_000;

struct Proxy {
    /// Objects actually cached (FIFO eviction for simplicity).
    cache: HashSet<u64>,
    order: std::collections::VecDeque<u64>,
    /// This proxy's summary filter, mirrored at the siblings.
    summary: Mpcbf1,
}

impl Proxy {
    fn new(seed: u64) -> Self {
        let config = MpcbfConfig::builder()
            .memory_bits(1_200_000)
            .expected_items(CACHE_CAPACITY as u64)
            .hashes(3)
            .seed(seed)
            .build()
            .expect("summary shape");
        Proxy {
            cache: HashSet::with_capacity(CACHE_CAPACITY),
            order: Default::default(),
            summary: Mpcbf1::new(config),
        }
    }

    fn admit(&mut self, url: u64) {
        if !self.cache.insert(url) {
            return;
        }
        self.order.push_back(url);
        let _ = self.summary.insert(&url);
        if self.cache.len() > CACHE_CAPACITY {
            // Evict the oldest object and update the summary — the
            // operation a plain Bloom filter cannot do.
            let old = self.order.pop_front().expect("non-empty");
            self.cache.remove(&old);
            let _ = self.summary.remove(&old);
        }
    }

    fn has(&self, url: u64) -> bool {
        self.cache.contains(&url)
    }

    fn summary_says(&self, url: u64) -> bool {
        self.summary.contains(&url)
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let mut proxies: Vec<Proxy> = (0..PROXIES as u64).map(Proxy::new).collect();

    // Zipf-ish request stream over a 200k-object universe: hot objects
    // are requested by many clients through different proxies.
    let universe = 200_000u64;
    let mut local_hits = 0u64;
    let mut sibling_hits = 0u64;
    let mut useless_forwards = 0u64; // summary said yes, sibling had evicted
    let mut origin_fetches = 0u64;

    for _ in 0..REQUESTS {
        let url = {
            // Mixture: 30% of traffic over a hot 1% of objects.
            if rng.gen_bool(0.3) {
                rng.gen_range(0..universe / 100)
            } else {
                rng.gen_range(0..universe)
            }
        };
        let at = rng.gen_range(0..PROXIES);
        if proxies[at].has(url) {
            local_hits += 1;
            continue;
        }
        // Consult the siblings' summaries before going to the origin.
        let mut served = false;
        for (i, p) in proxies.iter().enumerate() {
            if i != at && p.summary_says(url) {
                if p.has(url) {
                    sibling_hits += 1;
                    served = true;
                } else {
                    // A false positive (or an in-flight eviction): one
                    // wasted inter-proxy request — the cost the paper's
                    // lower FPR directly reduces.
                    useless_forwards += 1;
                }
                break;
            }
        }
        if !served {
            origin_fetches += 1;
            proxies[at].admit(url);
        }
    }

    println!("requests            {REQUESTS}");
    println!("local hits          {local_hits}");
    println!("sibling hits        {sibling_hits}");
    println!("useless forwards    {useless_forwards}  (summary false positives)");
    println!("origin fetches      {origin_fetches}");
    let total_cached: usize = proxies.iter().map(|p| p.cache.len()).sum();
    println!("objects cached      {total_cached} across {PROXIES} proxies");
    let forward_rate =
        useless_forwards as f64 / (useless_forwards + sibling_hits + origin_fetches).max(1) as f64;
    println!("wasted-forward rate {:.3}%", forward_rate * 100.0);
}
