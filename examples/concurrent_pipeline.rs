//! Concurrent packet pipeline: several worker threads classify packets
//! against one shared MPCBF while a control thread churns the tracked-flow
//! set — the parallel line-card setting the paper's introduction motivates
//! (and the reason the per-word layout matters: updates synchronise on
//! single words, not on the filter).
//!
//! ```text
//! cargo run --release --example concurrent_pipeline
//! ```

use mpcbf::concurrent::AtomicMpcbf;
use mpcbf::core::MpcbfConfig;
use mpcbf::hash::Murmur3;
use mpcbf::workloads::flowtrace::{FlowTrace, FlowTraceSpec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

fn main() {
    let spec = FlowTraceSpec::default().scaled_down(20);
    println!(
        "generating trace: {} records over {} flows ...",
        spec.total_records, spec.unique_flows
    );
    let trace = FlowTrace::generate(&spec);

    let config = MpcbfConfig::builder()
        .memory_bits(1_000_000)
        .expected_items(trace.test_set.len() as u64)
        .hashes(3)
        .seed(4242)
        .build()
        .expect("shape");
    let filter: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(config);
    for flow in &trace.test_set {
        let _ = filter.insert(flow);
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let shards: Vec<&[(u32, u32)]> = trace
        .records
        .chunks(trace.records.len().div_ceil(workers))
        .collect();

    let hits = AtomicU64::new(0);
    let churn_done = AtomicBool::new(false);
    let start = Instant::now();
    crossbeam_scope(&filter, &shards, &hits, &churn_done, &trace);
    let elapsed = start.elapsed();

    println!(
        "{} packets across {workers} workers in {:.1} ms — {:.1} M lookups/s total",
        trace.records.len(),
        elapsed.as_secs_f64() * 1e3,
        trace.records.len() as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("tracked-flow hits: {}", hits.load(Ordering::Relaxed));
    println!("word overflows:    {}", filter.overflows());
}

fn crossbeam_scope(
    filter: &AtomicMpcbf<Murmur3>,
    shards: &[&[(u32, u32)]],
    hits: &AtomicU64,
    churn_done: &AtomicBool,
    trace: &FlowTrace,
) {
    std::thread::scope(|s| {
        // Data plane: one classifier thread per shard.
        for shard in shards {
            s.spawn(move || {
                let mut local = 0u64;
                for flow in *shard {
                    local += u64::from(filter.contains(flow));
                }
                hits.fetch_add(local, Ordering::Relaxed);
            });
        }
        // Control plane: churn the tracked set concurrently.
        s.spawn(move || {
            for period in &trace.churn.periods {
                for old in &period.deletes {
                    let _ = filter.remove(old);
                }
                for new in &period.inserts {
                    let _ = filter.insert(new);
                }
            }
            churn_done.store(true, Ordering::Release);
        });
    });
    assert!(churn_done.load(Ordering::Acquire));
}
