//! MapReduce reduce-side join with MPCBF pushdown — the paper's §V
//! application, end to end: generate the NBER-shaped patent data, build
//! the filter from the small side, broadcast it, and compare the join
//! with and without pushdown.
//!
//! ```text
//! cargo run --release --example dedup_join
//! ```

use mpcbf::core::{Filter, Mpcbf, MpcbfConfig};
use mpcbf::hash::Murmur3;
use mpcbf::mapreduce::{reduce_side_join, Broadcast, JoinConfig};
use mpcbf::workloads::patents::{PatentDataset, PatentSpec};

fn main() {
    // ~500 K citation records against ~9 K key patents (1/32 NBER scale).
    let spec = PatentSpec::default().scaled_down(32);
    println!(
        "generating {} citations / {} key patents ...",
        spec.citations, spec.key_patents
    );
    let data = PatentDataset::generate(&spec);

    let left: Vec<(u32, u16)> = data.patents.iter().map(|p| (p.id, p.year)).collect();
    let right: Vec<(u32, u32)> = data.citations.iter().map(|c| (c.cited, c.citing)).collect();

    // Build the pushdown filter from the small side, as the paper does:
    // "the smallest of input datasets is often used to construct a CBF
    //  that is broadcasted to all map task nodes via DistributedCache."
    let n_keys = left.len() as u64;
    let memory_bits = 12 * n_keys; // a tight broadcast budget
    let config = MpcbfConfig::builder()
        .memory_bits(memory_bits)
        .expected_items(n_keys)
        .hashes(3)
        .accesses(2) // MPCBF-2: the paper's best Table IV row
        .build()
        .expect("feasible configuration");
    let mut filter: Mpcbf<u64, Murmur3> = Mpcbf::new(config);
    for (k, _) in &left {
        let _ = filter.insert(k);
    }
    let broadcast = Broadcast::new(filter, memory_bits / 8);
    println!(
        "broadcast filter: {} bytes per map node",
        broadcast.bytes_per_node()
    );

    let cfg = JoinConfig::default();

    let (rows_plain, plain) = reduce_side_join(&cfg, left.clone(), right.clone(), None);
    let (rows_push, push) = reduce_side_join(&cfg, left, right, Some(broadcast.get()));

    assert_eq!(
        rows_plain.len(),
        rows_push.len(),
        "pushdown must not change the join"
    );

    println!("\n                        no filter    MPCBF-2 pushdown");
    println!(
        "map output records   {:>12}    {:>12}  ({:.1}% fewer)",
        plain.job.map_output_records,
        push.job.map_output_records,
        100.0 * (1.0 - push.job.map_output_records as f64 / plain.job.map_output_records as f64)
    );
    println!(
        "shuffle bytes        {:>12}    {:>12}",
        plain.job.shuffle_bytes, push.job.shuffle_bytes
    );
    println!(
        "total time (ms)      {:>12.0}    {:>12.0}",
        plain.job.total_wall.as_secs_f64() * 1e3,
        push.job.total_wall.as_secs_f64() * 1e3
    );
    println!(
        "join FPR                       -    {:>11.1}%",
        push.join_fpr() * 100.0
    );
    println!(
        "output rows          {:>12}    {:>12}",
        rows_plain.len(),
        rows_push.len()
    );
}
