//! Exporters: Prometheus text exposition and a JSON snapshot.
//!
//! Both are pure functions over a [`TelemetrySnapshot`], so a scrape never
//! holds any registry lock longer than the snapshot copy itself. The
//! workspace is intentionally dependency-free, so the JSON is hand-rolled
//! (same approach as the `BENCH_*.json` emitters in `mpcbf-bench`).

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::registry::TelemetrySnapshot;
use std::fmt::Write as _;

/// Metric-name prefix for the Prometheus page.
const PREFIX: &str = "mpcbf";

/// Formats an `f64` the way both exposition formats accept: finite values
/// via Rust's shortest round-trip `{}`, non-finite pinned to 0 (neither a
/// scrape nor a JSON parser should meet `NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders the snapshot as a Prometheus text-format (version 0.0.4) page.
///
/// Exposes, per operation kind: `_ops_total`, `_batches_total`,
/// `_word_accesses_total`, `_hash_bits_total`, the derived
/// `_mean_accesses`/`_mean_hash_bits` gauges, and a cumulative
/// `_op_latency_nanos` histogram. Named counters and gauges follow, each
/// under `mpcbf_<name>`.
pub fn prometheus_text(snap: &TelemetrySnapshot) -> String {
    let mut out = String::with_capacity(8 * 1024);

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_ops_total Filter operations recorded, by kind."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_ops_total counter");
    for (kind, k) in snap.kinds() {
        let _ = writeln!(
            out,
            "{PREFIX}_ops_total{{kind=\"{}\"}} {}",
            kind.as_str(),
            k.ops
        );
    }

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_batches_total Metered batch calls recorded, by kind."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_batches_total counter");
    for (kind, k) in snap.kinds() {
        let _ = writeln!(
            out,
            "{PREFIX}_batches_total{{kind=\"{}\"}} {}",
            kind.as_str(),
            k.batches
        );
    }

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_word_accesses_total Distinct machine words fetched (the paper's memory accesses)."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_word_accesses_total counter");
    for (kind, k) in snap.kinds() {
        let _ = writeln!(
            out,
            "{PREFIX}_word_accesses_total{{kind=\"{}\"}} {}",
            kind.as_str(),
            k.word_accesses
        );
    }

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_hash_bits_total Hash/address bits consumed (the paper's access bandwidth)."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_hash_bits_total counter");
    for (kind, k) in snap.kinds() {
        let _ = writeln!(
            out,
            "{PREFIX}_hash_bits_total{{kind=\"{}\"}} {}",
            kind.as_str(),
            k.hash_bits
        );
    }

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_mean_accesses Mean memory accesses per operation (Table II/III metric)."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_mean_accesses gauge");
    for (kind, k) in snap.kinds() {
        let _ = writeln!(
            out,
            "{PREFIX}_mean_accesses{{kind=\"{}\"}} {}",
            kind.as_str(),
            fmt_f64(k.mean_accesses())
        );
    }

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_mean_hash_bits Mean hash bits per operation."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_mean_hash_bits gauge");
    for (kind, k) in snap.kinds() {
        let _ = writeln!(
            out,
            "{PREFIX}_mean_hash_bits{{kind=\"{}\"}} {}",
            kind.as_str(),
            fmt_f64(k.mean_hash_bits())
        );
    }

    let _ = writeln!(
        out,
        "# HELP {PREFIX}_op_latency_nanos Per-operation wall latency (batch time split across the batch)."
    );
    let _ = writeln!(out, "# TYPE {PREFIX}_op_latency_nanos histogram");
    for (kind, k) in snap.kinds() {
        write_histogram(&mut out, kind.as_str(), &k.latency);
    }

    if !snap.counters.is_empty() {
        let _ = writeln!(out, "# HELP {PREFIX}_counter Named workspace counters.");
        for (name, value) in &snap.counters {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {PREFIX}_{name}_total counter");
            let _ = writeln!(out, "{PREFIX}_{name}_total {value}");
        }
    }

    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "# HELP {PREFIX}_gauge Named workspace gauges.");
        for (name, value) in &snap.gauges {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {PREFIX}_{name} gauge");
            let _ = writeln!(out, "{PREFIX}_{name} {}", fmt_f64(*value));
        }
    }

    out
}

/// Sanitizes a user-supplied series name into the Prometheus metric-name
/// alphabet `[a-zA-Z0-9_:]`. Anything outside it — quotes, newlines,
/// backslashes, spaces — becomes `_`, so a hostile registry name cannot
/// smuggle extra lines or labels into the exposition page (`json_escape`
/// guards the JSON path; this is its exposition-format twin).
fn prom_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => out.push(c),
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Cumulative `_bucket{le=…}` series plus `_sum`/`_count`, skipping the
/// empty tail (everything above the last populated bucket collapses into
/// `+Inf`).
fn write_histogram(out: &mut String, kind: &str, hist: &HistogramSnapshot) {
    let last = hist
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| (i + 1).min(BUCKETS - 1));
    let mut cumulative = 0u64;
    for i in 0..=last {
        cumulative += hist.buckets[i];
        let _ = writeln!(
            out,
            "{PREFIX}_op_latency_nanos_bucket{{kind=\"{kind}\",le=\"{}\"}} {cumulative}",
            bucket_upper_bound(i)
        );
    }
    let _ = writeln!(
        out,
        "{PREFIX}_op_latency_nanos_bucket{{kind=\"{kind}\",le=\"+Inf\"}} {}",
        hist.count
    );
    let _ = writeln!(
        out,
        "{PREFIX}_op_latency_nanos_sum{{kind=\"{kind}\"}} {}",
        hist.sum
    );
    let _ = writeln!(
        out,
        "{PREFIX}_op_latency_nanos_count{{kind=\"{kind}\"}} {}",
        hist.count
    );
}

/// Minimal JSON string escaping — names here are `snake_case` by
/// convention, but a stray quote must not corrupt the document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot as a self-describing JSON document (same shape the
/// `BENCH_telemetry.json` harness embeds per variant).
pub fn json_snapshot(snap: &TelemetrySnapshot) -> String {
    let mut out = String::with_capacity(8 * 1024);
    out.push_str("{\n  \"kinds\": {");
    for (i, (kind, k)) in snap.kinds().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{ \"ops\": {}, \"batches\": {}, \"word_accesses\": {}, \"hash_bits\": {}, \"mean_accesses\": {}, \"mean_hash_bits\": {}, \"latency\": {{ \"count\": {}, \"sum_nanos\": {}, \"mean_nanos\": {}, \"p50_upper_nanos\": {}, \"p99_upper_nanos\": {} }} }}",
            kind.as_str(),
            k.ops,
            k.batches,
            k.word_accesses,
            k.hash_bits,
            fmt_f64(k.mean_accesses()),
            fmt_f64(k.mean_hash_bits()),
            k.latency.count,
            k.latency.sum,
            fmt_f64(k.latency.mean()),
            k.latency.quantile_upper_bound(0.5),
            k.latency.quantile_upper_bound(0.99),
        );
    }
    out.push_str("\n  },\n  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), value);
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), fmt_f64(*value));
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;
    use mpcbf_core::metrics::{OpCost, OpKind, OpSink};

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.record_batch(
            OpKind::Query,
            64,
            OpCost {
                word_accesses: 64,
                hash_bits: 1408,
            },
            6_400,
        );
        t.record_batch(
            OpKind::Insert,
            2,
            OpCost {
                word_accesses: 2,
                hash_bits: 60,
            },
            500,
        );
        t.add_counter("shard_lock_contended", 7);
        t.set_gauge("fill_ratio", 0.25);
        t.snapshot()
    }

    #[test]
    fn prometheus_page_is_well_formed() {
        let page = prometheus_text(&sample());
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in page.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(series.starts_with("mpcbf_"), "bad series: {series}");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value: {value}"
            );
        }
        assert!(page.contains("mpcbf_ops_total{kind=\"query\"} 64"));
        assert!(page.contains("mpcbf_mean_accesses{kind=\"query\"} 1"));
        assert!(page.contains("mpcbf_shard_lock_contended_total 7"));
        assert!(page.contains("mpcbf_fill_ratio 0.25"));
        assert!(page.contains("le=\"+Inf\"}"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let page = prometheus_text(&sample());
        let buckets: Vec<u64> = page
            .lines()
            .filter(|l| l.starts_with("mpcbf_op_latency_nanos_bucket{kind=\"query\""))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "not cumulative");
        assert_eq!(*buckets.last().unwrap(), 64, "+Inf bucket must equal count");
    }

    #[test]
    fn json_snapshot_has_expected_fields() {
        let json = json_snapshot(&sample());
        assert!(json.contains("\"query\""));
        assert!(json.contains("\"mean_accesses\": 1"));
        assert!(json.contains("\"shard_lock_contended\": 7"));
        assert!(json.contains("\"fill_ratio\": 0.25"));
        // Balanced braces as a cheap structural check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escapes_hostile_names() {
        let t = Telemetry::new();
        t.add_counter("we\"ird\nname", 1);
        let json = json_snapshot(&t.snapshot());
        assert!(json.contains("we\\\"ird\\nname"));
    }

    #[test]
    fn prometheus_escapes_hostile_names() {
        // A newline in a registry name could otherwise inject a whole
        // fake series into the exposition page; braces and quotes could
        // forge labels. Every character outside the metric-name alphabet
        // must collapse to `_`.
        let t = Telemetry::new();
        t.add_counter("we\"ird\nfake_series 999", 1);
        t.set_gauge("evil{label=\"x\"}", 2.5);
        let page = prometheus_text(&t.snapshot());
        assert!(page.contains("mpcbf_we_ird_fake_series_999_total 1"));
        assert!(page.contains("mpcbf_evil_label__x__ 2.5"));
        for line in page.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("metric line has a value");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "hostile name leaked into the page: {line}"
            );
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value: {value}"
            );
        }
    }
}
