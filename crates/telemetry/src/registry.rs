//! The [`Telemetry`] registry: the workspace's [`OpSink`] implementation.
//!
//! One registry aggregates everything a run produces: per-kind operation
//! ledgers (ops, accesses, hash bits, latency histogram), named monotonic
//! counters, and named gauges. The hot path — [`OpSink::record_batch`] —
//! touches only relaxed atomics; the named counter/gauge maps sit behind a
//! mutex because they are written once per scrape or per drill, never per
//! operation.

use crate::histogram::{AtomicHistogram, HistogramSnapshot};
use mpcbf_core::metrics::{AccessStats, HealthReport, OpCost, OpKind, OpSink, OpTally};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-[`OpKind`] running totals plus a latency histogram.
#[derive(Debug, Default)]
struct KindLedger {
    ops: AtomicU64,
    batches: AtomicU64,
    word_accesses: AtomicU64,
    hash_bits: AtomicU64,
    latency: AtomicHistogram,
}

impl KindLedger {
    fn snapshot(&self) -> KindSnapshot {
        KindSnapshot {
            ops: self.ops.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            word_accesses: self.word_accesses.load(Ordering::Relaxed),
            hash_bits: self.hash_bits.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// Point-in-time totals for one operation kind.
#[derive(Debug, Clone, Copy)]
pub struct KindSnapshot {
    /// Operations recorded.
    pub ops: u64,
    /// Batch calls recorded (ops ≥ batches).
    pub batches: u64,
    /// Total distinct-word memory accesses.
    pub word_accesses: u64,
    /// Total hash/address bits consumed.
    pub hash_bits: u64,
    /// Per-operation latency, nanoseconds (batch wall time attributed
    /// evenly across the batch's operations).
    pub latency: HistogramSnapshot,
}

impl KindSnapshot {
    /// Mean memory accesses per operation (the paper's Table II/III
    /// metric); 0 if nothing recorded.
    pub fn mean_accesses(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.word_accesses as f64 / self.ops as f64
        }
    }

    /// Mean hash bits per operation (access bandwidth); 0 if empty.
    pub fn mean_hash_bits(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.hash_bits as f64 / self.ops as f64
        }
    }
}

/// The registry. Shareable across threads (`&self` everywhere); one per
/// run, or one per filter-under-test when comparing variants.
#[derive(Debug, Default)]
pub struct Telemetry {
    kinds: [KindLedger; 3],
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

impl Telemetry {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn ledger(&self, kind: OpKind) -> &KindLedger {
        match kind {
            OpKind::Query => &self.kinds[0],
            OpKind::Insert => &self.kinds[1],
            OpKind::Remove => &self.kinds[2],
        }
    }

    /// Adds `delta` to the named monotonic counter (created at 0 on first
    /// use). Names should be `snake_case`; the exporter prefixes them.
    pub fn add_counter(&self, name: &str, delta: u64) {
        let mut map = self.counters.lock().expect("telemetry counter lock");
        *map.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut map = self.gauges.lock().expect("telemetry gauge lock");
        map.insert(name.to_string(), value);
    }

    /// Publishes a [`HealthReport`] as the standard set of health gauges
    /// (`fill_ratio`, `max_word_load`, … as the exporter names them).
    pub fn record_health(&self, health: &HealthReport) {
        self.set_gauge("items", health.items as f64);
        self.set_gauge("fill_ratio", health.fill_ratio);
        self.set_gauge("max_word_load", f64::from(health.max_word_load));
        self.set_gauge("word_capacity", f64::from(health.word_capacity));
        self.set_gauge("overflows", health.overflows as f64);
        self.set_gauge("spill_keys", health.spill_keys as f64);
        self.set_gauge("spill_occupancy", health.spill_occupancy as f64);
        self.set_gauge("spilled_inserts", health.spilled_inserts as f64);
    }

    /// Folds one pre-aggregated tally into a kind's ledger — how the
    /// concurrent filters' per-shard [`AccessStats`] ledgers (which meter
    /// internally rather than through an [`OpSink`]) reach the registry.
    /// No latency is recorded: the source has none.
    pub fn record_tally(&self, kind: OpKind, tally: &OpTally) {
        let ledger = self.ledger(kind);
        ledger.ops.fetch_add(tally.ops(), Ordering::Relaxed);
        ledger
            .word_accesses
            .fetch_add(tally.total_accesses(), Ordering::Relaxed);
        ledger
            .hash_bits
            .fetch_add(tally.total_hash_bits(), Ordering::Relaxed);
    }

    /// Folds a full [`AccessStats`] ledger (all three kinds).
    pub fn record_access_stats(&self, stats: &AccessStats) {
        self.record_tally(OpKind::Query, &stats.queries);
        self.record_tally(OpKind::Insert, &stats.inserts);
        self.record_tally(OpKind::Remove, &stats.removes);
    }

    /// A point-in-time copy of everything, ready for export.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            query: self.ledger(OpKind::Query).snapshot(),
            insert: self.ledger(OpKind::Insert).snapshot(),
            remove: self.ledger(OpKind::Remove).snapshot(),
            counters: self
                .counters
                .lock()
                .expect("telemetry counter lock")
                .clone(),
            gauges: self.gauges.lock().expect("telemetry gauge lock").clone(),
        }
    }
}

impl OpSink for Telemetry {
    #[inline]
    fn record_batch(&self, kind: OpKind, ops: u64, cost: OpCost, nanos: u64) {
        let ledger = self.ledger(kind);
        ledger.ops.fetch_add(ops, Ordering::Relaxed);
        ledger.batches.fetch_add(1, Ordering::Relaxed);
        ledger
            .word_accesses
            .fetch_add(u64::from(cost.word_accesses), Ordering::Relaxed);
        ledger
            .hash_bits
            .fetch_add(u64::from(cost.hash_bits), Ordering::Relaxed);
        // Attribute the batch's wall time evenly: one histogram sample per
        // operation at the per-op share, so per-op latency distributions
        // from different batch sizes remain comparable.
        match nanos.checked_div(ops) {
            Some(per_op) => ledger.latency.record_n(per_op, ops),
            None => ledger.latency.record(nanos),
        }
    }
}

/// Everything the exporters need, decoupled from the live registry.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Query ledger.
    pub query: KindSnapshot,
    /// Insert ledger.
    pub insert: KindSnapshot,
    /// Remove ledger.
    pub remove: KindSnapshot,
    /// Named monotonic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Named gauges, sorted by name.
    pub gauges: BTreeMap<String, f64>,
}

impl TelemetrySnapshot {
    /// `(kind, snapshot)` pairs in ledger order, for exporters.
    pub fn kinds(&self) -> [(OpKind, &KindSnapshot); 3] {
        [
            (OpKind::Query, &self.query),
            (OpKind::Insert, &self.insert),
            (OpKind::Remove, &self.remove),
        ]
    }

    /// Combined update view (inserts + removes), as Table II reports.
    pub fn updates(&self) -> KindSnapshot {
        let mut latency = self.insert.latency;
        latency.merge(&self.remove.latency);
        KindSnapshot {
            ops: self.insert.ops + self.remove.ops,
            batches: self.insert.batches + self.remove.batches,
            word_accesses: self.insert.word_accesses + self.remove.word_accesses,
            hash_bits: self.insert.hash_bits + self.remove.hash_bits,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_accumulates_per_kind() {
        let t = Telemetry::new();
        let cost = OpCost {
            word_accesses: 64,
            hash_bits: 1408,
        };
        t.record_batch(OpKind::Query, 64, cost, 6_400);
        t.record_batch(OpKind::Query, 64, cost, 12_800);
        t.record_batch(OpKind::Insert, 10, OpCost::zero(), 1_000);
        let s = t.snapshot();
        assert_eq!(s.query.ops, 128);
        assert_eq!(s.query.batches, 2);
        assert_eq!(s.query.word_accesses, 128);
        assert!((s.query.mean_accesses() - 1.0).abs() < 1e-12);
        assert!((s.query.mean_hash_bits() - 22.0).abs() < 1e-12);
        assert_eq!(s.query.latency.count, 128);
        assert_eq!(s.insert.ops, 10);
        assert_eq!(s.remove.ops, 0);
    }

    #[test]
    fn counters_and_gauges() {
        let t = Telemetry::new();
        t.add_counter("lock_contended", 3);
        t.add_counter("lock_contended", 2);
        t.set_gauge("fill_ratio", 0.25);
        t.set_gauge("fill_ratio", 0.5);
        let s = t.snapshot();
        assert_eq!(s.counters["lock_contended"], 5);
        assert!((s.gauges["fill_ratio"] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn health_report_becomes_gauges() {
        let t = Telemetry::new();
        t.record_health(&HealthReport {
            items: 10,
            fill_ratio: 0.125,
            max_word_load: 7,
            word_capacity: 50,
            overflows: 0,
            spill_keys: 2,
            spill_occupancy: 3,
            spilled_inserts: 4,
        });
        let s = t.snapshot();
        assert!((s.gauges["fill_ratio"] - 0.125).abs() < 1e-12);
        assert!((s.gauges["spill_occupancy"] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tally_folding_matches_sink_totals() {
        let via_sink = Telemetry::new();
        let cost = OpCost {
            word_accesses: 2,
            hash_bits: 44,
        };
        for _ in 0..5 {
            via_sink.record_batch(OpKind::Remove, 1, cost, 100);
        }

        let mut stats = AccessStats::new();
        for _ in 0..5 {
            stats.removes.record(cost);
        }
        let via_tally = Telemetry::new();
        via_tally.record_access_stats(&stats);

        let a = via_sink.snapshot().remove;
        let b = via_tally.snapshot().remove;
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.word_accesses, b.word_accesses);
        assert_eq!(a.hash_bits, b.hash_bits);
    }

    #[test]
    fn updates_view_combines() {
        let t = Telemetry::new();
        let c = OpCost {
            word_accesses: 1,
            hash_bits: 10,
        };
        t.record_batch(OpKind::Insert, 2, c, 200);
        t.record_batch(OpKind::Remove, 2, c, 200);
        let u = t.snapshot().updates();
        assert_eq!(u.ops, 4);
        assert!((u.mean_accesses() - 0.5).abs() < 1e-12);
        assert_eq!(u.latency.count, 4);
    }
}
