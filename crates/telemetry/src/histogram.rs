//! Log-bucketed latency histograms.
//!
//! [`AtomicHistogram`] is an HDR-style histogram with power-of-two bucket
//! boundaries: bucket `i` covers values in `[2^(i-1), 2^i)` (bucket 0 holds
//! 0 and 1). With 64 buckets it spans the full `u64` nanosecond range at a
//! fixed 512-byte footprint, recording is a single relaxed fetch-add, and
//! snapshots from independent recorders merge by plain addition — the three
//! properties that let one histogram be shared across threads without a
//! lock anywhere on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit-length of a `u64` value.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0 and 1, else `bit_length(v)` − 1
/// (so bucket `i ≥ 1` covers `[2^i, 2^(i+1))`, shifted down by one to
/// keep index 63 reachable only by values ≥ 2^63).
#[inline]
fn bucket_of(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        (63 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` (used for quantile estimates and the
/// Prometheus `le` labels). Bucket 63's bound is `u64::MAX`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// A mergeable, lock-free latency histogram with power-of-two buckets.
///
/// All mutation is through `&self` with relaxed atomics: recorders on
/// different threads never contend on anything but the cache line, and a
/// reader sees a near-point-in-time [`HistogramSnapshot`].
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (typically nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a value `n` times (one batch observed once, attributed to
    /// `n` operations, is recorded via [`AtomicHistogram::record`] of the
    /// per-op share instead — this is for pre-aggregated sources).
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        self.buckets[bucket_of(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
    }

    /// A point-in-time copy. Not atomic across buckets (recorders may land
    /// between loads), but each bucket is itself consistent and the drift
    /// is bounded by in-flight operations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.count = self.count.load(Ordering::Relaxed);
        s.sum = self.sum.load(Ordering::Relaxed);
        s
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers values with bit-length `i+1`
    /// (bucket 0 also holds zero).
    pub buckets: [u64; BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one (per-thread recorders fold
    /// into a global view this way).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean recorded value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]` —
    /// a conservative (over-)estimate, exact to within one power of two.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        // Every value falls inside its bucket's inclusive upper bound.
        for v in [0u64, 1, 2, 7, 100, 4096, 1 << 40, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_of(v)), "v={v}");
            if bucket_of(v) > 0 {
                assert!(v > bucket_upper_bound(bucket_of(v) - 1), "v={v}");
            }
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = AtomicHistogram::new();
        h.record(1);
        h.record(100);
        h.record(100);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1_000_201);
        assert!((s.mean() - 250_050.25).abs() < 1e-9);
    }

    #[test]
    fn merge_is_additive() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(5);
        b.record(5);
        b.record(500);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 510);
    }

    #[test]
    fn quantiles_are_conservative() {
        let h = AtomicHistogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(10_000);
        let s = h.snapshot();
        // p50 lands in the bucket holding 10 ([8, 16)).
        assert_eq!(s.quantile_upper_bound(0.5), 15);
        // p100 must cover the outlier.
        assert!(s.quantile_upper_bound(1.0) >= 10_000);
        // Empty histogram.
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.99), 0);
    }

    #[test]
    fn record_n_preaggregates() {
        let h = AtomicHistogram::new();
        h.record_n(64, 10);
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 640);
    }

    #[test]
    fn threads_share_one_histogram() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
    }
}
