//! # mpcbf-telemetry
//!
//! Observability for the MPCBF workspace: the paper reports *measured*
//! per-operation memory accesses and access bandwidth (Tables I–III,
//! Fig. 11), and a production deployment additionally needs latency and
//! saturation visibility. This crate supplies the pieces:
//!
//! * [`AtomicHistogram`] — HDR-style log-bucketed (power-of-two) latency
//!   histogram; lock-free recording, mergeable snapshots.
//! * [`Telemetry`] — the registry: implements
//!   [`OpSink`](mpcbf_core::metrics::OpSink) so the core traits'
//!   `*_batch_metered` operations feed it directly, folds the concurrent
//!   filters' [`AccessStats`](mpcbf_core::metrics::AccessStats) ledgers
//!   and [`HealthReport`](mpcbf_core::metrics::HealthReport) gauges, and
//!   carries named counters (e.g. per-shard lock contention tallies).
//! * [`prometheus_text`] / [`json_snapshot`] — text-exposition and JSON
//!   renderings of a [`TelemetrySnapshot`], for `stress --telemetry`,
//!   `mpcbf replay --telemetry`, or any embedding service's scrape
//!   endpoint.
//!
//! ```
//! use mpcbf_core::prelude::*;
//! use mpcbf_telemetry::{prometheus_text, Telemetry};
//!
//! let config = MpcbfConfig::builder()
//!     .memory_bits(1_000_000)
//!     .expected_items(1_000)
//!     .hashes(3)
//!     .build()
//!     .unwrap();
//! let mut filter = Mpcbf1::new(config);
//! let telemetry = Telemetry::new();
//!
//! let keys: Vec<&[u8]> = vec![b"alice", b"bob"];
//! filter.insert_batch_metered(&keys, &telemetry);
//! filter.contains_batch_metered(&keys, &telemetry);
//!
//! let page = prometheus_text(&telemetry.snapshot());
//! assert!(page.contains("mpcbf_ops_total{kind=\"query\"} 2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod registry;

pub use export::{json_snapshot, prometheus_text};
pub use histogram::{AtomicHistogram, HistogramSnapshot, BUCKETS};
pub use registry::{KindSnapshot, Telemetry, TelemetrySnapshot};
