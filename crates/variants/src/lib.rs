//! Related-work CBF variants the paper positions itself against (§II.B).
//!
//! The paper's evaluation compares MPCBF against the standard CBF and its
//! own PCBF strawman; its related-work section additionally discusses two
//! well-known memory-optimised alternatives, implemented here so the
//! extended benches can place MPCBF on the same chart:
//!
//! * [`dlcbf`] — the **d-left CBF** (Bonomi, Mitzenmacher, Panigrahy,
//!   Singh & Varghese, ESA 2006; reference \[17\]): d-left hashing with
//!   fingerprinted cells, "less than half the memory at the same false
//!   positive rate" as CBF;
//! * [`vicbf`] — the **Variable-Increment CBF** (Rottenstreich, Kanizo &
//!   Keslassy, INFOCOM 2012; reference \[23\]): counters updated with
//!   variable increments drawn from a `D_L` sequence, letting queries rule
//!   out elements whose increment is inconsistent with the counter value;
//! * [`rcbf`] — the **rank-indexed CBF** (Hua, Zhao, Lin & Xu, ICNP 2008;
//!   reference \[18\]): fingerprint chains located by popcount-indexed
//!   bitmaps — the direct ancestor of HCBF's in-word hierarchy;
//! * [`twochoice`] — the **power-of-two-choices Bloom filter** (Lumetta &
//!   Mitzenmacher; reference \[20\]): two hash groups, inserts commit the
//!   lighter one — accuracy via extra hashing, the overhead §II.B calls
//!   out.
//!
//! All implement the same [`Filter`]/[`CountingFilter`] traits and
//! metered-cost interface as the core filters; note both still need `k`
//! (or `d`) memory accesses per query — the overhead axis on which MPCBF
//! wins regardless of accuracy.
//!
//! [`Filter`]: mpcbf_core::Filter
//! [`CountingFilter`]: mpcbf_core::CountingFilter

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dlcbf;
pub mod rcbf;
pub mod twochoice;
pub mod vicbf;

pub use dlcbf::DlCbf;
pub use rcbf::Rcbf;
pub use twochoice::TwoChoiceBloom;
pub use vicbf::ViCbf;
