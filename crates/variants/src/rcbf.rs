//! A rank-indexed, fingerprint-bucketed CBF in the style of RCBF
//! (Hua, Zhao, Lin & Xu, ICNP 2008 — the paper's reference \[18\]).
//!
//! RCBF replaces wide counter arrays with *fingerprints*: an element
//! hashes to one of `m` buckets plus an `r`-bit fingerprint; each bucket
//! chains its fingerprints, each with a small counter, and the chains are
//! located without pointers via **rank-indexed hashing** — a bucket
//! occupancy bitmap whose prefix popcounts give every bucket's offset
//! into one packed entry array.
//!
//! This implementation keeps the structure's *behaviour* exact (hashing,
//! membership rule, counter semantics, per-operation bucket accesses) and
//! its memory accounting faithful to the rank-indexed layout:
//! `index_bits = m + m/64·6` (occupancy bitmap plus per-block rank
//! samples) `+ entries·(r + c)` for the packed entries. The entry store
//! itself uses per-bucket vectors rather than one packed array so that
//! updates stay O(bucket) — the measured FPR, access counts and reported
//! memory are unaffected, only the (unmeasured) insertion memmove cost
//! differs. The related-work bench sizes it by this accounting.
//!
//! The interesting lineage: RCBF's popcount-indexed hierarchy is exactly
//! the mechanism MPCBF's HCBF applies *inside a word* — the paper's §II.B
//! credits it directly ("the proposed approach in this paper also takes
//! advantage of a hierarchical structure that is borrowed from RCBF and
//! ML-CCBF"). A filter-global hierarchy pays global shifts on update;
//! confining it to one machine word is MPCBF's contribution.

use mpcbf_core::metrics::{OpCost, WordTouches};
use mpcbf_core::{CountingFilter, Filter, FilterError};
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{Hasher128, Murmur3};
use std::marker::PhantomData;

/// One chained entry: fingerprint + small saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    fingerprint: u32,
    count: u8,
}

/// A rank-indexed fingerprint CBF.
#[derive(Debug, Clone)]
pub struct Rcbf<H: Hasher128 = Murmur3> {
    buckets: Vec<Vec<Entry>>,
    /// Fingerprint bits.
    r: u32,
    /// Counter bits (entries saturate at `2^c − 1`).
    c: u32,
    seed: u64,
    items: u64,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> Rcbf<H> {
    /// Creates an RCBF with `m` buckets, `r`-bit fingerprints and `c`-bit
    /// per-entry counters (the original uses r ≈ 9–12, c = 2).
    ///
    /// # Panics
    /// Panics unless `m ≥ 2`, `r ∈ 4..=32`, `c ∈ 1..=8`.
    pub fn new(m: usize, r: u32, c: u32, seed: u64) -> Self {
        assert!(m >= 2, "need at least two buckets");
        assert!((4..=32).contains(&r), "fingerprint bits {r} out of 4..=32");
        assert!((1..=8).contains(&c), "counter bits {c} out of 1..=8");
        Rcbf {
            buckets: vec![Vec::new(); m],
            r,
            c,
            seed,
            items: 0,
            _hasher: PhantomData,
        }
    }

    /// Sizes an RCBF for an expected `n` elements within `memory_bits`:
    /// buckets ≈ n (load factor 1), fingerprint bits from the leftover
    /// budget after index and counters.
    pub fn with_memory(memory_bits: u64, n: u64, seed: u64) -> Self {
        let m = n.max(2) as usize;
        let index_bits = Self::index_bits_for(m);
        let per_entry_budget = memory_bits.saturating_sub(index_bits) / n.max(1);
        let c = 2u32;
        let r = (per_entry_budget.saturating_sub(u64::from(c)) as u32).clamp(4, 32);
        Rcbf::new(m, r, c, seed)
    }

    fn index_bits_for(m: usize) -> u64 {
        // Occupancy bitmap + one 6-bit rank sample per 64-bit block.
        m as u64 + (m as u64).div_ceil(64) * 6
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Net insertions stored.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Entries currently chained (distinct (bucket, fingerprint) pairs).
    pub fn entries(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    #[inline]
    fn slot(&self, key: &[u8]) -> (usize, u32) {
        let h = H::hash128(self.seed, key);
        let bucket = mpcbf_hash::mix::fast_range(h as u64, self.buckets.len() as u64) as usize;
        let fingerprint = ((h >> 64) as u64 & ((1u64 << self.r) - 1)) as u32;
        (bucket, fingerprint)
    }

    #[inline]
    fn cost(&self) -> OpCost {
        // One bucket lookup: bucket address bits + fingerprint bits; the
        // rank-indexed chain walk stays within the bucket's (cached) line,
        // so the structure is a 1–2-access design like dlCBF's subtables.
        let mut touches = WordTouches::new();
        touches.touch(0); // index block
        touches.touch(1); // entry segment
        OpCost {
            word_accesses: touches.count(),
            hash_bits: bits_for(self.buckets.len() as u64) + self.r,
        }
    }
}

impl<H: Hasher128> Filter for Rcbf<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let (bucket, f) = self.slot(key);
        let hit = self.buckets[bucket].iter().any(|e| e.fingerprint == f);
        (hit, self.cost())
    }

    fn contains_batch_cost(&self, keys: &[&[u8]]) -> (Vec<bool>, OpCost) {
        // RCBF probes exactly one bucket per key, so the batch pipeline is
        // simply: hash every key up front, then probe the bucket chains in
        // one tight loop (the hardware prefetcher overlaps the chains).
        let slots: Vec<(usize, u32)> = keys.iter().map(|k| self.slot(k)).collect();
        let hits = slots
            .iter()
            .map(|&(bucket, f)| self.buckets[bucket].iter().any(|e| e.fingerprint == f))
            .collect();
        (hits, OpCost::accumulate(keys.iter().map(|_| self.cost())))
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let (bucket, f) = self.slot(key);
        let max = (1u16 << self.c) - 1;
        match self.buckets[bucket].iter_mut().find(|e| e.fingerprint == f) {
            Some(e) => {
                if u16::from(e.count) < max {
                    e.count += 1;
                }
            }
            None => self.buckets[bucket].push(Entry {
                fingerprint: f,
                count: 1,
            }),
        }
        self.items += 1;
        Ok(self.cost())
    }

    fn memory_bits(&self) -> u64 {
        Self::index_bits_for(self.buckets.len())
            + self.entries() as u64 * u64::from(self.r + self.c)
    }

    fn num_hashes(&self) -> u32 {
        1
    }
}

impl<H: Hasher128> CountingFilter for Rcbf<H> {
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let (bucket, f) = self.slot(key);
        let chain = &mut self.buckets[bucket];
        let Some(idx) = chain.iter().position(|e| e.fingerprint == f) else {
            return Err(FilterError::NotPresent);
        };
        let max = (1u16 << self.c) - 1;
        if u16::from(chain[idx].count) >= max {
            // Saturated: sticks, like a CBF counter.
        } else if chain[idx].count > 1 {
            chain[idx].count -= 1;
        } else {
            chain.swap_remove(idx);
        }
        self.items = self.items.saturating_sub(1);
        Ok(self.cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Rcbf<Murmur3> {
        Rcbf::new(10_000, 12, 2, 7)
    }

    #[test]
    fn roundtrip() {
        let mut f = small();
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..5_000u64 {
            assert!(f.contains(&i), "false negative {i}");
        }
        for i in 0..2_500u64 {
            f.remove(&i).unwrap();
        }
        for i in 2_500..5_000u64 {
            assert!(f.contains(&i), "lost {i}");
        }
    }

    #[test]
    fn duplicate_keys_share_an_entry() {
        let mut f = small();
        f.insert(&"dup").unwrap();
        let entries = f.entries();
        f.insert(&"dup").unwrap();
        assert_eq!(f.entries(), entries, "duplicate should bump the counter");
        f.remove(&"dup").unwrap();
        assert!(f.contains(&"dup"));
        f.remove(&"dup").unwrap();
        assert!(!f.contains(&"dup"));
        assert_eq!(f.entries(), entries - 1);
    }

    #[test]
    fn batch_contains_matches_scalar_loop() {
        use mpcbf_hash::Key;
        let mut f = small();
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        let keys: Vec<u64> = (2_500..7_500).collect();
        let (hits, cost) = {
            let owned: Vec<_> = keys.iter().map(mpcbf_hash::Key::key_bytes).collect();
            let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
            f.contains_batch_cost(&views)
        };
        let mut scalar_cost = OpCost::zero();
        for (k, hit) in keys.iter().zip(&hits) {
            let (h, c) = f.contains_bytes_cost(k.key_bytes().as_slice());
            assert_eq!(h, *hit, "divergence at {k}");
            scalar_cost = scalar_cost.add(c);
        }
        assert_eq!(cost, scalar_cost);
    }

    #[test]
    fn remove_absent_errors() {
        let mut f = small();
        assert_eq!(f.remove(&"ghost"), Err(FilterError::NotPresent));
    }

    #[test]
    fn fpr_tracks_fingerprint_width() {
        // FPR ≈ load · 2^−r per probe: r = 12 at load 1 ⇒ ~2.4e-4.
        let mut f = Rcbf::<Murmur3>::new(20_000, 12, 2, 3);
        for i in 0..20_000u64 {
            f.insert(&i).unwrap();
        }
        let trials = 400_000u64;
        let fp = (1_000_000..1_000_000 + trials)
            .filter(|i: &u64| f.contains(i))
            .count() as f64;
        let rate = fp / trials as f64;
        assert!(rate < 2e-3, "rate {rate}");
        assert!(rate > 1e-5, "rate suspiciously low: {rate}");
    }

    #[test]
    fn memory_accounting_is_load_dependent() {
        let mut f = small();
        let empty = f.memory_bits();
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        let loaded = f.memory_bits();
        assert!(loaded > empty);
        // ~(r + c) bits per new entry.
        let per_entry = (loaded - empty) as f64 / f.entries() as f64;
        assert!((13.0..=15.0).contains(&per_entry), "{per_entry}");
    }

    #[test]
    fn with_memory_respects_budget_shape() {
        let f = Rcbf::<Murmur3>::with_memory(1_000_000, 50_000, 1);
        assert_eq!(f.buckets(), 50_000);
        assert!(f.memory_bits() < 1_000_000, "empty filter under budget");
    }

    #[test]
    fn paper_lineage_memory_claim() {
        // RCBF's pitch: ~3× less memory than CBF at 1% FPR. At r = 7
        // (2^-7 ≈ 0.8%), storing n elements costs ≈ n·(7+2) + index vs
        // CBF's ≈ 10n·4 bits for the same rate.
        let n = 20_000u64;
        let mut f = Rcbf::<Murmur3>::new(n as usize, 7, 2, 5);
        for i in 0..n {
            f.insert(&i).unwrap();
        }
        let cbf_bits = {
            // CBF at ~1%: m/n = 10, k = 5 ⇒ 4·10·n bits.
            40 * n
        };
        assert!(
            f.memory_bits() * 2 < cbf_bits,
            "RCBF {} vs CBF {cbf_bits}",
            f.memory_bits()
        );
    }
}
