//! The d-left Counting Bloom Filter (reference \[17\]).
//!
//! Layout: `d` subtables of `b` buckets, each bucket holding up to `cells`
//! slots of `(fingerprint, counter)`. One base hash maps an element to a
//! value `h ∈ [0, b·R)` (`R` = fingerprint range); per-subtable
//! *permutations* of `h` yield the candidate `(bucket_i, fingerprint_i)`
//! pairs. Because the permutations are bijections, two elements share a
//! candidate fingerprint in one subtable **iff** their base hashes collide
//! entirely — which makes deletion by fingerprint search safe (the
//! original paper's key trick).
//!
//! Insert places the element next to an existing matching cell, or in the
//! least-loaded candidate bucket (leftmost on ties — "d-left"). Queries
//! check all `d` candidate buckets, so the query cost is `d` memory
//! accesses: cheaper than CBF's `k` but still above MPCBF's `g = 1`.

use mpcbf_core::metrics::{OpCost, WordTouches};
use mpcbf_core::{CountingFilter, Filter, FilterError};
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{Hasher128, Murmur3};
use std::marker::PhantomData;

/// One cell: a fingerprint plus a small counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    fingerprint: u32,
    count: u16,
}

/// A d-left CBF.
#[derive(Debug, Clone)]
pub struct DlCbf<H: Hasher128 = Murmur3> {
    /// `d · b` buckets, subtable-major; each bucket is `cells` slots.
    table: Vec<Cell>,
    d: u32,
    buckets: usize,
    cells: usize,
    /// Fingerprint bits; range `R = 2^r`.
    r: u32,
    /// Odd multipliers defining the per-subtable permutations.
    perms: Vec<u64>,
    counter_bits: u32,
    seed: u64,
    items: u64,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> DlCbf<H> {
    /// Creates a dlCBF with `d` subtables of `buckets` buckets holding
    /// `cells` cells of `r`-bit fingerprints.
    ///
    /// # Panics
    /// Panics unless `d ∈ 2..=8`, `buckets` is a power of two ≥ 2,
    /// `cells ∈ 1..=64` and `r ∈ 4..=32`.
    pub fn new(d: u32, buckets: usize, cells: usize, r: u32, seed: u64) -> Self {
        assert!((2..=8).contains(&d), "d = {d} out of 2..=8");
        assert!(
            buckets.is_power_of_two() && buckets >= 2,
            "buckets must be a power of two"
        );
        assert!((1..=64).contains(&cells), "cells = {cells} out of 1..=64");
        assert!((4..=32).contains(&r), "fingerprint bits {r} out of 4..=32");
        // Distinct odd multipliers give distinct permutations of
        // [0, buckets·2^r) (a power-of-two modulus).
        let perms: Vec<u64> = (0..d)
            .map(|i| mpcbf_hash::mix::splitmix64(seed ^ u64::from(i) << 32) | 1)
            .collect();
        DlCbf {
            table: vec![Cell::default(); d as usize * buckets * cells],
            d,
            buckets,
            cells,
            r,
            perms,
            counter_bits: 16,
            seed,
            items: 0,
            _hasher: PhantomData,
        }
    }

    /// Sizes a dlCBF to a memory budget with the classic parameters
    /// `d = 4`, 8 cells/bucket: `buckets` is the largest power of two such
    /// that `d·buckets·cells·(r + 16) ≤ memory_bits`.
    pub fn with_memory(memory_bits: u64, r: u32, seed: u64) -> Self {
        let (d, cells) = (4u32, 8usize);
        let per_bucket = cells as u64 * (u64::from(r) + 16);
        let max_buckets = (memory_bits / (u64::from(d) * per_bucket)).max(2);
        let buckets = (1usize << (63 - max_buckets.leading_zeros())).max(2);
        Self::new(d, buckets, cells, r, seed)
    }

    /// Net elements stored.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Total cells in use.
    pub fn occupied_cells(&self) -> usize {
        self.table.iter().filter(|c| c.count > 0).count()
    }

    /// Candidate (subtable-global bucket index, fingerprint) pairs of a key.
    #[inline]
    fn candidates(&self, key: &[u8]) -> impl Iterator<Item = (usize, u32)> + '_ {
        let space = (self.buckets as u64) << self.r;
        let h = H::hash64(self.seed, key) & (space - 1);
        (0..self.d as usize).map(move |i| {
            let p = (h.wrapping_mul(self.perms[i])) & (space - 1);
            let bucket = (p >> self.r) as usize + i * self.buckets;
            let fingerprint = (p & ((1u64 << self.r) - 1)) as u32;
            (bucket, fingerprint)
        })
    }

    #[inline]
    fn bucket(&self, idx: usize) -> &[Cell] {
        &self.table[idx * self.cells..(idx + 1) * self.cells]
    }

    #[inline]
    fn bucket_mut(&mut self, idx: usize) -> &mut [Cell] {
        &mut self.table[idx * self.cells..(idx + 1) * self.cells]
    }

    #[inline]
    fn bucket_load(&self, idx: usize) -> usize {
        self.bucket(idx).iter().filter(|c| c.count > 0).count()
    }

    #[inline]
    fn cost(&self, accesses: u32) -> OpCost {
        // Bandwidth: the base hash addresses [0, b·2^r); each subtable
        // evaluation consumes log2(b) + r bits of it.
        OpCost {
            word_accesses: accesses,
            hash_bits: accesses * (bits_for(self.buckets as u64) + self.r),
        }
    }
}

impl<H: Hasher128> Filter for DlCbf<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut touches = WordTouches::new();
        let mut evaluated = 0u32;
        for (bucket, f) in self.candidates(key) {
            touches.touch(bucket);
            evaluated += 1;
            if self
                .bucket(bucket)
                .iter()
                .any(|c| c.count > 0 && c.fingerprint == f)
            {
                return (true, self.cost(evaluated));
            }
        }
        (false, self.cost(evaluated))
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let cands: Vec<(usize, u32)> = self.candidates(key).collect();
        // Existing matching cell anywhere? Increment it.
        for &(bucket, f) in &cands {
            if let Some(cell) = self
                .bucket_mut(bucket)
                .iter_mut()
                .find(|c| c.count > 0 && c.fingerprint == f)
            {
                cell.count = cell.count.saturating_add(1);
                self.items += 1;
                return Ok(self.cost(self.d));
            }
        }
        // d-left placement: least-loaded candidate bucket, leftmost wins.
        let (&(bucket, f), _) = cands
            .iter()
            .zip(0..)
            .min_by_key(|(&(b, _), i)| (self.bucket_load(b), *i))
            .expect("d >= 2 candidates");
        if let Some(cell) = self.bucket_mut(bucket).iter_mut().find(|c| c.count == 0) {
            *cell = Cell {
                fingerprint: f,
                count: 1,
            };
            self.items += 1;
            Ok(self.cost(self.d))
        } else {
            // All candidate buckets full: structural overflow.
            Err(FilterError::WordOverflow { word: bucket })
        }
    }

    fn memory_bits(&self) -> u64 {
        self.table.len() as u64 * u64::from(self.r + self.counter_bits)
    }

    fn num_hashes(&self) -> u32 {
        // One base hash, d derived permutations.
        self.d
    }
}

impl<H: Hasher128> CountingFilter for DlCbf<H> {
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let cands: Vec<(usize, u32)> = self.candidates(key).collect();
        for &(bucket, f) in &cands {
            if let Some(cell) = self
                .bucket_mut(bucket)
                .iter_mut()
                .find(|c| c.count > 0 && c.fingerprint == f)
            {
                cell.count -= 1;
                if cell.count == 0 {
                    cell.fingerprint = 0;
                }
                self.items = self.items.saturating_sub(1);
                return Ok(self.cost(self.d));
            }
        }
        Err(FilterError::NotPresent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DlCbf<Murmur3> {
        DlCbf::new(4, 1024, 8, 12, 42)
    }

    #[test]
    fn roundtrip() {
        let mut f = small();
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..5_000u64 {
            assert!(f.contains(&i), "false negative {i}");
        }
        for i in 0..2_500u64 {
            f.remove(&i).unwrap();
        }
        for i in 2_500..5_000u64 {
            assert!(f.contains(&i), "lost {i}");
        }
    }

    #[test]
    fn duplicate_inserts_share_a_cell() {
        let mut f = small();
        f.insert(&"dup").unwrap();
        let cells_once = f.occupied_cells();
        f.insert(&"dup").unwrap();
        assert_eq!(
            f.occupied_cells(),
            cells_once,
            "duplicate must reuse the cell"
        );
        f.remove(&"dup").unwrap();
        assert!(f.contains(&"dup"));
        f.remove(&"dup").unwrap();
        assert!(!f.contains(&"dup"));
        assert_eq!(f.occupied_cells(), cells_once - 1);
    }

    #[test]
    fn remove_absent_errors() {
        let mut f = small();
        assert_eq!(f.remove(&"ghost"), Err(FilterError::NotPresent));
    }

    #[test]
    fn query_costs_at_most_d_accesses() {
        let mut f = small();
        f.insert(&"q").unwrap();
        let (hit, cost) = f.contains_bytes_cost(b"q");
        assert!(hit);
        assert!(cost.word_accesses <= 4);
        let (_, cost_miss) = f.contains_bytes_cost(b"definitely missing");
        assert_eq!(cost_miss.word_accesses, 4, "a miss scans all d subtables");
    }

    #[test]
    fn fpr_is_low_for_12_bit_fingerprints() {
        let mut f = small();
        let n = 10_000u64;
        for i in 0..n {
            f.insert(&i).unwrap();
        }
        let trials = 200_000u64;
        let fp = (n..n + trials).filter(|i| f.contains(i)).count() as f64;
        let rate = fp / trials as f64;
        // ~ d·cells·2^-r ballpark ≈ 4·8/4096 ≈ 0.8%; assert under 2%.
        assert!(rate < 0.02, "rate {rate}");
    }

    #[test]
    fn with_memory_respects_budget() {
        let f = DlCbf::<Murmur3>::with_memory(4_000_000, 12, 7);
        assert!(f.memory_bits() <= 4_000_000);
        assert!(f.memory_bits() > 1_000_000, "should use most of the budget");
    }

    #[test]
    fn load_balancing_spreads_cells() {
        let mut f = DlCbf::<Murmur3>::new(4, 64, 8, 12, 3);
        for i in 0..1_000u64 {
            f.insert(&i).unwrap();
        }
        // No bucket should be near-full while others are empty: check the
        // max bucket load is well under the capacity.
        let max_load = (0..4 * 64).map(|b| f.bucket_load(b)).max().unwrap();
        assert!(max_load <= 8, "max load {max_load}");
        assert!(f.occupied_cells() >= 950, "duplicates should be rare here");
    }
}
