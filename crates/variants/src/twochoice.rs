//! The power-of-two-choices Bloom filter (Lumetta & Mitzenmacher —
//! the paper's reference \[20\]).
//!
//! Two independent groups of `k` hash functions; an insert evaluates both
//! candidate bit-sets and commits the one that would set **fewer fresh
//! bits** (spreading load the power-of-two-choices way); a query must
//! accept an element stored under either group, so it passes if *either*
//! group's bits are all set. The net effect is a modest FPR improvement
//! over a standard Bloom filter at equal memory — at the price of ~2×
//! hash work, which is the trade-off the paper contrasts with its own
//! one-hash approach (§II.B: "all these variants still have a large
//! processing overhead").
//!
//! Insert-only (the original is a plain Bloom construction; the counting
//! extension is not defined by \[20\]).

use mpcbf_bitvec::BitVec;
use mpcbf_core::metrics::{OpCost, WordTouches};
use mpcbf_core::{Filter, FilterError};
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use std::marker::PhantomData;

const GROUP_A: u64 = 0x2c68_0a11;
const GROUP_B: u64 = 0x2c68_0b22;

/// A two-choice Bloom filter over an `m`-bit vector.
#[derive(Debug, Clone)]
pub struct TwoChoiceBloom<H: Hasher128 = Murmur3> {
    bits: BitVec,
    k: u32,
    seed: u64,
    word_bits: u32,
    items: u64,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> TwoChoiceBloom<H> {
    /// Creates a filter with `m` bits and `k` hashes per group.
    ///
    /// # Panics
    /// Panics if `m == 0` or `k ∉ 1..=32`.
    pub fn new(m: usize, k: u32, seed: u64) -> Self {
        assert!(m > 0, "m must be positive");
        assert!((1..=32).contains(&k), "k = {k} out of 1..=32");
        TwoChoiceBloom {
            bits: BitVec::new(m),
            k,
            seed,
            word_bits: 64,
            items: 0,
            _hasher: PhantomData,
        }
    }

    /// Net insertions performed.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// The `k` candidate positions of `key` under group `salt`.
    #[inline]
    fn group(&self, key: &[u8], salt: u64, out: &mut [usize; 32]) {
        let digest = H::hash128(self.seed, key);
        let mut dh = DoubleHasher::with_salt(digest, salt, self.bits.len() as u64);
        for slot in out.iter_mut().take(self.k as usize) {
            *slot = dh.next_index();
        }
    }

    #[inline]
    fn fresh_bits(&self, positions: &[usize]) -> usize {
        positions.iter().filter(|&&p| !self.bits.get(p)).count()
    }
}

impl<H: Hasher128> Filter for TwoChoiceBloom<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let (mut a, mut b) = ([0usize; 32], [0usize; 32]);
        self.group(key, GROUP_A, &mut a);
        self.group(key, GROUP_B, &mut b);
        let k = self.k as usize;
        let mut touches = WordTouches::new();
        let addr = bits_for(self.bits.len() as u64);
        // Check group A (short-circuit), then group B.
        let mut evaluated = 0u32;
        let mut check = |set: &[usize]| -> bool {
            for &p in set {
                touches.touch(p / self.word_bits as usize);
                evaluated += 1;
                if !self.bits.get(p) {
                    return false;
                }
            }
            true
        };
        let hit = check(&a[..k]) || check(&b[..k]);
        (
            hit,
            OpCost {
                word_accesses: touches.count(),
                hash_bits: evaluated * addr,
            },
        )
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let (mut a, mut b) = ([0usize; 32], [0usize; 32]);
        self.group(key, GROUP_A, &mut a);
        self.group(key, GROUP_B, &mut b);
        let k = self.k as usize;
        // The power of two choices: commit the lighter group.
        let chosen = if self.fresh_bits(&a[..k]) <= self.fresh_bits(&b[..k]) {
            &a[..k]
        } else {
            &b[..k]
        };
        let mut touches = WordTouches::new();
        for &p in chosen {
            touches.touch(p / self.word_bits as usize);
            self.bits.set(p);
        }
        self.items += 1;
        Ok(OpCost {
            word_accesses: touches.count(),
            // Both groups were hashed and probed to make the choice.
            hash_bits: 2 * self.k * bits_for(self.bits.len() as u64),
        })
    }

    fn memory_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    fn num_hashes(&self) -> u32 {
        2 * self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::BloomFilter;

    #[test]
    fn no_false_negatives() {
        let mut f = TwoChoiceBloom::<Murmur3>::new(50_000, 3, 4);
        for i in 0..4_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..4_000u64 {
            assert!(f.contains(&i), "false negative {i}");
        }
    }

    #[test]
    fn fill_ratio_below_standard_bloom() {
        // The choice rule must set fewer bits than always-commit.
        let m = 60_000;
        let n = 6_000u64;
        let mut std_bf = BloomFilter::<Murmur3>::new(m, 3, 9);
        let mut two = TwoChoiceBloom::<Murmur3>::new(m, 3, 9);
        for i in 0..n {
            std_bf.insert(&i).unwrap();
            two.insert(&i).unwrap();
        }
        assert!(
            two.fill_ratio() < std_bf.fill_ratio(),
            "two-choice {} vs standard {}",
            two.fill_ratio(),
            std_bf.fill_ratio()
        );
    }

    #[test]
    fn fpr_comparable_to_standard_bloom() {
        // Lower fill fights the two-group OR in the query; net FPR should
        // land in the same ballpark as the standard filter (the original
        // paper reports modest gains in tuned regimes).
        let m = 100_000;
        let n = 10_000u64;
        let mut std_bf = BloomFilter::<Murmur3>::new(m, 3, 5);
        let mut two = TwoChoiceBloom::<Murmur3>::new(m, 3, 5);
        for i in 0..n {
            std_bf.insert(&i).unwrap();
            two.insert(&i).unwrap();
        }
        let trials = 300_000u64;
        let fp_std = (n..n + trials).filter(|i| std_bf.contains(i)).count() as f64;
        let fp_two = (n..n + trials).filter(|i| two.contains(i)).count() as f64;
        let (r_std, r_two) = (fp_std / trials as f64, fp_two / trials as f64);
        assert!(
            r_two < 3.0 * r_std + 1e-3,
            "two-choice {r_two} far above standard {r_std}"
        );
    }

    #[test]
    fn query_cost_reflects_two_groups() {
        let f = TwoChoiceBloom::<Murmur3>::new(1 << 16, 3, 1);
        // Miss on an empty filter: group A fails at its first bit, then
        // group B fails at its first bit ⇒ 2 positions evaluated.
        let (hit, cost) = f.contains_bytes_cost(b"miss");
        assert!(!hit);
        assert_eq!(cost.hash_bits, 2 * 16);
    }

    #[test]
    fn insert_bandwidth_counts_both_groups() {
        let mut f = TwoChoiceBloom::<Murmur3>::new(1 << 16, 3, 1);
        let cost = f.insert_bytes_cost(b"x").unwrap();
        assert_eq!(cost.hash_bits, 2 * 3 * 16);
        assert_eq!(f.items(), 1);
    }
}
