//! The Variable-Increment CBF (reference \[23\], INFOCOM 2012).
//!
//! Instead of adding 1 to each hashed counter, VI-CBF adds a *variable
//! increment* `v_i(x)` drawn (by a second hash) from the sequence
//! `D_L = {L, L+1, …, 2L−1}`. `D_L` has the property that the sum of any
//! two members is at least `2L`, so on query the counter value `c` at a
//! hashed position can be classified:
//!
//! * `c = 0` — nothing hashed here ⇒ **not a member**;
//! * `L ≤ c < 2L` — exactly one element hashed here, with increment `c`;
//!   if `c ≠ v_i(x)` that element is not `x` ⇒ **not a member**;
//! * `c ≥ 2L` — two or more elements ⇒ inconclusive (treat as pass).
//!
//! The extra rule rejects many queries a plain CBF would pass, cutting the
//! FPR at the cost of wider counters (8 bits here) and the same `k` memory
//! accesses per operation as CBF.

use mpcbf_bitvec::CounterVec;
use mpcbf_core::metrics::{OpCost, WordTouches};
use mpcbf_core::{CountingFilter, Filter, FilterError};
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use std::marker::PhantomData;

/// Salt separating the increment-selection stream from the index stream.
const INC_SALT: u64 = 0x5649_4342_465f_494e; // "VICBF_IN"

/// A Variable-Increment CBF with `m` 8-bit counters and increments from
/// `D_L = {L, …, 2L−1}`.
#[derive(Debug, Clone)]
pub struct ViCbf<H: Hasher128 = Murmur3> {
    counters: CounterVec,
    k: u32,
    /// The `L` of `D_L`.
    l_param: u64,
    seed: u64,
    word_bits: u32,
    items: u64,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> ViCbf<H> {
    /// Creates a VI-CBF with `m` counters, `k` hashes and parameter `L`
    /// (the original paper recommends `L = 4`, i.e. `D_L = {4,5,6,7}`).
    ///
    /// # Panics
    /// Panics unless `m > 0`, `k ∈ 1..=64` and `L ∈ 2..=16`.
    pub fn new(m: usize, k: u32, l_param: u64, seed: u64) -> Self {
        assert!(m > 0, "m must be positive");
        assert!((1..=64).contains(&k), "k = {k} out of 1..=64");
        assert!((2..=16).contains(&l_param), "L = {l_param} out of 2..=16");
        ViCbf {
            counters: CounterVec::new(m, 8),
            k,
            l_param,
            seed,
            word_bits: 64,
            items: 0,
            _hasher: PhantomData,
        }
    }

    /// Sizes a VI-CBF to a memory budget (`m = memory_bits / 8`).
    pub fn with_memory(memory_bits: u64, k: u32, l_param: u64, seed: u64) -> Self {
        Self::new((memory_bits / 8) as usize, k, l_param, seed)
    }

    /// Net elements stored.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// `L` of the `D_L` increment sequence.
    pub fn l_param(&self) -> u64 {
        self.l_param
    }

    /// The (position, increment) pairs of a key.
    #[inline]
    fn pairs(&self, key: &[u8]) -> impl Iterator<Item = (usize, u64)> + '_ {
        let digest = H::hash128(self.seed, key);
        let mut idx = DoubleHasher::new(digest, self.counters.len() as u64);
        let mut inc = DoubleHasher::with_salt(digest, INC_SALT, self.l_param);
        let l = self.l_param;
        (0..self.k).map(move |_| (idx.next_index(), l + inc.next_index() as u64))
    }

    #[inline]
    fn word_of(&self, counter: usize) -> usize {
        counter * 8 / self.word_bits as usize
    }

    /// The VI-CBF membership rule for one position.
    #[inline]
    fn position_passes(&self, c: u64, v: u64) -> bool {
        if c == 0 {
            false
        } else if c < 2 * self.l_param {
            // Exactly one element here (c must be its increment, in D_L).
            c == v
        } else {
            true // inconclusive
        }
    }
}

impl<H: Hasher128> Filter for ViCbf<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut touches = WordTouches::new();
        let addr_bits = bits_for(self.counters.len() as u64) + bits_for(self.l_param);
        let mut evaluated = 0u32;
        let mut member = true;
        for (p, v) in self.pairs(key) {
            touches.touch(self.word_of(p));
            evaluated += 1;
            if !self.position_passes(self.counters.get(p), v) {
                member = false;
                break;
            }
        }
        (
            member,
            OpCost {
                word_accesses: touches.count(),
                hash_bits: evaluated * addr_bits,
            },
        )
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let mut touches = WordTouches::new();
        let addr_bits = bits_for(self.counters.len() as u64) + bits_for(self.l_param);
        let pairs: Vec<(usize, u64)> = self.pairs(key).collect();
        for &(p, v) in &pairs {
            touches.touch(self.word_of(p));
            for _ in 0..v {
                self.counters.increment(p);
            }
        }
        self.items += 1;
        Ok(OpCost {
            word_accesses: touches.count(),
            hash_bits: self.k * addr_bits,
        })
    }

    fn memory_bits(&self) -> u64 {
        self.counters.memory_bits() as u64
    }

    fn num_hashes(&self) -> u32 {
        self.k
    }
}

impl<H: Hasher128> CountingFilter for ViCbf<H> {
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let pairs: Vec<(usize, u64)> = self.pairs(key).collect();
        // Presence check under the VI rule first.
        for &(p, v) in &pairs {
            if !self.position_passes(self.counters.get(p), v) {
                return Err(FilterError::NotPresent);
            }
        }
        let mut touches = WordTouches::new();
        let addr_bits = bits_for(self.counters.len() as u64) + bits_for(self.l_param);
        for &(p, v) in &pairs {
            touches.touch(self.word_of(p));
            // Saturated counters stay saturated (same policy as CBF).
            if self.counters.get(p) < self.counters.max_value() {
                for _ in 0..v {
                    self.counters.decrement(p);
                }
            }
        }
        self.items = self.items.saturating_sub(1);
        Ok(OpCost {
            word_accesses: touches.count(),
            hash_bits: self.k * addr_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ViCbf<Murmur3> {
        ViCbf::new(50_000, 3, 4, 9)
    }

    #[test]
    fn roundtrip() {
        let mut f = small();
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..5_000u64 {
            assert!(f.contains(&i), "false negative {i}");
        }
        for i in 0..2_500u64 {
            f.remove(&i).unwrap();
        }
        for i in 2_500..5_000u64 {
            assert!(f.contains(&i), "lost {i}");
        }
        for i in 2_500..5_000u64 {
            f.remove(&i).unwrap();
        }
        assert_eq!(f.items(), 0);
    }

    #[test]
    fn remove_absent_errors() {
        let mut f = small();
        assert_eq!(f.remove(&"ghost"), Err(FilterError::NotPresent));
    }

    #[test]
    fn beats_cbf_at_same_memory() {
        // The VI-CBF claim: lower FPR than CBF at equal memory, despite
        // having m/2 counters (8-bit vs 4-bit).
        use mpcbf_core::Cbf;
        let memory = 400_000u64;
        let n = 10_000u64;
        let mut cbf = Cbf::<Murmur3>::with_memory(memory, 3, 5);
        let mut vi = ViCbf::<Murmur3>::with_memory(memory, 3, 4, 5);
        for i in 0..n {
            cbf.insert(&i).unwrap();
            vi.insert(&i).unwrap();
        }
        let trials = 200_000u64;
        let fp_cbf = (n..n + trials).filter(|i| cbf.contains(i)).count();
        let fp_vi = (n..n + trials).filter(|i| vi.contains(i)).count();
        assert!(fp_vi < fp_cbf, "VI-CBF {fp_vi} should beat CBF {fp_cbf}");
    }

    #[test]
    fn single_occupant_rule_rejects_wrong_increment() {
        // Manually exercise position_passes.
        let f = small();
        assert!(!f.position_passes(0, 5));
        assert!(f.position_passes(5, 5)); // single element, matching v
        assert!(!f.position_passes(6, 5)); // single element, different v
        assert!(f.position_passes(8, 5)); // 2L = 8: inconclusive
        assert!(f.position_passes(250, 4));
    }

    #[test]
    fn increments_are_in_dl() {
        let f = small();
        for key in 0..200u64 {
            for (_, v) in f.pairs(&key.to_le_bytes()) {
                assert!((4..8).contains(&v), "increment {v} outside D_4");
            }
        }
    }

    #[test]
    fn query_cost_counts_pairs_bandwidth() {
        let f = small();
        let (hit, cost) = f.contains_bytes_cost(b"missing");
        assert!(!hit);
        // Short-circuit: one position evaluated, bits = log2(m) + log2(L).
        assert_eq!(cost.hash_bits, bits_for(50_000) + bits_for(4));
        assert_eq!(cost.word_accesses, 1);
    }
}
