//! Durability for [`ShardedMpcbf`]: one WAL per shard, parallel recovery.
//!
//! Each shard owns an independent WAL (`wal-s{N}-*.wal`) with its own
//! sequence numbering — appends on different shards never contend on a
//! shared log file, mirroring the filter's one-lock-per-shard design.
//! Keys are routed to their log with [`ShardedMpcbf::home_shard`], the
//! same disjoint digest bits that route the probe, so a shard's WAL
//! replays entirely into that shard.
//!
//! Snapshots are whole-filter: a small envelope records every shard's
//! sequence number at capture time, followed by the sharded filter's
//! codec image, CRC-sealed. Recovery loads the newest valid snapshot
//! and then scans + replays every shard's WAL **in parallel** (scoped
//! threads — shard ops take `&self`), each shard skipping records at or
//! below its snapshot seq.

use crate::durable::DurabilityOptions;
use crate::error::DurableError;
use crate::record::{WalOp, WalRecord};
use crate::report::RecoveryReport;
use crate::snapshot::SnapshotStore;
use crate::wal::Wal;
use mpcbf_concurrent::ShardedMpcbf;
use mpcbf_core::codec::crc32;
use mpcbf_hash::{Hasher128, Murmur3};

const SNAP_PREFIX: &str = "snap";
const ENVELOPE_MAGIC: &[u8; 4] = b"MPSS";

fn wal_prefix(shard: usize) -> String {
    format!("wal-s{shard:04}")
}

/// Builds the snapshot envelope: magic, per-shard seqs, inner image, CRC.
///
/// Public so a server that decomposes the wrapper (see
/// [`DurableShardedMpcbf::into_service_parts`]) can publish snapshots in
/// the same format recovery expects.
pub fn encode_envelope(seqs: &[u64], image: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + seqs.len() * 8 + 8 + image.len() + 4);
    out.extend_from_slice(ENVELOPE_MAGIC);
    out.extend_from_slice(&(seqs.len() as u32).to_le_bytes());
    for &s in seqs {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.extend_from_slice(&(image.len() as u64).to_le_bytes());
    out.extend_from_slice(image);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Total parse of the envelope; `None` on any inconsistency.
pub fn decode_envelope(buf: &[u8]) -> Option<(Vec<u64>, &[u8])> {
    if buf.len() < 4 + 4 + 8 + 4 || &buf[..4] != ENVELOPE_MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 4];
    let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().ok()?);
    if crc32(body) != stored {
        return None;
    }
    let shard_count = u32::from_le_bytes(body[4..8].try_into().ok()?) as usize;
    // Every seq costs 8 bytes; the body bounds the plausible count.
    if shard_count > body.len() / 8 {
        return None;
    }
    let mut pos = 8;
    let mut seqs = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        seqs.push(u64::from_le_bytes(body.get(pos..pos + 8)?.try_into().ok()?));
        pos += 8;
    }
    let image_len = u64::from_le_bytes(body.get(pos..pos + 8)?.try_into().ok()?) as usize;
    pos += 8;
    let image = body.get(pos..pos.checked_add(image_len)?)?;
    if pos + image_len != body.len() {
        return None;
    }
    Some((seqs, image))
}

/// Write-ahead-logged [`ShardedMpcbf`] with per-shard logs and parallel
/// crash recovery. Mutations take `&mut self` — the logging layer is
/// single-writer even though the filter beneath is not; a concurrent
/// durable server runs one `DurableShardedMpcbf` behind a writer thread
/// (or shards the wrapper itself).
pub struct DurableShardedMpcbf<H: Hasher128 = Murmur3> {
    inner: ShardedMpcbf<u64, H>,
    wals: Vec<Wal>,
    seqs: Vec<u64>,
    snapshots: SnapshotStore,
    records_since_snapshot: u64,
    snapshot_every: Option<u64>,
}

impl<H: Hasher128> DurableShardedMpcbf<H> {
    /// Starts a fresh durable sharded filter: initial snapshot, one WAL
    /// segment per shard.
    pub fn create(
        inner: ShardedMpcbf<u64, H>,
        opts: DurabilityOptions,
    ) -> Result<Self, DurableError> {
        let shard_count = inner.shard_count();
        let snapshots = SnapshotStore::new(&opts.dir, SNAP_PREFIX, opts.kill.clone())?;
        let mut wals = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let mut wal = Wal::new(
                &opts.dir,
                &wal_prefix(shard),
                opts.fsync,
                opts.segment_bytes,
                opts.kill.clone(),
            )?;
            wal.rotate(1)?;
            wals.push(wal);
        }
        let seqs = vec![0; shard_count];
        snapshots.write(0, &encode_envelope(&seqs, &inner.encode()))?;
        Ok(DurableShardedMpcbf {
            inner,
            wals,
            seqs,
            snapshots,
            records_since_snapshot: 0,
            snapshot_every: opts.snapshot_every,
        })
    }

    /// Materialises a bulk-built filter as a durable directory without
    /// logging a single per-key WAL frame: initial snapshot of `inner`
    /// as it stands, plus one empty WAL segment per shard. A subsequent
    /// [`DurableShardedMpcbf::open_or_recover`] (or `mpcbf serve`)
    /// cold-starts from the snapshot with zero records replayed.
    pub fn bootstrap(
        inner: &ShardedMpcbf<u64, H>,
        opts: DurabilityOptions,
    ) -> Result<(), DurableError> {
        let shard_count = inner.shard_count();
        let snapshots = SnapshotStore::new(&opts.dir, SNAP_PREFIX, opts.kill.clone())?;
        for shard in 0..shard_count {
            let mut wal = Wal::new(
                &opts.dir,
                &wal_prefix(shard),
                opts.fsync,
                opts.segment_bytes,
                opts.kill.clone(),
            )?;
            wal.rotate(1)?;
        }
        snapshots.write(0, &encode_envelope(&vec![0; shard_count], &inner.encode()))?;
        Ok(())
    }

    /// Recovers from `opts.dir`: newest valid snapshot, then every
    /// shard's WAL scanned, repaired, and replayed in parallel.
    /// `fallback` supplies the filter for a fresh (or fully corrupt)
    /// directory; its shard count defines the log layout.
    pub fn open_or_recover(
        opts: DurabilityOptions,
        fallback: impl FnOnce() -> ShardedMpcbf<u64, H>,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let snapshots = SnapshotStore::new(&opts.dir, SNAP_PREFIX, opts.kill.clone())?;
        let mut report = RecoveryReport::default();
        let (base, corrupt) = snapshots.load_latest_with(|bytes| {
            let (seqs, image) = decode_envelope(bytes)?;
            let filter = ShardedMpcbf::<u64, H>::decode(image).ok()?;
            (seqs.len() == filter.shard_count()).then_some((seqs, filter))
        })?;
        report.snapshots_corrupt = corrupt;
        let (inner, snap_seqs) = match base {
            Some((snap_seq, (seqs, filter))) => {
                report.snapshot_seq = Some(snap_seq);
                (filter, seqs)
            }
            None => {
                let filter = fallback();
                let count = filter.shard_count();
                (filter, vec![0; count])
            }
        };
        let shard_count = inner.shard_count();

        // Scan + repair + replay each shard's log on its own thread.
        let mut shard_results: Vec<Option<Result<(RecoveryReport, u64), DurableError>>> =
            (0..shard_count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shard_count);
            for (shard, &base_seq) in snap_seqs.iter().enumerate() {
                let dir = opts.dir.clone();
                let inner_ref = &inner;
                handles.push(scope.spawn(move || {
                    let prefix = wal_prefix(shard);
                    let (records, scan) = Wal::scan(&dir, &prefix)?;
                    let mut shard_report = RecoveryReport {
                        records_scanned: scan.records,
                        segments_dropped: scan.segments_dropped,
                        bytes_truncated: scan.bytes_truncated,
                        scrub_clean: true,
                        ..Default::default()
                    };
                    shard_report.torn_tails.extend(scan.torn);
                    let mut last_seq = base_seq;
                    for record in &records {
                        if record.seq <= base_seq {
                            continue;
                        }
                        shard_report.records_replayed += 1;
                        shard_report.ops_replayed += record.op.op_count();
                        apply_shard_op(inner_ref, &record.op);
                        last_seq = record.seq;
                    }
                    shard_report.last_seq = last_seq;
                    Ok((shard_report, last_seq))
                }));
            }
            for (shard, handle) in handles.into_iter().enumerate() {
                shard_results[shard] = Some(handle.join().expect("shard recovery panicked"));
            }
        });

        let mut seqs = Vec::with_capacity(shard_count);
        for result in shard_results {
            let (shard_report, last_seq) = result.expect("every shard joined")?;
            report.absorb_shard(&shard_report);
            seqs.push(last_seq);
        }

        // Cross-check the recovered image with the epoch scrub machinery.
        report.scrub_clean = inner.verify().is_ok() && inner.scrub(&inner.seal()).is_clean();

        let mut wals = Vec::with_capacity(shard_count);
        for (shard, &last_seq) in seqs.iter().enumerate() {
            let mut wal = Wal::new(
                &opts.dir,
                &wal_prefix(shard),
                opts.fsync,
                opts.segment_bytes,
                opts.kill.clone(),
            )?;
            wal.rotate(last_seq + 1)?;
            wals.push(wal);
        }
        Ok((
            DurableShardedMpcbf {
                inner,
                wals,
                seqs,
                snapshots,
                records_since_snapshot: 0,
                snapshot_every: opts.snapshot_every,
            },
            report,
        ))
    }

    /// The wrapped sharded filter (reads only; mutate through the
    /// logged entry points).
    pub fn inner(&self) -> &ShardedMpcbf<u64, H> {
        &self.inner
    }

    /// Per-shard last-assigned sequence numbers.
    pub fn shard_seqs(&self) -> &[u64] {
        &self.seqs
    }

    fn log_to(&mut self, shard: usize, op: WalOp) -> Result<(), DurableError> {
        let seq = self.seqs[shard] + 1;
        self.wals[shard].append(&WalRecord { seq, op })?;
        self.seqs[shard] = seq;
        self.records_since_snapshot += 1;
        Ok(())
    }

    fn maybe_snapshot(&mut self) -> Result<(), DurableError> {
        if let Some(every) = self.snapshot_every {
            if self.records_since_snapshot >= every {
                self.snapshot()?;
            }
        }
        Ok(())
    }

    /// Logs to the key's home-shard WAL, then applies.
    pub fn insert_bytes(&mut self, key: &[u8]) -> Result<(), DurableError> {
        let shard = self.inner.home_shard(key);
        self.log_to(shard, WalOp::Insert(key.to_vec()))?;
        let result = self.inner.insert_bytes(key);
        self.maybe_snapshot()?;
        result.map_err(DurableError::Filter)
    }

    /// Logs to the key's home-shard WAL, then applies.
    pub fn remove_bytes(&mut self, key: &[u8]) -> Result<(), DurableError> {
        let shard = self.inner.home_shard(key);
        self.log_to(shard, WalOp::Remove(key.to_vec()))?;
        let result = self.inner.remove_bytes(key);
        self.maybe_snapshot()?;
        result.map_err(DurableError::Filter)
    }

    /// Logs the batch as one frame **per touched shard** (each shard's
    /// sub-batch replays all-or-nothing into that shard, preserving
    /// in-shard batch order), then applies through the fused pipeline.
    pub fn insert_batch_bytes(
        &mut self,
        keys: &[&[u8]],
    ) -> Result<Vec<Result<(), mpcbf_core::FilterError>>, DurableError> {
        self.log_batch(keys, true)?;
        let results = self.inner.insert_batch_bytes(keys);
        self.maybe_snapshot()?;
        Ok(results)
    }

    /// Batch remove twin of [`DurableShardedMpcbf::insert_batch_bytes`].
    pub fn remove_batch_bytes(
        &mut self,
        keys: &[&[u8]],
    ) -> Result<Vec<Result<(), mpcbf_core::FilterError>>, DurableError> {
        self.log_batch(keys, false)?;
        let results = self.inner.remove_batch_bytes(keys);
        self.maybe_snapshot()?;
        Ok(results)
    }

    fn log_batch(&mut self, keys: &[&[u8]], insert: bool) -> Result<(), DurableError> {
        let mut per_shard: Vec<Vec<Vec<u8>>> = vec![Vec::new(); self.wals.len()];
        for key in keys {
            per_shard[self.inner.home_shard(key)].push(key.to_vec());
        }
        for (shard, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let op = if insert {
                WalOp::InsertBatch(group)
            } else {
                WalOp::RemoveBatch(group)
            };
            self.log_to(shard, op)?;
        }
        Ok(())
    }

    /// Unlogged read.
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        self.inner.contains_bytes(key)
    }

    /// Forces every shard's WAL to disk.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        for wal in &mut self.wals {
            wal.sync()?;
        }
        Ok(())
    }

    /// Shutdown flush — every acknowledged op durable before a clean
    /// stop. Alias of [`DurableShardedMpcbf::sync`], named for symmetry
    /// with [`crate::DurableFilter::flush`].
    pub fn flush(&mut self) -> Result<(), DurableError> {
        self.sync()
    }

    /// Decomposes the single-writer wrapper into its parts so a server
    /// can own each shard's WAL (plus its sequence counter) on that
    /// shard's worker thread while sharing the `&self`-concurrent filter
    /// across connections. The [`SnapshotStore`] keeps writing envelopes
    /// ([`encode_envelope`]) that [`DurableShardedMpcbf::open_or_recover`]
    /// reads back, so service checkpoints and library recovery stay one
    /// format.
    pub fn into_service_parts(self) -> (ShardedMpcbf<u64, H>, Vec<Wal>, Vec<u64>, SnapshotStore) {
        (self.inner, self.wals, self.seqs, self.snapshots)
    }

    /// Whole-filter snapshot: syncs every WAL, publishes the envelope
    /// (per-shard seqs + filter image) atomically, then rotates and
    /// purges every shard's log.
    pub fn snapshot(&mut self) -> Result<(), DurableError> {
        self.sync()?;
        let envelope = encode_envelope(&self.seqs, &self.inner.encode());
        let snap_seq = self.seqs.iter().copied().max().unwrap_or(0);
        self.snapshots.write(snap_seq, &envelope)?;
        for (shard, wal) in self.wals.iter_mut().enumerate() {
            wal.rotate(self.seqs[shard] + 1)?;
            wal.purge_below(self.seqs[shard] + 1)?;
        }
        self.snapshots.purge_below(snap_seq)?;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

/// Replay twin of the live entry points, over the `&self` sharded API.
fn apply_shard_op<H: Hasher128>(filter: &ShardedMpcbf<u64, H>, op: &WalOp) {
    match op {
        WalOp::Insert(key) => {
            let _ = filter.insert_bytes(key);
        }
        WalOp::Remove(key) => {
            let _ = filter.remove_bytes(key);
        }
        WalOp::InsertBatch(keys) => {
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let _ = filter.insert_batch_bytes(&views);
        }
        WalOp::RemoveBatch(keys) => {
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let _ = filter.remove_batch_bytes(&views);
        }
        // Structural events belong to the elastic replay path
        // (`elastic::apply_elastic_op`); the fixed-size sharded pool has
        // no generations to scale or compact.
        WalOp::ScaleUp { .. } | WalOp::Compact => {}
    }
}

/// Re-exported for the envelope tests.
#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::MpcbfConfig;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mpcbf-dsh-{tag}-{}-{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn filter() -> ShardedMpcbf<u64> {
        let c = MpcbfConfig::builder()
            .memory_bits(500_000)
            .expected_items(5_000)
            .hashes(3)
            .seed(21)
            .build()
            .unwrap();
        ShardedMpcbf::new(c, 8)
    }

    #[test]
    fn envelope_roundtrip_and_rejection() {
        let seqs = vec![3, 0, 77, 12];
        let image = vec![9u8; 200];
        let env = encode_envelope(&seqs, &image);
        let (dseqs, dimage) = decode_envelope(&env).unwrap();
        assert_eq!(dseqs, seqs);
        assert_eq!(dimage, &image[..]);
        for pos in 0..env.len() {
            let mut corrupt = env.clone();
            corrupt[pos] ^= 0x20;
            assert!(decode_envelope(&corrupt).is_none(), "flip at {pos}");
        }
        for cut in 0..env.len() {
            assert!(decode_envelope(&env[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn clean_restart_recovers_bit_exact_in_parallel() {
        let dir = scratch_dir("clean");
        let opts = DurabilityOptions::new(&dir);
        let mut durable = DurableShardedMpcbf::<Murmur3>::create(filter(), opts.clone()).unwrap();
        let keys: Vec<Vec<u8>> = (0..2_000u64).map(|i| i.to_le_bytes().to_vec()).collect();
        for (i, key) in keys.iter().enumerate() {
            if i % 3 == 0 {
                durable.insert_bytes(key).unwrap();
            }
        }
        let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        durable.insert_batch_bytes(&views[..500]).unwrap();
        durable.remove_batch_bytes(&views[..100]).unwrap();
        let reference: Vec<Vec<u64>> = (0..durable.inner().shard_count())
            .map(|s| durable.inner().shard_raw_words(s))
            .collect();
        drop(durable); // "crash" without snapshotting the tail

        let (recovered, report) =
            DurableShardedMpcbf::<Murmur3>::open_or_recover(opts, filter).unwrap();
        assert!(report.scrub_clean, "scrub must pass: {report}");
        assert!(report.records_replayed > 0);
        for (s, words) in reference.iter().enumerate() {
            assert_eq!(
                &recovered.inner().shard_raw_words(s),
                words,
                "shard {s} not bit-identical"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_all_shard_logs() {
        let dir = scratch_dir("snap");
        let opts = DurabilityOptions::new(&dir);
        let mut durable = DurableShardedMpcbf::<Murmur3>::create(filter(), opts.clone()).unwrap();
        for i in 0..1_000u64 {
            durable.insert_bytes(&i.to_le_bytes()).unwrap();
        }
        durable.snapshot().unwrap();
        for i in 1_000..1_200u64 {
            durable.insert_bytes(&i.to_le_bytes()).unwrap();
        }
        let reference: Vec<Vec<u64>> = (0..durable.inner().shard_count())
            .map(|s| durable.inner().shard_raw_words(s))
            .collect();
        drop(durable);

        let (recovered, report) =
            DurableShardedMpcbf::<Murmur3>::open_or_recover(opts, filter).unwrap();
        assert!(report.snapshot_seq.is_some(), "snapshot must be the base");
        assert!(
            report.records_replayed <= 200,
            "snapshot must bound the replay: {}",
            report.records_replayed
        );
        for (s, words) in reference.iter().enumerate() {
            assert_eq!(&recovered.inner().shard_raw_words(s), words, "shard {s}");
        }
        for i in 0..1_200u64 {
            assert!(recovered.contains_bytes(&i.to_le_bytes()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
