//! Segmented, CRC-framed write-ahead log.
//!
//! A log is a directory of segment files named `{prefix}-{firstseq}.wal`
//! where `firstseq` is the sequence number of the first record the
//! segment may hold. Each segment starts with an 8-byte header (magic +
//! version) followed by frames in [`crate::record`]'s format. Appends go
//! to the newest segment; when it exceeds the configured size the log
//! rotates to a fresh one.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput: `Always` syncs on
//! every append (acknowledged ⟹ durable — the only policy under which
//! the kill-point drills can demand bit-exact recovery of every ack),
//! `EveryN` syncs once per `n` appends, `Interval` at most once per
//! period. An unsynced acknowledged op can be lost to a crash under the
//! relaxed policies; it can never be *torn into view* — a partially
//! written frame fails its CRC and is truncated on recovery.
//!
//! # Recovery scan
//!
//! [`Wal::scan`] reads segments in order, validating every frame. The
//! first invalid frame ends the scan: in repair mode the segment is
//! physically truncated at the frame boundary and any later segments
//! are deleted (they are unreachable past a hole in the sequence), with
//! every amputation reported. Sequence numbers must strictly increase
//! across the whole scan; a regression is treated as corruption at that
//! frame.

use crate::error::DurableError;
use crate::kill::{KillSite, KillSwitch};
use crate::record::{decode_frame, encode_frame, FrameError, WalRecord};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Segment header: magic, format version, reserved padding.
pub const SEGMENT_HEADER: [u8; 8] = *b"MPWL\x01\0\0\0";

/// When the log calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: an acknowledged op is durable.
    Always,
    /// Sync once per `n` appends (and on rotation/snapshot).
    EveryN(u32),
    /// Sync at most once per interval (and on rotation/snapshot).
    Interval(Duration),
}

impl FsyncPolicy {
    /// Short stable name for reports and benchmarks.
    pub fn name(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every-{n}"),
            FsyncPolicy::Interval(d) => format!("interval-{}us", d.as_micros()),
        }
    }
}

/// A torn or corrupt WAL tail found (and amputated) during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The WAL prefix the damage was found under (per-shard logs).
    pub wal: String,
    /// First sequence number of the damaged segment.
    pub segment_first_seq: u64,
    /// Byte offset of the first invalid frame.
    pub offset: u64,
    /// Bytes cut from that segment.
    pub bytes_dropped: u64,
    /// Why the frame was rejected.
    pub reason: String,
}

/// What a recovery scan saw.
#[derive(Debug, Clone, Default)]
pub struct WalScan {
    /// Valid records decoded (all segments).
    pub records: u64,
    /// Damage found at the tail, if any.
    pub torn: Option<TornTail>,
    /// Whole segments deleted because they sat past the damage.
    pub segments_dropped: u64,
    /// Total bytes removed (truncation + dropped segments).
    pub bytes_truncated: u64,
    /// Highest sequence number scanned (0 when the log is empty).
    pub last_seq: u64,
}

struct ActiveSegment {
    file: File,
    bytes: u64,
}

/// An append-only, segmented WAL bound to one directory and prefix.
pub struct Wal {
    dir: PathBuf,
    prefix: String,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    kill: KillSwitch,
    active: Option<ActiveSegment>,
    appends_since_sync: u32,
    last_sync: Instant,
}

fn segment_name(prefix: &str, first_seq: u64) -> String {
    format!("{prefix}-{first_seq:020}.wal")
}

impl Wal {
    /// Opens a log handle over `dir` with the given file-name prefix.
    /// No segment is created until [`Wal::rotate`] or the first append.
    pub fn new(
        dir: &Path,
        prefix: &str,
        fsync: FsyncPolicy,
        segment_bytes: u64,
        kill: KillSwitch,
    ) -> Result<Self, DurableError> {
        fs::create_dir_all(dir).map_err(|e| DurableError::io("create wal dir", e))?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            fsync,
            segment_bytes: segment_bytes.max(SEGMENT_HEADER.len() as u64 + 1),
            kill,
            active: None,
            appends_since_sync: 0,
            last_sync: Instant::now(),
        })
    }

    /// All segment files for `prefix` in `dir`, sorted by first seq.
    pub fn segment_paths(dir: &Path, prefix: &str) -> Result<Vec<(u64, PathBuf)>, DurableError> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(DurableError::io("list wal dir", e)),
        };
        let lead = format!("{prefix}-");
        for entry in entries {
            let entry = entry.map_err(|e| DurableError::io("list wal dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(&lead)
                .and_then(|s| s.strip_suffix(".wal"))
            else {
                continue;
            };
            if let Ok(first_seq) = stem.parse::<u64>() {
                out.push((first_seq, entry.path()));
            }
        }
        out.sort_unstable_by_key(|&(seq, _)| seq);
        Ok(out)
    }

    /// Seals the current segment (sync + close) and starts a fresh one
    /// whose name records `first_seq`.
    pub fn rotate(&mut self, first_seq: u64) -> Result<(), DurableError> {
        self.sync()?;
        self.active = None;
        let path = self.dir.join(segment_name(&self.prefix, first_seq));
        let mut file = match OpenOptions::new().create_new(true).write(true).open(&path) {
            Ok(file) => file,
            // A crash can land between a rotation and its first append;
            // recovery then re-rotates to the same first_seq. The scan
            // has already proven that segment holds no record past
            // last_seq (a valid one would have advanced last_seq), so
            // whatever is in it — a bare header, or a tail the repair
            // already amputated — is dead weight: reclaim it wholesale.
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| DurableError::io("reopen wal segment", e))?;
                file.set_len(0)
                    .map_err(|e| DurableError::io("reclaim wal segment", e))?;
                file
            }
            Err(e) => return Err(DurableError::io("create wal segment", e)),
        };
        file.write_all(&SEGMENT_HEADER)
            .map_err(|e| DurableError::io("write wal header", e))?;
        file.sync_data()
            .map_err(|e| DurableError::io("sync wal header", e))?;
        sync_dir(&self.dir)?;
        self.active = Some(ActiveSegment {
            file,
            bytes: SEGMENT_HEADER.len() as u64,
        });
        Ok(())
    }

    /// Appends one record, honoring the rotation size and fsync policy.
    ///
    /// Under an armed [`KillSite::WalAppend`] the frame is cut short at
    /// the seeded byte budget — the torn bytes land in the file, exactly
    /// as an OS crash mid-`write` would leave them — and the call fails
    /// with [`DurableError::Killed`].
    pub fn append(&mut self, record: &WalRecord) -> Result<(), DurableError> {
        let frame = encode_frame(record);
        let needs_rotation = match &self.active {
            None => true,
            Some(seg) => {
                seg.bytes > SEGMENT_HEADER.len() as u64
                    && seg.bytes + frame.len() as u64 > self.segment_bytes
            }
        };
        if needs_rotation {
            self.rotate(record.seq)?;
        }
        let seg = self.active.as_mut().expect("rotation populated active");
        if let Some(budget) = self.kill.write_budget(KillSite::WalAppend) {
            let cut = (budget as usize).min(frame.len());
            seg.file
                .write_all(&frame[..cut])
                .map_err(|e| DurableError::io("append wal frame", e))?;
            // A crashed process never gets to buffer-flush; sync what the
            // OS already has so the drill sees a deterministic torn tail.
            let _ = seg.file.sync_data();
            return Err(DurableError::Killed(KillSite::WalAppend));
        }
        seg.file
            .write_all(&frame)
            .map_err(|e| DurableError::io("append wal frame", e))?;
        seg.bytes += frame.len() as u64;
        self.appends_since_sync += 1;
        let due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            FsyncPolicy::Interval(d) => self.last_sync.elapsed() >= d,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends accepted since the last fsync — frames the OS has but the
    /// disk may not. Non-zero only under the relaxed fsync policies.
    pub fn pending_appends(&self) -> u32 {
        self.appends_since_sync
    }

    /// Forces everything appended so far onto disk.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if let Some(site) = self.kill.check(KillSite::WalFsync) {
            return Err(DurableError::Killed(site));
        }
        if let Some(seg) = &mut self.active {
            seg.file
                .sync_data()
                .map_err(|e| DurableError::io("fsync wal", e))?;
        }
        self.appends_since_sync = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Deletes every sealed segment strictly older than `first_seq`
    /// (the active segment created by the last rotation stays). Called
    /// after a snapshot has made those records redundant.
    pub fn purge_below(&mut self, first_seq: u64) -> Result<u64, DurableError> {
        let mut removed = 0;
        for (seq, path) in Self::segment_paths(&self.dir, &self.prefix)? {
            if seq >= first_seq {
                continue;
            }
            if let Some(site) = self.kill.check(KillSite::WalTruncate) {
                return Err(DurableError::Killed(site));
            }
            fs::remove_file(&path).map_err(|e| DurableError::io("purge wal segment", e))?;
            removed += 1;
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Reads and validates every record under `dir`/`prefix`, repairing
    /// damage in place: the first invalid frame truncates its segment at
    /// the frame boundary and deletes all later segments.
    pub fn scan(dir: &Path, prefix: &str) -> Result<(Vec<WalRecord>, WalScan), DurableError> {
        let mut records = Vec::new();
        let mut scan = WalScan::default();
        let segments = Self::segment_paths(dir, prefix)?;
        let mut stop_at: Option<usize> = None;
        'segments: for (idx, (first_seq, path)) in segments.iter().enumerate() {
            let data = fs::read(path).map_err(|e| DurableError::io("read wal segment", e))?;
            if data.is_empty() {
                // A crash between segment creation and the header write
                // leaves a zero-length file: an empty log, not damage.
                continue;
            }
            if data.len() < SEGMENT_HEADER.len() || data[..SEGMENT_HEADER.len()] != SEGMENT_HEADER {
                truncate_segment(
                    path,
                    0,
                    &data,
                    *first_seq,
                    prefix,
                    "bad segment header",
                    &mut scan,
                )?;
                stop_at = Some(idx);
                break 'segments;
            }
            let mut pos = SEGMENT_HEADER.len();
            while pos < data.len() {
                match decode_frame(&data[pos..]) {
                    Ok((record, consumed)) => {
                        if record.seq <= scan.last_seq && scan.records > 0 {
                            truncate_segment(
                                path,
                                pos as u64,
                                &data,
                                *first_seq,
                                prefix,
                                "sequence regression",
                                &mut scan,
                            )?;
                            stop_at = Some(idx);
                            break 'segments;
                        }
                        scan.last_seq = record.seq;
                        scan.records += 1;
                        records.push(record);
                        pos += consumed;
                    }
                    Err(err) => {
                        let reason = frame_error_reason(&err);
                        truncate_segment(
                            path, pos as u64, &data, *first_seq, prefix, reason, &mut scan,
                        )?;
                        stop_at = Some(idx);
                        break 'segments;
                    }
                }
            }
        }
        if let Some(bad_idx) = stop_at {
            for (_, path) in &segments[bad_idx + 1..] {
                let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(path).map_err(|e| DurableError::io("drop wal segment", e))?;
                scan.segments_dropped += 1;
                scan.bytes_truncated += len;
            }
        }
        Ok((records, scan))
    }
}

impl Drop for Wal {
    /// Best-effort shutdown flush. Under `EveryN`/`Interval` a clean drop
    /// would otherwise leave acknowledged frames only in the page cache,
    /// where a machine failure after process exit could still lose them.
    /// Deliberately bypasses the [`KillSwitch`]: a drill's simulated crash
    /// abandons the writer *after* its kill has fired, and the drop must
    /// not consume a still-armed charge meant for another site.
    fn drop(&mut self) {
        if self.appends_since_sync > 0 {
            if let Some(seg) = &mut self.active {
                let _ = seg.file.sync_data();
            }
        }
    }
}

fn frame_error_reason(err: &FrameError) -> &'static str {
    match err {
        FrameError::TornTail { .. } => "torn frame",
        FrameError::BadLength(_) => "bad frame length",
        FrameError::BadKind(_) => "bad op kind",
        FrameError::ChecksumMismatch { .. } => "frame CRC mismatch",
        FrameError::DigestMismatch { .. } => "key digest mismatch",
        FrameError::BadPayload(_) => "bad frame payload",
    }
}

fn truncate_segment(
    path: &Path,
    offset: u64,
    data: &[u8],
    first_seq: u64,
    prefix: &str,
    reason: &str,
    scan: &mut WalScan,
) -> Result<(), DurableError> {
    let dropped = data.len() as u64 - offset;
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| DurableError::io("open wal for repair", e))?;
    file.set_len(offset)
        .map_err(|e| DurableError::io("truncate wal tail", e))?;
    file.sync_data()
        .map_err(|e| DurableError::io("sync repaired wal", e))?;
    scan.torn = Some(TornTail {
        wal: prefix.to_string(),
        segment_first_seq: first_seq,
        offset,
        bytes_dropped: dropped,
        reason: reason.to_string(),
    });
    scan.bytes_truncated += dropped;
    Ok(())
}

/// Fsyncs a directory so renames/creates/deletes inside it are durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), DurableError> {
    // Windows cannot open directories for sync; durability of the rename
    // is best-effort there. On unix this is the real barrier.
    match File::open(dir) {
        Ok(f) => f.sync_data().map_err(|e| DurableError::io("fsync dir", e)),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalOp;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mpcbf-wal-{tag}-{}-{id}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Insert(seq.to_le_bytes().to_vec()),
        }
    }

    #[test]
    fn append_scan_roundtrip_across_rotations() {
        let dir = scratch_dir("roundtrip");
        let mut wal = Wal::new(&dir, "wal", FsyncPolicy::Always, 256, KillSwitch::new()).unwrap();
        wal.rotate(1).unwrap();
        for seq in 1..=50 {
            wal.append(&rec(seq)).unwrap();
        }
        assert!(
            Wal::segment_paths(&dir, "wal").unwrap().len() > 1,
            "256-byte segments must rotate"
        );
        let (records, scan) = Wal::scan(&dir, "wal").unwrap();
        assert_eq!(records.len(), 50);
        assert_eq!(scan.records, 50);
        assert_eq!(scan.last_seq, 50);
        assert!(scan.torn.is_none());
        assert_eq!(records, (1..=50).map(rec).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = scratch_dir("torn");
        let mut wal =
            Wal::new(&dir, "wal", FsyncPolicy::Always, 1 << 20, KillSwitch::new()).unwrap();
        wal.rotate(1).unwrap();
        for seq in 1..=10 {
            wal.append(&rec(seq)).unwrap();
        }
        drop(wal);
        // Tear the last frame by cutting 3 bytes off the file.
        let (_, path) = Wal::segment_paths(&dir, "wal").unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (records, scan) = Wal::scan(&dir, "wal").unwrap();
        assert_eq!(records.len(), 9, "torn record must not replay");
        let torn = scan.torn.expect("tear must be reported");
        assert!(torn.bytes_dropped > 0);
        // The repair is physical: a second scan is clean.
        let (records2, scan2) = Wal::scan(&dir, "wal").unwrap();
        assert_eq!(records2.len(), 9);
        assert!(scan2.torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_past_damage_are_dropped() {
        let dir = scratch_dir("drop");
        let mut wal = Wal::new(&dir, "wal", FsyncPolicy::Always, 128, KillSwitch::new()).unwrap();
        wal.rotate(1).unwrap();
        for seq in 1..=40 {
            wal.append(&rec(seq)).unwrap();
        }
        drop(wal);
        let segments = Wal::segment_paths(&dir, "wal").unwrap();
        assert!(segments.len() >= 3);
        // Corrupt a frame byte in the middle segment.
        let (_, victim) = &segments[1];
        let mut data = fs::read(victim).unwrap();
        let at = SEGMENT_HEADER.len() + 6;
        data[at] ^= 0xFF;
        fs::write(victim, &data).unwrap();
        let (records, scan) = Wal::scan(&dir, "wal").unwrap();
        assert!(scan.torn.is_some());
        assert!(scan.segments_dropped >= 1, "later segments must drop");
        // Only the first segment's records survive, in order.
        let first_count = records.len() as u64;
        assert!(first_count < 40);
        assert_eq!(
            records,
            (1..=first_count).map(rec).collect::<Vec<_>>(),
            "surviving prefix must be exactly the leading records"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn purge_keeps_the_active_segment() {
        let dir = scratch_dir("purge");
        let mut wal = Wal::new(&dir, "wal", FsyncPolicy::Always, 128, KillSwitch::new()).unwrap();
        wal.rotate(1).unwrap();
        for seq in 1..=30 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.rotate(31).unwrap();
        let removed = wal.purge_below(31).unwrap();
        assert!(removed >= 1);
        let left = Wal::segment_paths(&dir, "wal").unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, 31);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotate_reclaims_a_preexisting_empty_segment() {
        // Crash right after a rotation: the new segment exists with only
        // its header. Recovery re-rotates to the same first_seq and must
        // reclaim the file instead of failing on create_new.
        let dir = scratch_dir("rerotate");
        let mut wal =
            Wal::new(&dir, "wal", FsyncPolicy::Always, 1 << 20, KillSwitch::new()).unwrap();
        wal.rotate(1).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.rotate(2).unwrap(); // segment 2 created, never appended to
        drop(wal); // crash

        let mut wal2 =
            Wal::new(&dir, "wal", FsyncPolicy::Always, 1 << 20, KillSwitch::new()).unwrap();
        wal2.rotate(2)
            .expect("re-rotation must reclaim the segment");
        wal2.append(&rec(2)).unwrap();
        drop(wal2);
        let (records, scan) = Wal::scan(&dir, "wal").unwrap();
        assert_eq!(records, vec![rec(1), rec(2)]);
        assert!(scan.torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn relaxed_policies_track_and_flush_pending_appends() {
        let dir = scratch_dir("pending");
        let mut wal = Wal::new(
            &dir,
            "wal",
            FsyncPolicy::EveryN(1_000),
            1 << 20,
            KillSwitch::new(),
        )
        .unwrap();
        wal.rotate(1).unwrap();
        for seq in 1..=5 {
            wal.append(&rec(seq)).unwrap();
        }
        assert_eq!(
            wal.pending_appends(),
            5,
            "EveryN(1000) must not have synced"
        );
        wal.sync().unwrap();
        assert_eq!(wal.pending_appends(), 0, "explicit flush clears the debt");
        wal.append(&rec(6)).unwrap();
        assert_eq!(wal.pending_appends(), 1);
        drop(wal); // Drop syncs the tail best-effort; nothing to assert
                   // in-process, but the scan below must see every frame.
        let (records, scan) = Wal::scan(&dir, "wal").unwrap();
        assert_eq!(records.len(), 6);
        assert!(scan.torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_mid_append_leaves_a_recoverable_torn_tail() {
        let dir = scratch_dir("kill");
        let kill = KillSwitch::new();
        let mut wal = Wal::new(&dir, "wal", FsyncPolicy::Always, 1 << 20, kill.clone()).unwrap();
        wal.rotate(1).unwrap();
        for seq in 1..=5 {
            wal.append(&rec(seq)).unwrap();
        }
        kill.arm(KillSite::WalAppend, 7);
        let err = wal.append(&rec(6)).unwrap_err();
        assert!(err.is_kill());
        drop(wal); // the "crash"
        let (records, scan) = Wal::scan(&dir, "wal").unwrap();
        assert_eq!(records.len(), 5, "the unacknowledged record is gone");
        assert!(scan.torn.is_some(), "7 stray bytes must be reported");
        fs::remove_dir_all(&dir).unwrap();
    }
}
