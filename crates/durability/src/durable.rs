//! `DurableFilter<F>`: log → apply → acknowledge.
//!
//! The wrapper owns a filter, a [`Wal`], and a [`SnapshotStore`]. Every
//! mutation is framed and appended to the WAL **before** it touches the
//! filter; only then is it applied and acknowledged to the caller.
//! Under [`FsyncPolicy::Always`] an acknowledged op is therefore
//! durable: recovery replays the snapshot plus the WAL and lands on a
//! state bit-identical to applying every acknowledged op in order.
//! (Refused ops — e.g. a word overflow — are logged too; replay re-runs
//! them and they deterministically refuse again, so logging the attempt
//! is harmless and keeps the ack protocol one-pass.)
//!
//! A batch is logged as **one frame**, so replay applies it through the
//! same all-or-nothing batch entry points the live path used; a frame
//! torn mid-batch fails its CRC and the whole group is dropped,
//! matching the filters' batch rollback semantics.

use crate::error::DurableError;
use crate::kill::KillSwitch;
use crate::record::{WalOp, WalRecord};
use crate::report::RecoveryReport;
use crate::snapshot::SnapshotStore;
use crate::wal::{FsyncPolicy, Wal};
use mpcbf_core::{Cbf, CodecError, CountingFilter, FilterError, Mpcbf, ResilientMpcbf};
use mpcbf_hash::Hasher128;
use std::path::PathBuf;
use std::time::Duration;

/// A filter the durability layer can snapshot and restore: codec image
/// in, codec image out, plus a post-recovery integrity cross-check.
pub trait DurableImage: Sized {
    /// Full-state image through the codec encode path.
    fn encode_image(&self) -> Vec<u8>;
    /// Rebuilds the filter from an image, validating everything.
    fn decode_image(buf: &[u8]) -> Result<Self, CodecError>;
    /// Post-recovery cross-check: structural verify plus a seal/scrub
    /// pass, proving the scrub machinery accepts the recovered image.
    fn verify_integrity(&self) -> bool;
}

impl<H: Hasher128> DurableImage for Mpcbf<u64, H> {
    fn encode_image(&self) -> Vec<u8> {
        self.encode()
    }
    fn decode_image(buf: &[u8]) -> Result<Self, CodecError> {
        Self::decode(buf)
    }
    fn verify_integrity(&self) -> bool {
        self.verify().is_ok() && self.scrub(&self.seal()).is_clean()
    }
}

impl<H: Hasher128> DurableImage for Cbf<H> {
    fn encode_image(&self) -> Vec<u8> {
        self.encode()
    }
    fn decode_image(buf: &[u8]) -> Result<Self, CodecError> {
        Self::decode(buf)
    }
    fn verify_integrity(&self) -> bool {
        self.verify().is_ok() && self.scrub(&self.seal()).is_clean()
    }
}

impl<H: Hasher128> DurableImage for ResilientMpcbf<H> {
    fn encode_image(&self) -> Vec<u8> {
        self.encode()
    }
    fn decode_image(buf: &[u8]) -> Result<Self, CodecError> {
        Self::decode(buf)
    }
    fn verify_integrity(&self) -> bool {
        self.verify().is_ok() && self.scrub(&self.seal()).is_clean()
    }
}

/// Where and how a durable filter persists.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding the WAL segments and snapshots.
    pub dir: PathBuf,
    /// When the WAL fsyncs (see the module docs trade-off).
    pub fsync: FsyncPolicy,
    /// Rotation threshold for WAL segments, in bytes.
    pub segment_bytes: u64,
    /// Automatic snapshot after this many logged records
    /// (`None`: only explicit [`DurableFilter::snapshot`] calls).
    pub snapshot_every: Option<u64>,
    /// Crash-injection switch (drills only; defaults unarmed).
    pub kill: KillSwitch,
}

impl DurabilityOptions {
    /// Defaults: always-fsync, 8 MiB segments, no automatic snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            snapshot_every: None,
            kill: KillSwitch::new(),
        }
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the WAL segment rotation size.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Enables automatic snapshots every `records` logged records.
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = Some(records.max(1));
        self
    }

    /// Installs a crash-injection switch (drills only).
    pub fn kill(mut self, kill: KillSwitch) -> Self {
        self.kill = kill;
        self
    }

    /// Convenience: fsync at most once per `interval`.
    pub fn fsync_interval(self, interval: Duration) -> Self {
        self.fsync(FsyncPolicy::Interval(interval))
    }
}

const WAL_PREFIX: &str = "wal";
const SNAP_PREFIX: &str = "snap";

/// Write-ahead-logged wrapper around any snapshot-capable counting
/// filter. See the module docs for the ack/durability contract.
pub struct DurableFilter<F> {
    inner: F,
    wal: Wal,
    snapshots: SnapshotStore,
    seq: u64,
    records_since_snapshot: u64,
    snapshot_every: Option<u64>,
}

impl<F: CountingFilter + DurableImage> DurableFilter<F> {
    /// Starts a fresh durable filter in `opts.dir`: publishes an initial
    /// snapshot of `inner` (so recovery never depends on reconstructing
    /// the configuration) and opens the first WAL segment.
    ///
    /// The directory must not already contain a durable filter — use
    /// [`DurableFilter::open_or_recover`] for that.
    pub fn create(inner: F, opts: DurabilityOptions) -> Result<Self, DurableError> {
        let wal = Wal::new(
            &opts.dir,
            WAL_PREFIX,
            opts.fsync,
            opts.segment_bytes,
            opts.kill.clone(),
        )?;
        let snapshots = SnapshotStore::new(&opts.dir, SNAP_PREFIX, opts.kill.clone())?;
        let mut filter = DurableFilter {
            inner,
            wal,
            snapshots,
            seq: 0,
            records_since_snapshot: 0,
            snapshot_every: opts.snapshot_every,
        };
        filter.snapshots.write(0, &filter.inner.encode_image())?;
        filter.wal.rotate(1)?;
        Ok(filter)
    }

    /// Loads the latest valid snapshot, replays the WAL past it
    /// (repairing torn tails in place), cross-checks the result with
    /// the scrub machinery, and reopens for writing. `fallback` builds
    /// the filter when no usable snapshot exists (fresh directory, or
    /// every snapshot corrupt — the WAL then replays from seq 1).
    pub fn open_or_recover(
        opts: DurabilityOptions,
        fallback: impl FnOnce() -> F,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let snapshots = SnapshotStore::new(&opts.dir, SNAP_PREFIX, opts.kill.clone())?;
        let mut report = RecoveryReport::default();
        let (base, corrupt) = snapshots.load_latest_with(|bytes| F::decode_image(bytes).ok())?;
        report.snapshots_corrupt = corrupt;
        let (mut inner, snap_seq) = match base {
            Some((seq, filter)) => {
                report.snapshot_seq = Some(seq);
                (filter, seq)
            }
            None => (fallback(), 0),
        };

        let (records, scan) = Wal::scan(&opts.dir, WAL_PREFIX)?;
        report.records_scanned = scan.records;
        report.torn_tails.extend(scan.torn);
        report.segments_dropped += scan.segments_dropped;
        report.bytes_truncated += scan.bytes_truncated;
        let mut last_seq = snap_seq;
        for record in &records {
            if record.seq <= snap_seq {
                continue;
            }
            report.records_replayed += 1;
            report.ops_replayed += record.op.op_count();
            apply_op(&mut inner, &record.op);
            last_seq = record.seq;
        }
        report.last_seq = last_seq;
        report.scrub_clean = inner.verify_integrity();

        let mut wal = Wal::new(
            &opts.dir,
            WAL_PREFIX,
            opts.fsync,
            opts.segment_bytes,
            opts.kill.clone(),
        )?;
        wal.rotate(last_seq + 1)?;
        Ok((
            DurableFilter {
                inner,
                wal,
                snapshots,
                seq: last_seq,
                records_since_snapshot: 0,
                snapshot_every: opts.snapshot_every,
            },
            report,
        ))
    }

    /// The wrapped filter (read-only; mutations must go through the
    /// logged entry points).
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Last assigned WAL sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn log(&mut self, op: WalOp) -> Result<(), DurableError> {
        let seq = self.seq + 1;
        self.wal.append(&WalRecord { seq, op })?;
        self.seq = seq;
        self.records_since_snapshot += 1;
        Ok(())
    }

    fn maybe_snapshot(&mut self) -> Result<(), DurableError> {
        if let Some(every) = self.snapshot_every {
            if self.records_since_snapshot >= every {
                self.snapshot()?;
            }
        }
        Ok(())
    }

    /// Logs then applies one insert. An `Err(Filter(_))` means the
    /// filter refused (the refusal is deterministic and replays as such).
    pub fn insert_bytes(&mut self, key: &[u8]) -> Result<(), DurableError> {
        self.log(WalOp::Insert(key.to_vec()))?;
        let result = self.inner.insert_bytes_cost(key);
        self.maybe_snapshot()?;
        result.map(|_| ()).map_err(DurableError::Filter)
    }

    /// Logs then applies one remove.
    pub fn remove_bytes(&mut self, key: &[u8]) -> Result<(), DurableError> {
        self.log(WalOp::Remove(key.to_vec()))?;
        let result = self.inner.remove_bytes_cost(key);
        self.maybe_snapshot()?;
        result.map(|_| ()).map_err(DurableError::Filter)
    }

    /// Logs the whole batch as one frame, then applies it through the
    /// filter's batch pipeline (identical rollback semantics on replay).
    pub fn insert_batch_bytes(
        &mut self,
        keys: &[&[u8]],
    ) -> Result<Vec<Result<(), FilterError>>, DurableError> {
        self.log(WalOp::InsertBatch(
            keys.iter().map(|k| k.to_vec()).collect(),
        ))?;
        let (results, _) = self.inner.insert_batch_cost(keys);
        self.maybe_snapshot()?;
        Ok(results)
    }

    /// Batch remove twin of [`DurableFilter::insert_batch_bytes`].
    pub fn remove_batch_bytes(
        &mut self,
        keys: &[&[u8]],
    ) -> Result<Vec<Result<(), FilterError>>, DurableError> {
        self.log(WalOp::RemoveBatch(
            keys.iter().map(|k| k.to_vec()).collect(),
        ))?;
        let (results, _) = self.inner.remove_batch_cost(keys);
        self.maybe_snapshot()?;
        Ok(results)
    }

    /// Reads are unlogged and hit the filter directly.
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        self.inner.contains_bytes_cost(key).0
    }

    /// Forces the WAL to disk (useful under relaxed fsync policies).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.wal.sync()
    }

    /// Shutdown flush: makes every acknowledged op durable before a clean
    /// stop. Identical to [`DurableFilter::sync`]; the [`Wal`] also
    /// fsyncs unsynced frames from `Drop` best-effort, but an explicit
    /// `flush()` is the only form that can report an error.
    pub fn flush(&mut self) -> Result<(), DurableError> {
        self.sync()
    }

    /// Takes a snapshot at the current sequence number and retires the
    /// WAL records it covers: sync WAL → publish image atomically →
    /// rotate to a fresh segment → purge sealed segments and old
    /// snapshots. A crash between any two steps recovers correctly —
    /// replay skips records at or below the published snapshot's seq,
    /// and an unpublished `.tmp` image is invisible.
    pub fn snapshot(&mut self) -> Result<(), DurableError> {
        self.wal.sync()?;
        let image = self.inner.encode_image();
        self.snapshots.write(self.seq, &image)?;
        self.wal.rotate(self.seq + 1)?;
        self.wal.purge_below(self.seq + 1)?;
        self.snapshots.purge_below(self.seq)?;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

/// Replays one logged op against the filter, mirroring the live path's
/// entry points exactly. Refusals are deterministic re-refusals and are
/// intentionally discarded.
pub(crate) fn apply_op<F: CountingFilter>(filter: &mut F, op: &WalOp) {
    match op {
        WalOp::Insert(key) => {
            let _ = filter.insert_bytes_cost(key);
        }
        WalOp::Remove(key) => {
            let _ = filter.remove_bytes_cost(key);
        }
        WalOp::InsertBatch(keys) => {
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let _ = filter.insert_batch_cost(&views);
        }
        WalOp::RemoveBatch(keys) => {
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let _ = filter.remove_batch_cost(&views);
        }
        // Structural events belong to the elastic replay path
        // (`elastic::apply_elastic_op`); a fixed-size filter has no
        // generations to scale or compact.
        WalOp::ScaleUp { .. } | WalOp::Compact => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::MpcbfConfig;
    use mpcbf_hash::Murmur3;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mpcbf-dur-{tag}-{}-{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn filter() -> Mpcbf<u64, Murmur3> {
        let c = MpcbfConfig::builder()
            .memory_bits(200_000)
            .expected_items(2_000)
            .hashes(3)
            .seed(11)
            .build()
            .unwrap();
        Mpcbf::new(c)
    }

    /// Satellite regression: under the relaxed fsync policies a graceful
    /// stop must lose nothing that was acknowledged — `flush()` (and the
    /// WAL's `Drop` sync behind it) closes the gap between "acked" and
    /// "on disk" before the process exits.
    #[test]
    fn graceful_stop_under_relaxed_fsync_loses_nothing() {
        for (tag, policy) in [
            ("everyn", FsyncPolicy::EveryN(10_000)),
            ("interval", FsyncPolicy::Interval(Duration::from_secs(3600))),
        ] {
            let dir = scratch_dir(tag);
            let opts = DurabilityOptions::new(&dir).fsync(policy);
            let mut durable = DurableFilter::create(filter(), opts.clone()).unwrap();
            // 123 is deliberately not a multiple of any sync cadence.
            for i in 0..123u64 {
                durable.insert_bytes(&i.to_le_bytes()).unwrap();
            }
            durable.flush().expect("shutdown flush");
            drop(durable); // clean stop

            let (recovered, report) = DurableFilter::open_or_recover(opts, filter).unwrap();
            assert_eq!(report.records_replayed, 123, "{tag}: acked frame lost");
            assert!(
                report.torn_tails.is_empty(),
                "{tag}: clean stop tore a frame"
            );
            for i in 0..123u64 {
                assert!(
                    recovered.contains_bytes(&i.to_le_bytes()),
                    "{tag}: acknowledged key {i} lost across a graceful stop"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
