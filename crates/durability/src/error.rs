//! Error type shared by the WAL, snapshot, and recovery paths.

use crate::kill::KillSite;
use mpcbf_core::{CodecError, FilterError};

/// Anything that can go wrong while logging, snapshotting, or
/// recovering a durable filter.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the durability layer was doing.
        context: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// An injected crash fired at this site (drills only; a production
    /// switch is never armed).
    Killed(KillSite),
    /// A snapshot image failed to decode.
    Image(CodecError),
    /// The wrapped filter refused the operation (e.g. word overflow).
    /// The op is already logged; replay re-refuses it deterministically.
    Filter(FilterError),
}

impl DurableError {
    pub(crate) fn io(context: &'static str, source: std::io::Error) -> Self {
        DurableError::Io { context, source }
    }

    /// True when the error is an injected crash.
    pub fn is_kill(&self) -> bool {
        matches!(self, DurableError::Killed(_))
    }
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io { context, source } => write!(f, "{context}: {source}"),
            DurableError::Killed(site) => write!(f, "injected crash at {site}"),
            DurableError::Image(e) => write!(f, "snapshot image: {e}"),
            DurableError::Filter(e) => write!(f, "filter refused: {e:?}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io { source, .. } => Some(source),
            DurableError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for DurableError {
    fn from(e: CodecError) -> Self {
        DurableError::Image(e)
    }
}

impl From<FilterError> for DurableError {
    fn from(e: FilterError) -> Self {
        DurableError::Filter(e)
    }
}
