//! Process-internal crash injection for durability drills.
//!
//! A real crash test would `kill -9` the process; that is slow, hard to
//! seed, and impossible to run thousands of times inside one test
//! binary. Instead every durability-critical syscall site consults a
//! [`KillSwitch`] first: when the switch is armed at that site it
//! "crashes" — the in-flight write is cut short at a seeded byte budget
//! and the operation returns [`DurableError::Killed`]. The caller then
//! abandons the writer state (as a crashed process would) and recovery
//! is exercised against exactly the bytes that made it to disk,
//! including torn frames at any byte offset.
//!
//! The switch is per-instance (an `Arc`), never global state: parallel
//! tests each hold their own switch and cannot interfere.

use std::sync::{Arc, Mutex};

/// A durability-critical site where an injected crash can land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KillSite {
    /// While appending a WAL frame (torn at a byte budget).
    WalAppend,
    /// Just before fsyncing the WAL (the frame is written, not synced).
    WalFsync,
    /// While writing the snapshot temp file (torn at a byte budget).
    SnapshotWrite,
    /// Between writing the snapshot temp file and renaming it live.
    SnapshotRename,
    /// While purging sealed WAL segments after a snapshot.
    WalTruncate,
}

impl KillSite {
    /// Every kill site, in drill order.
    pub const ALL: [KillSite; 5] = [
        KillSite::WalAppend,
        KillSite::WalFsync,
        KillSite::SnapshotWrite,
        KillSite::SnapshotRename,
        KillSite::WalTruncate,
    ];
}

impl std::fmt::Display for KillSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KillSite::WalAppend => "wal-append",
            KillSite::WalFsync => "wal-fsync",
            KillSite::SnapshotWrite => "snapshot-write",
            KillSite::SnapshotRename => "snapshot-rename",
            KillSite::WalTruncate => "wal-truncate",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Default)]
struct KillState {
    /// Armed site plus the byte budget for write sites (how many bytes
    /// of the in-flight write land on disk before the "crash").
    armed: Option<(KillSite, u64)>,
    fired: Option<KillSite>,
}

/// Shared, cloneable crash trigger consulted by the WAL and snapshot
/// writers. Unarmed switches cost one mutex lock per durability
/// syscall — negligible next to the syscall itself.
#[derive(Debug, Clone, Default)]
pub struct KillSwitch {
    inner: Arc<Mutex<KillState>>,
}

impl KillSwitch {
    /// A new, unarmed switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the switch: the next operation hitting `site` crashes.
    /// For the byte-budget sites ([`KillSite::WalAppend`],
    /// [`KillSite::SnapshotWrite`]) the first `byte_budget` bytes of the
    /// in-flight write still reach the file, producing a torn tail.
    pub fn arm(&self, site: KillSite, byte_budget: u64) {
        let mut s = self.inner.lock().expect("kill switch poisoned");
        s.armed = Some((site, byte_budget));
        s.fired = None;
    }

    /// Disarms without firing.
    pub fn disarm(&self) {
        self.inner.lock().expect("kill switch poisoned").armed = None;
    }

    /// The site that fired, if the switch has gone off.
    pub fn fired(&self) -> Option<KillSite> {
        self.inner.lock().expect("kill switch poisoned").fired
    }

    /// Fires if armed at `site` (non-write sites). Returns the site to
    /// signal the caller must abort as if the process died here.
    pub(crate) fn check(&self, site: KillSite) -> Option<KillSite> {
        let mut s = self.inner.lock().expect("kill switch poisoned");
        match s.armed {
            Some((armed, _)) if armed == site => {
                s.armed = None;
                s.fired = Some(site);
                Some(site)
            }
            _ => None,
        }
    }

    /// Fires if armed at a byte-budget `site`, returning the number of
    /// bytes the in-flight write is allowed to land before "crashing".
    pub(crate) fn write_budget(&self, site: KillSite) -> Option<u64> {
        let mut s = self.inner.lock().expect("kill switch poisoned");
        match s.armed {
            Some((armed, budget)) if armed == site => {
                s.armed = None;
                s.fired = Some(site);
                Some(budget)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_the_armed_site_only() {
        let k = KillSwitch::new();
        assert_eq!(k.check(KillSite::WalFsync), None);
        k.arm(KillSite::WalFsync, 0);
        assert_eq!(k.check(KillSite::WalAppend), None, "wrong site");
        assert_eq!(k.check(KillSite::WalFsync), Some(KillSite::WalFsync));
        assert_eq!(k.check(KillSite::WalFsync), None, "single-shot");
        assert_eq!(k.fired(), Some(KillSite::WalFsync));
    }

    #[test]
    fn write_budget_is_delivered() {
        let k = KillSwitch::new();
        k.arm(KillSite::WalAppend, 13);
        assert_eq!(k.write_budget(KillSite::SnapshotWrite), None);
        assert_eq!(k.write_budget(KillSite::WalAppend), Some(13));
        assert_eq!(k.write_budget(KillSite::WalAppend), None);
    }

    #[test]
    fn clones_share_state() {
        let k = KillSwitch::new();
        let k2 = k.clone();
        k.arm(KillSite::SnapshotRename, 0);
        assert_eq!(
            k2.check(KillSite::SnapshotRename),
            Some(KillSite::SnapshotRename)
        );
        assert_eq!(k.fired(), Some(KillSite::SnapshotRename));
    }
}
