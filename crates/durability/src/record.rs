//! WAL record framing: `{seq, op-kind, key-digest, payload, crc32}`.
//!
//! Every frame is independently verifiable:
//!
//! ```text
//! u32  body_len                  little-endian, length of body below
//! body:
//!   u64  seq                     monotone per log
//!   u8   kind                    1=insert 2=remove 3=insert-batch 4=remove-batch
//!   u64  key_digest              xxh64(payload, seed = seq)
//!   payload                      scalar: raw key bytes
//!                                batch:  u32 count, then per key u32 len + bytes
//! u32  crc32(body)               IEEE CRC-32 (same polynomial as the codec)
//! ```
//!
//! A batch is **one frame**: either the whole group replays or (if the
//! tail is torn anywhere inside it) none of it does, matching the
//! filters' all-or-nothing batch rollback semantics. The digest is
//! seeded with `seq`, so a frame spliced from another log position
//! fails validation even when its CRC is intact.
//!
//! [`decode_frame`] is total: any byte sequence yields `Ok` or a
//! [`FrameError`] — never a panic, never an allocation larger than the
//! input it was handed.

use mpcbf_core::codec::crc32;
use mpcbf_hash::xxhash::xxh64;

/// Fixed body bytes before the payload: seq (8) + kind (1) + digest (8).
const BODY_FIXED: usize = 17;
/// Hard ceiling on one frame's body. Large enough for any real batch,
/// small enough that a corrupt length field can't drive an allocation.
pub const MAX_FRAME_BODY: u32 = 1 << 26; // 64 MiB

const KIND_INSERT: u8 = 1;
const KIND_REMOVE: u8 = 2;
const KIND_INSERT_BATCH: u8 = 3;
const KIND_REMOVE_BATCH: u8 = 4;
const KIND_SCALE: u8 = 5;
const KIND_COMPACT: u8 = 6;

/// A logged filter mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// One key inserted.
    Insert(Vec<u8>),
    /// One key removed.
    Remove(Vec<u8>),
    /// A batch of keys inserted as one all-or-nothing frame.
    InsertBatch(Vec<Vec<u8>>),
    /// A batch of keys removed as one all-or-nothing frame.
    RemoveBatch(Vec<Vec<u8>>),
    /// An elastic filter opened a new generation with this sizing.
    /// Logged *before* the scale is applied, so replay re-applies the
    /// exact spec the live filter used. Non-elastic filters replay it as
    /// a no-op.
    ScaleUp {
        /// Memory budget of the new generation, in bits.
        memory_bits: u64,
        /// Expected element count the new generation is shaped for.
        expected_items: u64,
    },
    /// An elastic filter began compacting its sealed generations.
    /// Replay runs the whole compaction synchronously at this point, so
    /// a recovered stack is deterministic regardless of how far the live
    /// (batch-granular) migration had progressed before the crash.
    /// Non-elastic filters replay it as a no-op.
    Compact,
}

impl WalOp {
    fn kind(&self) -> u8 {
        match self {
            WalOp::Insert(_) => KIND_INSERT,
            WalOp::Remove(_) => KIND_REMOVE,
            WalOp::InsertBatch(_) => KIND_INSERT_BATCH,
            WalOp::RemoveBatch(_) => KIND_REMOVE_BATCH,
            WalOp::ScaleUp { .. } => KIND_SCALE,
            WalOp::Compact => KIND_COMPACT,
        }
    }

    /// Individual key operations this op applies (structural events
    /// apply none).
    pub fn op_count(&self) -> u64 {
        match self {
            WalOp::Insert(_) | WalOp::Remove(_) => 1,
            WalOp::InsertBatch(keys) | WalOp::RemoveBatch(keys) => keys.len() as u64,
            WalOp::ScaleUp { .. } | WalOp::Compact => 0,
        }
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            WalOp::Insert(key) | WalOp::Remove(key) => key.clone(),
            WalOp::InsertBatch(keys) | WalOp::RemoveBatch(keys) => {
                let mut out =
                    Vec::with_capacity(4 + keys.iter().map(|k| 4 + k.len()).sum::<usize>());
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    out.extend_from_slice(k);
                }
                out
            }
            WalOp::ScaleUp {
                memory_bits,
                expected_items,
            } => {
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&memory_bits.to_le_bytes());
                out.extend_from_slice(&expected_items.to_le_bytes());
                out
            }
            WalOp::Compact => Vec::new(),
        }
    }
}

/// One WAL entry: a sequence number and the operation it logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone position in the log; replay is ordered and deduplicated
    /// against the snapshot's sequence number by this field.
    pub seq: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends mid-frame — the classic torn tail.
    TornTail {
        /// Bytes available.
        have: usize,
        /// Bytes the frame claims to need.
        need: usize,
    },
    /// The length prefix is outside the legal range.
    BadLength(u32),
    /// Unknown op-kind byte.
    BadKind(u8),
    /// The body CRC does not match.
    ChecksumMismatch {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the body.
        computed: u32,
    },
    /// The key digest does not match the payload (splice detection).
    DigestMismatch {
        /// Digest stored in the frame.
        stored: u64,
        /// Digest computed from payload and seq.
        computed: u64,
    },
    /// The payload's internal structure is inconsistent.
    BadPayload(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TornTail { have, need } => {
                write!(f, "torn frame: {have} bytes present, {need} needed")
            }
            FrameError::BadLength(n) => write!(f, "frame length {n} out of range"),
            FrameError::BadKind(k) => write!(f, "unknown op kind {k}"),
            FrameError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "frame CRC mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            FrameError::DigestMismatch { stored, computed } => {
                write!(
                    f,
                    "key digest mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            FrameError::BadPayload(what) => write!(f, "bad frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one record into a self-contained frame.
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = record.op.payload();
    let digest = xxh64(&payload, record.seq);
    let body_len = BODY_FIXED + payload.len();
    let mut out = Vec::with_capacity(4 + body_len + 4);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&record.seq.to_le_bytes());
    out.push(record.op.kind());
    out.extend_from_slice(&digest.to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn read_u32(buf: &[u8], pos: usize) -> Option<u32> {
    buf.get(pos..pos + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

/// Decodes the frame starting at `buf[0]`, returning the record and the
/// total frame length consumed. Total over arbitrary input.
pub fn decode_frame(buf: &[u8]) -> Result<(WalRecord, usize), FrameError> {
    let Some(body_len) = read_u32(buf, 0) else {
        return Err(FrameError::TornTail {
            have: buf.len(),
            need: 4,
        });
    };
    if body_len < BODY_FIXED as u32 || body_len > MAX_FRAME_BODY {
        return Err(FrameError::BadLength(body_len));
    }
    let body_len = body_len as usize;
    let total = 4 + body_len + 4;
    if buf.len() < total {
        return Err(FrameError::TornTail {
            have: buf.len(),
            need: total,
        });
    }
    let body = &buf[4..4 + body_len];
    let stored_crc = read_u32(buf, 4 + body_len).expect("bounds checked");
    let computed_crc = crc32(body);
    if stored_crc != computed_crc {
        return Err(FrameError::ChecksumMismatch {
            stored: stored_crc,
            computed: computed_crc,
        });
    }
    let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    let kind = body[8];
    let stored_digest = u64::from_le_bytes(body[9..17].try_into().expect("8 bytes"));
    let payload = &body[BODY_FIXED..];
    let computed_digest = xxh64(payload, seq);
    if stored_digest != computed_digest {
        return Err(FrameError::DigestMismatch {
            stored: stored_digest,
            computed: computed_digest,
        });
    }
    let op = match kind {
        KIND_INSERT => WalOp::Insert(payload.to_vec()),
        KIND_REMOVE => WalOp::Remove(payload.to_vec()),
        KIND_INSERT_BATCH | KIND_REMOVE_BATCH => {
            let keys = decode_batch_payload(payload)?;
            if kind == KIND_INSERT_BATCH {
                WalOp::InsertBatch(keys)
            } else {
                WalOp::RemoveBatch(keys)
            }
        }
        KIND_SCALE => {
            if payload.len() != 16 {
                return Err(FrameError::BadPayload("scale payload size"));
            }
            WalOp::ScaleUp {
                memory_bits: u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")),
                expected_items: u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")),
            }
        }
        KIND_COMPACT => {
            if !payload.is_empty() {
                return Err(FrameError::BadPayload("compact payload must be empty"));
            }
            WalOp::Compact
        }
        other => return Err(FrameError::BadKind(other)),
    };
    Ok((WalRecord { seq, op }, total))
}

fn decode_batch_payload(payload: &[u8]) -> Result<Vec<Vec<u8>>, FrameError> {
    let Some(count) = read_u32(payload, 0) else {
        return Err(FrameError::BadPayload("batch count truncated"));
    };
    // Each key costs at least its 4-byte length prefix, so the payload
    // size bounds the plausible count before anything is allocated.
    if count as usize > payload.len() / 4 {
        return Err(FrameError::BadPayload("batch count exceeds payload"));
    }
    let mut keys = Vec::with_capacity(count as usize);
    let mut pos = 4usize;
    for _ in 0..count {
        let Some(len) = read_u32(payload, pos) else {
            return Err(FrameError::BadPayload("key length truncated"));
        };
        pos += 4;
        let end = pos
            .checked_add(len as usize)
            .ok_or(FrameError::BadPayload("key length overflows"))?;
        let Some(key) = payload.get(pos..end) else {
            return Err(FrameError::BadPayload("key bytes truncated"));
        };
        keys.push(key.to_vec());
        pos = end;
    }
    if pos != payload.len() {
        return Err(FrameError::BadPayload("trailing payload bytes"));
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                seq: 1,
                op: WalOp::Insert(b"alpha".to_vec()),
            },
            WalRecord {
                seq: 2,
                op: WalOp::Remove(vec![]),
            },
            WalRecord {
                seq: 3,
                op: WalOp::InsertBatch(vec![b"a".to_vec(), vec![], b"ccc".to_vec()]),
            },
            WalRecord {
                seq: u64::MAX,
                op: WalOp::RemoveBatch(vec![]),
            },
            WalRecord {
                seq: 4,
                op: WalOp::ScaleUp {
                    memory_bits: 1 << 20,
                    expected_items: 10_000,
                },
            },
            WalRecord {
                seq: 5,
                op: WalOp::Compact,
            },
        ]
    }

    #[test]
    fn structural_ops_apply_zero_key_ops() {
        assert_eq!(
            WalOp::ScaleUp {
                memory_bits: 1,
                expected_items: 1
            }
            .op_count(),
            0
        );
        assert_eq!(WalOp::Compact.op_count(), 0);
    }

    #[test]
    fn malformed_structural_payloads_are_rejected() {
        // A scale frame with a truncated payload, CRC/digest fixed up.
        let rec = WalRecord {
            seq: 7,
            op: WalOp::ScaleUp {
                memory_bits: 64,
                expected_items: 1,
            },
        };
        let frame = encode_frame(&rec);
        // Rebuild the frame with the payload cut to 8 bytes.
        let payload = &frame[4 + 17..4 + 17 + 8];
        let body_len = 17 + payload.len();
        let mut forged = Vec::new();
        forged.extend_from_slice(&(body_len as u32).to_le_bytes());
        forged.extend_from_slice(&7u64.to_le_bytes());
        forged.push(5); // KIND_SCALE
        forged.extend_from_slice(&mpcbf_hash::xxhash::xxh64(payload, 7).to_le_bytes());
        forged.extend_from_slice(payload);
        let crc = crc32(&forged[4..]);
        forged.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&forged),
            Err(FrameError::BadPayload(_))
        ));
    }

    #[test]
    fn roundtrip() {
        for rec in sample_records() {
            let frame = encode_frame(&rec);
            let (decoded, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(decoded, rec);
            assert_eq!(consumed, frame.len());
            // Decoding with trailing garbage consumes exactly one frame.
            let mut padded = frame.clone();
            padded.extend_from_slice(b"garbage");
            let (decoded, consumed) = decode_frame(&padded).unwrap();
            assert_eq!(decoded, rec);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let frame = encode_frame(&sample_records()[2]);
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::TornTail { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode_frame(&sample_records()[0]);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[byte] ^= 1 << bit;
                match decode_frame(&corrupt) {
                    Err(_) => {}
                    Ok((rec, _)) => {
                        panic!("flip at byte {byte} bit {bit} decoded silently: {rec:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn spliced_seq_is_rejected() {
        // Re-stamping a frame with a different seq must break the digest
        // even after the CRC is fixed up.
        let rec = WalRecord {
            seq: 9,
            op: WalOp::Insert(b"key".to_vec()),
        };
        let mut frame = encode_frame(&rec);
        frame[4..12].copy_from_slice(&10u64.to_le_bytes());
        let body_len = frame.len() - 8;
        let crc = crc32(&frame[4..4 + body_len]);
        let at = 4 + body_len;
        frame[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn crafted_lengths_cannot_allocate() {
        // Huge body length: bounded error.
        let mut frame = vec![0u8; 64];
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::BadLength(_))
        ));
        // Huge batch count inside a CRC-valid frame: bounded error.
        let rec = WalRecord {
            seq: 1,
            op: WalOp::InsertBatch(vec![b"x".to_vec()]),
        };
        let mut frame = encode_frame(&rec);
        // Overwrite the batch count (first payload u32) with a lie, re-CRC.
        let payload_at = 4 + 17;
        frame[payload_at..payload_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let body_len = frame.len() - 8;
        let crc = crc32(&frame[4..4 + body_len]);
        let at = 4 + body_len;
        frame[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        // Digest now mismatches (payload changed), which is also fine —
        // the point is no panic and no allocation.
        assert!(decode_frame(&frame).is_err());
    }
}
