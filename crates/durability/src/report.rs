//! What a crash recovery did, in auditable form.

use crate::wal::TornTail;
use mpcbf_telemetry::Telemetry;

/// Everything [`crate::DurableFilter::open_or_recover`] (and the sharded
/// twin) did to reconstruct state, for operators and drills to inspect.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot used as the replay base
    /// (`None`: no valid snapshot, recovery started from a fresh filter).
    pub snapshot_seq: Option<u64>,
    /// Snapshot files skipped because they failed to read or decode.
    pub snapshots_corrupt: u64,
    /// Valid WAL records scanned across all segments.
    pub records_scanned: u64,
    /// Records actually replayed (seq newer than the snapshot).
    pub records_replayed: u64,
    /// Individual key operations replayed (batches count per key).
    pub ops_replayed: u64,
    /// Torn or corrupt WAL tails found and amputated (one per log).
    pub torn_tails: Vec<TornTail>,
    /// Whole WAL segments dropped because they sat past damage.
    pub segments_dropped: u64,
    /// Total WAL bytes removed by repairs.
    pub bytes_truncated: u64,
    /// Whether the post-replay `scrub()` cross-check came back clean.
    pub scrub_clean: bool,
    /// Highest sequence number in the recovered state.
    pub last_seq: u64,
}

impl RecoveryReport {
    /// Folds a per-shard report into a whole-filter one (sharded
    /// recovery runs one scan+replay per shard, in parallel).
    pub fn absorb_shard(&mut self, other: &RecoveryReport) {
        self.snapshots_corrupt += other.snapshots_corrupt;
        self.records_scanned += other.records_scanned;
        self.records_replayed += other.records_replayed;
        self.ops_replayed += other.ops_replayed;
        self.torn_tails.extend(other.torn_tails.iter().cloned());
        self.segments_dropped += other.segments_dropped;
        self.bytes_truncated += other.bytes_truncated;
        self.last_seq = self.last_seq.max(other.last_seq);
    }

    /// True when recovery saw no damage at all (clean shutdown replay).
    pub fn was_clean(&self) -> bool {
        self.torn_tails.is_empty()
            && self.segments_dropped == 0
            && self.snapshots_corrupt == 0
            && self.scrub_clean
    }

    /// Publishes the report into the telemetry registry as counters and
    /// gauges, so recoveries show up on the Prometheus page next to the
    /// op ledgers.
    pub fn record_to(&self, telemetry: &Telemetry) {
        telemetry.add_counter("recoveries_total", 1);
        telemetry.add_counter("recovery_records_scanned_total", self.records_scanned);
        telemetry.add_counter("recovery_records_replayed_total", self.records_replayed);
        telemetry.add_counter("recovery_ops_replayed_total", self.ops_replayed);
        telemetry.add_counter("recovery_torn_tails_total", self.torn_tails.len() as u64);
        telemetry.add_counter("recovery_segments_dropped_total", self.segments_dropped);
        telemetry.add_counter("recovery_wal_bytes_truncated_total", self.bytes_truncated);
        telemetry.add_counter("recovery_snapshots_corrupt_total", self.snapshots_corrupt);
        telemetry.set_gauge(
            "recovery_snapshot_seq",
            self.snapshot_seq.unwrap_or(0) as f64,
        );
        telemetry.set_gauge("recovery_last_seq", self.last_seq as f64);
        telemetry.set_gauge(
            "recovery_scrub_clean",
            f64::from(u8::from(self.scrub_clean)),
        );
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.snapshot_seq {
            Some(seq) => writeln!(f, "snapshot: seq {seq}")?,
            None => writeln!(f, "snapshot: none (fresh filter)")?,
        }
        if self.snapshots_corrupt > 0 {
            writeln!(
                f,
                "snapshots skipped as corrupt: {}",
                self.snapshots_corrupt
            )?;
        }
        writeln!(
            f,
            "wal: {} records scanned, {} replayed ({} key ops), last seq {}",
            self.records_scanned, self.records_replayed, self.ops_replayed, self.last_seq
        )?;
        for tail in &self.torn_tails {
            writeln!(
                f,
                "torn tail: {} segment {} at byte {} ({} bytes dropped, {})",
                tail.wal, tail.segment_first_seq, tail.offset, tail.bytes_dropped, tail.reason
            )?;
        }
        if self.segments_dropped > 0 {
            writeln!(f, "segments dropped past damage: {}", self.segments_dropped)?;
        }
        if self.bytes_truncated > 0 {
            writeln!(f, "wal bytes truncated: {}", self.bytes_truncated)?;
        }
        write!(
            f,
            "scrub cross-check: {}",
            if self.scrub_clean { "clean" } else { "FAILED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_sees_the_recovery() {
        let t = Telemetry::new();
        let report = RecoveryReport {
            snapshot_seq: Some(42),
            records_scanned: 10,
            records_replayed: 7,
            ops_replayed: 12,
            scrub_clean: true,
            last_seq: 52,
            ..Default::default()
        };
        report.record_to(&t);
        let snap = t.snapshot();
        assert_eq!(snap.counters.get("recoveries_total"), Some(&1));
        assert_eq!(
            snap.counters.get("recovery_records_replayed_total"),
            Some(&7)
        );
        assert_eq!(snap.gauges.get("recovery_snapshot_seq"), Some(&42.0));
        assert_eq!(snap.gauges.get("recovery_scrub_clean"), Some(&1.0));
        assert!(report.was_clean());
    }
}
