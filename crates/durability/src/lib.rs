//! # mpcbf-durability
//!
//! Write-ahead log, snapshots, and crash recovery for the MPCBF filter
//! family. A process restart — clean or violent — must never silently
//! lose counter state or introduce false negatives; this crate supplies
//! the WAL + snapshot + replay discipline that guarantees it:
//!
//! * [`record`] — CRC-framed WAL records `{seq, op-kind, key-digest,
//!   payload, crc32}`; batches are one all-or-nothing frame.
//! * [`wal`] — segmented log with [`FsyncPolicy`] (`Always` / `EveryN` /
//!   `Interval`) and a repairing recovery scan that truncates torn
//!   tails at the first bad CRC.
//! * [`snapshot`] — full filter images through the codec encode path,
//!   published atomically via rename.
//! * [`DurableFilter`] — log→apply→ack wrapper over any
//!   [`DurableImage`]-capable counting filter ([`mpcbf_core::Mpcbf`],
//!   [`mpcbf_core::Cbf`], [`mpcbf_core::ResilientMpcbf`]).
//! * [`DurableShardedMpcbf`] — one WAL per shard, recovery in parallel.
//! * [`kill`] — seeded in-process crash injection for the drill matrix
//!   (crash mid-append, mid-fsync, mid-snapshot-rename, …).
//!
//! ```
//! use mpcbf_core::{Mpcbf, MpcbfConfig};
//! use mpcbf_durability::{DurabilityOptions, DurableFilter};
//!
//! let dir = std::env::temp_dir().join(format!("mpcbf-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = MpcbfConfig::builder()
//!     .memory_bits(100_000)
//!     .expected_items(1_000)
//!     .hashes(3)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let filter: Mpcbf = Mpcbf::new(config.clone());
//!
//! // Log-then-apply: every acknowledged op is on disk first.
//! let mut durable = DurableFilter::create(filter, DurabilityOptions::new(&dir)).unwrap();
//! durable.insert_bytes(b"alice").unwrap();
//! durable.snapshot().unwrap();
//! durable.insert_bytes(b"bob").unwrap();
//! drop(durable); // simulated crash
//!
//! // Recovery: snapshot + WAL replay, scrub-verified.
//! let (recovered, report) = DurableFilter::open_or_recover(
//!     DurabilityOptions::new(&dir),
//!     || -> Mpcbf { Mpcbf::new(config.clone()) },
//! )
//! .unwrap();
//! assert!(recovered.contains_bytes(b"alice"));
//! assert!(recovered.contains_bytes(b"bob"));
//! assert!(report.scrub_clean);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod durable;
pub mod elastic;
pub mod kill;
pub mod record;
pub mod report;
pub mod sharded;
pub mod snapshot;
pub mod wal;

pub use durable::{DurabilityOptions, DurableFilter, DurableImage};
pub use elastic::{apply_elastic_op, DurableElasticSharded};
pub use error::DurableError;
pub use kill::{KillSite, KillSwitch};
pub use record::{decode_frame, encode_frame, FrameError, WalOp, WalRecord};
pub use report::RecoveryReport;
pub use sharded::{decode_envelope, encode_envelope, DurableShardedMpcbf};
pub use snapshot::SnapshotStore;
pub use wal::{FsyncPolicy, TornTail, Wal, WalScan};
