//! Atomic snapshot files.
//!
//! A snapshot is a full filter image (the codec's framed, CRC-sealed
//! format) written under `{prefix}-{seq}.snap`. Publication is atomic:
//! the image is written to a `.tmp` sibling, synced, then `rename`d over
//! the final name, then the directory is synced. At no point does a
//! half-written file carry a `.snap` name — a crash leaves either the
//! old snapshot set, or the old set plus a stray `.tmp` that recovery
//! ignores and the next snapshot cycle deletes. Snapshot images also
//! self-validate (codec CRC), so even a corrupted published file is
//! detected and skipped, falling back to the next-newest snapshot.

use crate::error::DurableError;
use crate::kill::{KillSite, KillSwitch};
use crate::wal::sync_dir;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot reader/writer bound to one directory and prefix.
pub struct SnapshotStore {
    dir: PathBuf,
    prefix: String,
    kill: KillSwitch,
}

impl SnapshotStore {
    /// Opens a store over `dir` (created if missing).
    pub fn new(dir: &Path, prefix: &str, kill: KillSwitch) -> Result<Self, DurableError> {
        fs::create_dir_all(dir).map_err(|e| DurableError::io("create snapshot dir", e))?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            kill,
        })
    }

    fn path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{}-{seq:020}.snap", self.prefix))
    }

    /// Publishes `image` as the snapshot at `seq`, atomically.
    pub fn write(&self, seq: u64, image: &[u8]) -> Result<(), DurableError> {
        let tmp = self.dir.join(format!("{}-{seq:020}.snap.tmp", self.prefix));
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| DurableError::io("create snapshot tmp", e))?;
        if let Some(budget) = self.kill.write_budget(KillSite::SnapshotWrite) {
            let cut = (budget as usize).min(image.len());
            file.write_all(&image[..cut])
                .map_err(|e| DurableError::io("write snapshot", e))?;
            let _ = file.sync_data();
            return Err(DurableError::Killed(KillSite::SnapshotWrite));
        }
        file.write_all(image)
            .map_err(|e| DurableError::io("write snapshot", e))?;
        file.sync_data()
            .map_err(|e| DurableError::io("sync snapshot", e))?;
        drop(file);
        if let Some(site) = self.kill.check(KillSite::SnapshotRename) {
            return Err(DurableError::Killed(site));
        }
        fs::rename(&tmp, self.path(seq)).map_err(|e| DurableError::io("publish snapshot", e))?;
        sync_dir(&self.dir)
    }

    /// Published snapshots, newest first. Stray `.tmp` files are ignored.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, DurableError> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(DurableError::io("list snapshot dir", e)),
        };
        let lead = format!("{}-", self.prefix);
        for entry in entries {
            let entry = entry.map_err(|e| DurableError::io("list snapshot dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(&lead)
                .and_then(|s| s.strip_suffix(".snap"))
            else {
                continue;
            };
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
        out.sort_unstable_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        Ok(out)
    }

    /// Loads the newest snapshot that decodes cleanly, skipping (and
    /// counting) unreadable or corrupt ones. Returns the winning
    /// `(seq, value)` and the number of snapshots skipped as corrupt.
    pub fn load_latest_with<T>(
        &self,
        decode: impl Fn(&[u8]) -> Option<T>,
    ) -> Result<(Option<(u64, T)>, u64), DurableError> {
        let mut corrupt = 0;
        for (seq, path) in self.list()? {
            let Ok(bytes) = fs::read(&path) else {
                corrupt += 1;
                continue;
            };
            match decode(&bytes) {
                Some(value) => return Ok((Some((seq, value)), corrupt)),
                None => corrupt += 1,
            }
        }
        Ok((None, corrupt))
    }

    /// Deletes every published snapshot older than `keep_seq` and any
    /// stray `.tmp` debris. Never touches the snapshot at `keep_seq`.
    pub fn purge_below(&self, keep_seq: u64) -> Result<(), DurableError> {
        for (seq, path) in self.list()? {
            if seq < keep_seq {
                fs::remove_file(&path).map_err(|e| DurableError::io("purge snapshot", e))?;
            }
        }
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().ends_with(".snap.tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        sync_dir(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mpcbf-snap-{tag}-{}-{id}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn decode_ok(bytes: &[u8]) -> Option<Vec<u8>> {
        // Toy "codec": valid iff it ends with the marker byte.
        (bytes.last() == Some(&0xAA)).then(|| bytes.to_vec())
    }

    #[test]
    fn newest_valid_snapshot_wins() {
        let dir = scratch_dir("latest");
        let store = SnapshotStore::new(&dir, "snap", KillSwitch::new()).unwrap();
        store.write(5, &[1, 0xAA]).unwrap();
        store.write(9, &[2, 0xAA]).unwrap();
        let (found, corrupt) = store.load_latest_with(decode_ok).unwrap();
        assert_eq!(found, Some((9, vec![2, 0xAA])));
        assert_eq!(corrupt, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_and_is_counted() {
        let dir = scratch_dir("fallback");
        let store = SnapshotStore::new(&dir, "snap", KillSwitch::new()).unwrap();
        store.write(5, &[1, 0xAA]).unwrap();
        store.write(9, &[2, 3]).unwrap(); // does not decode
        let (found, corrupt) = store.load_latest_with(decode_ok).unwrap();
        assert_eq!(found, Some((5, vec![1, 0xAA])));
        assert_eq!(corrupt, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_write_leaves_no_published_snapshot() {
        let dir = scratch_dir("killwrite");
        let kill = KillSwitch::new();
        let store = SnapshotStore::new(&dir, "snap", kill.clone()).unwrap();
        store.write(1, &[9, 0xAA]).unwrap();
        kill.arm(KillSite::SnapshotWrite, 1);
        assert!(store.write(2, &[7, 7, 7, 0xAA]).unwrap_err().is_kill());
        // The torn write is invisible: only seq 1 is published.
        let (found, corrupt) = store.load_latest_with(decode_ok).unwrap();
        assert_eq!(found.map(|(s, _)| s), Some(1));
        assert_eq!(corrupt, 0);

        kill.arm(KillSite::SnapshotRename, 0);
        assert!(store.write(3, &[8, 0xAA]).unwrap_err().is_kill());
        let (found, _) = store.load_latest_with(decode_ok).unwrap();
        assert_eq!(found.map(|(s, _)| s), Some(1), "rename never happened");

        // purge clears the .tmp debris.
        store.purge_below(1).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn purge_keeps_the_current_snapshot() {
        let dir = scratch_dir("purge");
        let store = SnapshotStore::new(&dir, "snap", KillSwitch::new()).unwrap();
        for seq in [1, 4, 9] {
            store.write(seq, &[seq as u8, 0xAA]).unwrap();
        }
        store.purge_below(9).unwrap();
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, 9);
        fs::remove_dir_all(&dir).unwrap();
    }
}
