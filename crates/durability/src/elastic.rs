//! Durability for [`ElasticShardedMpcbf`]: WAL-logged structural events.
//!
//! The elastic pool changes *shape* at runtime — shards scale up and
//! compact — so its log carries two record kinds beyond key mutations:
//! [`WalOp::ScaleUp`] (the exact [`ScaleSpec`] applied, logged before the
//! generation is pushed) and [`WalOp::Compact`] (logged when a
//! compaction begins). Replay re-applies the same spec at the same
//! position in the per-shard op stream, so a recovered stack has the
//! same generations, seeds, and membership as the crashed one; a
//! [`WalOp::Compact`] record drains the whole migration synchronously
//! during replay, which lands the recovered filter at the compaction's
//! fixed point (counter updates commute, so interleaving differences
//! between the live run and replay cannot diverge the state).
//!
//! The file layout is identical to [`crate::sharded`]: one WAL per shard
//! (`wal-s{N}-*.wal`), whole-pool snapshots in the same CRC-sealed
//! [`encode_envelope`] format. The wrapped pool is built in **manual
//! mode** by this module itself — an auto-scaling pool would mutate its
//! shape without logging, and recovery could not reproduce it.

use crate::durable::DurabilityOptions;
use crate::error::DurableError;
use crate::record::{WalOp, WalRecord};
use crate::report::RecoveryReport;
use crate::sharded::{decode_envelope, encode_envelope};
use crate::snapshot::SnapshotStore;
use crate::wal::Wal;
use mpcbf_concurrent::ElasticShardedMpcbf;
use mpcbf_core::policy::CapacityPolicy;
use mpcbf_core::{MpcbfConfig, ScaleSpec};
use mpcbf_hash::{Hasher128, Murmur3};

const SNAP_PREFIX: &str = "snap";

fn wal_prefix(shard: usize) -> String {
    format!("wal-s{shard:04}")
}

/// Write-ahead-logged [`ElasticShardedMpcbf`] with per-shard logs,
/// logged scale/compaction events, and parallel crash recovery.
/// Mutations take `&mut self` — single-writer, like
/// [`crate::DurableShardedMpcbf`]; a durable server decomposes the
/// wrapper with [`DurableElasticSharded::into_service_parts`] and drives
/// each shard's WAL from that shard's worker.
pub struct DurableElasticSharded<H: Hasher128 = Murmur3> {
    inner: ElasticShardedMpcbf<H>,
    wals: Vec<Wal>,
    seqs: Vec<u64>,
    snapshots: SnapshotStore,
    records_since_snapshot: u64,
    snapshot_every: Option<u64>,
}

impl<H: Hasher128> DurableElasticSharded<H> {
    /// Starts a fresh durable elastic pool: a manual-mode
    /// [`ElasticShardedMpcbf`] (structural events only happen through
    /// the logged entry points), an initial snapshot, one WAL segment
    /// per shard.
    pub fn create(
        config: MpcbfConfig,
        shards: usize,
        policy: CapacityPolicy,
        opts: DurabilityOptions,
    ) -> Result<Self, DurableError> {
        let inner = ElasticShardedMpcbf::<H>::manual(config, shards, policy).map_err(|reason| {
            DurableError::Io {
                context: "elastic pool construction",
                source: std::io::Error::new(std::io::ErrorKind::InvalidInput, reason),
            }
        })?;
        Self::create_from(inner, opts)
    }

    /// [`DurableElasticSharded::create`] over an existing pool. The pool
    /// must be manually driven (built by [`ElasticShardedMpcbf::manual`]
    /// or decoded from an image of one): an auto-scaling pool would
    /// change shape without a WAL record and break replay.
    pub fn create_from(
        inner: ElasticShardedMpcbf<H>,
        opts: DurabilityOptions,
    ) -> Result<Self, DurableError> {
        let shard_count = inner.shard_count();
        let snapshots = SnapshotStore::new(&opts.dir, SNAP_PREFIX, opts.kill.clone())?;
        let mut wals = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let mut wal = Wal::new(
                &opts.dir,
                &wal_prefix(shard),
                opts.fsync,
                opts.segment_bytes,
                opts.kill.clone(),
            )?;
            wal.rotate(1)?;
            wals.push(wal);
        }
        let seqs = vec![0; shard_count];
        snapshots.write(0, &encode_envelope(&seqs, &inner.encode()))?;
        Ok(DurableElasticSharded {
            inner,
            wals,
            seqs,
            snapshots,
            records_since_snapshot: 0,
            snapshot_every: opts.snapshot_every,
        })
    }

    /// Recovers from `opts.dir`: newest valid snapshot, then every
    /// shard's WAL scanned, repaired, and replayed in parallel —
    /// including structural events, so the recovered pool has the same
    /// generation stacks as the crashed one. `fallback` supplies the
    /// pool for a fresh (or fully corrupt) directory; it must be
    /// manual-mode (see [`DurableElasticSharded::create_from`]).
    pub fn open_or_recover(
        opts: DurabilityOptions,
        fallback: impl FnOnce() -> ElasticShardedMpcbf<H>,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let snapshots = SnapshotStore::new(&opts.dir, SNAP_PREFIX, opts.kill.clone())?;
        let mut report = RecoveryReport::default();
        let (base, corrupt) = snapshots.load_latest_with(|bytes| {
            let (seqs, image) = decode_envelope(bytes)?;
            let filter = ElasticShardedMpcbf::<H>::decode(image).ok()?;
            (seqs.len() == filter.shard_count()).then_some((seqs, filter))
        })?;
        report.snapshots_corrupt = corrupt;
        let (inner, snap_seqs) = match base {
            Some((snap_seq, (seqs, filter))) => {
                report.snapshot_seq = Some(snap_seq);
                (filter, seqs)
            }
            None => {
                let filter = fallback();
                let count = filter.shard_count();
                (filter, vec![0; count])
            }
        };
        let shard_count = inner.shard_count();

        // Scan + repair + replay each shard's log on its own thread.
        // Structural records apply to the shard whose log they came
        // from, so the per-shard partition of the replay is exact.
        let mut shard_results: Vec<Option<Result<(RecoveryReport, u64), DurableError>>> =
            (0..shard_count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shard_count);
            for (shard, &base_seq) in snap_seqs.iter().enumerate() {
                let dir = opts.dir.clone();
                let inner_ref = &inner;
                handles.push(scope.spawn(move || {
                    let prefix = wal_prefix(shard);
                    let (records, scan) = Wal::scan(&dir, &prefix)?;
                    let mut shard_report = RecoveryReport {
                        records_scanned: scan.records,
                        segments_dropped: scan.segments_dropped,
                        bytes_truncated: scan.bytes_truncated,
                        scrub_clean: true,
                        ..Default::default()
                    };
                    shard_report.torn_tails.extend(scan.torn);
                    let mut last_seq = base_seq;
                    for record in &records {
                        if record.seq <= base_seq {
                            continue;
                        }
                        shard_report.records_replayed += 1;
                        shard_report.ops_replayed += record.op.op_count();
                        apply_elastic_op(inner_ref, shard, &record.op);
                        last_seq = record.seq;
                    }
                    shard_report.last_seq = last_seq;
                    Ok((shard_report, last_seq))
                }));
            }
            for (shard, handle) in handles.into_iter().enumerate() {
                shard_results[shard] = Some(handle.join().expect("shard recovery panicked"));
            }
        });

        let mut seqs = Vec::with_capacity(shard_count);
        for result in shard_results {
            let (shard_report, last_seq) = result.expect("every shard joined")?;
            report.absorb_shard(&shard_report);
            seqs.push(last_seq);
        }

        // The elastic pool has no epoch-scrub seal; the structural
        // verifier (roster/filter/migration cross-checks per shard) is
        // the integrity gate.
        report.scrub_clean = inner.verify().is_ok();

        let mut wals = Vec::with_capacity(shard_count);
        for (shard, &last_seq) in seqs.iter().enumerate() {
            let mut wal = Wal::new(
                &opts.dir,
                &wal_prefix(shard),
                opts.fsync,
                opts.segment_bytes,
                opts.kill.clone(),
            )?;
            wal.rotate(last_seq + 1)?;
            wals.push(wal);
        }
        Ok((
            DurableElasticSharded {
                inner,
                wals,
                seqs,
                snapshots,
                records_since_snapshot: 0,
                snapshot_every: opts.snapshot_every,
            },
            report,
        ))
    }

    /// The wrapped elastic pool (reads only; mutate through the logged
    /// entry points).
    pub fn inner(&self) -> &ElasticShardedMpcbf<H> {
        &self.inner
    }

    /// Per-shard last-assigned sequence numbers.
    pub fn shard_seqs(&self) -> &[u64] {
        &self.seqs
    }

    fn log_to(&mut self, shard: usize, op: WalOp) -> Result<(), DurableError> {
        let seq = self.seqs[shard] + 1;
        self.wals[shard].append(&WalRecord { seq, op })?;
        self.seqs[shard] = seq;
        self.records_since_snapshot += 1;
        Ok(())
    }

    fn maybe_snapshot(&mut self) -> Result<(), DurableError> {
        if let Some(every) = self.snapshot_every {
            if self.records_since_snapshot >= every {
                self.snapshot()?;
            }
        }
        Ok(())
    }

    /// Log-then-apply capacity management for one shard: if the shard
    /// has parked a scale plan, logs the exact [`ScaleSpec`] and a
    /// compaction marker, then applies both; while a migration is in
    /// flight, drains one policy-sized batch so compaction rides the
    /// write path at batch granularity.
    fn drive_capacity(&mut self, shard: usize) -> Result<(), DurableError> {
        if let Some(spec) = self.inner.with_shard(shard, |f| f.scale_plan()) {
            self.log_to(
                shard,
                WalOp::ScaleUp {
                    memory_bits: spec.memory_bits,
                    expected_items: spec.expected_items,
                },
            )?;
            // Apply failure (a spec no shape fits) replays identically,
            // so the log and the filter cannot disagree.
            let _ = self.inner.with_shard(shard, |f| f.apply_scale(&spec));
            self.log_to(shard, WalOp::Compact)?;
            self.inner.with_shard(shard, |f| {
                f.begin_compaction();
            });
        }
        self.inner.with_shard(shard, |f| {
            if f.compacting() {
                let batch = f.policy().compact_batch;
                f.step_compaction(batch);
            }
        });
        Ok(())
    }

    /// Logs to the key's home-shard WAL, applies, then drives that
    /// shard's capacity management (logged scale-up, batch-granular
    /// compaction).
    pub fn insert_bytes(&mut self, key: &[u8]) -> Result<(), DurableError> {
        let shard = self.inner.home_shard(key);
        self.log_to(shard, WalOp::Insert(key.to_vec()))?;
        let result = self.inner.insert_bytes(key);
        self.drive_capacity(shard)?;
        self.maybe_snapshot()?;
        result.map_err(DurableError::Filter)
    }

    /// Logs to the key's home-shard WAL, then applies.
    pub fn remove_bytes(&mut self, key: &[u8]) -> Result<(), DurableError> {
        let shard = self.inner.home_shard(key);
        self.log_to(shard, WalOp::Remove(key.to_vec()))?;
        let result = self.inner.remove_bytes(key);
        self.maybe_snapshot()?;
        result.map_err(DurableError::Filter)
    }

    /// Logs the batch as one frame per touched shard, applies, then
    /// drives capacity management on every touched shard.
    pub fn insert_batch_bytes(
        &mut self,
        keys: &[&[u8]],
    ) -> Result<Vec<Result<(), mpcbf_core::FilterError>>, DurableError> {
        let touched = self.log_batch(keys, true)?;
        let mut results = Vec::with_capacity(keys.len());
        for key in keys {
            results.push(self.inner.insert_bytes(key));
        }
        for shard in touched {
            self.drive_capacity(shard)?;
        }
        self.maybe_snapshot()?;
        Ok(results)
    }

    /// Batch remove twin of [`DurableElasticSharded::insert_batch_bytes`].
    pub fn remove_batch_bytes(
        &mut self,
        keys: &[&[u8]],
    ) -> Result<Vec<Result<(), mpcbf_core::FilterError>>, DurableError> {
        self.log_batch(keys, false)?;
        let mut results = Vec::with_capacity(keys.len());
        for key in keys {
            results.push(self.inner.remove_bytes(key));
        }
        self.maybe_snapshot()?;
        Ok(results)
    }

    fn log_batch(&mut self, keys: &[&[u8]], insert: bool) -> Result<Vec<usize>, DurableError> {
        let mut per_shard: Vec<Vec<Vec<u8>>> = vec![Vec::new(); self.wals.len()];
        for key in keys {
            per_shard[self.inner.home_shard(key)].push(key.to_vec());
        }
        let mut touched = Vec::new();
        for (shard, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let op = if insert {
                WalOp::InsertBatch(group)
            } else {
                WalOp::RemoveBatch(group)
            };
            self.log_to(shard, op)?;
            touched.push(shard);
        }
        Ok(touched)
    }

    /// Unlogged read.
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        self.inner.contains_bytes(key)
    }

    /// Forces every shard's WAL to disk.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        for wal in &mut self.wals {
            wal.sync()?;
        }
        Ok(())
    }

    /// Shutdown flush — alias of [`DurableElasticSharded::sync`], named
    /// for symmetry with [`crate::DurableFilter::flush`].
    pub fn flush(&mut self) -> Result<(), DurableError> {
        self.sync()
    }

    /// Decomposes the single-writer wrapper into its parts so a server
    /// can own each shard's WAL (plus its sequence counter) on that
    /// shard's worker thread. Snapshot envelopes stay in the
    /// [`encode_envelope`] format
    /// [`DurableElasticSharded::open_or_recover`] reads back.
    #[allow(clippy::type_complexity)]
    pub fn into_service_parts(self) -> (ElasticShardedMpcbf<H>, Vec<Wal>, Vec<u64>, SnapshotStore) {
        (self.inner, self.wals, self.seqs, self.snapshots)
    }

    /// Whole-pool snapshot: syncs every WAL, publishes the envelope
    /// (per-shard seqs + pool image, which captures generation stacks
    /// and any in-flight migration) atomically, then rotates and purges
    /// every shard's log.
    pub fn snapshot(&mut self) -> Result<(), DurableError> {
        self.sync()?;
        let envelope = encode_envelope(&self.seqs, &self.inner.encode());
        let snap_seq = self.seqs.iter().copied().max().unwrap_or(0);
        self.snapshots.write(snap_seq, &envelope)?;
        for (shard, wal) in self.wals.iter_mut().enumerate() {
            wal.rotate(self.seqs[shard] + 1)?;
            wal.purge_below(self.seqs[shard] + 1)?;
        }
        self.snapshots.purge_below(snap_seq)?;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

/// Replay twin of the live entry points. Key ops re-route through the
/// pool (deterministic, so they land back in `shard`); structural ops
/// apply to `shard` directly — a [`WalOp::ScaleUp`] pushes the logged
/// spec, a [`WalOp::Compact`] begins and fully drains the migration so
/// the recovered stack is deterministic.
pub fn apply_elastic_op<H: Hasher128>(pool: &ElasticShardedMpcbf<H>, shard: usize, op: &WalOp) {
    match op {
        WalOp::Insert(key) => {
            let _ = pool.insert_bytes(key);
        }
        WalOp::Remove(key) => {
            let _ = pool.remove_bytes(key);
        }
        WalOp::InsertBatch(keys) => {
            for key in keys {
                let _ = pool.insert_bytes(key);
            }
        }
        WalOp::RemoveBatch(keys) => {
            for key in keys {
                let _ = pool.remove_bytes(key);
            }
        }
        WalOp::ScaleUp {
            memory_bits,
            expected_items,
        } => {
            let spec = ScaleSpec {
                memory_bits: *memory_bits,
                expected_items: *expected_items,
            };
            // A spec that failed to apply live fails identically here.
            let _ = pool.with_shard(shard, |f| f.apply_scale(&spec));
        }
        WalOp::Compact => {
            pool.with_shard(shard, |f| {
                if f.begin_compaction() {
                    while f.step_compaction(4096) > 0 {}
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mpcbf-del-{tag}-{}-{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pool_config(seed: u64) -> MpcbfConfig {
        MpcbfConfig::builder()
            .memory_bits(131_072)
            .expected_items(2_000)
            .hashes(3)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn fresh_pool(seed: u64) -> ElasticShardedMpcbf {
        ElasticShardedMpcbf::manual(pool_config(seed), 2, CapacityPolicy::default()).unwrap()
    }

    #[test]
    fn overload_scales_through_the_log_and_recovers_the_stack() {
        let dir = scratch_dir("scale");
        let opts = DurabilityOptions::new(&dir);
        let mut durable = DurableElasticSharded::<Murmur3>::create(
            pool_config(11),
            2,
            CapacityPolicy::default(),
            opts.clone(),
        )
        .unwrap();
        for i in 0..20_000u64 {
            durable.insert_bytes(&i.to_le_bytes()).unwrap();
        }
        let stats = durable.inner().stats();
        assert!(stats.scale_events > 0, "10x overload must log a scale-up");
        drop(durable); // crash without a snapshot of the tail

        let (recovered, report) =
            DurableElasticSharded::<Murmur3>::open_or_recover(opts, || fresh_pool(11)).unwrap();
        assert!(report.scrub_clean, "verify must pass: {report}");
        assert!(report.records_replayed > 0);
        let rstats = recovered.inner().stats();
        assert_eq!(rstats.items, 20_000);
        assert_eq!(rstats.scale_events, stats.scale_events);
        for i in 0..20_000u64 {
            assert!(
                recovered.contains_bytes(&i.to_le_bytes()),
                "false negative {i} after recovery"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_mid_migration_recovers_and_finishes_compaction() {
        let dir = scratch_dir("midmig");
        let opts = DurabilityOptions::new(&dir);
        let mut durable = DurableElasticSharded::<Murmur3>::create(
            pool_config(12),
            2,
            CapacityPolicy::default(),
            opts.clone(),
        )
        .unwrap();
        // Push far enough that some shard is mid-compaction (the write
        // path drains `compact_batch` keys per insert, so a burst right
        // after the trigger leaves a migration in flight).
        let mut i = 0u64;
        while durable.inner().stats().compacting_shards == 0 && i < 60_000 {
            durable.insert_bytes(&i.to_le_bytes()).unwrap();
            i += 1;
        }
        assert!(i < 60_000, "never entered a compaction window");
        durable.snapshot().unwrap();
        for j in i..i + 500 {
            durable.insert_bytes(&j.to_le_bytes()).unwrap();
        }
        let total = i + 500;
        drop(durable);

        let (recovered, report) =
            DurableElasticSharded::<Murmur3>::open_or_recover(opts, || fresh_pool(12)).unwrap();
        assert!(report.snapshot_seq.is_some());
        assert!(report.scrub_clean, "verify must pass: {report}");
        assert_eq!(recovered.inner().items(), total);
        for k in 0..total {
            assert!(recovered.contains_bytes(&k.to_le_bytes()), "lost key {k}");
        }
        // Recovery must leave the in-flight migration resumable.
        let mut drained = 0u64;
        for shard in 0..recovered.inner().shard_count() {
            drained += recovered.inner().with_shard(shard, |f| {
                let mut moved = 0u64;
                while f.compacting() {
                    moved += f.step_compaction(1024) as u64;
                }
                moved
            });
        }
        let _ = drained;
        assert_eq!(recovered.inner().verify(), Ok(()));
        assert_eq!(recovered.inner().items(), total);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batches_and_removals_replay_into_the_elastic_pool() {
        let dir = scratch_dir("batch");
        let opts = DurabilityOptions::new(&dir);
        let mut durable = DurableElasticSharded::<Murmur3>::create(
            pool_config(13),
            2,
            CapacityPolicy::default(),
            opts.clone(),
        )
        .unwrap();
        let keys: Vec<Vec<u8>> = (0..4_000u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        durable.insert_batch_bytes(&views).unwrap();
        durable.remove_batch_bytes(&views[..1_000]).unwrap();
        durable.remove_bytes(&keys[1_000]).unwrap();
        drop(durable);

        let (recovered, report) =
            DurableElasticSharded::<Murmur3>::open_or_recover(opts, || fresh_pool(13)).unwrap();
        assert!(report.scrub_clean);
        assert_eq!(recovered.inner().items(), 4_000 - 1_001);
        let mut removed_hits = 0u64;
        for (idx, key) in keys.iter().enumerate() {
            if idx > 1_000 {
                assert!(recovered.contains_bytes(key), "false negative {idx}");
            } else if recovered.contains_bytes(key) {
                removed_hits += 1; // false positive — allowed, just bounded
            }
        }
        assert!(
            removed_hits < 100,
            "removed keys should mostly query absent, {removed_hits} hit"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
