//! Wire protocol for the filter server: length-prefixed frames carrying
//! one request or response each.
//!
//! ```text
//! frame:    u32 payload_len (LE) | payload (≤ MAX_FRAME bytes)
//! request:  u8 opcode | body
//! response: u8 status | body
//! ```
//!
//! Request bodies:
//! * `PING`, `STATS`, `CHECKPOINT`, `FLUSH`, `SHUTDOWN` — empty.
//! * `INSERT` / `REMOVE` / `QUERY` — the raw key bytes (≤ [`MAX_KEY`]).
//! * `*_BATCH` — `u32 count`, then per key `u32 len | bytes`
//!   (≤ [`MAX_BATCH`] keys).
//!
//! Response bodies, by status:
//! * `OK`: `QUERY` → one presence byte; `QUERY_BATCH` → `u32 n` + n
//!   presence bytes; `INSERT_BATCH`/`REMOVE_BATCH` → `u32 n` + n per-key
//!   [`KeyOutcome`] codes; `STATS` → a JSON document; everything else
//!   empty.
//! * `REFUSED`: one [`KeyOutcome`] code (scalar mutations only).
//! * `RETRY_LATER`: `u32` suggested retry delay in milliseconds
//!   (mutations only, while the key's shard reorganises).
//! * `BAD_REQUEST` / `SERVER_ERROR`: a human-readable reason.
//!
//! [`decode_request`] is total: any payload yields `Ok` or an error
//! string — never a panic, never an allocation beyond what the input's
//! own length already bounds. A `BAD_REQUEST` keeps the connection
//! (framing is intact); an oversized length prefix closes it (the byte
//! stream can no longer be trusted).

use mpcbf_core::FilterError;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload. Large enough for a [`MAX_BATCH`]
/// of small keys or a stats page; small enough that a hostile length
/// prefix cannot drive an allocation.
pub const MAX_FRAME: u32 = 1 << 20;
/// Largest accepted key, matching the WAL's practical frame budget.
pub const MAX_KEY: usize = 64 * 1024;
/// Largest accepted batch.
pub const MAX_BATCH: usize = 4096;

/// Liveness probe; empty OK reply.
pub const OP_PING: u8 = 0x01;
/// Insert one key (logged before ack).
pub const OP_INSERT: u8 = 0x02;
/// Remove one key (logged before ack).
pub const OP_REMOVE: u8 = 0x03;
/// Membership query (unlogged).
pub const OP_QUERY: u8 = 0x04;
/// Insert a batch (one WAL frame per touched shard).
pub const OP_INSERT_BATCH: u8 = 0x05;
/// Remove a batch.
pub const OP_REMOVE_BATCH: u8 = 0x06;
/// Query a batch.
pub const OP_QUERY_BATCH: u8 = 0x07;
/// Server/filter statistics as JSON.
pub const OP_STATS: u8 = 0x08;
/// Force a snapshot checkpoint (sync + snapshot + log truncation).
pub const OP_CHECKPOINT: u8 = 0x09;
/// Fsync every shard's WAL without snapshotting.
pub const OP_FLUSH: u8 = 0x0A;
/// Acknowledge, then gracefully stop the server.
pub const OP_SHUTDOWN: u8 = 0x0B;

/// Request handled.
pub const STATUS_OK: u8 = 0;
/// The filter refused the operation (body: one [`KeyOutcome`] code).
pub const STATUS_REFUSED: u8 = 1;
/// Malformed request payload; the connection stays open.
pub const STATUS_BAD_REQUEST: u8 = 2;
/// The server could not make the operation durable; nothing was acked.
pub const STATUS_SERVER_ERROR: u8 = 3;
/// The target shard is reorganising (scale-up / compaction); nothing
/// was applied. Body: `u32` suggested retry delay in milliseconds. The
/// client should back off and resend the identical request.
pub const STATUS_RETRY_LATER: u8 = 4;

/// Per-key result of a mutation, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyOutcome {
    /// Logged and applied.
    Applied,
    /// Refused: a word would overflow (logged; replay re-refuses).
    Overflow,
    /// Refused: the key was not present to remove.
    NotPresent,
    /// The shard detected damaged state handling this key.
    Corruption,
}

impl KeyOutcome {
    /// The wire code.
    pub fn code(self) -> u8 {
        match self {
            KeyOutcome::Applied => 0,
            KeyOutcome::Overflow => 1,
            KeyOutcome::NotPresent => 2,
            KeyOutcome::Corruption => 3,
        }
    }

    /// Total parse of a wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(KeyOutcome::Applied),
            1 => Some(KeyOutcome::Overflow),
            2 => Some(KeyOutcome::NotPresent),
            3 => Some(KeyOutcome::Corruption),
            _ => None,
        }
    }

    /// True when the mutation was acknowledged as applied.
    pub fn is_applied(self) -> bool {
        matches!(self, KeyOutcome::Applied)
    }
}

/// Maps a filter verdict onto its wire code.
pub fn key_code(result: &Result<(), FilterError>) -> u8 {
    match result {
        Ok(()) => KeyOutcome::Applied.code(),
        Err(FilterError::WordOverflow { .. }) => KeyOutcome::Overflow.code(),
        Err(FilterError::NotPresent) => KeyOutcome::NotPresent.code(),
        Err(FilterError::CorruptionDetected { .. }) => KeyOutcome::Corruption.code(),
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Insert one key.
    Insert(Vec<u8>),
    /// Remove one key.
    Remove(Vec<u8>),
    /// Query one key.
    Query(Vec<u8>),
    /// Insert a batch of keys.
    InsertBatch(Vec<Vec<u8>>),
    /// Remove a batch of keys.
    RemoveBatch(Vec<Vec<u8>>),
    /// Query a batch of keys.
    QueryBatch(Vec<Vec<u8>>),
    /// Server statistics.
    Stats,
    /// Force a checkpoint.
    Checkpoint,
    /// Fsync all WALs.
    Flush,
    /// Graceful stop.
    Shutdown,
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes = buf.get(*pos..pos.checked_add(4)?)?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn take_bytes<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Option<&'a [u8]> {
    let bytes = buf.get(*pos..pos.checked_add(len)?)?;
    *pos += len;
    Some(bytes)
}

fn decode_keys(body: &[u8]) -> Result<Vec<Vec<u8>>, &'static str> {
    let mut pos = 0;
    let n = take_u32(body, &mut pos).ok_or("batch header truncated")? as usize;
    if n > MAX_BATCH {
        return Err("batch too large");
    }
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let len = take_u32(body, &mut pos).ok_or("key length truncated")? as usize;
        if len > MAX_KEY {
            return Err("key too large");
        }
        keys.push(
            take_bytes(body, &mut pos, len)
                .ok_or("key truncated")?
                .to_vec(),
        );
    }
    if pos != body.len() {
        return Err("trailing bytes after batch");
    }
    Ok(keys)
}

/// Total parse of a request payload. The error string becomes the
/// `BAD_REQUEST` body.
pub fn decode_request(payload: &[u8]) -> Result<Request, &'static str> {
    let (&op, body) = payload.split_first().ok_or("empty frame")?;
    let expect_empty = |req: Request| {
        if body.is_empty() {
            Ok(req)
        } else {
            Err("unexpected body")
        }
    };
    match op {
        OP_PING => expect_empty(Request::Ping),
        OP_STATS => expect_empty(Request::Stats),
        OP_CHECKPOINT => expect_empty(Request::Checkpoint),
        OP_FLUSH => expect_empty(Request::Flush),
        OP_SHUTDOWN => expect_empty(Request::Shutdown),
        OP_INSERT | OP_REMOVE | OP_QUERY => {
            if body.len() > MAX_KEY {
                return Err("key too large");
            }
            let key = body.to_vec();
            Ok(match op {
                OP_INSERT => Request::Insert(key),
                OP_REMOVE => Request::Remove(key),
                _ => Request::Query(key),
            })
        }
        OP_INSERT_BATCH | OP_REMOVE_BATCH | OP_QUERY_BATCH => {
            let keys = decode_keys(body)?;
            Ok(match op {
                OP_INSERT_BATCH => Request::InsertBatch(keys),
                OP_REMOVE_BATCH => Request::RemoveBatch(keys),
                _ => Request::QueryBatch(keys),
            })
        }
        _ => Err("unknown opcode"),
    }
}

/// Encodes a request payload (the client side of [`decode_request`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    fn scalar(op: u8, key: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + key.len());
        out.push(op);
        out.extend_from_slice(key);
        out
    }
    fn batch(op: u8, keys: &[Vec<u8>]) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + keys.iter().map(|k| 4 + k.len()).sum::<usize>());
        out.push(op);
        out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for k in keys {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
        }
        out
    }
    match req {
        Request::Ping => vec![OP_PING],
        Request::Stats => vec![OP_STATS],
        Request::Checkpoint => vec![OP_CHECKPOINT],
        Request::Flush => vec![OP_FLUSH],
        Request::Shutdown => vec![OP_SHUTDOWN],
        Request::Insert(key) => scalar(OP_INSERT, key),
        Request::Remove(key) => scalar(OP_REMOVE, key),
        Request::Query(key) => scalar(OP_QUERY, key),
        Request::InsertBatch(keys) => batch(OP_INSERT_BATCH, keys),
        Request::RemoveBatch(keys) => batch(OP_REMOVE_BATCH, keys),
        Request::QueryBatch(keys) => batch(OP_QUERY_BATCH, keys),
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame (blocking). `Ok(None)` on a clean
/// close at a frame boundary; errors on oversized prefixes or mid-frame
/// disconnects.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "disconnect inside a frame prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds the protocol ceiling",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let requests = [
            Request::Ping,
            Request::Stats,
            Request::Checkpoint,
            Request::Flush,
            Request::Shutdown,
            Request::Insert(b"alice".to_vec()),
            Request::Remove(Vec::new()),
            Request::Query(vec![0xFF; 100]),
            Request::InsertBatch(vec![b"a".to_vec(), Vec::new(), vec![7; 300]]),
            Request::RemoveBatch(Vec::new().into_iter().collect()),
            Request::QueryBatch(vec![b"x".to_vec()]),
        ];
        for req in requests {
            let payload = encode_request(&req);
            assert_eq!(decode_request(&payload), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn decode_is_total_over_arbitrary_bytes() {
        // Every prefix truncation and every single-byte corruption of a
        // valid payload must parse or error — never panic.
        let payload = encode_request(&Request::InsertBatch(vec![
            b"one".to_vec(),
            b"two".to_vec(),
            vec![9; 50],
        ]));
        for cut in 0..payload.len() {
            let _ = decode_request(&payload[..cut]);
        }
        for pos in 0..payload.len() {
            for mask in [0x01, 0x80, 0xFF] {
                let mut corrupt = payload.clone();
                corrupt[pos] ^= mask;
                let _ = decode_request(&corrupt);
            }
        }
        let _ = decode_request(&[]);
        let _ = decode_request(&[0x42; 64]);
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // A batch header claiming u32::MAX keys must fail on the count
        // check, not attempt the allocation.
        let mut payload = vec![OP_INSERT_BATCH];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload), Err("batch too large"));

        let mut payload = vec![OP_INSERT_BATCH];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload), Err("key too large"));
    }

    #[test]
    fn frame_io_roundtrip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // Oversized prefix: rejected without allocating the claimed size.
        let hostile = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &hostile[..]).is_err());
        // Mid-prefix disconnect errors instead of spinning.
        assert!(read_frame(&mut &[0x01u8][..]).is_err());
    }
}
