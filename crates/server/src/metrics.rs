//! Minimal HTTP/1.0 endpoint serving the Prometheus text page.
//!
//! One thread, nonblocking accept polled against the server's shutdown
//! flag. `GET /metrics` answers 200 with the telemetry snapshot (plus
//! the server's own counters injected under the same `mpcbf_`
//! namespace); everything else answers 404. No keep-alive, no chunking
//! — exactly enough HTTP for a scraper.

use crate::server::Shared;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const IDLE_POLL: Duration = Duration::from_millis(50);

pub(crate) fn serve(shared: Arc<Shared>, listener: TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => answer(&shared, stream),
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

fn answer(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap_or(0);
    let request = String::from_utf8_lossy(&buf[..n]);
    let metrics_path = request.lines().next().is_some_and(|line| {
        let mut parts = line.split_whitespace();
        parts.next() == Some("GET") && matches!(parts.next(), Some("/metrics") | Some("/metrics/"))
    });
    let (status, body) = if metrics_path {
        ("200 OK", shared.metrics_page())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
}

/// Blocking one-shot HTTP GET returning the response body — the client
/// side of [`serve`], for tests, benches, and the CLI.
pub fn http_get_text(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: mpcbf\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(response);
    Ok(body)
}
