//! The filter server: a thread-per-shard service over
//! [`DurableShardedMpcbf`]'s decomposed parts.
//!
//! # Architecture
//!
//! ```text
//!            accept loop (one thread)
//!                 │ one thread per connection
//!                 ▼
//!   connection threads ── queries ──► Arc<ShardedMpcbf>  (lock-striped,
//!        │                                               read in place)
//!        │ mutations, routed by home_shard(key)
//!        ▼
//!   mpsc queue per shard ──► shard worker thread
//!                              owns that shard's Wal + seq counter:
//!                              log → apply → reply(ack)
//! ```
//!
//! Queries never touch a queue: connection threads read the shared
//! filter directly. Mutations are WAL-first — a shard worker appends the
//! record (the configured [`FsyncPolicy`] decides whether that append
//! reaches the platter before the ack), applies it to the filter, and
//! only then replies. A batch fans out as one WAL frame per touched
//! shard and the connection thread reassembles per-key outcomes in
//! request order.
//!
//! Checkpoints quiesce writers with a barrier: every worker fsyncs,
//! parks at the gate, the coordinator snapshots the filter image plus
//! the per-shard sequence vector, then workers truncate their logs and
//! resume. Graceful shutdown runs a final checkpoint, drains every
//! queue, and fsyncs each WAL, so a clean stop loses nothing under any
//! fsync policy.

use crate::metrics;
use crate::protocol::{
    decode_request, key_code, write_frame, KeyOutcome, Request, MAX_FRAME, STATUS_BAD_REQUEST,
    STATUS_OK, STATUS_REFUSED, STATUS_RETRY_LATER, STATUS_SERVER_ERROR,
};
use mpcbf_concurrent::{ElasticShardedMpcbf, ShardedMpcbf};
use mpcbf_core::metrics::{OpCost, OpKind, OpSink};
use mpcbf_core::policy::CapacityPolicy;
use mpcbf_core::MpcbfConfig;
use mpcbf_durability::{
    encode_envelope, DurabilityOptions, DurableElasticSharded, DurableError, DurableShardedMpcbf,
    RecoveryReport, SnapshotStore, Wal, WalOp, WalRecord,
};
use mpcbf_hash::Murmur3;
use mpcbf_telemetry::Telemetry;
use std::fmt;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long blocked reads and idle accept polls wait between checks of
/// the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Everything needed to start a [`Server`].
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address for the filter protocol (use port 0 to let the OS
    /// pick; read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Optional bind address for the `/metrics` HTTP endpoint.
    pub metrics_addr: Option<String>,
    /// Durability directory, fsync policy, segment size, and the
    /// auto-checkpoint threshold (`snapshot_every` logged records).
    pub durability: DurabilityOptions,
    /// Filter geometry used when the directory holds no usable state.
    pub filter: MpcbfConfig,
    /// Shard count for a fresh filter (recovery keeps the on-disk one).
    pub shards: usize,
    /// Serve an autoscaling [`ElasticShardedMpcbf`] instead of the
    /// fixed-size pool: shards grow under sustained overload (logged to
    /// the WAL first), compact in the background, and shed mutations
    /// with `RETRY_LATER` while they reorganise. A durability directory
    /// keeps its mode for life — recovery cannot read the other mode's
    /// snapshot images.
    pub elastic: bool,
}

/// Errors surfaced while starting or stopping the server.
#[derive(Debug)]
pub enum ServerError {
    /// Socket setup or teardown failed.
    Io(io::Error),
    /// Recovery or WAL initialisation failed.
    Durable(DurableError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o: {e}"),
            ServerError::Durable(e) => write!(f, "server durability: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<DurableError> for ServerError {
    fn from(e: DurableError) -> Self {
        ServerError::Durable(e)
    }
}

/// The served filter: a fixed-size sharded pool or the autoscaling
/// elastic pool. Both route keys by disjoint digest bits, expose the
/// same query surface, and snapshot through the same envelope — the
/// variants only diverge on the worker's structural duties.
#[derive(Clone)]
pub(crate) enum ServiceFilter {
    /// Fixed-geometry pool ([`DurableShardedMpcbf`] parts).
    Fixed(Arc<ShardedMpcbf<u64, Murmur3>>),
    /// Autoscaling per-shard generation stacks
    /// ([`DurableElasticSharded`] parts).
    Elastic(Arc<ElasticShardedMpcbf<Murmur3>>),
}

impl ServiceFilter {
    fn shard_count(&self) -> usize {
        match self {
            ServiceFilter::Fixed(f) => f.shard_count(),
            ServiceFilter::Elastic(f) => f.shard_count(),
        }
    }

    fn home_shard(&self, key: &[u8]) -> usize {
        match self {
            ServiceFilter::Fixed(f) => f.home_shard(key),
            ServiceFilter::Elastic(f) => f.home_shard(key),
        }
    }

    fn contains_bytes(&self, key: &[u8]) -> bool {
        match self {
            ServiceFilter::Fixed(f) => f.contains_bytes(key),
            ServiceFilter::Elastic(f) => f.contains_bytes(key),
        }
    }

    fn contains_batch_bytes(&self, keys: &[&[u8]]) -> Vec<bool> {
        match self {
            ServiceFilter::Fixed(f) => f.contains_batch_bytes(keys),
            ServiceFilter::Elastic(f) => f.contains_batch_bytes(keys),
        }
    }

    fn encode(&self) -> Vec<u8> {
        match self {
            ServiceFilter::Fixed(f) => f.encode(),
            ServiceFilter::Elastic(f) => f.encode(),
        }
    }

    /// Word-overflow refusals (the elastic pool absorbs overload into
    /// spill stores instead of refusing, so it reports none).
    fn overflows(&self) -> u64 {
        match self {
            ServiceFilter::Fixed(f) => f.overflows(),
            ServiceFilter::Elastic(_) => 0,
        }
    }
}

/// Work dispatched to a shard worker.
enum ShardJob {
    /// Log, apply, and acknowledge one WAL operation.
    Apply {
        op: WalOp,
        reply: Sender<ShardReply>,
    },
    /// Fsync this shard's WAL.
    Sync { reply: Sender<ShardReply> },
    /// Park at a checkpoint barrier (see [`Gate`]).
    Checkpoint(Arc<Gate>),
}

/// A worker's answer to an `Apply` or `Sync` job.
struct ShardReply {
    shard: usize,
    /// Per-key outcome codes, in the sub-batch's order. Empty for
    /// `Sync`.
    codes: Vec<u8>,
    /// A WAL failure. The op was NOT acknowledged as durable.
    error: Option<String>,
}

/// Checkpoint barrier shared by the coordinator and every worker.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    /// Each worker's sequence number at the instant it parked.
    seqs: Vec<u64>,
    arrived: usize,
    /// A worker's pre-barrier fsync failed; the snapshot must not claim
    /// its sequence.
    sync_failed: bool,
    /// Coordinator finished (snapshot written or abandoned).
    released: bool,
    /// Snapshot landed: workers may truncate their logs.
    truncate: bool,
}

impl Gate {
    fn new(shards: usize) -> Self {
        Gate {
            state: Mutex::new(GateState {
                seqs: vec![0; shards],
                arrived: 0,
                sync_failed: false,
                released: false,
                truncate: false,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Monotone counters surfaced on `/metrics` and `STATS`.
#[derive(Default)]
struct ServerCounters {
    connections: AtomicU64,
    frames: AtomicU64,
    bad_requests: AtomicU64,
    checkpoints: AtomicU64,
    /// Mutations refused with `RETRY_LATER` while a shard reorganised.
    shed: AtomicU64,
}

/// State shared by the acceptor, connection threads, and coordinator.
pub(crate) struct Shared {
    filter: ServiceFilter,
    /// Per-shard "reorganising" latches: raised by a shard worker from
    /// the moment it commits to a logged scale-up until the migration
    /// drains; dispatch sheds mutations for flagged shards.
    scaling: Vec<Arc<AtomicBool>>,
    /// Cleared at teardown so worker queues close once connection
    /// threads (which hold clones) have exited.
    shard_txs: Mutex<Vec<Sender<ShardJob>>>,
    snapshots: SnapshotStore,
    telemetry: Arc<Telemetry>,
    counters: ServerCounters,
    recovery: RecoveryReport,
    fsync_name: String,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    /// Wakes [`Server::wait`] when shutdown is requested.
    stop_signal: (Mutex<bool>, Condvar),
    /// Serialises checkpoints (two concurrent gates would deadlock the
    /// workers).
    checkpoint_lock: Mutex<()>,
    records_since_checkpoint: AtomicU64,
    snapshot_every: Option<u64>,
}

impl Shared {
    /// True once shutdown has been requested (polled by the metrics
    /// thread).
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// True while `shard`'s worker is scaling or compacting.
    fn is_scaling(&self, shard: usize) -> bool {
        self.scaling
            .get(shard)
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor if it is parked in accept().
        let _ = TcpStream::connect(self.local_addr);
        let (lock, cv) = &self.stop_signal;
        *lock.lock().expect("stop signal poisoned") = true;
        cv.notify_all();
    }

    /// Blocking checkpoint: barrier → snapshot → truncate.
    fn checkpoint(&self) -> Result<(), String> {
        let guard = self
            .checkpoint_lock
            .lock()
            .expect("checkpoint lock poisoned");
        self.checkpoint_locked(guard)
    }

    /// Opportunistic checkpoint after a mutation crossed the
    /// `snapshot_every` threshold; skips if one is already running.
    fn maybe_checkpoint(&self) {
        let Some(every) = self.snapshot_every else {
            return;
        };
        if self.records_since_checkpoint.load(Ordering::Relaxed) < every {
            return;
        }
        if let Ok(guard) = self.checkpoint_lock.try_lock() {
            let _ = self.checkpoint_locked(guard);
        }
    }

    fn checkpoint_locked(&self, _guard: MutexGuard<'_, ()>) -> Result<(), String> {
        let txs = self
            .shard_txs
            .lock()
            .expect("shard queues poisoned")
            .clone();
        if txs.is_empty() {
            return Err("server is stopping".into());
        }
        let gate = Arc::new(Gate::new(txs.len()));
        let mut sent = 0;
        let mut send_failed = false;
        for tx in &txs {
            if tx.send(ShardJob::Checkpoint(gate.clone())).is_ok() {
                sent += 1;
            } else {
                send_failed = true;
            }
        }
        let mut st = gate.state.lock().expect("gate poisoned");
        while st.arrived < sent {
            st = gate.cv.wait(st).expect("gate poisoned");
        }
        // Workers are parked: no writer can race the image capture.
        let result = if send_failed {
            Err("a shard worker is gone".to_string())
        } else if st.sync_failed {
            Err("a shard fsync failed; snapshot abandoned".to_string())
        } else {
            let envelope = encode_envelope(&st.seqs, &self.filter.encode());
            let snap_seq = st.seqs.iter().copied().max().unwrap_or(0);
            self.snapshots
                .write(snap_seq, &envelope)
                .and_then(|()| self.snapshots.purge_below(snap_seq))
                .map_err(|e| e.to_string())
        };
        st.truncate = result.is_ok();
        st.released = true;
        gate.cv.notify_all();
        drop(st);
        if result.is_ok() {
            self.records_since_checkpoint.store(0, Ordering::Relaxed);
            self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn stats_json(&self) -> String {
        let snap = self.telemetry.snapshot();
        let ops: u64 = snap.kinds().iter().map(|(_, k)| k.ops).sum();
        let r = &self.recovery;
        let elastic = match &self.filter {
            ServiceFilter::Fixed(_) => String::new(),
            ServiceFilter::Elastic(pool) => {
                let st = pool.stats();
                format!(
                    concat!(
                        ",\"elastic\":{{\"generations\":{},\"scale_events\":{},",
                        "\"compactions\":{},\"migrated_keys\":{},\"fpr_envelope\":{},",
                        "\"max_shard_fpr\":{},\"compacting_shards\":{},\"max_pressure\":{}}}"
                    ),
                    st.generations,
                    st.scale_events,
                    st.compactions,
                    st.migrated_keys,
                    st.fpr_envelope,
                    st.max_shard_fpr,
                    st.compacting_shards,
                    st.max_pressure,
                )
            }
        };
        format!(
            concat!(
                "{{\"shards\":{},\"mode\":\"{}\",\"fsync\":\"{}\",\"ops\":{},",
                "\"overflows\":{},\"connections\":{},\"frames\":{},\"bad_requests\":{},",
                "\"checkpoints\":{},\"shed\":{},",
                "\"recovery\":{{\"records_replayed\":{},\"ops_replayed\":{},",
                "\"torn_tails\":{},\"segments_dropped\":{},\"scrub_clean\":{}}}{}}}"
            ),
            self.filter.shard_count(),
            match &self.filter {
                ServiceFilter::Fixed(_) => "fixed",
                ServiceFilter::Elastic(_) => "elastic",
            },
            self.fsync_name,
            ops,
            self.filter.overflows(),
            self.counters.connections.load(Ordering::Relaxed),
            self.counters.frames.load(Ordering::Relaxed),
            self.counters.bad_requests.load(Ordering::Relaxed),
            self.counters.checkpoints.load(Ordering::Relaxed),
            self.counters.shed.load(Ordering::Relaxed),
            r.records_replayed,
            r.ops_replayed,
            r.torn_tails.len(),
            r.segments_dropped,
            r.scrub_clean,
            elastic,
        )
    }

    /// The Prometheus page: the telemetry snapshot plus server-side
    /// counters injected under the same namespace.
    pub(crate) fn metrics_page(&self) -> String {
        let mut snap = self.telemetry.snapshot();
        let c = &self.counters;
        snap.counters.insert(
            "server_connections".into(),
            c.connections.load(Ordering::Relaxed),
        );
        snap.counters
            .insert("server_frames".into(), c.frames.load(Ordering::Relaxed));
        snap.counters.insert(
            "server_bad_requests".into(),
            c.bad_requests.load(Ordering::Relaxed),
        );
        snap.counters.insert(
            "server_checkpoints".into(),
            c.checkpoints.load(Ordering::Relaxed),
        );
        snap.counters
            .insert("server_shed".into(), c.shed.load(Ordering::Relaxed));
        snap.gauges
            .insert("server_shards".into(), self.filter.shard_count() as f64);
        snap.gauges
            .insert("filter_overflows".into(), self.filter.overflows() as f64);
        if let ServiceFilter::Elastic(pool) = &self.filter {
            let st = pool.stats();
            snap.counters
                .insert("elastic_scale_events".into(), st.scale_events);
            snap.counters
                .insert("elastic_compactions".into(), st.compactions);
            snap.counters
                .insert("elastic_migrated_keys".into(), st.migrated_keys);
            snap.gauges
                .insert("elastic_generations".into(), st.generations as f64);
            snap.gauges
                .insert("elastic_fpr_envelope".into(), st.fpr_envelope);
            snap.gauges
                .insert("elastic_max_shard_fpr".into(), st.max_shard_fpr);
            snap.gauges.insert(
                "elastic_compacting_shards".into(),
                st.compacting_shards as f64,
            );
            snap.gauges
                .insert("elastic_max_pressure".into(), st.max_pressure);
        }
        mpcbf_telemetry::prometheus_text(&snap)
    }
}

/// One shard's single-writer loop: owns the WAL and sequence counter.
/// In elastic mode it also owns the shard's structural lifecycle: it
/// logs and applies scale-ups, and drains migrations between jobs.
struct ShardWorker {
    shard: usize,
    wal: Wal,
    seq: u64,
    filter: ServiceFilter,
    /// Shared with dispatch: raised while this shard reorganises.
    scaling: Arc<AtomicBool>,
}

impl ShardWorker {
    fn run(mut self, rx: Receiver<ShardJob>) {
        // Recovery may hand back a shard mid-migration; resume draining
        // (and shedding) instead of forgetting the in-flight work.
        if let ServiceFilter::Elastic(pool) = &self.filter {
            if pool.with_shard(self.shard, |f| f.compacting()) {
                self.scaling.store(true, Ordering::SeqCst);
            }
        }
        loop {
            let job = if self.scaling.load(Ordering::Relaxed) {
                // Interleave migration batches with queued work: a busy
                // queue still drains the migration one timeout at a
                // time, an idle one drains it at full speed.
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(job) => Some(job),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match rx.recv() {
                    Ok(job) => Some(job),
                    Err(_) => break,
                }
            };
            let Some(job) = job else {
                self.step_migration();
                continue;
            };
            match job {
                ShardJob::Apply { op, reply } => {
                    let record = WalRecord {
                        seq: self.seq + 1,
                        op,
                    };
                    match self.wal.append(&record) {
                        Ok(()) => {
                            self.seq += 1;
                            let codes = apply_codes(&self.filter, &record.op);
                            let _ = reply.send(ShardReply {
                                shard: self.shard,
                                codes,
                                error: None,
                            });
                            self.drive_capacity();
                        }
                        Err(e) => {
                            let _ = reply.send(ShardReply {
                                shard: self.shard,
                                codes: Vec::new(),
                                error: Some(e.to_string()),
                            });
                        }
                    }
                }
                ShardJob::Sync { reply } => {
                    let error = self.wal.sync().err().map(|e| e.to_string());
                    let _ = reply.send(ShardReply {
                        shard: self.shard,
                        codes: Vec::new(),
                        error,
                    });
                }
                ShardJob::Checkpoint(gate) => {
                    let synced = self.wal.sync().is_ok();
                    let truncate;
                    {
                        let mut st = gate.state.lock().expect("gate poisoned");
                        st.seqs[self.shard] = self.seq;
                        if !synced {
                            st.sync_failed = true;
                        }
                        st.arrived += 1;
                        gate.cv.notify_all();
                        while !st.released {
                            st = gate.cv.wait(st).expect("gate poisoned");
                        }
                        truncate = st.truncate;
                    }
                    if truncate {
                        let _ = self.wal.rotate(self.seq + 1);
                        let _ = self.wal.purge_below(self.seq + 1);
                    }
                }
            }
        }
        // Queue closed: graceful stop. Flush everything acknowledged
        // under a relaxed policy before the thread exits. An in-flight
        // migration is persisted by the teardown checkpoint's image and
        // resumes after recovery.
        let _ = self.wal.sync();
    }

    /// After a mutation lands: if the shard parked a scale plan, commit
    /// to it — log the exact spec, push the generation, log the
    /// compaction marker, start migrating — and raise the shed latch
    /// until the migration drains.
    fn drive_capacity(&mut self) {
        let ServiceFilter::Elastic(pool) = &self.filter else {
            return;
        };
        let Some(spec) = pool.with_shard(self.shard, |f| f.scale_plan()) else {
            return;
        };
        let scale = WalRecord {
            seq: self.seq + 1,
            op: WalOp::ScaleUp {
                memory_bits: spec.memory_bits,
                expected_items: spec.expected_items,
            },
        };
        if self.wal.append(&scale).is_err() {
            // The plan stays parked; the next mutation retries the log.
            return;
        }
        self.seq += 1;
        self.scaling.store(true, Ordering::SeqCst);
        // An unshapeable spec fails identically during replay, so the
        // log and the filter cannot disagree.
        let _ = pool.with_shard(self.shard, |f| f.apply_scale(&spec));
        let compact = WalRecord {
            seq: self.seq + 1,
            op: WalOp::Compact,
        };
        if self.wal.append(&compact).is_ok() {
            self.seq += 1;
            pool.with_shard(self.shard, |f| {
                f.begin_compaction();
            });
        }
        self.step_migration();
    }

    /// Moves one batch of keys into the active generation; drops the
    /// shed latch once the migration is drained.
    fn step_migration(&mut self) {
        let ServiceFilter::Elastic(pool) = &self.filter else {
            self.scaling.store(false, Ordering::SeqCst);
            return;
        };
        let still_going = pool.with_shard(self.shard, |f| {
            if f.compacting() {
                let batch = f.policy().compact_batch.max(64);
                f.step_compaction(batch);
            }
            f.compacting()
        });
        if !still_going {
            self.scaling.store(false, Ordering::SeqCst);
        }
    }
}

/// Applies a logged op to the filter, collecting per-key wire codes in
/// the op's own key order.
fn apply_codes(filter: &ServiceFilter, op: &WalOp) -> Vec<u8> {
    match (filter, op) {
        (ServiceFilter::Fixed(f), WalOp::Insert(key)) => vec![key_code(&f.insert_bytes(key))],
        (ServiceFilter::Fixed(f), WalOp::Remove(key)) => vec![key_code(&f.remove_bytes(key))],
        (ServiceFilter::Fixed(f), WalOp::InsertBatch(keys)) => {
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            f.insert_batch_bytes(&views).iter().map(key_code).collect()
        }
        (ServiceFilter::Fixed(f), WalOp::RemoveBatch(keys)) => {
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            f.remove_batch_bytes(&views).iter().map(key_code).collect()
        }
        (ServiceFilter::Elastic(f), WalOp::Insert(key)) => vec![key_code(&f.insert_bytes(key))],
        (ServiceFilter::Elastic(f), WalOp::Remove(key)) => vec![key_code(&f.remove_bytes(key))],
        (ServiceFilter::Elastic(f), WalOp::InsertBatch(keys)) => {
            keys.iter().map(|k| key_code(&f.insert_bytes(k))).collect()
        }
        (ServiceFilter::Elastic(f), WalOp::RemoveBatch(keys)) => {
            keys.iter().map(|k| key_code(&f.remove_bytes(k))).collect()
        }
        // Structural records are authored by the worker itself, never
        // dispatched as jobs; they only flow through recovery replay.
        (_, WalOp::ScaleUp { .. } | WalOp::Compact) => Vec::new(),
    }
}

/// A running filter server. Stop it with [`Server::shutdown`] (or send
/// the `SHUTDOWN` opcode and [`Server::wait`]).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    acceptor: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Recovers (or creates) the durable filter from
    /// `config.durability.dir`, binds the sockets, and spawns the shard
    /// workers, acceptor, and metrics threads.
    pub fn start(config: ServerConfig) -> Result<Server, ServerError> {
        let ServerConfig {
            addr,
            metrics_addr,
            durability,
            filter,
            shards,
            elastic,
        } = config;
        let fsync_name = durability.fsync.name();
        let snapshot_every = durability.snapshot_every;
        let (filter, wals, seqs, snapshots, recovery) = if elastic {
            let (durable, recovery) =
                DurableElasticSharded::<Murmur3>::open_or_recover(durability, || {
                    ElasticShardedMpcbf::manual(filter, shards, CapacityPolicy::default())
                        .expect("default capacity policy is valid")
                })?;
            let (pool, wals, seqs, snapshots) = durable.into_service_parts();
            (
                ServiceFilter::Elastic(Arc::new(pool)),
                wals,
                seqs,
                snapshots,
                recovery,
            )
        } else {
            let (durable, recovery) =
                DurableShardedMpcbf::<Murmur3>::open_or_recover(durability, || {
                    ShardedMpcbf::new(filter, shards)
                })?;
            let (pool, wals, seqs, snapshots) = durable.into_service_parts();
            (
                ServiceFilter::Fixed(Arc::new(pool)),
                wals,
                seqs,
                snapshots,
                recovery,
            )
        };
        let telemetry = Arc::new(Telemetry::new());
        recovery.record_to(&telemetry);

        let listener = TcpListener::bind(&addr)?;
        let local_addr = listener.local_addr()?;
        let metrics_listener = match &metrics_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let mut txs = Vec::with_capacity(wals.len());
        let mut workers = Vec::with_capacity(wals.len());
        let mut scaling = Vec::with_capacity(wals.len());
        for (shard, (wal, seq)) in wals.into_iter().zip(seqs).enumerate() {
            let (tx, rx) = channel();
            txs.push(tx);
            let flag = Arc::new(AtomicBool::new(false));
            scaling.push(flag.clone());
            let worker = ShardWorker {
                shard,
                wal,
                seq,
                filter: filter.clone(),
                scaling: flag,
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mpcbf-shard-{shard}"))
                    .spawn(move || worker.run(rx))?,
            );
        }

        let shared = Arc::new(Shared {
            filter,
            scaling,
            shard_txs: Mutex::new(txs),
            snapshots,
            telemetry,
            counters: ServerCounters::default(),
            recovery,
            fsync_name,
            local_addr,
            shutdown: AtomicBool::new(false),
            stop_signal: (Mutex::new(false), Condvar::new()),
            checkpoint_lock: Mutex::new(()),
            records_since_checkpoint: AtomicU64::new(0),
            snapshot_every,
        });

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("mpcbf-accept".into())
                .spawn(move || accept_loop(shared, listener, conns))?
        };
        let metrics_thread = match metrics_listener {
            Some(l) => {
                let shared = shared.clone();
                Some(
                    std::thread::Builder::new()
                        .name("mpcbf-metrics".into())
                        .spawn(move || metrics::serve(shared, l))?,
                )
            }
            None => None,
        };

        Ok(Server {
            shared,
            local_addr,
            metrics_addr,
            acceptor: Some(acceptor),
            metrics_thread,
            workers,
            conns,
        })
    }

    /// The bound filter-protocol address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound metrics address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// What recovery found at startup.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.shared.recovery
    }

    /// Asks the server to stop without blocking (pair with
    /// [`Server::wait`]).
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until shutdown is requested (by [`Self::request_shutdown`]
    /// or a client's `SHUTDOWN` frame), then tears down: final
    /// checkpoint, drain and join every thread, fsync every WAL.
    pub fn wait(mut self) -> Result<(), ServerError> {
        self.teardown();
        Ok(())
    }

    /// Requests shutdown and waits for the full teardown.
    pub fn shutdown(mut self) -> Result<(), ServerError> {
        self.shared.request_shutdown();
        self.teardown();
        Ok(())
    }

    fn teardown(&mut self) {
        {
            let (lock, cv) = &self.shared.stop_signal;
            let mut stopped = lock.lock().expect("stop signal poisoned");
            while !*stopped {
                stopped = cv.wait(stopped).expect("stop signal poisoned");
            }
        }
        // Bound the restart's replay; workers still serve queued jobs.
        let _ = self.shared.checkpoint();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let conn_handles: Vec<_> = self
            .conns
            .lock()
            .expect("connection registry poisoned")
            .drain(..)
            .collect();
        for h in conn_handles {
            let _ = h.join();
        }
        // All producers are gone; closing the queues lets each worker
        // drain, run its final fsync, and exit.
        self.shared
            .shard_txs
            .lock()
            .expect("shard queues poisoned")
            .clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_thread.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let sh = shared.clone();
        match std::thread::Builder::new()
            .name("mpcbf-conn".into())
            .spawn(move || handle_conn(sh, stream))
        {
            Ok(h) => conns.lock().expect("connection registry poisoned").push(h),
            Err(_) => continue,
        }
    }
}

/// How a blocking read over the shutdown-polling socket ended.
enum Fill {
    Complete,
    /// EOF at a frame boundary.
    CleanEof,
    /// EOF inside a frame — the peer vanished mid-request.
    TornEof,
    Shutdown,
}

fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> io::Result<Fill> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(Fill::Shutdown);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Fill::CleanEof
                } else {
                    Fill::TornEof
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Complete)
}

/// Reads one frame, polling the shutdown flag between partial reads.
/// `None` means close the connection (clean EOF, torn frame, hostile
/// length prefix, shutdown, or I/O error) — in every case without
/// panicking.
fn read_frame_polling(stream: &mut TcpStream, shutdown: &AtomicBool) -> Option<Vec<u8>> {
    let mut prefix = [0u8; 4];
    match read_full(stream, &mut prefix, shutdown) {
        Ok(Fill::Complete) => {}
        _ => return None,
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        // The stream is desynchronised beyond repair; drop it.
        return None;
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(stream, &mut payload, shutdown) {
        Ok(Fill::Complete) => Some(payload),
        _ => None,
    }
}

/// The suggested client backoff while a shard reorganises. Migration
/// batches drain on a millisecond cadence, so single-digit-millisecond
/// retries converge quickly without hammering the dispatch path.
const RETRY_AFTER_MS: u32 = 5;

fn shed_response() -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.push(STATUS_RETRY_LATER);
    out.extend_from_slice(&RETRY_AFTER_MS.to_le_bytes());
    out
}

fn error_response(status: u8, reason: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + reason.len());
    out.push(status);
    out.extend_from_slice(reason.as_bytes());
    out
}

fn handle_conn(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    loop {
        let Some(payload) = read_frame_polling(&mut stream, &shared.shutdown) else {
            return;
        };
        shared.counters.frames.fetch_add(1, Ordering::Relaxed);
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(reason) => {
                shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                // Framing is intact, so the connection survives a bad
                // payload.
                if write_frame(&mut stream, &error_response(STATUS_BAD_REQUEST, reason)).is_err() {
                    return;
                }
                continue;
            }
        };
        let shutdown_after = matches!(req, Request::Shutdown);
        let response = dispatch(&shared, req);
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
        if shutdown_after {
            shared.request_shutdown();
            return;
        }
    }
}

fn dispatch(shared: &Shared, req: Request) -> Vec<u8> {
    match req {
        Request::Ping => vec![STATUS_OK],
        Request::Query(key) => {
            let start = Instant::now();
            let present = shared.filter.contains_bytes(&key);
            shared.telemetry.record_batch(
                OpKind::Query,
                1,
                OpCost::zero(),
                start.elapsed().as_nanos() as u64,
            );
            vec![STATUS_OK, u8::from(present)]
        }
        Request::QueryBatch(keys) => {
            let start = Instant::now();
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let hits = shared.filter.contains_batch_bytes(&views);
            shared.telemetry.record_batch(
                OpKind::Query,
                hits.len() as u64,
                OpCost::zero(),
                start.elapsed().as_nanos() as u64,
            );
            let mut out = Vec::with_capacity(5 + hits.len());
            out.push(STATUS_OK);
            out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
            out.extend(hits.into_iter().map(u8::from));
            out
        }
        Request::Insert(key) => mutate_scalar(shared, key, true),
        Request::Remove(key) => mutate_scalar(shared, key, false),
        Request::InsertBatch(keys) => mutate_batch(shared, keys, true),
        Request::RemoveBatch(keys) => mutate_batch(shared, keys, false),
        Request::Stats => {
            let mut out = vec![STATUS_OK];
            out.extend_from_slice(shared.stats_json().as_bytes());
            out
        }
        Request::Checkpoint => match shared.checkpoint() {
            Ok(()) => vec![STATUS_OK],
            Err(reason) => error_response(STATUS_SERVER_ERROR, &reason),
        },
        Request::Flush => flush_all(shared),
        Request::Shutdown => vec![STATUS_OK],
    }
}

fn flush_all(shared: &Shared) -> Vec<u8> {
    let txs = shared
        .shard_txs
        .lock()
        .expect("shard queues poisoned")
        .clone();
    let (reply_tx, reply_rx) = channel();
    let mut pending = 0;
    for tx in &txs {
        if tx
            .send(ShardJob::Sync {
                reply: reply_tx.clone(),
            })
            .is_ok()
        {
            pending += 1;
        }
    }
    drop(reply_tx);
    if pending < txs.len() || txs.is_empty() {
        return error_response(STATUS_SERVER_ERROR, "a shard worker is gone");
    }
    for _ in 0..pending {
        match reply_rx.recv() {
            Ok(reply) => {
                if let Some(msg) = reply.error {
                    return error_response(STATUS_SERVER_ERROR, &msg);
                }
            }
            Err(_) => return error_response(STATUS_SERVER_ERROR, "a shard worker died"),
        }
    }
    vec![STATUS_OK]
}

fn mutate_scalar(shared: &Shared, key: Vec<u8>, insert: bool) -> Vec<u8> {
    let start = Instant::now();
    let kind = if insert {
        OpKind::Insert
    } else {
        OpKind::Remove
    };
    let shard = shared.filter.home_shard(&key);
    if shared.is_scaling(shard) {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        return shed_response();
    }
    let txs = shared
        .shard_txs
        .lock()
        .expect("shard queues poisoned")
        .clone();
    let Some(tx) = txs.get(shard) else {
        return error_response(STATUS_SERVER_ERROR, "server is stopping");
    };
    let op = if insert {
        WalOp::Insert(key)
    } else {
        WalOp::Remove(key)
    };
    let (reply_tx, reply_rx) = channel();
    if tx
        .send(ShardJob::Apply {
            op,
            reply: reply_tx,
        })
        .is_err()
    {
        return error_response(STATUS_SERVER_ERROR, "shard worker unavailable");
    }
    let response = match reply_rx.recv() {
        Ok(reply) => match reply.error {
            None => {
                let code = reply.codes.first().copied().unwrap_or(0);
                if code == KeyOutcome::Applied.code() {
                    vec![STATUS_OK]
                } else {
                    vec![STATUS_REFUSED, code]
                }
            }
            Some(msg) => error_response(STATUS_SERVER_ERROR, &msg),
        },
        Err(_) => error_response(STATUS_SERVER_ERROR, "shard worker died"),
    };
    shared
        .telemetry
        .record_batch(kind, 1, OpCost::zero(), start.elapsed().as_nanos() as u64);
    shared
        .records_since_checkpoint
        .fetch_add(1, Ordering::Relaxed);
    shared.maybe_checkpoint();
    response
}

fn mutate_batch(shared: &Shared, keys: Vec<Vec<u8>>, insert: bool) -> Vec<u8> {
    let start = Instant::now();
    let kind = if insert {
        OpKind::Insert
    } else {
        OpKind::Remove
    };
    let n = keys.len();
    let txs = shared
        .shard_txs
        .lock()
        .expect("shard queues poisoned")
        .clone();
    if txs.is_empty() {
        return error_response(STATUS_SERVER_ERROR, "server is stopping");
    }
    // Route each key to its home shard, remembering where it came from
    // so the reply codes land back in request order.
    let mut per_shard: Vec<Vec<Vec<u8>>> = vec![Vec::new(); txs.len()];
    let mut origin: Vec<Vec<u32>> = vec![Vec::new(); txs.len()];
    for (i, key) in keys.into_iter().enumerate() {
        let shard = shared.filter.home_shard(&key);
        per_shard[shard].push(key);
        origin[shard].push(i as u32);
    }
    // A batch is one all-or-nothing frame per shard: if any touched
    // shard is reorganising, shed the whole batch (partial acks would
    // force the client to split the batch to retry).
    if per_shard
        .iter()
        .enumerate()
        .any(|(shard, group)| !group.is_empty() && shared.is_scaling(shard))
    {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        return shed_response();
    }
    let (reply_tx, reply_rx) = channel();
    let mut pending = 0;
    for (shard, group) in per_shard.into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let op = if insert {
            WalOp::InsertBatch(group)
        } else {
            WalOp::RemoveBatch(group)
        };
        if txs[shard]
            .send(ShardJob::Apply {
                op,
                reply: reply_tx.clone(),
            })
            .is_err()
        {
            // Sub-batches already dispatched may still apply, but the
            // whole frame errors, so no key is acknowledged.
            return error_response(STATUS_SERVER_ERROR, "shard worker unavailable");
        }
        pending += 1;
    }
    drop(reply_tx);
    let mut codes = vec![0u8; n];
    let mut failed: Option<String> = None;
    for _ in 0..pending {
        match reply_rx.recv() {
            Ok(reply) => {
                if let Some(msg) = reply.error {
                    failed = Some(msg);
                    continue;
                }
                for (j, &ki) in origin[reply.shard].iter().enumerate() {
                    codes[ki as usize] = reply.codes.get(j).copied().unwrap_or(0);
                }
            }
            Err(_) => {
                failed = Some("shard worker died".into());
                break;
            }
        }
    }
    if let Some(msg) = failed {
        return error_response(STATUS_SERVER_ERROR, &msg);
    }
    shared.telemetry.record_batch(
        kind,
        n as u64,
        OpCost::zero(),
        start.elapsed().as_nanos() as u64,
    );
    shared
        .records_since_checkpoint
        .fetch_add(n as u64, Ordering::Relaxed);
    shared.maybe_checkpoint();
    let mut out = Vec::with_capacity(5 + n);
    out.push(STATUS_OK);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&codes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use mpcbf_durability::FsyncPolicy;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "mpcbf-server-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn test_config(dir: &std::path::Path) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: Some("127.0.0.1:0".into()),
            durability: DurabilityOptions::new(dir).fsync(FsyncPolicy::EveryN(64)),
            filter: MpcbfConfig::builder()
                .memory_bits(400_000)
                .expected_items(4_000)
                .hashes(3)
                .seed(77)
                .build()
                .expect("test config"),
            shards: 4,
            elastic: false,
        }
    }

    #[test]
    fn end_to_end_roundtrip_checkpoint_and_recovery() {
        let dir = scratch_dir("e2e");
        let addr;
        {
            let server = Server::start(test_config(&dir)).expect("start");
            addr = server.local_addr();
            let mut client = Client::connect(addr).expect("connect");
            client.ping().expect("ping");

            assert!(client.insert(b"alice").expect("insert").is_applied());
            assert!(client.insert(b"bob").expect("insert").is_applied());
            assert!(client.query(b"alice").expect("query"));
            assert!(!client.query(b"carol-not-here").expect("query"));

            let keys: Vec<Vec<u8>> = (0..200u32)
                .map(|i| format!("batch-key-{i}").into_bytes())
                .collect();
            let outcomes = client.insert_batch(&keys).expect("insert batch");
            assert_eq!(outcomes.len(), keys.len());
            assert!(outcomes.iter().all(|o| o.is_applied()));
            let hits = client.query_batch(&keys).expect("query batch");
            assert!(hits.iter().all(|&h| h));

            // Remove half the batch; the rest must survive.
            let gone: Vec<Vec<u8>> = keys[..100].to_vec();
            let outcomes = client.remove_batch(&gone).expect("remove batch");
            assert!(outcomes.iter().all(|o| o.is_applied()));

            assert!(!client
                .remove(b"never-inserted-key")
                .expect("remove")
                .is_applied());

            let stats = client.stats_json().expect("stats");
            assert!(stats.contains("\"shards\":4"), "{stats}");

            client.flush().expect("flush");
            client.checkpoint().expect("checkpoint");

            // Metrics endpoint serves the injected counters.
            let page =
                metrics::http_get_text(server.metrics_addr().expect("metrics addr"), "/metrics")
                    .expect("metrics page");
            assert!(page.contains("mpcbf_server_frames_total"), "{page}");
            assert!(page.contains("mpcbf_server_shards"), "{page}");

            client.shutdown_server().expect("shutdown frame");
            server.wait().expect("teardown");
        }

        // Everything acknowledged must survive the restart.
        let server = Server::start(test_config(&dir)).expect("restart");
        assert!(server.recovery_report().scrub_clean);
        let mut client = Client::connect(server.local_addr()).expect("reconnect");
        assert!(client.query(b"alice").expect("query"));
        assert!(client.query(b"bob").expect("query"));
        for i in 100..200u32 {
            let key = format!("batch-key-{i}").into_bytes();
            assert!(client.query(&key).expect("query"), "lost batch-key-{i}");
        }
        server.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn elastic_server_scales_sheds_and_recovers() {
        let dir = scratch_dir("elastic");
        let config = || ServerConfig {
            elastic: true,
            // Small geometry so a few thousand keys are a 10x overload.
            filter: MpcbfConfig::builder()
                .memory_bits(131_072)
                .expected_items(2_000)
                .hashes(3)
                .seed(91)
                .build()
                .expect("elastic test config"),
            shards: 2,
            ..test_config(&dir)
        };
        let total = 20_000u64;
        {
            let server = Server::start(config()).expect("start");
            let mut client = Client::connect(server.local_addr()).expect("connect");
            // The client's RETRY_LATER backoff must absorb every shed:
            // all inserts eventually ack even while shards reorganise.
            for i in 0..total {
                assert!(
                    client
                        .insert(&i.to_le_bytes())
                        .expect("insert")
                        .is_applied(),
                    "insert {i} not applied"
                );
            }
            let stats = client.stats_json().expect("stats");
            assert!(stats.contains("\"mode\":\"elastic\""), "{stats}");
            assert!(stats.contains("\"scale_events\":"), "{stats}");
            let scale_events: u64 = stats
                .split("\"scale_events\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|v| v.parse().ok())
                .expect("scale_events in stats");
            assert!(scale_events > 0, "10x overload must scale: {stats}");
            let shed: u64 = stats
                .split("\"shed\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|v| v.parse().ok())
                .expect("shed counter in stats");
            assert!(
                shed > 0,
                "reorganising shards must shed at least one mutation: {stats}"
            );
            for i in 0..total {
                assert!(client.query(&i.to_le_bytes()).expect("query"), "FN {i}");
            }
            client.shutdown_server().expect("shutdown frame");
            server.wait().expect("teardown");
        }

        // Every acked key survives the restart with the scaled stacks.
        let server = Server::start(config()).expect("restart");
        assert!(server.recovery_report().scrub_clean);
        let mut client = Client::connect(server.local_addr()).expect("reconnect");
        let stats = client.stats_json().expect("stats");
        assert!(stats.contains("\"mode\":\"elastic\""), "{stats}");
        for i in 0..total {
            assert!(
                client.query(&i.to_le_bytes()).expect("query"),
                "lost key {i} across restart"
            );
        }
        server.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_clients_see_consistent_acks() {
        let dir = scratch_dir("concurrent");
        let server = Server::start(test_config(&dir)).expect("start");
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let keys: Vec<Vec<u8>> = (0..250u32)
                        .map(|i| format!("client-{t}-key-{i}").into_bytes())
                        .collect();
                    for chunk in keys.chunks(50) {
                        let outcomes = client.insert_batch(chunk).expect("insert");
                        assert!(outcomes.iter().all(|o| o.is_applied()));
                    }
                    let hits = client.query_batch(&keys).expect("query");
                    assert!(hits.iter().all(|&h| h));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        server.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
