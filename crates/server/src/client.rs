//! Blocking client for the filter protocol.
//!
//! One request in flight per connection; open several [`Client`]s for
//! concurrency. Scalar mutations return a [`KeyOutcome`] (an `Overflow`
//! refusal is an answer, not an error); transport and server failures
//! surface as [`ClientError`].
//!
//! # Retries
//!
//! The client retries under a bounded exponential backoff with jitter,
//! configured by [`ClientConfig`]:
//!
//! * **`RETRY_LATER`** (a shard reorganising behind a scale-up) retries
//!   every request kind — the server applied nothing, so resending is
//!   always safe. The server's suggested delay is the backoff floor.
//! * **Transport errors** retry *idempotent reads only* (`ping`,
//!   `query`, `query_batch`, `stats`), reconnecting first. A mutation
//!   whose connection died mid-call is **not** retried: the ack was
//!   lost, not the outcome, and a blind resend could double-apply to a
//!   counting filter. Mutations only retry connection-level failures
//!   before a frame is acked via the initial `connect` path.

use crate::protocol::{
    encode_request, read_frame, write_frame, KeyOutcome, Request, STATUS_OK, STATUS_REFUSED,
    STATUS_RETRY_LATER,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors surfaced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-call.
    Io(io::Error),
    /// The server answered with an error status.
    Server {
        /// The wire status byte (`STATUS_BAD_REQUEST`, …).
        status: u8,
        /// The server's human-readable reason.
        message: String,
    },
    /// The response payload did not match the protocol.
    Protocol(&'static str),
    /// Every retry was shed with `RETRY_LATER`; the shard is still
    /// reorganising. Nothing was applied — the caller may retry later.
    Overloaded {
        /// The server's last suggested delay, in milliseconds.
        retry_after_ms: u32,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server error (status {status}): {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server shedding load (retry after {retry_after_ms} ms)")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Connection and retry tuning for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout (`None`: the OS default).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout per response (`None`: block forever).
    pub read_timeout: Option<Duration>,
    /// Retries after the first attempt (`0`: fail immediately).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for the jitter PRNG (decorrelates clients that fail
    /// together).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: None,
            max_retries: 4,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            jitter_seed: 0x9e37_79b9_7f4a_7c15 ^ std::process::id() as u64,
        }
    }
}

/// A blocking connection to a filter server.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
    /// xorshift64 state for backoff jitter.
    rng: u64,
}

impl Client {
    /// Connects with the default [`ClientConfig`] (5 s connect timeout,
    /// 4 retries, 10 ms–1 s backoff).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts and retry tuning.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let stream = open_stream(addr, &config)?;
        let rng = if config.jitter_seed == 0 {
            1
        } else {
            config.jitter_seed
        };
        Ok(Client {
            stream,
            addr,
            config,
            rng,
        })
    }

    /// The retry configuration in effect.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Replaces the dead stream with a fresh connection.
    fn reconnect(&mut self) -> io::Result<()> {
        self.stream = open_stream(self.addr, &self.config)?;
        Ok(())
    }

    fn jitter(&mut self) -> f64 {
        // xorshift64: cheap, seedable, no external dependency.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bounded exponential backoff: `base * 2^attempt`, capped, floored
    /// at the server's hint, with ±50% multiplicative jitter.
    fn backoff(&mut self, attempt: u32, hint_ms: u32) {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.config.backoff_max);
        let floor = Duration::from_millis(u64::from(hint_ms));
        let delay = exp.max(floor);
        let jittered = delay.mul_f64(0.5 + self.jitter());
        std::thread::sleep(jittered.min(self.config.backoff_max.max(floor)));
    }

    /// One attempt: write the frame, read the reply.
    fn call_once(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(payload),
            None => Err(ClientError::Protocol("server closed the connection")),
        }
    }

    /// Retrying call. `RETRY_LATER` retries for every request kind
    /// (nothing was applied); transport errors retry (with a
    /// reconnect) only when `retry_io` — the idempotent reads.
    fn call(&mut self, req: &Request, retry_io: bool) -> Result<Vec<u8>, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.call_once(req) {
                Ok(payload) => {
                    if payload.first() == Some(&STATUS_RETRY_LATER) {
                        let hint = parse_retry_hint(&payload[1..]);
                        if attempt >= self.config.max_retries {
                            return Err(ClientError::Overloaded {
                                retry_after_ms: hint,
                            });
                        }
                        self.backoff(attempt, hint);
                        attempt += 1;
                        continue;
                    }
                    return Ok(payload);
                }
                Err(ClientError::Io(e)) => {
                    if !retry_io || attempt >= self.config.max_retries {
                        return Err(ClientError::Io(e));
                    }
                    self.backoff(attempt, 0);
                    attempt += 1;
                    self.reconnect()?;
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Calls and peels the status byte, turning non-OK/REFUSED statuses
    /// into [`ClientError::Server`].
    fn call_ok(&mut self, req: &Request, retry_io: bool) -> Result<Vec<u8>, ClientError> {
        let payload = self.call(req, retry_io)?;
        let (&status, body) = payload
            .split_first()
            .ok_or(ClientError::Protocol("empty response"))?;
        if status == STATUS_OK {
            Ok(body.to_vec())
        } else {
            Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(body).into_owned(),
            })
        }
    }

    /// A scalar mutation: OK → `Applied`, REFUSED → the carried code.
    fn mutate(&mut self, req: &Request) -> Result<KeyOutcome, ClientError> {
        let payload = self.call(req, false)?;
        match payload.split_first() {
            Some((&STATUS_OK, _)) => Ok(KeyOutcome::Applied),
            Some((&STATUS_REFUSED, body)) => body
                .first()
                .and_then(|&c| KeyOutcome::from_code(c))
                .ok_or(ClientError::Protocol("bad refusal code")),
            Some((&status, body)) => Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(body).into_owned(),
            }),
            None => Err(ClientError::Protocol("empty response")),
        }
    }

    fn batch_codes(&mut self, req: &Request, n: usize) -> Result<Vec<KeyOutcome>, ClientError> {
        let body = self.call_ok(req, false)?;
        let codes = decode_counted(&body, n)?;
        codes
            .iter()
            .map(|&c| KeyOutcome::from_code(c).ok_or(ClientError::Protocol("bad outcome code")))
            .collect()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call_ok(&Request::Ping, true).map(|_| ())
    }

    /// Inserts one key; acknowledged as durable per the server's fsync
    /// policy once this returns `Applied`.
    pub fn insert(&mut self, key: &[u8]) -> Result<KeyOutcome, ClientError> {
        self.mutate(&Request::Insert(key.to_vec()))
    }

    /// Removes one key.
    pub fn remove(&mut self, key: &[u8]) -> Result<KeyOutcome, ClientError> {
        self.mutate(&Request::Remove(key.to_vec()))
    }

    /// Membership query.
    pub fn query(&mut self, key: &[u8]) -> Result<bool, ClientError> {
        let body = self.call_ok(&Request::Query(key.to_vec()), true)?;
        match body.first() {
            Some(&b) => Ok(b != 0),
            None => Err(ClientError::Protocol("missing presence byte")),
        }
    }

    /// Inserts a batch; one outcome per key, in request order.
    pub fn insert_batch(&mut self, keys: &[Vec<u8>]) -> Result<Vec<KeyOutcome>, ClientError> {
        self.batch_codes(&Request::InsertBatch(keys.to_vec()), keys.len())
    }

    /// Removes a batch.
    pub fn remove_batch(&mut self, keys: &[Vec<u8>]) -> Result<Vec<KeyOutcome>, ClientError> {
        self.batch_codes(&Request::RemoveBatch(keys.to_vec()), keys.len())
    }

    /// Queries a batch; one presence flag per key, in request order.
    pub fn query_batch(&mut self, keys: &[Vec<u8>]) -> Result<Vec<bool>, ClientError> {
        let body = self.call_ok(&Request::QueryBatch(keys.to_vec()), true)?;
        Ok(decode_counted(&body, keys.len())?
            .iter()
            .map(|&b| b != 0)
            .collect())
    }

    /// Server and recovery statistics as a JSON document.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        let body = self.call_ok(&Request::Stats, true)?;
        String::from_utf8(body).map_err(|_| ClientError::Protocol("stats not utf-8"))
    }

    /// Forces a snapshot checkpoint (fsync + snapshot + log truncation).
    pub fn checkpoint(&mut self) -> Result<(), ClientError> {
        self.call_ok(&Request::Checkpoint, false).map(|_| ())
    }

    /// Fsyncs every shard's WAL without snapshotting.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.call_ok(&Request::Flush, false).map(|_| ())
    }

    /// Asks the server to stop gracefully (acknowledged before the stop
    /// begins).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call_ok(&Request::Shutdown, false).map(|_| ())
    }
}

/// Opens a TCP stream per the config: connect-timeout when configured,
/// Nagle off (the protocol is request/response), read timeout applied.
fn open_stream(addr: SocketAddr, config: &ClientConfig) -> io::Result<TcpStream> {
    let stream = match config.connect_timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    Ok(stream)
}

/// The `RETRY_LATER` body: a `u32` delay hint; a malformed body is a
/// zero hint (the backoff schedule still applies).
fn parse_retry_hint(body: &[u8]) -> u32 {
    body.first_chunk::<4>()
        .map(|b| u32::from_le_bytes(*b))
        .unwrap_or(0)
}

/// Parses a `u32 n | n bytes` body and checks it matches the request.
fn decode_counted(body: &[u8], expect: usize) -> Result<&[u8], ClientError> {
    let (head, rest) = body
        .split_first_chunk::<4>()
        .ok_or(ClientError::Protocol("missing count"))?;
    let n = u32::from_le_bytes(*head) as usize;
    if n != expect || rest.len() != n {
        return Err(ClientError::Protocol("count mismatch"));
    }
    Ok(rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_bounded() {
        let c = ClientConfig::default();
        assert!(c.max_retries > 0);
        assert!(c.backoff_base <= c.backoff_max);
        assert!(c.connect_timeout.is_some());
    }

    #[test]
    fn retry_hint_parse_is_total() {
        assert_eq!(parse_retry_hint(&[]), 0);
        assert_eq!(parse_retry_hint(&[5]), 0);
        assert_eq!(parse_retry_hint(&7u32.to_le_bytes()), 7);
        assert_eq!(parse_retry_hint(&[1, 0, 0, 0, 99]), 1);
    }
}
