//! Blocking client for the filter protocol.
//!
//! One request in flight per connection; open several [`Client`]s for
//! concurrency. Scalar mutations return a [`KeyOutcome`] (an `Overflow`
//! refusal is an answer, not an error); transport and server failures
//! surface as [`ClientError`].

use crate::protocol::{
    encode_request, read_frame, write_frame, KeyOutcome, Request, STATUS_OK, STATUS_REFUSED,
};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Errors surfaced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-call.
    Io(io::Error),
    /// The server answered with an error status.
    Server {
        /// The wire status byte (`STATUS_BAD_REQUEST`, …).
        status: u8,
        /// The server's human-readable reason.
        message: String,
    },
    /// The response payload did not match the protocol.
    Protocol(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server error (status {status}): {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a filter server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with Nagle disabled (the protocol is request/response).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(payload),
            None => Err(ClientError::Protocol("server closed the connection")),
        }
    }

    /// Calls and peels the status byte, turning non-OK/REFUSED statuses
    /// into [`ClientError::Server`].
    fn call_ok(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        let payload = self.call(req)?;
        let (&status, body) = payload
            .split_first()
            .ok_or(ClientError::Protocol("empty response"))?;
        if status == STATUS_OK {
            Ok(body.to_vec())
        } else {
            Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(body).into_owned(),
            })
        }
    }

    /// A scalar mutation: OK → `Applied`, REFUSED → the carried code.
    fn mutate(&mut self, req: &Request) -> Result<KeyOutcome, ClientError> {
        let payload = self.call(req)?;
        match payload.split_first() {
            Some((&STATUS_OK, _)) => Ok(KeyOutcome::Applied),
            Some((&STATUS_REFUSED, body)) => body
                .first()
                .and_then(|&c| KeyOutcome::from_code(c))
                .ok_or(ClientError::Protocol("bad refusal code")),
            Some((&status, body)) => Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(body).into_owned(),
            }),
            None => Err(ClientError::Protocol("empty response")),
        }
    }

    fn batch_codes(&mut self, req: &Request, n: usize) -> Result<Vec<KeyOutcome>, ClientError> {
        let body = self.call_ok(req)?;
        let codes = decode_counted(&body, n)?;
        codes
            .iter()
            .map(|&c| KeyOutcome::from_code(c).ok_or(ClientError::Protocol("bad outcome code")))
            .collect()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call_ok(&Request::Ping).map(|_| ())
    }

    /// Inserts one key; acknowledged as durable per the server's fsync
    /// policy once this returns `Applied`.
    pub fn insert(&mut self, key: &[u8]) -> Result<KeyOutcome, ClientError> {
        self.mutate(&Request::Insert(key.to_vec()))
    }

    /// Removes one key.
    pub fn remove(&mut self, key: &[u8]) -> Result<KeyOutcome, ClientError> {
        self.mutate(&Request::Remove(key.to_vec()))
    }

    /// Membership query.
    pub fn query(&mut self, key: &[u8]) -> Result<bool, ClientError> {
        let body = self.call_ok(&Request::Query(key.to_vec()))?;
        match body.first() {
            Some(&b) => Ok(b != 0),
            None => Err(ClientError::Protocol("missing presence byte")),
        }
    }

    /// Inserts a batch; one outcome per key, in request order.
    pub fn insert_batch(&mut self, keys: &[Vec<u8>]) -> Result<Vec<KeyOutcome>, ClientError> {
        self.batch_codes(&Request::InsertBatch(keys.to_vec()), keys.len())
    }

    /// Removes a batch.
    pub fn remove_batch(&mut self, keys: &[Vec<u8>]) -> Result<Vec<KeyOutcome>, ClientError> {
        self.batch_codes(&Request::RemoveBatch(keys.to_vec()), keys.len())
    }

    /// Queries a batch; one presence flag per key, in request order.
    pub fn query_batch(&mut self, keys: &[Vec<u8>]) -> Result<Vec<bool>, ClientError> {
        let body = self.call_ok(&Request::QueryBatch(keys.to_vec()))?;
        Ok(decode_counted(&body, keys.len())?
            .iter()
            .map(|&b| b != 0)
            .collect())
    }

    /// Server and recovery statistics as a JSON document.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        let body = self.call_ok(&Request::Stats)?;
        String::from_utf8(body).map_err(|_| ClientError::Protocol("stats not utf-8"))
    }

    /// Forces a snapshot checkpoint (fsync + snapshot + log truncation).
    pub fn checkpoint(&mut self) -> Result<(), ClientError> {
        self.call_ok(&Request::Checkpoint).map(|_| ())
    }

    /// Fsyncs every shard's WAL without snapshotting.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.call_ok(&Request::Flush).map(|_| ())
    }

    /// Asks the server to stop gracefully (acknowledged before the stop
    /// begins).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call_ok(&Request::Shutdown).map(|_| ())
    }
}

/// Parses a `u32 n | n bytes` body and checks it matches the request.
fn decode_counted(body: &[u8], expect: usize) -> Result<&[u8], ClientError> {
    let (head, rest) = body
        .split_first_chunk::<4>()
        .ok_or(ClientError::Protocol("missing count"))?;
    let n = u32::from_le_bytes(*head) as usize;
    if n != expect || rest.len() != n {
        return Err(ClientError::Protocol("count mismatch"));
    }
    Ok(rest)
}
