//! Filter-as-a-service: a durable, multi-core TCP front-end for the
//! multi-partitioned counting Bloom filter.
//!
//! The server wraps [`mpcbf_durability`]'s sharded WAL in a
//! thread-per-shard service: connection threads answer queries straight
//! from the shared lock-striped filter, while mutations route (by the
//! same top-digest-bit rule the filter shards on) to the one worker
//! thread that owns that shard's write-ahead log. An acknowledgement
//! therefore always means "logged under the configured
//! [`FsyncPolicy`](mpcbf_durability::FsyncPolicy)" — after a crash,
//! [`Server::start`] replays the logs and every acked key answers
//! present again.
//!
//! * [`Server`] / [`ServerConfig`] — the service itself.
//! * [`Client`] — a blocking connection speaking the frame protocol.
//! * [`protocol`] — the wire format: length-prefixed frames, total
//!   parsing, hard size ceilings.
//! * `/metrics` — an optional HTTP listener serving the Prometheus page.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod metrics;
pub mod protocol;
mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use metrics::http_get_text;
pub use protocol::KeyOutcome;
pub use server::{Server, ServerConfig, ServerError};
