//! Sharded elastic MPCBF: per-shard generation stacks and scale decisions.
//!
//! [`ElasticShardedMpcbf`] partitions the key space across a power-of-two
//! pool of independent [`ElasticMpcbf`] stacks, each guarded by one
//! [`parking_lot::Mutex`]. Keys route by the top [`SHARD_BITS`] bits of a
//! 128-bit digest keyed by the *wrapper* seed — the same disjoint-field
//! idiom as [`ShardedMpcbf`](crate::sharded::ShardedMpcbf) — while each
//! shard's generations hash with their own derived seeds, so routing
//! reveals nothing about in-shard placement.
//!
//! Capacity management is **per shard**: a hot shard scales up and
//! compacts on its own schedule while cold shards stay at their base
//! size, which is exactly what skewed traffic needs (uniform scaling
//! would pay the worst shard's memory everywhere). A scalar operation
//! takes one lock; [`ElasticShardedMpcbf::with_shard`] exposes the locked
//! stack directly so a serving layer can drive manual-mode scale and
//! compaction events under its own write-ahead log.

use mpcbf_core::codec::{self, CodecError};
use mpcbf_core::config::MpcbfConfig;
use mpcbf_core::elastic::ElasticMpcbf;
use mpcbf_core::policy::CapacityPolicy;
use mpcbf_core::{CountingFilter, Filter, FilterError};
use mpcbf_hash::{Hasher128, Murmur3};
use parking_lot::Mutex;

use crate::sharded::SHARD_BITS;

/// Salt folded into per-shard base seeds so every shard's generation
/// stack hashes independently of its siblings and of the router.
const ELASTIC_SHARD_SALT: u64 = 0x454c_5348_4152_4421; // "ELSHARD!"

/// splitmix64 finalizer, decorrelating shard indices into seed material.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Aggregate capacity snapshot across every shard's generation stack.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ElasticStats {
    /// Net elements stored across all shards.
    pub items: u64,
    /// Live generations summed over shards.
    pub generations: u64,
    /// Lifetime scale-up events summed over shards.
    pub scale_events: u64,
    /// Lifetime completed compactions summed over shards.
    pub compactions: u64,
    /// Lifetime keys migrated by compaction summed over shards.
    pub migrated_keys: u64,
    /// Sum of per-shard analytic FPR envelopes. A key is only ever
    /// queried against its home shard, so the *served* FPR bound is the
    /// worst single shard ([`ElasticStats::max_shard_fpr`]); the sum is
    /// the conservative whole-pool figure exported as a gauge.
    pub fpr_envelope: f64,
    /// Largest per-shard analytic FPR envelope — the bound a query
    /// actually experiences.
    pub max_shard_fpr: f64,
    /// Shards with a compaction currently in flight.
    pub compacting_shards: u64,
    /// Worst per-shard active-generation pressure.
    pub max_pressure: f64,
}

/// A thread-safe elastic MPCBF: per-shard generation stacks with
/// independent scale decisions.
pub struct ElasticShardedMpcbf<H: Hasher128 = Murmur3> {
    shards: Vec<Mutex<ElasticMpcbf<H>>>,
    shard_mask: u64,
    seed: u64,
}

impl<H: Hasher128> ElasticShardedMpcbf<H> {
    /// Creates an autoscaling pool: `config`'s memory and expected-items
    /// budgets are split evenly across the shards (rounded up to a power
    /// of two, capped at `2^SHARD_BITS`), and each shard scales itself
    /// inline with the default [`CapacityPolicy`].
    pub fn new(config: MpcbfConfig, shards: usize) -> Self {
        Self::build(config, shards, CapacityPolicy::default(), true)
            .expect("default CapacityPolicy is valid")
    }

    /// Creates a *manually driven* pool: shards park scale plans and the
    /// caller drives `apply_scale`/`begin_compaction`/`step_compaction`
    /// through [`ElasticShardedMpcbf::with_shard`] — the mode a durable
    /// server uses so every structural event is WAL-logged first.
    pub fn manual(
        config: MpcbfConfig,
        shards: usize,
        policy: CapacityPolicy,
    ) -> Result<Self, &'static str> {
        Self::build(config, shards, policy, false)
    }

    fn build(
        config: MpcbfConfig,
        shards: usize,
        policy: CapacityPolicy,
        auto: bool,
    ) -> Result<Self, &'static str> {
        let count = shards.next_power_of_two().clamp(1, 1usize << SHARD_BITS);
        let shape = config.shape();
        let word = u64::from(shape.w);
        let per_shard_bits = ((shape.l * word).div_ceil(count as u64)).max(2 * word);
        let per_shard_items = config.expected_items().div_ceil(count as u64).max(1);
        let seed = config.seed();
        let mut pool = Vec::with_capacity(count);
        for shard in 0..count as u64 {
            let shard_config = MpcbfConfig::builder()
                .memory_bits(per_shard_bits)
                .expected_items(per_shard_items)
                .hashes(shape.k)
                .accesses(shape.g)
                .word_bits(shape.w)
                .seed(seed ^ mix64(ELASTIC_SHARD_SALT.wrapping_add(shard)))
                .build()
                .or_else(|_| {
                    MpcbfConfig::builder()
                        .memory_bits(per_shard_bits)
                        .expected_items(per_shard_items)
                        .hashes(shape.k)
                        .accesses(shape.g)
                        .word_bits(shape.w)
                        .n_max(shape.n_max)
                        .seed(seed ^ mix64(ELASTIC_SHARD_SALT.wrapping_add(shard)))
                        .build()
                })
                .map_err(|_| "per-shard configuration cannot shape a generation")?;
            let elastic = if auto {
                ElasticMpcbf::with_policy(shard_config, policy)?
            } else {
                ElasticMpcbf::manual(shard_config, policy)?
            };
            pool.push(Mutex::new(elastic));
        }
        Ok(ElasticShardedMpcbf {
            shards: pool,
            shard_mask: count as u64 - 1,
            seed,
        })
    }

    /// Rebuilds the pool from decoded shard stacks (codec path).
    fn from_shards(shards: Vec<ElasticMpcbf<H>>, seed: u64) -> Self {
        let mask = shards.len() as u64 - 1;
        ElasticShardedMpcbf {
            shards: shards.into_iter().map(Mutex::new).collect(),
            shard_mask: mask,
            seed,
        }
    }

    /// Number of shards in the pool.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The wrapper's routing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard that owns `key`: the top [`SHARD_BITS`] digest bits,
    /// masked to the pool size.
    pub fn home_shard(&self, key: &[u8]) -> usize {
        let digest = H::hash128(self.seed, key);
        (((digest >> (128 - SHARD_BITS)) as u64) & self.shard_mask) as usize
    }

    /// Runs `f` with shard `shard`'s generation stack locked — the
    /// escape hatch a serving layer uses to drive manual-mode scale and
    /// compaction events.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut ElasticMpcbf<H>) -> R) -> R {
        let mut guard = self.shards[shard].lock();
        f(&mut guard)
    }

    /// True if `key`'s home shard currently holds it.
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        let shard = self.home_shard(key);
        self.shards[shard].lock().contains_bytes(key)
    }

    /// Inserts `key` into its home shard (lossless; the shard scales
    /// itself inline in auto mode).
    pub fn insert_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let shard = self.home_shard(key);
        self.shards[shard].lock().insert_bytes(key)
    }

    /// Removes one copy of `key` from its home shard.
    pub fn remove_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let shard = self.home_shard(key);
        self.shards[shard].lock().remove_bytes(key)
    }

    /// Batch query: each key probes its home shard. Locks are taken per
    /// key (elastic shards mutate under compaction too often for the
    /// fused run-grouping of the fixed-size pool to pay off).
    pub fn contains_batch_bytes(&self, keys: &[&[u8]]) -> Vec<bool> {
        keys.iter().map(|k| self.contains_bytes(k)).collect()
    }

    /// Net elements stored across all shards.
    pub fn items(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().items()).sum()
    }

    /// Aggregate capacity snapshot across the pool.
    pub fn stats(&self) -> ElasticStats {
        let mut out = ElasticStats::default();
        for shard in &self.shards {
            let f = shard.lock();
            out.items += f.items();
            out.generations += f.generation_count() as u64;
            out.scale_events += f.scale_events();
            out.compactions += f.compactions();
            out.migrated_keys += f.migrated_keys();
            let fpr = f.fpr_envelope();
            out.fpr_envelope += fpr;
            out.max_shard_fpr = out.max_shard_fpr.max(fpr);
            if f.compacting() {
                out.compacting_shards += 1;
            }
            out.max_pressure = out.max_pressure.max(f.pressure());
        }
        out
    }

    /// Structural self-check across every shard's generation stack.
    pub fn verify(&self) -> Result<(), FilterError> {
        for shard in &self.shards {
            shard.lock().verify()?;
        }
        Ok(())
    }

    /// Encodes the whole pool — router header plus every shard's elastic
    /// image — into one framed image
    /// (kind [`codec::KIND_ELASTIC_SHARDED`]). Deterministic: shard
    /// images are emitted in index order and each is itself
    /// deterministic.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = codec::Writer::new(codec::KIND_ELASTIC_SHARDED);
        w.u64(self.seed);
        w.u32(self.shards.len() as u32);
        for shard in &self.shards {
            let image = shard.lock().encode();
            w.u64(image.len() as u64);
            w.bytes(&image);
        }
        w.finish()
    }

    /// Decodes a pool previously produced by
    /// [`ElasticShardedMpcbf::encode`]. Every nested elastic image
    /// revalidates its own envelope and invariants.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = codec::Reader::open(buf, codec::KIND_ELASTIC_SHARDED)?;
        let seed = r.u64()?;
        let count = r.u32()? as usize;
        if count == 0 || !count.is_power_of_two() || count > 1usize << SHARD_BITS {
            return Err(CodecError::BadHeader("shard count"));
        }
        let mut shards = Vec::with_capacity(count.min(r.remaining() / 8));
        for _ in 0..count {
            let len = r.u64()? as usize;
            shards.push(ElasticMpcbf::<H>::decode(r.bytes(len)?)?);
        }
        r.expect_end()?;
        Ok(Self::from_shards(shards, seed))
    }
}

impl<H: Hasher128> std::fmt::Debug for ElasticShardedMpcbf<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticShardedMpcbf")
            .field("shards", &self.shards.len())
            .field("seed", &self.seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pool_config(seed: u64) -> MpcbfConfig {
        MpcbfConfig::builder()
            .memory_bits(131_072)
            .expected_items(2_000)
            .hashes(3)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn pool_scales_under_overload_with_zero_false_negatives() {
        let pool: ElasticShardedMpcbf = ElasticShardedMpcbf::new(pool_config(1), 4);
        assert_eq!(pool.shard_count(), 4);
        for i in 0..20_000u64 {
            pool.insert_bytes(&i.to_le_bytes()).unwrap();
        }
        let stats = pool.stats();
        assert!(stats.scale_events > 0, "10x overload must scale some shard");
        assert_eq!(stats.items, 20_000);
        for i in 0..20_000u64 {
            assert!(pool.contains_bytes(&i.to_le_bytes()), "false negative {i}");
        }
        assert_eq!(pool.verify(), Ok(()));
    }

    #[test]
    fn removals_round_trip_through_the_pool() {
        let pool: ElasticShardedMpcbf = ElasticShardedMpcbf::new(pool_config(2), 2);
        for i in 0..5_000u64 {
            pool.insert_bytes(&i.to_le_bytes()).unwrap();
        }
        for i in 0..5_000u64 {
            pool.remove_bytes(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(pool.items(), 0);
        assert_eq!(
            pool.remove_bytes(&1u64.to_le_bytes()),
            Err(FilterError::NotPresent)
        );
    }

    #[test]
    fn concurrent_inserts_and_queries_stay_lossless() {
        let pool: Arc<ElasticShardedMpcbf> = Arc::new(ElasticShardedMpcbf::new(pool_config(3), 8));
        let threads = 4;
        let per_thread = 4_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let key = (t * per_thread + i).to_le_bytes();
                        pool.insert_bytes(&key).unwrap();
                        assert!(pool.contains_bytes(&key));
                    }
                });
            }
        });
        assert_eq!(pool.items(), threads * per_thread);
        for i in 0..threads * per_thread {
            assert!(pool.contains_bytes(&i.to_le_bytes()));
        }
    }

    #[test]
    fn manual_pool_parks_plans_per_shard() {
        let pool: ElasticShardedMpcbf =
            ElasticShardedMpcbf::manual(pool_config(4), 2, CapacityPolicy::default()).unwrap();
        for i in 0..20_000u64 {
            pool.insert_bytes(&i.to_le_bytes()).unwrap();
        }
        let mut scaled = 0;
        for shard in 0..pool.shard_count() {
            let plan = pool.with_shard(shard, |f| f.scale_plan());
            if let Some(spec) = plan {
                pool.with_shard(shard, |f| f.apply_scale(&spec)).unwrap();
                pool.with_shard(shard, |f| {
                    assert!(f.begin_compaction());
                    while f.step_compaction(512) > 0 {}
                });
                scaled += 1;
            }
        }
        assert!(scaled > 0, "overloaded shards must park plans");
        for i in 0..20_000u64 {
            assert!(pool.contains_bytes(&i.to_le_bytes()));
        }
    }

    #[test]
    fn codec_roundtrip_preserves_the_pool() {
        let pool: ElasticShardedMpcbf = ElasticShardedMpcbf::new(pool_config(5), 4);
        for i in 0..10_000u64 {
            pool.insert_bytes(&i.to_le_bytes()).unwrap();
        }
        let image = pool.encode();
        assert_eq!(image, pool.encode(), "encoding must be deterministic");
        let decoded = ElasticShardedMpcbf::<Murmur3>::decode(&image).unwrap();
        assert_eq!(decoded.shard_count(), pool.shard_count());
        assert_eq!(decoded.items(), pool.items());
        for i in 0..10_000u64 {
            let key = i.to_le_bytes();
            assert_eq!(decoded.home_shard(&key), pool.home_shard(&key));
            assert!(decoded.contains_bytes(&key));
        }
        assert_eq!(decoded.encode(), image);
    }

    #[test]
    fn corrupt_pool_images_are_rejected() {
        let pool: ElasticShardedMpcbf = ElasticShardedMpcbf::new(pool_config(6), 2);
        for i in 0..1_000u64 {
            pool.insert_bytes(&i.to_le_bytes()).unwrap();
        }
        let image = pool.encode();
        for pos in [0usize, 4, 8, image.len() / 2, image.len() - 1] {
            let mut corrupt = image.clone();
            corrupt[pos] ^= 0x08;
            assert!(
                ElasticShardedMpcbf::<Murmur3>::decode(&corrupt).is_err(),
                "bitflip at {pos} went undetected"
            );
        }
        assert!(ElasticShardedMpcbf::<Murmur3>::decode(&image[..image.len() / 2]).is_err());
    }
}
