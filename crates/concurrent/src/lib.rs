//! Thread-safe MPCBF variants.
//!
//! The paper targets line-rate packet processing (IPDPS venue; §I motivates
//! parallel CBF banks on routers), and MPCBF's layout is unusually friendly
//! to concurrency: *all state an operation mutates lives inside the `g`
//! words it hashes to*, so synchronisation can be per-word instead of
//! per-filter. Two designs are provided:
//!
//! * [`sharded::ShardedMpcbf`] — the key space is partitioned into a
//!   power-of-two pool of *independent sub-filters*, each guarded by one
//!   [`parking_lot::Mutex`]. The shard index comes from digest bits
//!   disjoint from the probe bits (see `sharded`'s module docs), so every
//!   element lives entirely in one shard: a scalar operation takes exactly
//!   one lock and a batch operation takes each lock at most once.
//! * [`atomic::AtomicMpcbf`] — lock-free for 64-bit words: each word is an
//!   `AtomicU64` and every update is a single-word CAS loop around the
//!   [`HcbfWord`] codec (possible precisely because an HCBF word is a
//!   self-contained value type).
//!
//! Both expose the batch-first pipeline (`contains_batch` /
//! `insert_batch` / `remove_batch`, plus allocation-free `*_batch_bytes_with`
//! twins that reuse caller-held scratch): hash every key up front into a
//! [`PlanBuffer`](mpcbf_core::PlanBuffer), resolve the update kernel once
//! per batch, then probe or update — with per-key results in input order
//! and state bit-identical to the equivalent scalar loop.
//!
//! ## Consistency model
//!
//! Per-word updates are atomic; an element spanning `g > 1` words is
//! updated word-by-word, so a concurrent query can observe a *partially
//! inserted* element (and miss it) or a *partially deleted* one (and still
//! report it). Completed inserts are never missed, and the structure is
//! always a valid HCBF — the same relaxation hardware CBF banks accept.
//! Sharded batch updates hold the shard lock for the whole per-shard run,
//! so within one shard a batch is observed atomically.
//!
//! ## Instrumentation (feature `stats`)
//!
//! With the `stats` feature enabled, both variants meter themselves from
//! the inside: every operation's [`OpCost`](mpcbf_core::OpCost) lands in a
//! wait-free relaxed-atomic ledger (one per shard for [`ShardedMpcbf`],
//! one global for [`AtomicMpcbf`]), merged on read by `access_stats()`.
//! The sharded variant additionally tallies per-shard lock acquisitions,
//! contention (a failed `try_lock`) and hold time, readable via
//! `lock_stats()` / `shard_lock_stats()`. The feature is off by default
//! and the uninstrumented hot path compiles to exactly the code that
//! existed before the feature — zero cost when off.
//!
//! [`HcbfWord`]: mpcbf_core::HcbfWord

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod bulk;
pub mod elastic;
pub mod sharded;
#[cfg(feature = "stats")]
pub mod stats;

pub use atomic::AtomicMpcbf;
pub use bulk::{build_parallel, build_resilient_parallel, default_threads, ShardedBulkBuilder};
pub use elastic::{ElasticShardedMpcbf, ElasticStats};
pub use sharded::{ShardBatch, ShardedMpcbf};
#[cfg(feature = "stats")]
pub use stats::{AccessLedger, LockStats, ShardStats};
