//! Thread-safe MPCBF variants.
//!
//! The paper targets line-rate packet processing (IPDPS venue; §I motivates
//! parallel CBF banks on routers), and MPCBF's layout is unusually friendly
//! to concurrency: *all state an operation mutates lives inside the `g`
//! words it hashes to*, so synchronisation can be per-word instead of
//! per-filter. Two designs are provided:
//!
//! * [`sharded::ShardedMpcbf`] — words protected by a fixed pool of
//!   [`parking_lot::Mutex`] shards. Works for any word width; writers to
//!   different shards never contend.
//! * [`atomic::AtomicMpcbf`] — lock-free for 64-bit words: each word is an
//!   `AtomicU64` and every update is a single-word CAS loop around the
//!   [`HcbfWord`] codec (possible precisely because an HCBF word is a
//!   self-contained value type).
//!
//! ## Consistency model
//!
//! Per-word updates are atomic; an element spanning `g > 1` words is
//! updated word-by-word, so a concurrent query can observe a *partially
//! inserted* element (and miss it) or a *partially deleted* one (and still
//! report it). Completed inserts are never missed, and the structure is
//! always a valid HCBF — the same relaxation hardware CBF banks accept.
//!
//! [`HcbfWord`]: mpcbf_core::HcbfWord

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod sharded;

pub use atomic::AtomicMpcbf;
pub use sharded::ShardedMpcbf;
