//! Multi-threaded partition build: scoped threads over disjoint word
//! ranges.
//!
//! The staging pipeline in [`mpcbf_core::bulk`] ends with one
//! independent [`RegionJob`] per word region — each owns its entries and
//! the mutable word slice it sweeps, so regions parallelise with no
//! locks and no shared cache lines. This module provides the executors:
//!
//! * [`build_parallel`] / [`build_resilient_parallel`] — finish a
//!   [`BulkBuilder`] / [`ResilientBulkBuilder`] by spreading its region
//!   jobs over scoped threads;
//! * [`ShardedBulkBuilder`] — a builder for [`ShardedMpcbf`] that stages
//!   each shard's keys into that shard's own staging hierarchy and word
//!   array (no shard locks touched until install), finishing shards in
//!   parallel.
//!
//! With `threads <= 1` (or one region) the executors run inline, so the
//! parallel entry points are safe defaults on any core count.

use mpcbf_bitvec::AlignedVec;
use mpcbf_core::bulk::{
    BulkBuilder, BulkStage, BulkStats, RegionJob, ResilientBulkBuilder, SweepScratch,
};
use mpcbf_core::{HcbfWord, Mpcbf, MpcbfConfig, ResilientMpcbf};
use mpcbf_hash::{Hasher128, Murmur3};

use crate::sharded::ShardedMpcbf;

/// Runs a slice of region jobs on up to `threads` scoped threads
/// (inline when one thread suffices).
fn run_jobs(jobs: &mut [RegionJob<'_>], threads: usize) {
    if threads <= 1 || jobs.len() <= 1 {
        let mut scratch = SweepScratch::new();
        for job in jobs {
            job.run_with(&mut scratch);
        }
        return;
    }
    let per = jobs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for chunk in jobs.chunks_mut(per) {
            scope.spawn(move || {
                let mut scratch = SweepScratch::new();
                for job in chunk {
                    job.run_with(&mut scratch);
                }
            });
        }
    });
}

/// Threads to use when the caller does not care: the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Finishes a bulk build by sweeping its regions on up to `threads`
/// scoped threads. Bit-for-bit identical to [`BulkBuilder::finish`]
/// (region sweeps are independent — see the staging module docs).
pub fn build_parallel<H: Hasher128>(builder: BulkBuilder<H>, threads: usize) -> Mpcbf<u64, H> {
    builder.finish_with(|jobs| run_jobs(jobs, threads))
}

/// [`build_parallel`] for the resilient builder.
pub fn build_resilient_parallel<H: Hasher128>(
    builder: ResilientBulkBuilder<H>,
    threads: usize,
) -> ResilientMpcbf<H> {
    builder.finish_with(|jobs| run_jobs(jobs, threads))
}

/// Streaming bulk builder for [`ShardedMpcbf`]: each shard gets its own
/// staging hierarchy and word array, keys route by the same top-16
/// digest bits as the live insert path, and finish builds shards on
/// scoped threads before installing the arrays — the filter's shard
/// locks are taken only for the final swap.
pub struct ShardedBulkBuilder<H: Hasher128 = Murmur3> {
    filter: ShardedMpcbf<u64, H>,
    stages: Vec<BulkStage>,
    words: Vec<AlignedVec<HcbfWord<u64>>>,
}

impl<H: Hasher128> ShardedBulkBuilder<H> {
    /// A builder producing a filter with `shards` requested shards (the
    /// same rounding as [`ShardedMpcbf::new`] applies).
    ///
    /// # Panics
    /// Panics if the configuration derives a non-64-bit word.
    pub fn new(config: MpcbfConfig, shards: usize) -> Self {
        let filter = ShardedMpcbf::new(config, shards);
        let shape = filter.shape();
        assert_eq!(shape.w, 64, "bulk build requires 64-bit words");
        let per = filter.words_per_shard();
        let count = filter.shard_count();
        let expected_per_shard = config.expected_items().div_ceil(count as u64);
        ShardedBulkBuilder {
            stages: (0..count)
                .map(|_| {
                    BulkStage::with_expected(per, shape.k, shape.g, shape.b1, expected_per_shard)
                })
                .collect(),
            words: (0..count)
                .map(|_| AlignedVec::filled_huge(per as usize, HcbfWord::new()))
                .collect(),
            filter,
        }
    }

    /// Stages one key into its home shard.
    pub fn push(&mut self, key: &[u8]) {
        let digest = H::hash128(self.filter.bulk_seed(), key);
        let (shard, probe_digest) = self.filter.bulk_split_digest(digest);
        self.stages[shard].push_digest(self.words[shard].as_mut_slice(), probe_digest);
    }

    /// Summed staging counters across shards.
    pub fn stats(&self) -> BulkStats {
        let mut total = BulkStats::default();
        for stage in &self.stages {
            let s = stage.stats();
            total.keys += s.keys;
            total.l1_spills += s.l1_spills;
            total.l2_spills += s.l2_spills;
            total.flushes += s.flushes;
        }
        total
    }

    /// Completes the build on the calling thread.
    pub fn finish(self) -> ShardedMpcbf<u64, H> {
        self.finish_parallel(1)
    }

    /// Completes the build with shards drained on up to `threads`
    /// scoped threads, then installs every shard's word array.
    pub fn finish_parallel(mut self, threads: usize) -> ShardedMpcbf<u64, H> {
        let shards: Vec<(&mut BulkStage, &mut AlignedVec<HcbfWord<u64>>)> =
            self.stages.iter_mut().zip(self.words.iter_mut()).collect();
        if threads <= 1 || shards.len() <= 1 {
            for (stage, words) in shards {
                stage.finish_into(words.as_mut_slice());
            }
        } else {
            let per = shards.len().div_ceil(threads);
            let mut chunks: Vec<_> = shards.into_iter().collect();
            std::thread::scope(|scope| {
                for chunk in chunks.chunks_mut(per) {
                    scope.spawn(move || {
                        for (stage, words) in chunk {
                            stage.finish_into(words.as_mut_slice());
                        }
                    });
                }
            });
        }
        let mut refused = 0u64;
        for (shard, words) in self.words.into_iter().enumerate() {
            self.filter.bulk_install(shard, words);
            refused += self.stages[shard].refused();
        }
        if refused > 0 {
            self.filter.bulk_add_overflows(refused);
        }
        self.filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::Filter;

    fn config(memory: u64, items: u64, seed: u64) -> MpcbfConfig {
        MpcbfConfig::builder()
            .memory_bits(memory)
            .expected_items(items)
            .hashes(3)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn keys(n: u64) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("cc-{i}").into_bytes()).collect()
    }

    #[test]
    fn parallel_build_matches_sequential_insert() {
        let c = config(1 << 20, 40_000, 21);
        let keys = keys(40_000);
        let mut seq: Mpcbf<u64> = Mpcbf::new(c);
        for k in &keys {
            let _ = seq.insert_bytes(k);
        }
        let mut builder: BulkBuilder = BulkBuilder::new(c);
        for k in &keys {
            builder.push(k);
        }
        let built = build_parallel(builder, 4);
        assert_eq!(built.raw_words(), seq.raw_words());
        assert_eq!(built.items(), seq.items());
    }

    #[test]
    fn sharded_bulk_matches_live_inserts() {
        let c = config(1 << 18, 10_000, 23);
        let keys = keys(10_000);
        let live: ShardedMpcbf<u64> = ShardedMpcbf::new(c, 8);
        for k in &keys {
            let _ = live.insert_bytes(k);
        }
        let mut builder: ShardedBulkBuilder = ShardedBulkBuilder::new(c, 8);
        for k in &keys {
            builder.push(k);
        }
        let built = builder.finish_parallel(4);
        assert_eq!(built.shard_count(), live.shard_count());
        for s in 0..live.shard_count() {
            assert_eq!(
                built.shard_raw_words(s),
                live.shard_raw_words(s),
                "shard {s}"
            );
        }
        assert_eq!(built.overflows(), live.overflows());
    }
}
