//! Sharded-lock concurrent MPCBF.
//!
//! Words are grouped into a fixed number of shards (a power of two), each
//! guarded by a [`parking_lot::Mutex`]. An operation locks only the shards
//! of the `g` words it touches — one at a time, never nested, so there is
//! no lock-ordering concern and no deadlock.

use mpcbf_analysis::heuristic::MpcbfShape;
use mpcbf_core::config::MpcbfConfig;
use mpcbf_core::hcbf::HcbfWord;
use mpcbf_core::FilterError;
use mpcbf_bitvec::Word;
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Salts mirroring the sequential filter's (kept equal so a sharded filter
/// is query-compatible with a sequential one built from the same config).
const WORD_SALT: u64 = 0x4d50_4342_465f_5744;
const GROUP_SALT: u64 = 0x4d50_4342_465f_4752;

#[inline]
fn split_hashes(k: u32, g: u32, t: u32) -> u32 {
    let base = k / g;
    if t < k % g {
        base + 1
    } else {
        base
    }
}

/// A thread-safe MPCBF using sharded mutexes.
pub struct ShardedMpcbf<W: Word = u64, H: Hasher128 = Murmur3> {
    shards: Vec<Mutex<Vec<HcbfWord<W>>>>,
    words_per_shard: usize,
    shape: MpcbfShape,
    seed: u64,
    overflows: AtomicU64,
    _hasher: PhantomData<H>,
}

impl<W: Word, H: Hasher128> ShardedMpcbf<W, H> {
    /// Creates a sharded filter from a validated configuration with the
    /// given shard count (rounded up to a power of two, capped at the word
    /// count).
    ///
    /// # Panics
    /// Panics if the configuration's word size differs from `W::BITS`.
    pub fn new(config: MpcbfConfig, shards: usize) -> Self {
        let shape = config.shape();
        assert_eq!(shape.w, W::BITS, "config word size mismatch");
        let shard_count = shards
            .next_power_of_two()
            .clamp(1, (shape.l as usize).next_power_of_two());
        let words_per_shard = (shape.l as usize).div_ceil(shard_count);
        let shards = (0..shard_count)
            .map(|s| {
                let lo = s * words_per_shard;
                let hi = ((s + 1) * words_per_shard).min(shape.l as usize);
                Mutex::new(vec![HcbfWord::new(); hi.saturating_sub(lo)])
            })
            .collect();
        ShardedMpcbf {
            shards,
            words_per_shard,
            shape,
            seed: config.seed(),
            overflows: AtomicU64::new(0),
            _hasher: PhantomData,
        }
    }

    /// The derived structural parameters.
    pub fn shape(&self) -> MpcbfShape {
        self.shape
    }

    /// Insertions refused due to word overflow.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Sum of all word loads (total increments stored).
    pub fn total_load(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().iter().map(|w| u64::from(w.total_count())).sum::<u64>())
            .sum()
    }

    #[inline]
    fn locate(&self, word: usize) -> (usize, usize) {
        (word / self.words_per_shard, word % self.words_per_shard)
    }

    /// Collects the (word, position) targets of `key` (at most `k`).
    #[inline]
    fn targets(&self, key: &[u8], out: &mut [(usize, u32); 64]) -> usize {
        let digest = H::hash128(self.seed, key);
        let mut word_picker = DoubleHasher::with_salt(digest, WORD_SALT, self.shape.l);
        let mut n = 0;
        for t in 0..self.shape.g {
            let word = word_picker.next_index();
            let k_t = split_hashes(self.shape.k, self.shape.g, t);
            let mut inner = DoubleHasher::with_salt(
                digest,
                GROUP_SALT ^ u64::from(t),
                u64::from(self.shape.b1),
            );
            for _ in 0..k_t {
                out[n] = (word, inner.next_index() as u32);
                n += 1;
            }
        }
        n
    }

    /// Membership check.
    pub fn contains<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> bool {
        self.contains_bytes(key.key_bytes().as_slice())
    }

    /// Membership check on raw bytes.
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        let mut targets = [(0usize, 0u32); 64];
        let n = self.targets(key, &mut targets);
        let mut i = 0;
        while i < n {
            // Check all positions of one word under a single lock hold.
            let word = targets[i].0;
            let (shard, local) = self.locate(word);
            let guard = self.shards[shard].lock();
            while i < n && targets[i].0 == word {
                if !guard[local].query(targets[i].1) {
                    return false;
                }
                i += 1;
            }
        }
        true
    }

    /// Inserts a key.
    pub fn insert<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> Result<(), FilterError> {
        self.insert_bytes(key.key_bytes().as_slice())
    }

    /// Inserts raw bytes, rolling back on overflow.
    pub fn insert_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let mut targets = [(0usize, 0u32); 64];
        let n = self.targets(key, &mut targets);
        let b1 = self.shape.b1;
        for i in 0..n {
            let (word, p) = targets[i];
            let (shard, local) = self.locate(word);
            let mut guard = self.shards[shard].lock();
            if guard[local].increment(p, b1).is_err() {
                drop(guard);
                for &(rw, rp) in targets[..i].iter().rev() {
                    let (rs, rl) = self.locate(rw);
                    self.shards[rs].lock()[rl]
                        .decrement(rp, b1)
                        .expect("rollback decrement");
                }
                self.overflows.fetch_add(1, Ordering::Relaxed);
                return Err(FilterError::WordOverflow { word });
            }
        }
        Ok(())
    }

    /// Removes a key.
    pub fn remove<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> Result<(), FilterError> {
        self.remove_bytes(key.key_bytes().as_slice())
    }

    /// Removes raw bytes, rolling back if the element is absent.
    pub fn remove_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let mut targets = [(0usize, 0u32); 64];
        let n = self.targets(key, &mut targets);
        let b1 = self.shape.b1;
        for i in 0..n {
            let (word, p) = targets[i];
            let (shard, local) = self.locate(word);
            let mut guard = self.shards[shard].lock();
            if guard[local].decrement(p, b1).is_err() {
                drop(guard);
                for &(rw, rp) in targets[..i].iter().rev() {
                    let (rs, rl) = self.locate(rw);
                    self.shards[rs].lock()[rl]
                        .increment(rp, b1)
                        .expect("rollback increment");
                }
                return Err(FilterError::NotPresent);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::MpcbfConfig;

    fn filter() -> ShardedMpcbf<u64> {
        let c = MpcbfConfig::builder()
            .memory_bits(1_000_000)
            .expected_items(10_000)
            .hashes(3)
            .seed(21)
            .build()
            .unwrap();
        ShardedMpcbf::new(c, 64)
    }

    #[test]
    fn sequential_roundtrip() {
        let f = filter();
        for i in 0..3_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..3_000u64 {
            assert!(f.contains(&i));
        }
        for i in 0..3_000u64 {
            f.remove(&i).unwrap();
        }
        assert_eq!(f.total_load(), 0);
    }

    #[test]
    fn parallel_inserts_are_all_visible() {
        let f = filter();
        let threads = 8u64;
        let per = 1_000u64;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let f = &f;
                s.spawn(move |_| {
                    for i in t * per..(t + 1) * per {
                        f.insert(&i).unwrap();
                    }
                });
            }
        })
        .unwrap();
        for i in 0..threads * per {
            assert!(f.contains(&i), "lost {i}");
        }
        assert_eq!(f.overflows(), 0);
    }

    #[test]
    fn parallel_insert_then_parallel_remove_drains() {
        let f = filter();
        let keys: Vec<u64> = (0..8_000).collect();
        crossbeam::scope(|s| {
            for chunk in keys.chunks(1_000) {
                let f = &f;
                s.spawn(move |_| {
                    for k in chunk {
                        f.insert(k).unwrap();
                    }
                });
            }
        })
        .unwrap();
        crossbeam::scope(|s| {
            for chunk in keys.chunks(1_000) {
                let f = &f;
                s.spawn(move |_| {
                    for k in chunk {
                        f.remove(k).unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f.total_load(), 0);
    }

    #[test]
    fn mixed_readers_and_writers_dont_lose_elements() {
        let f = filter();
        let stable: Vec<u64> = (0..2_000).collect();
        for k in &stable {
            f.insert(k).unwrap();
        }
        crossbeam::scope(|s| {
            // Writers churn a disjoint key range.
            for t in 0..4u64 {
                let f = &f;
                s.spawn(move |_| {
                    for i in 0..500u64 {
                        let k = 1_000_000 + t * 1_000 + i;
                        f.insert(&k).unwrap();
                        f.remove(&k).unwrap();
                    }
                });
            }
            // Readers continuously verify the stable set.
            for _ in 0..4 {
                let f = &f;
                let stable = &stable;
                s.spawn(move |_| {
                    for _ in 0..5 {
                        for k in stable {
                            assert!(f.contains(k), "stable key {k} lost");
                        }
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn remove_absent_is_clean_under_contention() {
        let f = filter();
        f.insert(&"present").unwrap();
        assert_eq!(f.remove(&"absent"), Err(FilterError::NotPresent));
        assert!(f.contains(&"present"));
    }
}
