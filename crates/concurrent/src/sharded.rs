//! Sharded-lock concurrent MPCBF with a batch-first query pipeline.
//!
//! # Layout: one shard = one independent sub-filter
//!
//! Unlike a word-interleaved scheme (where the `g` words of one element can
//! land in `g` different shards and an operation must take several locks),
//! this design partitions the *key space*: each shard owns a private array
//! of `HcbfWord`s and every element lives entirely inside one shard. A
//! scalar operation therefore takes **exactly one lock**, and a batch
//! operation takes each lock **at most once** (see the bit-split below for
//! how keys are routed).
//!
//! # Bit-split: shard bits are disjoint from probe bits
//!
//! The 128-bit digest of a key is split into two non-overlapping fields:
//!
//! ```text
//! bit 127 ──────── bit 112 | bit 111 ───────────────────────────── bit 0
//!   shard selector (16 b)  |  probe digest (112 b)
//! ```
//!
//! * the **top [`SHARD_BITS`] bits** select the shard (masked down to the
//!   power-of-two shard count);
//! * the **low `128 − SHARD_BITS` bits** feed [`ProbePlan::partitioned`],
//!   which derives the word picker (`WORD_SALT` stream) and the per-group
//!   position streams (`GROUP_SALT` streams) exactly as the sequential
//!   filter does.
//!
//! Because the shard selector is never read by the probe streams and the
//! probe digest is never read by the selector, shard routing is
//! statistically independent of in-shard placement: conditioning on "key
//! landed in shard s" reveals nothing about which words it probes there.
//!
//! # Batch pipeline
//!
//! [`ShardedMpcbf::contains_batch_bytes_with`] and friends run the fused
//! pipeline against a caller-held [`ShardBatch`] scratch: (1) hash every
//! key into the scratch's [`PlanBuffer`] (zero allocation once warm),
//! (2) group keys by shard — a stable sort, so keys within one shard are
//! processed in their original batch order, which keeps duplicate keys in
//! a batch behaving exactly like a scalar loop — then per shard take the
//! lock once for its whole contiguous run, (3) probe/update, with update
//! runs driving the per-batch-resolved kernel bundle ([`Kernel::batch`]).

#[cfg(feature = "stats")]
use crate::stats::{LockStats, ShardStats};
use mpcbf_analysis::heuristic::MpcbfShape;
use mpcbf_bitvec::{AlignedVec, Kernel, KernelOps, Word};
use mpcbf_core::codec;
use mpcbf_core::config::MpcbfConfig;
use mpcbf_core::hcbf::HcbfWord;
#[cfg(feature = "stats")]
use mpcbf_core::metrics::{AccessStats, OpCost, OpKind, WordTouches};
use mpcbf_core::scrub::{FilterSeal, ScrubReport, SEGMENT_WORDS};
use mpcbf_core::{FilterError, PlanBuffer, ProbePlan};
#[cfg(feature = "stats")]
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{Hasher128, Murmur3};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "stats")]
use std::time::Instant;

/// Reusable scratch for the sharded batch pipeline: the batch's probe
/// plans plus the shard routing and run ordering derived from them.
///
/// Hold one per worker thread and pass it to the `*_batch_bytes_with`
/// entry points; after the first batch at a given size, planning and
/// shard grouping allocate nothing. The plain `*_batch_bytes` entry
/// points build a fresh scratch per call.
#[derive(Debug, Default)]
pub struct ShardBatch {
    plans: PlanBuffer,
    /// Home shard per key (parallel to the plan buffer's keys).
    shards: Vec<u32>,
    /// Key indices stably sorted by shard: each shard's keys form one
    /// contiguous run in original batch order.
    order: Vec<u32>,
}

impl ShardBatch {
    /// An empty scratch; the first batch sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Digest bits reserved for shard selection (the top bits of the 128-bit
/// digest). The probe planner only ever sees the remaining low bits, so the
/// two fields share no entropy. Caps the shard count at `2^SHARD_BITS`.
pub const SHARD_BITS: u32 = 16;

/// A thread-safe MPCBF: a power-of-two pool of independent sub-filters,
/// each guarded by one [`parking_lot::Mutex`], with keys routed by a digest
/// field disjoint from the probe bits.
pub struct ShardedMpcbf<W: Word = u64, H: Hasher128 = Murmur3> {
    shards: Vec<Mutex<AlignedVec<HcbfWord<W>>>>,
    shard_mask: u64,
    words_per_shard: u64,
    shape: MpcbfShape,
    seed: u64,
    overflows: AtomicU64,
    #[cfg(feature = "stats")]
    stats: Vec<ShardStats>,
    _hasher: PhantomData<H>,
}

impl<W: Word, H: Hasher128> ShardedMpcbf<W, H> {
    /// Creates a sharded filter from a validated configuration with the
    /// given shard count (rounded up to a power of two, capped at
    /// `2^SHARD_BITS` and at the word count).
    ///
    /// The configuration's `l` words are distributed evenly across the
    /// shards; each shard is an independent `ceil(l / shards)`-word
    /// sub-filter, so total capacity never falls below the `l` the
    /// validated configuration was sized for. The shard-count cap rounds
    /// *down* to a power of two (`word_cap`): rounding up would mint more
    /// shards than words, leaving shards whose sub-filter the probe
    /// planner can never fill.
    ///
    /// # Panics
    /// Panics if the configuration's word size differs from `W::BITS`.
    pub fn new(config: MpcbfConfig, shards: usize) -> Self {
        let shape = config.shape();
        assert_eq!(shape.w, W::BITS, "config word size mismatch");
        let l = shape.l as usize;
        let word_cap = if l.is_power_of_two() {
            l
        } else {
            (l.next_power_of_two() >> 1).max(1)
        };
        let shard_count = shards
            .next_power_of_two()
            .clamp(1, word_cap)
            .min(1 << SHARD_BITS);
        let words_per_shard = l.div_ceil(shard_count).max(1);
        let shards = (0..shard_count)
            .map(|_| Mutex::new(AlignedVec::filled(words_per_shard, HcbfWord::new())))
            .collect();
        ShardedMpcbf {
            shards,
            shard_mask: shard_count as u64 - 1,
            words_per_shard: words_per_shard as u64,
            shape,
            seed: config.seed(),
            overflows: AtomicU64::new(0),
            #[cfg(feature = "stats")]
            stats: (0..shard_count).map(|_| ShardStats::new()).collect(),
            _hasher: PhantomData,
        }
    }

    /// The derived structural parameters.
    pub fn shape(&self) -> MpcbfShape {
        self.shape
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Words owned by each shard (`ceil(l / shard_count)`).
    pub fn words_per_shard(&self) -> u64 {
        self.words_per_shard
    }

    /// Insertions refused due to word overflow.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Sum of all word loads (total increments stored).
    pub fn total_load(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .iter()
                    .map(|w| u64::from(w.total_count()))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Checksummed segments per shard (each shard is sealed and scrubbed
    /// independently; global segment index = `shard · this + local`).
    fn segments_per_shard(&self) -> usize {
        (self.words_per_shard as usize).div_ceil(SEGMENT_WORDS)
    }

    /// Lifts a shard-local error to the filter-global frame: a
    /// [`FilterError::CorruptionDetected`] raised inside shard `shard` (a
    /// rollback step that itself failed — word state the lock should have
    /// made impossible) carries a shard-local segment index; re-index it
    /// as `shard · segments_per_shard + local` so it lines up with the
    /// [`Self::verify`]/[`ShardedMpcbf::scrub`] reporting convention.
    /// Every other error passes through untouched.
    #[inline]
    fn globalize_err(&self, shard: usize, err: FilterError) -> FilterError {
        match err {
            FilterError::CorruptionDetected { segment } => FilterError::CorruptionDetected {
                segment: shard * self.segments_per_shard() + segment,
            },
            other => other,
        }
    }

    /// Epoch-based structural self-check: takes each shard lock exactly
    /// once (like the batch pipeline's shard runs) and re-walks every
    /// word's hierarchy invariants. Concurrent operations on other shards
    /// proceed untouched while one shard is being checked.
    ///
    /// Damage is reported as a global segment index: shard `s`, local
    /// word `i` lands in segment `s · segments_per_shard + i / SEGMENT_WORDS`.
    pub fn verify(&self) -> Result<(), FilterError> {
        let b1 = self.shape.b1;
        let per = self.segments_per_shard();
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock();
            for (i, w) in guard.iter().enumerate() {
                if w.check_invariants(b1).is_err() {
                    return Err(FilterError::CorruptionDetected {
                        segment: s * per + i / SEGMENT_WORDS,
                    });
                }
            }
        }
        Ok(())
    }

    /// Splits a digest into (shard index, probe digest) along the
    /// documented bit boundary.
    #[inline]
    fn split_digest(&self, digest: u128) -> (usize, u128) {
        let shard = ((digest >> (128 - SHARD_BITS)) as u64 & self.shard_mask) as usize;
        let probe_digest = digest & ((1u128 << (128 - SHARD_BITS)) - 1);
        (shard, probe_digest)
    }

    /// Hashes `key` and plans its probes inside its home shard.
    #[inline]
    fn plan(&self, key: &[u8]) -> (usize, ProbePlan) {
        let (shard, probe_digest) = self.split_digest(H::hash128(self.seed, key));
        let plan = ProbePlan::partitioned(
            probe_digest,
            self.words_per_shard,
            self.shape.k,
            self.shape.g,
            u64::from(self.shape.b1),
        );
        (shard, plan)
    }

    /// Queries one planned key against its (already locked) shard.
    #[cfg(not(feature = "stats"))]
    #[inline]
    fn query_planned(words: &[HcbfWord<W>], plan: &ProbePlan) -> bool {
        for (word, probes) in plan.groups() {
            let (all_set, _) = words[word].query_all(probes);
            if !all_set {
                return false;
            }
        }
        true
    }

    /// Inserts one planned key into its (already locked) shard, rolling
    /// back every applied group on overflow. A rollback step that itself
    /// fails means the word no longer holds what this call just wrote —
    /// damage, not overflow — and is reported as `CorruptionDetected`
    /// with a *shard-local* segment (the entry points globalize it)
    /// rather than panicking while the shard lock is held, which would
    /// poison the lock and brick the shard for every future caller.
    #[cfg(not(feature = "stats"))]
    fn insert_planned(
        words: &mut [HcbfWord<W>],
        plan: &ProbePlan,
        b1: u32,
    ) -> Result<(), FilterError> {
        let groups: Vec<(usize, &[u32])> = plan.groups().collect();
        for (i, &(word, probes)) in groups.iter().enumerate() {
            if words[word].increment_all(probes, b1).is_err() {
                for &(rw, rp) in groups[..i].iter().rev() {
                    if words[rw].decrement_all(rp, b1).is_err() {
                        return Err(FilterError::CorruptionDetected {
                            segment: rw / SEGMENT_WORDS,
                        });
                    }
                }
                return Err(FilterError::WordOverflow { word });
            }
        }
        Ok(())
    }

    /// Removes one planned key from its (already locked) shard, rolling
    /// back every applied group if the element turns out absent. Rollback
    /// failure reports `CorruptionDetected` (shard-local segment) instead
    /// of panicking — see [`Self::insert_planned`].
    #[cfg(not(feature = "stats"))]
    fn remove_planned(
        words: &mut [HcbfWord<W>],
        plan: &ProbePlan,
        b1: u32,
    ) -> Result<(), FilterError> {
        let groups: Vec<(usize, &[u32])> = plan.groups().collect();
        for (i, &(word, probes)) in groups.iter().enumerate() {
            if words[word].decrement_all(probes, b1).is_err() {
                for &(rw, rp) in groups[..i].iter().rev() {
                    if words[rw].increment_all(rp, b1).is_err() {
                        return Err(FilterError::CorruptionDetected {
                            segment: rw / SEGMENT_WORDS,
                        });
                    }
                }
                return Err(FilterError::NotPresent);
            }
        }
        Ok(())
    }

    /// Buffer-indexed twin of [`Self::query_planned`]: reads key `i`'s
    /// groups straight out of the batch's [`PlanBuffer`].
    #[cfg(not(feature = "stats"))]
    #[inline]
    fn query_planned_buf(words: &[HcbfWord<W>], plans: &PlanBuffer, i: usize) -> bool {
        for (word, probes) in plans.groups_of(i) {
            let (all_set, _) = words[word].query_all(probes);
            if !all_set {
                return false;
            }
        }
        true
    }

    /// Buffer-indexed twin of [`Self::insert_planned`], driving the
    /// batch-resolved update kernel. Rollback re-walks the already-applied
    /// groups by index — no per-key allocation.
    #[cfg(not(feature = "stats"))]
    fn insert_planned_buf(
        words: &mut [HcbfWord<W>],
        plans: &PlanBuffer,
        i: usize,
        b1: u32,
        ops: &KernelOps,
    ) -> Result<(), FilterError> {
        for t in 0..plans.group_count() {
            let (word, probes) = plans.group(i, t);
            if words[word].increment_all_routed(probes, b1, ops).is_err() {
                for u in (0..t).rev() {
                    let (rw, rp) = plans.group(i, u);
                    if words[rw].decrement_all_routed(rp, b1, ops).is_err() {
                        return Err(FilterError::CorruptionDetected {
                            segment: rw / SEGMENT_WORDS,
                        });
                    }
                }
                return Err(FilterError::WordOverflow { word });
            }
        }
        Ok(())
    }

    /// Buffer-indexed twin of [`Self::remove_planned`].
    #[cfg(not(feature = "stats"))]
    fn remove_planned_buf(
        words: &mut [HcbfWord<W>],
        plans: &PlanBuffer,
        i: usize,
        b1: u32,
        ops: &KernelOps,
    ) -> Result<(), FilterError> {
        for t in 0..plans.group_count() {
            let (word, probes) = plans.group(i, t);
            if words[word].decrement_all_routed(probes, b1, ops).is_err() {
                for u in (0..t).rev() {
                    let (rw, rp) = plans.group(i, u);
                    if words[rw].increment_all_routed(rp, b1, ops).is_err() {
                        return Err(FilterError::CorruptionDetected {
                            segment: rw / SEGMENT_WORDS,
                        });
                    }
                }
                return Err(FilterError::NotPresent);
            }
        }
        Ok(())
    }

    /// The metered cost of an operation inside one shard: distinct words
    /// touched, plus hash bits = shard routing ([`SHARD_BITS`]) +
    /// word-picker bits per evaluated group + position bits per evaluated
    /// probe + any counter-traversal bits an update reports. Mirrors the
    /// sequential filter's accounting, with the shard selector standing in
    /// for the extra address entropy this layout consumes.
    #[cfg(feature = "stats")]
    fn probe_cost(
        &self,
        words_eval: u32,
        pos_eval: u32,
        touches: &WordTouches,
        traversal_bits: u32,
    ) -> OpCost {
        OpCost {
            word_accesses: touches.count(),
            hash_bits: SHARD_BITS
                + words_eval * bits_for(self.words_per_shard)
                + pos_eval * bits_for(u64::from(self.shape.b1))
                + traversal_bits,
        }
    }

    /// Metered twin of [`Self::query_planned`]: same verdict and the same
    /// short-circuit, also reporting the [`OpCost`].
    #[cfg(feature = "stats")]
    fn query_planned_metered(&self, words: &[HcbfWord<W>], plan: &ProbePlan) -> (bool, OpCost) {
        let mut touches = WordTouches::new();
        let mut words_eval = 0u32;
        let mut pos_eval = 0u32;
        let mut hit = true;
        for (word, probes) in plan.groups() {
            touches.touch(word);
            words_eval += 1;
            let (all_set, evaluated) = words[word].query_all(probes);
            pos_eval += evaluated;
            if !all_set {
                hit = false;
                break;
            }
        }
        (hit, self.probe_cost(words_eval, pos_eval, &touches, 0))
    }

    /// Metered twin of [`Self::insert_planned`] (identical state effects;
    /// a refused insert reports no cost, as everywhere else).
    #[cfg(feature = "stats")]
    fn insert_planned_metered(
        &self,
        words: &mut [HcbfWord<W>],
        plan: &ProbePlan,
    ) -> Result<OpCost, FilterError> {
        let b1 = self.shape.b1;
        let groups: Vec<(usize, &[u32])> = plan.groups().collect();
        let mut touches = WordTouches::new();
        let mut traversal_bits = 0u32;
        for (i, &(word, probes)) in groups.iter().enumerate() {
            touches.touch(word);
            match words[word].increment_all(probes, b1) {
                Ok(bits) => traversal_bits += bits,
                Err(_) => {
                    for &(rw, rp) in groups[..i].iter().rev() {
                        if words[rw].decrement_all(rp, b1).is_err() {
                            return Err(FilterError::CorruptionDetected {
                                segment: rw / SEGMENT_WORDS,
                            });
                        }
                    }
                    return Err(FilterError::WordOverflow { word });
                }
            }
        }
        Ok(self.probe_cost(self.shape.g, self.shape.k, &touches, traversal_bits))
    }

    /// Metered twin of [`Self::remove_planned`].
    #[cfg(feature = "stats")]
    fn remove_planned_metered(
        &self,
        words: &mut [HcbfWord<W>],
        plan: &ProbePlan,
    ) -> Result<OpCost, FilterError> {
        let b1 = self.shape.b1;
        let groups: Vec<(usize, &[u32])> = plan.groups().collect();
        let mut touches = WordTouches::new();
        let mut traversal_bits = 0u32;
        for (i, &(word, probes)) in groups.iter().enumerate() {
            touches.touch(word);
            match words[word].decrement_all(probes, b1) {
                Ok(bits) => traversal_bits += bits,
                Err(_) => {
                    for &(rw, rp) in groups[..i].iter().rev() {
                        if words[rw].increment_all(rp, b1).is_err() {
                            return Err(FilterError::CorruptionDetected {
                                segment: rw / SEGMENT_WORDS,
                            });
                        }
                    }
                    return Err(FilterError::NotPresent);
                }
            }
        }
        Ok(self.probe_cost(self.shape.g, self.shape.k, &touches, traversal_bits))
    }

    /// Buffer-indexed twin of [`Self::query_planned_metered`].
    #[cfg(feature = "stats")]
    fn query_planned_metered_buf(
        &self,
        words: &[HcbfWord<W>],
        plans: &PlanBuffer,
        i: usize,
    ) -> (bool, OpCost) {
        let mut touches = WordTouches::new();
        let mut words_eval = 0u32;
        let mut pos_eval = 0u32;
        let mut hit = true;
        for (word, probes) in plans.groups_of(i) {
            touches.touch(word);
            words_eval += 1;
            let (all_set, evaluated) = words[word].query_all(probes);
            pos_eval += evaluated;
            if !all_set {
                hit = false;
                break;
            }
        }
        (hit, self.probe_cost(words_eval, pos_eval, &touches, 0))
    }

    /// Buffer-indexed twin of [`Self::insert_planned_metered`], driving
    /// the batch-resolved update kernel (identical state effects).
    #[cfg(feature = "stats")]
    fn insert_planned_metered_buf(
        &self,
        words: &mut [HcbfWord<W>],
        plans: &PlanBuffer,
        i: usize,
        ops: &KernelOps,
    ) -> Result<OpCost, FilterError> {
        let b1 = self.shape.b1;
        let mut touches = WordTouches::new();
        let mut traversal_bits = 0u32;
        for t in 0..plans.group_count() {
            let (word, probes) = plans.group(i, t);
            touches.touch(word);
            match words[word].increment_all_routed(probes, b1, ops) {
                Ok(bits) => traversal_bits += bits,
                Err(_) => {
                    for u in (0..t).rev() {
                        let (rw, rp) = plans.group(i, u);
                        if words[rw].decrement_all_routed(rp, b1, ops).is_err() {
                            return Err(FilterError::CorruptionDetected {
                                segment: rw / SEGMENT_WORDS,
                            });
                        }
                    }
                    return Err(FilterError::WordOverflow { word });
                }
            }
        }
        Ok(self.probe_cost(self.shape.g, self.shape.k, &touches, traversal_bits))
    }

    /// Buffer-indexed twin of [`Self::remove_planned_metered`].
    #[cfg(feature = "stats")]
    fn remove_planned_metered_buf(
        &self,
        words: &mut [HcbfWord<W>],
        plans: &PlanBuffer,
        i: usize,
        ops: &KernelOps,
    ) -> Result<OpCost, FilterError> {
        let b1 = self.shape.b1;
        let mut touches = WordTouches::new();
        let mut traversal_bits = 0u32;
        for t in 0..plans.group_count() {
            let (word, probes) = plans.group(i, t);
            touches.touch(word);
            match words[word].decrement_all_routed(probes, b1, ops) {
                Ok(bits) => traversal_bits += bits,
                Err(_) => {
                    for u in (0..t).rev() {
                        let (rw, rp) = plans.group(i, u);
                        if words[rw].increment_all_routed(rp, b1, ops).is_err() {
                            return Err(FilterError::CorruptionDetected {
                                segment: rw / SEGMENT_WORDS,
                            });
                        }
                    }
                    return Err(FilterError::NotPresent);
                }
            }
        }
        Ok(self.probe_cost(self.shape.g, self.shape.k, &touches, traversal_bits))
    }

    /// Acquires one shard's lock, tallying the acquisition (and whether it
    /// had to block) into that shard's ledger. Returns the acquisition
    /// instant so the caller can report hold time on release.
    #[cfg(feature = "stats")]
    fn lock_shard(
        &self,
        shard: usize,
    ) -> (
        parking_lot::MutexGuard<'_, AlignedVec<HcbfWord<W>>>,
        Instant,
    ) {
        let (guard, contended) = match self.shards[shard].try_lock() {
            Some(guard) => (guard, false),
            None => (self.shards[shard].lock(), true),
        };
        self.stats[shard].record_lock(contended);
        (guard, Instant::now())
    }

    /// Merged access ledger across every shard (feature `stats`): mean
    /// accesses / hash bits per operation kind, as the paper's tables
    /// report them, measured under whatever concurrency actually happened.
    #[cfg(feature = "stats")]
    pub fn access_stats(&self) -> AccessStats {
        let mut stats = AccessStats::new();
        for shard in &self.stats {
            shard.accesses.fold_into(&mut stats);
        }
        stats
    }

    /// One shard's lock behaviour (feature `stats`). Covers filter
    /// operations only; maintenance passes (seal/scrub/verify/total_load)
    /// are not tallied.
    #[cfg(feature = "stats")]
    pub fn shard_lock_stats(&self, shard: usize) -> LockStats {
        self.stats[shard].lock_stats()
    }

    /// Aggregate lock behaviour across all shards (feature `stats`).
    #[cfg(feature = "stats")]
    pub fn lock_stats(&self) -> LockStats {
        let mut total = LockStats::default();
        for shard in &self.stats {
            total.merge(&shard.lock_stats());
        }
        total
    }

    /// Membership check.
    pub fn contains<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> bool {
        self.contains_bytes(key.key_bytes().as_slice())
    }

    /// Membership check on raw bytes: one lock, `g` word reads.
    #[cfg(not(feature = "stats"))]
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        let (shard, plan) = self.plan(key);
        let guard = self.shards[shard].lock();
        Self::query_planned(&guard, &plan)
    }

    /// Membership check on raw bytes: one lock, `g` word reads (metered).
    #[cfg(feature = "stats")]
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        let (shard, plan) = self.plan(key);
        let (guard, held_since) = self.lock_shard(shard);
        let (hit, cost) = self.query_planned_metered(&guard, &plan);
        drop(guard);
        self.stats[shard].record_hold(held_since.elapsed().as_nanos() as u64);
        self.stats[shard].accesses.record(OpKind::Query, cost);
        hit
    }

    /// Inserts a key.
    pub fn insert<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> Result<(), FilterError> {
        self.insert_bytes(key.key_bytes().as_slice())
    }

    /// Inserts raw bytes under a single lock, rolling back on overflow.
    #[cfg(not(feature = "stats"))]
    pub fn insert_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let (shard, plan) = self.plan(key);
        let mut guard = self.shards[shard].lock();
        let result = Self::insert_planned(&mut guard, &plan, self.shape.b1);
        drop(guard);
        if matches!(result, Err(FilterError::WordOverflow { .. })) {
            self.overflows.fetch_add(1, Ordering::Relaxed);
        }
        result.map_err(|e| self.globalize_err(shard, e))
    }

    /// Inserts raw bytes under a single lock, rolling back on overflow
    /// (metered).
    #[cfg(feature = "stats")]
    pub fn insert_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let (shard, plan) = self.plan(key);
        let (mut guard, held_since) = self.lock_shard(shard);
        let result = self.insert_planned_metered(&mut guard, &plan);
        drop(guard);
        self.stats[shard].record_hold(held_since.elapsed().as_nanos() as u64);
        match result {
            Ok(cost) => {
                self.stats[shard].accesses.record(OpKind::Insert, cost);
                Ok(())
            }
            Err(e) => {
                if matches!(e, FilterError::WordOverflow { .. }) {
                    self.overflows.fetch_add(1, Ordering::Relaxed);
                }
                Err(self.globalize_err(shard, e))
            }
        }
    }

    /// Removes a key.
    pub fn remove<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> Result<(), FilterError> {
        self.remove_bytes(key.key_bytes().as_slice())
    }

    /// Removes raw bytes under a single lock, rolling back if absent.
    #[cfg(not(feature = "stats"))]
    pub fn remove_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let (shard, plan) = self.plan(key);
        let mut guard = self.shards[shard].lock();
        Self::remove_planned(&mut guard, &plan, self.shape.b1)
            .map_err(|e| self.globalize_err(shard, e))
    }

    /// Removes raw bytes under a single lock, rolling back if absent
    /// (metered).
    #[cfg(feature = "stats")]
    pub fn remove_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let (shard, plan) = self.plan(key);
        let (mut guard, held_since) = self.lock_shard(shard);
        let result = self.remove_planned_metered(&mut guard, &plan);
        drop(guard);
        self.stats[shard].record_hold(held_since.elapsed().as_nanos() as u64);
        result
            .map(|cost| self.stats[shard].accesses.record(OpKind::Remove, cost))
            .map_err(|e| self.globalize_err(shard, e))
    }

    /// Plans a whole batch into the caller's scratch: probe plans in the
    /// [`PlanBuffer`], home shards in a side vector, and key indices
    /// stably sorted by shard so each shard's keys form one contiguous
    /// run in original order. Zero allocation once the scratch is warm.
    fn plan_batch_into(&self, keys: &[&[u8]], scratch: &mut ShardBatch) {
        let ShardBatch {
            plans,
            shards,
            order,
        } = scratch;
        shards.clear();
        shards.reserve(keys.len());
        plans.plan_partitioned(
            keys.iter().map(|key| {
                let (shard, probe_digest) = self.split_digest(H::hash128(self.seed, key));
                shards.push(shard as u32);
                probe_digest
            }),
            self.words_per_shard,
            self.shape.k,
            self.shape.g,
            u64::from(self.shape.b1),
        );
        order.clear();
        order.extend(0..keys.len() as u32);
        order.sort_by_key(|&i| shards[i as usize]);
    }

    /// Runs `body` once per shard that has keys in the batch, holding that
    /// shard's lock exactly once for its whole contiguous run of keys.
    /// With the `stats` feature, lock acquisitions/contention/hold time
    /// are tallied per shard here.
    fn for_each_shard_run(
        &self,
        scratch: &ShardBatch,
        mut body: impl FnMut(&mut AlignedVec<HcbfWord<W>>, &[u32], usize),
    ) {
        let order = &scratch.order;
        let mut i = 0;
        while i < order.len() {
            let shard = scratch.shards[order[i] as usize] as usize;
            let start = i;
            while i < order.len() && scratch.shards[order[i] as usize] as usize == shard {
                i += 1;
            }
            let run = &order[start..i];
            #[cfg(feature = "stats")]
            let (mut guard, held_since) = self.lock_shard(shard);
            #[cfg(not(feature = "stats"))]
            let mut guard = self.shards[shard].lock();
            body(&mut guard, run, shard);
            #[cfg(feature = "stats")]
            {
                drop(guard);
                self.stats[shard].record_hold(held_since.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Batched membership check: hashes all keys, then visits each shard
    /// once (lock → probe run). Results are in input order.
    pub fn contains_batch_bytes(&self, keys: &[&[u8]]) -> Vec<bool> {
        self.contains_batch_bytes_with(keys, &mut ShardBatch::new())
    }

    /// [`Self::contains_batch_bytes`] against a caller-held scratch:
    /// reusing `scratch` across batches allocates nothing after warm-up
    /// and yields bit-identical results to a fresh scratch.
    pub fn contains_batch_bytes_with(&self, keys: &[&[u8]], scratch: &mut ShardBatch) -> Vec<bool> {
        self.plan_batch_into(keys, scratch);
        let plans = &scratch.plans;
        let mut out = vec![false; keys.len()];
        self.for_each_shard_run(scratch, |words, run, _shard| {
            for &idx in run {
                #[cfg(feature = "stats")]
                {
                    let (hit, cost) = self.query_planned_metered_buf(words, plans, idx as usize);
                    self.stats[_shard].accesses.record(OpKind::Query, cost);
                    out[idx as usize] = hit;
                }
                #[cfg(not(feature = "stats"))]
                {
                    out[idx as usize] = Self::query_planned_buf(words, plans, idx as usize);
                }
            }
        });
        out
    }

    /// Batched insertion: each shard lock is taken once; keys within a
    /// shard are applied in batch order, so duplicates behave exactly as a
    /// scalar loop would. Per-key results are in input order.
    pub fn insert_batch_bytes(&self, keys: &[&[u8]]) -> Vec<Result<(), FilterError>> {
        self.insert_batch_bytes_with(keys, &mut ShardBatch::new())
    }

    /// [`Self::insert_batch_bytes`] against a caller-held scratch. The
    /// update kernel bundle is resolved once here and drives every word
    /// walk in the batch, rollbacks included.
    pub fn insert_batch_bytes_with(
        &self,
        keys: &[&[u8]],
        scratch: &mut ShardBatch,
    ) -> Vec<Result<(), FilterError>> {
        self.plan_batch_into(keys, scratch);
        let plans = &scratch.plans;
        let ops = Kernel::batch().update;
        #[cfg(not(feature = "stats"))]
        let b1 = self.shape.b1;
        let mut out = vec![Ok(()); keys.len()];
        let mut failed = 0u64;
        self.for_each_shard_run(scratch, |words, run, _shard| {
            for &idx in run {
                #[cfg(feature = "stats")]
                {
                    out[idx as usize] =
                        match self.insert_planned_metered_buf(words, plans, idx as usize, &ops) {
                            Ok(cost) => {
                                self.stats[_shard].accesses.record(OpKind::Insert, cost);
                                Ok(())
                            }
                            Err(e) => {
                                if matches!(e, FilterError::WordOverflow { .. }) {
                                    failed += 1;
                                }
                                Err(self.globalize_err(_shard, e))
                            }
                        };
                }
                #[cfg(not(feature = "stats"))]
                {
                    let r = Self::insert_planned_buf(words, plans, idx as usize, b1, &ops);
                    if matches!(r, Err(FilterError::WordOverflow { .. })) {
                        failed += 1;
                    }
                    out[idx as usize] = r.map_err(|e| self.globalize_err(_shard, e));
                }
            }
        });
        self.overflows.fetch_add(failed, Ordering::Relaxed);
        out
    }

    /// Batched removal: mirror of [`Self::insert_batch_bytes`].
    pub fn remove_batch_bytes(&self, keys: &[&[u8]]) -> Vec<Result<(), FilterError>> {
        self.remove_batch_bytes_with(keys, &mut ShardBatch::new())
    }

    /// [`Self::remove_batch_bytes`] against a caller-held scratch.
    pub fn remove_batch_bytes_with(
        &self,
        keys: &[&[u8]],
        scratch: &mut ShardBatch,
    ) -> Vec<Result<(), FilterError>> {
        self.plan_batch_into(keys, scratch);
        let plans = &scratch.plans;
        let ops = Kernel::batch().update;
        #[cfg(not(feature = "stats"))]
        let b1 = self.shape.b1;
        let mut out = vec![Ok(()); keys.len()];
        self.for_each_shard_run(scratch, |words, run, _shard| {
            for &idx in run {
                #[cfg(feature = "stats")]
                {
                    out[idx as usize] = self
                        .remove_planned_metered_buf(words, plans, idx as usize, &ops)
                        .map(|cost| self.stats[_shard].accesses.record(OpKind::Remove, cost))
                        .map_err(|e| self.globalize_err(_shard, e));
                }
                #[cfg(not(feature = "stats"))]
                {
                    out[idx as usize] =
                        Self::remove_planned_buf(words, plans, idx as usize, b1, &ops)
                            .map_err(|e| self.globalize_err(_shard, e));
                }
            }
        });
        out
    }

    /// Batched membership for any [`mpcbf_hash::Key`] type.
    pub fn contains_batch<K: mpcbf_hash::Key>(&self, keys: &[K]) -> Vec<bool> {
        let owned: Vec<_> = keys.iter().map(mpcbf_hash::Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.contains_batch_bytes(&views)
    }

    /// Batched insertion for any [`mpcbf_hash::Key`] type.
    pub fn insert_batch<K: mpcbf_hash::Key>(&self, keys: &[K]) -> Vec<Result<(), FilterError>> {
        let owned: Vec<_> = keys.iter().map(mpcbf_hash::Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.insert_batch_bytes(&views)
    }

    /// Batched removal for any [`mpcbf_hash::Key`] type.
    pub fn remove_batch<K: mpcbf_hash::Key>(&self, keys: &[K]) -> Vec<Result<(), FilterError>> {
        let owned: Vec<_> = keys.iter().map(mpcbf_hash::Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.remove_batch_bytes(&views)
    }
}

impl<H: Hasher128> ShardedMpcbf<u64, H> {
    /// The raw word array of one shard (diagnostics and fault drills).
    pub fn shard_raw_words(&self, shard: usize) -> Vec<u64> {
        self.shards[shard].lock().iter().map(|w| *w.raw()).collect()
    }

    /// Installs a bulk-built word array into one shard (the
    /// `bulk::ShardedBulkBuilder` finish path — builders stage into
    /// their own arrays and swap them in here).
    ///
    /// # Panics
    /// Panics if `words` is not exactly one shard's length.
    pub(crate) fn bulk_install(&self, shard: usize, words: AlignedVec<HcbfWord<u64>>) {
        assert_eq!(words.len() as u64, self.words_per_shard);
        *self.shards[shard].lock() = words;
    }

    /// Adds bulk-build refusals to the overflow tally.
    pub(crate) fn bulk_add_overflows(&self, n: u64) {
        self.overflows.fetch_add(n, Ordering::Relaxed);
    }

    /// The digest split the insert path uses (shard, probe digest), for
    /// the bulk builder's router.
    #[inline]
    pub(crate) fn bulk_split_digest(&self, digest: u128) -> (usize, u128) {
        self.split_digest(digest)
    }

    /// The hash seed, for the bulk builder's digest computation.
    pub(crate) fn bulk_seed(&self) -> u64 {
        self.seed
    }

    /// Epoch-based seal: checksums every shard's word array, taking each
    /// shard lock exactly once. Returns one [`FilterSeal`] per shard.
    ///
    /// Like the sequential seal, any legitimate update after sealing
    /// flips its segment's CRC, so seal/scrub pairs are meaningful on
    /// quiescent (or per-shard-quiesced) filters — re-seal after updates.
    pub fn seal(&self) -> Vec<FilterSeal> {
        self.shards
            .iter()
            .map(|shard| {
                let guard = shard.lock();
                let raw: Vec<u64> = guard.iter().map(|w| *w.raw()).collect();
                FilterSeal::compute(&raw)
            })
            .collect()
    }

    /// Epoch-based scrub: per shard, takes the lock once, recomputes the
    /// segment CRCs against that shard's seal and re-walks the word
    /// invariants. Damage is reported with global segment indices (see
    /// [`ShardedMpcbf::verify`]).
    ///
    /// # Panics
    /// Panics if `seals` was not produced by [`ShardedMpcbf::seal`] on an
    /// identically-shaped filter.
    pub fn scrub(&self, seals: &[FilterSeal]) -> ScrubReport {
        assert_eq!(
            seals.len(),
            self.shards.len(),
            "seal covers {} shards, filter has {}",
            seals.len(),
            self.shards.len()
        );
        let b1 = self.shape.b1;
        let per = self.segments_per_shard();
        let mut corrupt = Vec::new();
        let mut checked = 0usize;
        for (s, (shard, seal)) in self.shards.iter().zip(seals).enumerate() {
            let guard = shard.lock();
            let raw: Vec<u64> = guard.iter().map(|w| *w.raw()).collect();
            corrupt.extend(seal.diff(&raw).into_iter().map(|seg| s * per + seg));
            for (i, w) in guard.iter().enumerate() {
                if w.check_invariants(b1).is_err() {
                    corrupt.push(s * per + i / SEGMENT_WORDS);
                }
            }
            checked += seal.segments();
        }
        ScrubReport::new(checked, corrupt)
    }

    /// Fault-injection hook: XORs `mask` into word `word` of shard
    /// `shard`, simulating an in-memory bit flip for scrub drills. Never
    /// part of normal operation.
    pub fn corrupt_word_xor(&self, shard: usize, word: usize, mask: u64) {
        let mut guard = self.shards[shard].lock();
        let damaged = guard[word].raw() ^ mask;
        guard[word] = HcbfWord::from_raw(damaged);
    }

    /// The shard this key routes to (the top [`SHARD_BITS`] of its
    /// digest, masked to the shard count). The durability layer uses
    /// this to append each operation to its home shard's WAL.
    pub fn home_shard(&self, key: &[u8]) -> usize {
        self.split_digest(H::hash128(self.seed, key)).0
    }

    /// Encodes the whole sharded filter into the portable wire format
    /// (kind [`codec::KIND_SHARDED64`]): shape header, shard geometry,
    /// then each shard's word array in shard order.
    ///
    /// Takes each shard lock once, in order; concurrent updates to
    /// not-yet-visited shards can land in the image, so snapshot callers
    /// should quiesce writers first (the durability layer does).
    pub fn encode(&self) -> Vec<u8> {
        let shape = self.shape;
        let mut w = codec::Writer::new(codec::KIND_SHARDED64);
        w.u64(shape.l);
        w.u32(shape.k);
        w.u32(shape.g);
        w.u32(shape.n_max);
        w.u64(self.seed);
        w.u32(self.shards.len() as u32);
        w.u64(self.words_per_shard);
        w.u64(self.overflows());
        for shard in &self.shards {
            let guard = shard.lock();
            let raw: Vec<u64> = guard.iter().map(|word| *word.raw()).collect();
            w.limbs(&raw);
        }
        w.finish()
    }

    /// Decodes a filter previously produced by [`ShardedMpcbf::encode`],
    /// revalidating the shard geometry and every word's hierarchy
    /// invariant — malformed images error, never panic.
    pub fn decode(buf: &[u8]) -> Result<Self, codec::CodecError> {
        use codec::CodecError;
        let mut r = codec::Reader::open(buf, codec::KIND_SHARDED64)?;
        let l = r.u64()?;
        let k = r.u32()?;
        let g = r.u32()?;
        let n_max = r.u32()?;
        let seed = r.u64()?;
        let shard_count = r.u32()? as usize;
        let words_per_shard = r.u64()?;
        let overflows = r.u64()?;
        if !(2..=(1u64 << 40)).contains(&l) {
            return Err(CodecError::BadHeader("word count"));
        }
        if shard_count == 0 || !shard_count.is_power_of_two() {
            return Err(CodecError::BadHeader("shard count"));
        }
        let config = MpcbfConfig::builder()
            .memory_bits(l * 64)
            .expected_items(1)
            .hashes(k)
            .accesses(g)
            .n_max(n_max)
            .seed(seed)
            .build()
            .map_err(|_| CodecError::BadHeader("shape"))?;
        let filter: Self = ShardedMpcbf::new(config, shard_count);
        // `new` re-derives the geometry from (l, shard_count); a stored
        // geometry it disagrees with means the header is inconsistent.
        if filter.shard_count() != shard_count || filter.words_per_shard != words_per_shard {
            return Err(CodecError::BadHeader("shard geometry"));
        }
        let b1 = filter.shape.b1;
        for shard in &filter.shards {
            let limbs = r.limbs(words_per_shard as usize)?;
            let mut guard = shard.lock();
            for (i, &raw) in limbs.iter().enumerate() {
                let word = HcbfWord::<u64>::from_raw(raw);
                if word.check_invariants(b1).is_err() {
                    return Err(CodecError::BadHeader("word invariant"));
                }
                guard[i] = word;
            }
        }
        r.expect_end()?;
        filter.overflows.store(overflows, Ordering::Relaxed);
        Ok(filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::MpcbfConfig;

    fn filter() -> ShardedMpcbf<u64> {
        let c = MpcbfConfig::builder()
            .memory_bits(1_000_000)
            .expected_items(10_000)
            .hashes(3)
            .seed(21)
            .build()
            .unwrap();
        ShardedMpcbf::new(c, 64)
    }

    #[test]
    fn every_shard_storage_is_cache_line_aligned() {
        let f = filter();
        for shard in &f.shards {
            let guard = shard.lock();
            let addr = guard.as_slice().as_ptr() as usize;
            assert_eq!(addr % mpcbf_bitvec::CACHE_LINE_BYTES, 0);
        }
    }

    #[test]
    fn sequential_roundtrip() {
        let f = filter();
        for i in 0..3_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..3_000u64 {
            assert!(f.contains(&i));
        }
        for i in 0..3_000u64 {
            f.remove(&i).unwrap();
        }
        assert_eq!(f.total_load(), 0);
    }

    #[test]
    fn shard_routing_uses_disjoint_bits() {
        // Two digests that differ only in the shard field must produce
        // identical probe plans; two that differ only in the probe field
        // must land in the same shard.
        let f = filter();
        let base: u128 = 0x0123_4567_89ab_cdef_0011_2233_4455_6677;
        // Flip the lowest shard-field bit (bit 112) so it survives the
        // power-of-two shard mask.
        let shard_flip = base ^ (1u128 << (128 - SHARD_BITS));
        let probe_flip = base ^ 1u128;
        let (s0, p0) = f.split_digest(base);
        let (s1, p1) = f.split_digest(shard_flip);
        let (s2, p2) = f.split_digest(probe_flip);
        assert_ne!(s0, s1, "flipping a shard bit must change the shard");
        assert_eq!(p0, p1, "shard bits must not leak into the probe digest");
        assert_eq!(s0, s2, "probe bits must not leak into the shard index");
        assert_ne!(p0, p2);
    }

    #[test]
    fn batch_matches_scalar_loop() {
        let scalar = filter();
        let batch = filter();
        let keys: Vec<u64> = (0..2_000).collect();
        for k in &keys {
            scalar.insert(k).unwrap();
        }
        let results = batch.insert_batch(&keys);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(scalar.total_load(), batch.total_load());

        let probes: Vec<u64> = (1_000..5_000).collect();
        let batched = batch.contains_batch(&probes);
        for (k, hit) in probes.iter().zip(&batched) {
            assert_eq!(scalar.contains(k), *hit, "divergence at {k}");
        }

        let removals: Vec<u64> = (500..2_500).collect();
        let scalar_r: Vec<_> = removals.iter().map(|k| scalar.remove(k)).collect();
        let batch_r = batch.remove_batch(&removals);
        assert_eq!(scalar_r, batch_r);
        assert_eq!(scalar.total_load(), batch.total_load());
    }

    #[test]
    fn duplicate_keys_in_one_batch_behave_like_scalar() {
        let scalar = filter();
        let batch = filter();
        let keys: Vec<u64> = vec![7, 7, 7, 42, 7, 42];
        for k in &keys {
            scalar.insert(k).unwrap();
        }
        batch.insert_batch(&keys);
        assert_eq!(scalar.total_load(), batch.total_load());
        // Remove one more 7 than was inserted: the extra must fail in both.
        let removals: Vec<u64> = vec![7, 7, 7, 7, 7];
        let scalar_r: Vec<_> = removals.iter().map(|k| scalar.remove(k)).collect();
        let batch_r = batch.remove_batch(&removals);
        assert_eq!(scalar_r, batch_r);
        assert_eq!(batch_r[4], Err(FilterError::NotPresent));
    }

    #[test]
    fn parallel_inserts_are_all_visible() {
        let f = filter();
        let threads = 8u64;
        let per = 1_000u64;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let f = &f;
                s.spawn(move |_| {
                    for i in t * per..(t + 1) * per {
                        f.insert(&i).unwrap();
                    }
                });
            }
        })
        .unwrap();
        for i in 0..threads * per {
            assert!(f.contains(&i), "lost {i}");
        }
        assert_eq!(f.overflows(), 0);
    }

    #[test]
    fn parallel_batch_inserts_are_all_visible() {
        let f = filter();
        let threads = 4u64;
        let per = 1_000u64;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let f = &f;
                s.spawn(move |_| {
                    let keys: Vec<u64> = (t * per..(t + 1) * per).collect();
                    for r in f.insert_batch(&keys) {
                        r.unwrap();
                    }
                });
            }
        })
        .unwrap();
        let keys: Vec<u64> = (0..threads * per).collect();
        for (k, hit) in keys.iter().zip(f.contains_batch(&keys)) {
            assert!(hit, "lost {k}");
        }
    }

    #[test]
    fn parallel_insert_then_parallel_remove_drains() {
        let f = filter();
        let keys: Vec<u64> = (0..8_000).collect();
        crossbeam::scope(|s| {
            for chunk in keys.chunks(1_000) {
                let f = &f;
                s.spawn(move |_| {
                    for k in chunk {
                        f.insert(k).unwrap();
                    }
                });
            }
        })
        .unwrap();
        crossbeam::scope(|s| {
            for chunk in keys.chunks(1_000) {
                let f = &f;
                s.spawn(move |_| {
                    for k in chunk {
                        f.remove(k).unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f.total_load(), 0);
    }

    #[test]
    fn mixed_readers_and_writers_dont_lose_elements() {
        let f = filter();
        let stable: Vec<u64> = (0..2_000).collect();
        for k in &stable {
            f.insert(k).unwrap();
        }
        crossbeam::scope(|s| {
            // Writers churn a disjoint key range, in batches.
            for t in 0..4u64 {
                let f = &f;
                s.spawn(move |_| {
                    for i in 0..50u64 {
                        let keys: Vec<u64> = (0..10)
                            .map(|j| 1_000_000 + t * 1_000 + i * 10 + j)
                            .collect();
                        for r in f.insert_batch(&keys) {
                            r.unwrap();
                        }
                        for r in f.remove_batch(&keys) {
                            r.unwrap();
                        }
                    }
                });
            }
            // Readers continuously verify the stable set.
            for _ in 0..4 {
                let f = &f;
                let stable = &stable;
                s.spawn(move |_| {
                    for _ in 0..5 {
                        for hit in f.contains_batch(stable) {
                            assert!(hit, "stable key lost");
                        }
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn epoch_scrub_localises_injected_damage() {
        let f = filter();
        for i in 0..3_000u64 {
            f.insert(&i).unwrap();
        }
        assert_eq!(f.verify(), Ok(()));
        let seals = f.seal();
        assert_eq!(seals.len(), f.shard_count());
        assert!(f.scrub(&seals).is_clean());

        // Flip one bit in shard 5, word 3: exactly one global segment dirty.
        f.corrupt_word_xor(5, 3, 1 << 20);
        let report = f.scrub(&seals);
        let per = seals[0].segments();
        assert_eq!(report.corrupt_segments, vec![5 * per]);
        assert_eq!(report.segments_checked, per * f.shard_count());

        // Undo: clean again; damage in two shards reports both segments.
        f.corrupt_word_xor(5, 3, 1 << 20);
        assert!(f.scrub(&seals).is_clean());
        f.corrupt_word_xor(0, 0, 1);
        f.corrupt_word_xor(9, 1, 1 << 40);
        let report = f.scrub(&seals);
        assert_eq!(report.corrupt_segments, vec![0, 9 * per]);
    }

    #[test]
    fn verify_detects_invariant_breaking_flip() {
        let f = filter();
        for i in 0..500u64 {
            f.insert(&i).unwrap();
        }
        // Setting a high bit with no supporting hierarchy below it breaks
        // the level-walk invariant in shard 2's word 0.
        f.corrupt_word_xor(2, 0, 1 << 63);
        let per = (f.shard_raw_words(0).len()).div_ceil(SEGMENT_WORDS);
        assert_eq!(
            f.verify(),
            Err(FilterError::CorruptionDetected { segment: 2 * per })
        );
    }

    #[test]
    fn shard_cap_never_mints_more_shards_than_words() {
        // Regression: with l = 5 words, a request for 8 shards used to
        // round the word-count cap *up* (next_power_of_two(5) = 8) and
        // mint 8 shards for 5 words. The cap must round down, so the
        // shard count never exceeds the configured word count — while
        // each shard still gets `ceil(l / shards)` words, keeping total
        // capacity at or above the validated `l`.
        let c = MpcbfConfig::builder()
            .memory_bits(320) // l = 5 words of 64 bits
            .expected_items(4)
            .hashes(2)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(c.shape().l, 5, "test premise: non-power-of-two l");
        let f: ShardedMpcbf<u64> = ShardedMpcbf::new(c, 8);
        assert!(
            f.shard_count() as u64 <= 5,
            "{} shards minted for 5 words",
            f.shard_count()
        );
        assert!(
            f.shard_count() as u64 * f.words_per_shard() >= 5,
            "{} shards × {} words falls below the configured 5",
            f.shard_count(),
            f.words_per_shard()
        );
        // Still a working filter at this degenerate size.
        f.insert(&"x").unwrap();
        assert!(f.contains(&"x"));
        f.remove(&"x").unwrap();
        assert_eq!(f.total_load(), 0);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn stats_ledger_meters_every_op_kind() {
        let f = filter();
        let keys: Vec<u64> = (0..1_000).collect();
        for r in f.insert_batch(&keys) {
            r.unwrap();
        }
        for k in 0..500u64 {
            assert!(f.contains(&k));
        }
        f.remove(&0u64).unwrap();
        let stats = f.access_stats();
        assert_eq!(stats.inserts.ops(), 1_000);
        assert_eq!(stats.queries.ops(), 500);
        assert_eq!(stats.removes.ops(), 1);
        let g = f.shape().g as f64;
        for tally in [stats.inserts, stats.queries, stats.removes] {
            assert!(tally.mean_accesses() >= 1.0 && tally.mean_accesses() <= g);
            assert!(tally.mean_hash_bits() > 0.0);
        }
        let locks = f.lock_stats();
        // 501 scalar ops = 501 acquisitions, plus one per shard run of the
        // batch insert.
        assert!(locks.acquisitions >= 501);
        assert_eq!(locks.contended, 0, "single-threaded: nothing contends");
    }

    #[cfg(feature = "stats")]
    #[test]
    fn batch_and_scalar_metering_agree() {
        let scalar = filter();
        let batch = filter();
        let keys: Vec<u64> = (0..2_000).collect();
        for k in &keys {
            scalar.insert(k).unwrap();
        }
        for r in batch.insert_batch(&keys) {
            r.unwrap();
        }
        let probes: Vec<u64> = (1_000..4_000).collect();
        for k in &probes {
            scalar.contains(k);
        }
        batch.contains_batch(&probes);
        for k in 0..500u64 {
            scalar.remove(&k).unwrap();
        }
        let removals: Vec<u64> = (0..500).collect();
        for r in batch.remove_batch(&removals) {
            r.unwrap();
        }
        // Identical keys against identical filters: the batch pipeline
        // must meter exactly what the scalar loop does.
        assert_eq!(scalar.access_stats(), batch.access_stats());
    }

    #[test]
    fn corruption_errors_carry_global_segment_indices() {
        // A failed rollback surfaces as CorruptionDetected with a
        // shard-local segment; the entry points must re-index it into the
        // verify()/scrub() global frame, and leave other errors alone.
        let f = filter();
        let per = f.segments_per_shard();
        assert_eq!(
            f.globalize_err(5, FilterError::CorruptionDetected { segment: 2 }),
            FilterError::CorruptionDetected {
                segment: 5 * per + 2
            }
        );
        assert_eq!(
            f.globalize_err(5, FilterError::WordOverflow { word: 7 }),
            FilterError::WordOverflow { word: 7 }
        );
        assert_eq!(
            f.globalize_err(5, FilterError::NotPresent),
            FilterError::NotPresent
        );
    }

    #[test]
    fn saturating_batches_refuse_without_bricking_the_shard() {
        // Drive a tiny filter far past capacity with duplicate-heavy
        // batches: every refusal must be a WordOverflow error (and only
        // those may bump the overflow counter), the rollbacks must never
        // poison a shard lock, and the filter must keep serving.
        let c = MpcbfConfig::builder()
            .memory_bits(320)
            .expected_items(4)
            .hashes(2)
            .seed(7)
            .build()
            .unwrap();
        let f: ShardedMpcbf<u64> = ShardedMpcbf::new(c, 4);
        let keys: Vec<u64> = (0..64).map(|i| i % 4).collect();
        let mut refused = 0u64;
        for _ in 0..8 {
            for r in f.insert_batch(&keys) {
                if let Err(e) = r {
                    assert!(matches!(e, FilterError::WordOverflow { .. }), "{e:?}");
                    refused += 1;
                }
            }
        }
        assert!(refused > 0, "test premise: the filter must saturate");
        assert_eq!(f.overflows(), refused);
        assert!(f.contains(&0u64));
        while f.remove(&0u64).is_ok() {}
        assert_eq!(f.verify(), Ok(()));
    }

    #[test]
    fn remove_absent_is_clean_under_contention() {
        let f = filter();
        f.insert(&"present").unwrap();
        assert_eq!(f.remove(&"absent"), Err(FilterError::NotPresent));
        assert!(f.contains(&"present"));
    }

    #[test]
    fn codec_roundtrip_is_bit_exact() {
        let f = filter();
        let keys: Vec<Vec<u8>> = (0..3_000u64).map(|i| i.to_le_bytes().to_vec()).collect();
        for k in &keys {
            f.insert_bytes(k).unwrap();
        }
        let image = f.encode();
        assert_eq!(image, f.encode(), "encode must be deterministic");
        let d = ShardedMpcbf::<u64>::decode(&image).unwrap();
        assert_eq!(d.shard_count(), f.shard_count());
        assert_eq!(d.words_per_shard(), f.words_per_shard());
        assert_eq!(d.overflows(), f.overflows());
        for s in 0..f.shard_count() {
            assert_eq!(d.shard_raw_words(s), f.shard_raw_words(s), "shard {s}");
        }
        for k in &keys {
            assert!(d.contains_bytes(k));
        }
        assert_eq!(d.verify(), Ok(()));
        // The decoded filter keeps routing identically.
        assert_eq!(d.home_shard(b"some key"), f.home_shard(b"some key"));
        d.remove_bytes(&keys[0]).unwrap();
    }

    #[test]
    fn codec_rejects_corrupt_images() {
        let f = filter();
        for i in 0..500u64 {
            f.insert(&i).unwrap();
        }
        let image = f.encode();
        for pos in [0usize, 4, 5, 30, image.len() / 2, image.len() - 1] {
            let mut corrupt = image.clone();
            corrupt[pos] ^= 0x08;
            assert!(
                ShardedMpcbf::<u64>::decode(&corrupt).is_err(),
                "bitflip at {pos} went undetected"
            );
        }
        for cut in [0usize, 7, image.len() / 4, image.len() - 2] {
            assert!(ShardedMpcbf::<u64>::decode(&image[..cut]).is_err());
        }
    }
}
