//! Lock-free MPCBF over 64-bit words.
//!
//! Every word is an `AtomicU64`; an update is a classic CAS loop: load the
//! word, run the [`HcbfWord`] codec on the local copy, compare-and-swap.
//! This works because an HCBF word is a pure value — the whole counter
//! structure for that word fits in the one atomic cell, so word-level
//! linearisability comes for free and contention only arises when two
//! threads hash to the *same* word simultaneously (probability ≈ 1/l).

#[cfg(feature = "stats")]
use crate::stats::AccessLedger;
use mpcbf_analysis::heuristic::MpcbfShape;
use mpcbf_bitvec::{AlignedVec, Kernel, KernelOps};
use mpcbf_core::config::MpcbfConfig;
use mpcbf_core::hcbf::{HcbfWord, WordError};
#[cfg(feature = "stats")]
use mpcbf_core::metrics::{AccessStats, OpCost, OpKind, WordTouches};
use mpcbf_core::scrub::{segment_of, FilterSeal, ScrubReport};
#[cfg(feature = "stats")]
use mpcbf_core::ProbePlan;
use mpcbf_core::{FilterError, PlanBuffer};
#[cfg(feature = "stats")]
use mpcbf_hash::mix::bits_for;
#[cfg(not(feature = "stats"))]
use mpcbf_hash::DoubleHasher;
use mpcbf_hash::{Hasher128, Murmur3};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(not(feature = "stats"))]
const WORD_SALT: u64 = 0x4d50_4342_465f_5744;
#[cfg(not(feature = "stats"))]
const GROUP_SALT: u64 = 0x4d50_4342_465f_4752;

#[cfg(not(feature = "stats"))]
#[inline]
fn split_hashes(k: u32, g: u32, t: u32) -> u32 {
    let base = k / g;
    if t < k % g {
        base + 1
    } else {
        base
    }
}

/// A lock-free MPCBF (64-bit words only).
pub struct AtomicMpcbf<H: Hasher128 = Murmur3> {
    words: AlignedVec<AtomicU64>,
    shape: MpcbfShape,
    seed: u64,
    overflows: AtomicU64,
    #[cfg(feature = "stats")]
    stats: AccessLedger,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> AtomicMpcbf<H> {
    /// Creates a lock-free filter from a validated configuration.
    ///
    /// # Panics
    /// Panics unless the configuration uses 64-bit words.
    pub fn new(config: MpcbfConfig) -> Self {
        let shape = config.shape();
        assert_eq!(shape.w, 64, "AtomicMpcbf requires 64-bit words");
        let words = AlignedVec::from_fn(shape.l as usize, |_| AtomicU64::new(0));
        AtomicMpcbf {
            words,
            shape,
            seed: config.seed(),
            overflows: AtomicU64::new(0),
            #[cfg(feature = "stats")]
            stats: AccessLedger::new(),
            _hasher: PhantomData,
        }
    }

    /// The derived structural parameters.
    pub fn shape(&self) -> MpcbfShape {
        self.shape
    }

    /// Insertions refused because a word overflowed.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Total increments currently stored.
    pub fn total_load(&self) -> u64 {
        self.words
            .iter()
            .map(|w| u64::from(w.load(Ordering::Relaxed).count_ones()))
            .sum()
    }

    #[cfg(not(feature = "stats"))]
    #[inline]
    fn targets(&self, key: &[u8], out: &mut [(usize, u32); 64]) -> usize {
        let digest = H::hash128(self.seed, key);
        let mut word_picker = DoubleHasher::with_salt(digest, WORD_SALT, self.shape.l);
        let mut n = 0;
        for t in 0..self.shape.g {
            let word = word_picker.next_index();
            let k_t = split_hashes(self.shape.k, self.shape.g, t);
            let mut inner = DoubleHasher::with_salt(
                digest,
                GROUP_SALT ^ u64::from(t),
                u64::from(self.shape.b1),
            );
            for _ in 0..k_t {
                out[n] = (word, inner.next_index() as u32);
                n += 1;
            }
        }
        n
    }

    /// CAS loop applying `op` to one word. Returns `Err` if `op` reports
    /// an error on the *current* value (no retry — the error is a property
    /// of the state, e.g. overflow).
    #[inline]
    fn update_word(
        &self,
        word: usize,
        mut op: impl FnMut(&mut HcbfWord<u64>) -> Result<(), WordError>,
    ) -> Result<(), WordError> {
        let cell = &self.words[word];
        let mut current = cell.load(Ordering::Acquire);
        loop {
            let mut local = HcbfWord::from_raw(current);
            op(&mut local)?;
            match cell.compare_exchange_weak(
                current,
                *local.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// The metered cost of one operation, mirroring the sequential
    /// filter's accounting exactly: distinct words touched, and hash bits
    /// = word-picker bits per evaluated group + position bits per
    /// evaluated probe + any counter-traversal bits an update reports.
    #[cfg(feature = "stats")]
    fn probe_cost(
        &self,
        words_eval: u32,
        pos_eval: u32,
        touches: &WordTouches,
        traversal_bits: u32,
    ) -> OpCost {
        OpCost {
            word_accesses: touches.count(),
            hash_bits: words_eval * bits_for(self.shape.l)
                + pos_eval * bits_for(u64::from(self.shape.b1))
                + traversal_bits,
        }
    }

    /// Merged access ledger (feature `stats`): mean accesses / hash bits
    /// per operation kind, measured under whatever concurrency actually
    /// happened. With `stats` on, scalar operations run through the
    /// planned (per-group) paths so their costs mirror the sequential
    /// accounting; placement and final state are unchanged.
    #[cfg(feature = "stats")]
    pub fn access_stats(&self) -> AccessStats {
        let mut stats = AccessStats::new();
        self.stats.fold_into(&mut stats);
        stats
    }

    /// Membership check.
    pub fn contains<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> bool {
        self.contains_bytes(key.key_bytes().as_slice())
    }

    /// Membership check on raw bytes.
    #[cfg(not(feature = "stats"))]
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        let mut targets = [(0usize, 0u32); 64];
        let n = self.targets(key, &mut targets);
        let mut i = 0;
        while i < n {
            let word = targets[i].0;
            // One atomic load serves every position in this word.
            let snapshot = HcbfWord::from_raw(self.words[word].load(Ordering::Acquire));
            while i < n && targets[i].0 == word {
                if !snapshot.query(targets[i].1) {
                    return false;
                }
                i += 1;
            }
        }
        true
    }

    /// Membership check on raw bytes (metered).
    #[cfg(feature = "stats")]
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        self.query_plan(&self.plan(key))
    }

    /// Inserts a key.
    pub fn insert<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> Result<(), FilterError> {
        self.insert_bytes(key.key_bytes().as_slice())
    }

    /// Inserts raw bytes, rolling back on overflow.
    ///
    /// Unlike the locked variants, a rollback step here *can* fail under
    /// contention: another thread removing this key mid-rollback drains
    /// the counter first. The state is then indeterminate for this key,
    /// reported as [`FilterError::CorruptionDetected`] (a scrub resolves
    /// it) — never a panic a remote caller could trigger.
    #[cfg(not(feature = "stats"))]
    pub fn insert_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let mut targets = [(0usize, 0u32); 64];
        let n = self.targets(key, &mut targets);
        let b1 = self.shape.b1;
        for i in 0..n {
            let (word, p) = targets[i];
            if let Err(e) = self.update_word(word, |w| w.increment(p, b1).map(|_| ())) {
                for &(rw, rp) in targets[..i].iter().rev() {
                    if self
                        .update_word(rw, |w| w.decrement(rp, b1).map(|_| ()))
                        .is_err()
                    {
                        return Err(FilterError::CorruptionDetected {
                            segment: segment_of(rw),
                        });
                    }
                }
                self.overflows.fetch_add(1, Ordering::Relaxed);
                return Err(e.at(word));
            }
        }
        Ok(())
    }

    /// Inserts raw bytes, rolling back on overflow (metered; one CAS per
    /// group — identical placement, strictly coarser granularity).
    #[cfg(feature = "stats")]
    pub fn insert_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        self.insert_planned(&self.plan(key), self.shape.b1)
    }

    /// Removes a key.
    pub fn remove<K: mpcbf_hash::Key + ?Sized>(&self, key: &K) -> Result<(), FilterError> {
        self.remove_bytes(key.key_bytes().as_slice())
    }

    /// Removes raw bytes, rolling back if the element is absent. Rollback
    /// failure reports `CorruptionDetected` instead of panicking — see
    /// [`Self::insert_bytes`].
    #[cfg(not(feature = "stats"))]
    pub fn remove_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        let mut targets = [(0usize, 0u32); 64];
        let n = self.targets(key, &mut targets);
        let b1 = self.shape.b1;
        for i in 0..n {
            let (word, p) = targets[i];
            if self
                .update_word(word, |w| w.decrement(p, b1).map(|_| ()))
                .is_err()
            {
                for &(rw, rp) in targets[..i].iter().rev() {
                    if self
                        .update_word(rw, |w| w.increment(rp, b1).map(|_| ()))
                        .is_err()
                    {
                        return Err(FilterError::CorruptionDetected {
                            segment: segment_of(rw),
                        });
                    }
                }
                return Err(FilterError::NotPresent);
            }
        }
        Ok(())
    }

    /// Removes raw bytes, rolling back if the element is absent (metered;
    /// one CAS per group).
    #[cfg(feature = "stats")]
    pub fn remove_bytes(&self, key: &[u8]) -> Result<(), FilterError> {
        self.remove_planned(&self.plan(key), self.shape.b1)
    }

    /// Plans a key's probes. The plan uses the same `WORD_SALT`/`GROUP_SALT`
    /// streams as [`Self::targets`], so planned and scalar operations place
    /// elements identically.
    #[cfg(feature = "stats")]
    #[inline]
    fn plan(&self, key: &[u8]) -> ProbePlan {
        ProbePlan::partitioned(
            H::hash128(self.seed, key),
            self.shape.l,
            self.shape.k,
            self.shape.g,
            u64::from(self.shape.b1),
        )
    }

    /// Plans a whole batch into the caller's [`PlanBuffer`] — the same
    /// digest streams as [`Self::targets`]/[`ProbePlan`], zero allocation
    /// once the buffer is warm.
    fn plan_into(&self, keys: &[&[u8]], plans: &mut PlanBuffer) {
        plans.plan_partitioned(
            keys.iter().map(|key| H::hash128(self.seed, key)),
            self.shape.l,
            self.shape.k,
            self.shape.g,
            u64::from(self.shape.b1),
        );
    }

    /// Queries one planned key (metered twin: same verdict and
    /// short-circuit, cost recorded into the ledger).
    #[cfg(feature = "stats")]
    fn query_plan(&self, plan: &ProbePlan) -> bool {
        let mut touches = WordTouches::new();
        let mut words_eval = 0u32;
        let mut pos_eval = 0u32;
        let mut hit = true;
        for (word, probes) in plan.groups() {
            touches.touch(word);
            words_eval += 1;
            let snapshot = HcbfWord::from_raw(self.words[word].load(Ordering::Acquire));
            let (all_set, evaluated) = snapshot.query_all(probes);
            pos_eval += evaluated;
            if !all_set {
                hit = false;
                break;
            }
        }
        let cost = self.probe_cost(words_eval, pos_eval, &touches, 0);
        self.stats.record(OpKind::Query, cost);
        hit
    }

    /// Queries one planned key out of the batch's [`PlanBuffer`] (one
    /// `Acquire` snapshot per group's word, short-circuiting at the first
    /// zero).
    #[cfg(not(feature = "stats"))]
    #[inline]
    fn query_planned_buf(&self, plans: &PlanBuffer, i: usize) -> bool {
        for (word, probes) in plans.groups_of(i) {
            let snapshot = HcbfWord::from_raw(self.words[word].load(Ordering::Acquire));
            let (all_set, _) = snapshot.query_all(probes);
            if !all_set {
                return false;
            }
        }
        true
    }

    /// Metered twin of [`Self::query_planned_buf`].
    #[cfg(feature = "stats")]
    fn query_planned_buf(&self, plans: &PlanBuffer, i: usize) -> bool {
        let mut touches = WordTouches::new();
        let mut words_eval = 0u32;
        let mut pos_eval = 0u32;
        let mut hit = true;
        for (word, probes) in plans.groups_of(i) {
            touches.touch(word);
            words_eval += 1;
            let snapshot = HcbfWord::from_raw(self.words[word].load(Ordering::Acquire));
            let (all_set, evaluated) = snapshot.query_all(probes);
            pos_eval += evaluated;
            if !all_set {
                hit = false;
                break;
            }
        }
        let cost = self.probe_cost(words_eval, pos_eval, &touches, 0);
        self.stats.record(OpKind::Query, cost);
        hit
    }

    /// Inserts one planned key out of the batch's [`PlanBuffer`]: one CAS
    /// per *group* (the whole group's increments land word-atomically)
    /// through the batch-resolved update kernel, with cross-group rollback
    /// on overflow. Placement and final state are identical to the scalar
    /// path; the per-word granularity is strictly coarser.
    #[cfg(not(feature = "stats"))]
    fn insert_planned_buf(
        &self,
        plans: &PlanBuffer,
        i: usize,
        b1: u32,
        ops: &KernelOps,
    ) -> Result<(), FilterError> {
        for t in 0..plans.group_count() {
            let (word, probes) = plans.group(i, t);
            if self
                .update_word(word, |w| {
                    w.increment_all_routed(probes, b1, ops).map(|_| ())
                })
                .is_err()
            {
                for u in (0..t).rev() {
                    let (rw, rp) = plans.group(i, u);
                    if self
                        .update_word(rw, |w| w.decrement_all_routed(rp, b1, ops).map(|_| ()))
                        .is_err()
                    {
                        return Err(FilterError::CorruptionDetected {
                            segment: segment_of(rw),
                        });
                    }
                }
                self.overflows.fetch_add(1, Ordering::Relaxed);
                return Err(FilterError::WordOverflow { word });
            }
        }
        Ok(())
    }

    /// Metered twin of [`Self::insert_planned_buf`].
    #[cfg(feature = "stats")]
    fn insert_planned_buf(
        &self,
        plans: &PlanBuffer,
        i: usize,
        b1: u32,
        ops: &KernelOps,
    ) -> Result<(), FilterError> {
        let mut touches = WordTouches::new();
        let mut traversal_bits = 0u32;
        for t in 0..plans.group_count() {
            let (word, probes) = plans.group(i, t);
            touches.touch(word);
            let mut group_bits = 0u32;
            if self
                .update_word(word, |w| {
                    w.increment_all_routed(probes, b1, ops)
                        .map(|bits| group_bits = bits)
                })
                .is_err()
            {
                for u in (0..t).rev() {
                    let (rw, rp) = plans.group(i, u);
                    if self
                        .update_word(rw, |w| w.decrement_all_routed(rp, b1, ops).map(|_| ()))
                        .is_err()
                    {
                        return Err(FilterError::CorruptionDetected {
                            segment: segment_of(rw),
                        });
                    }
                }
                self.overflows.fetch_add(1, Ordering::Relaxed);
                return Err(FilterError::WordOverflow { word });
            }
            traversal_bits += group_bits;
        }
        let cost = self.probe_cost(self.shape.g, self.shape.k, &touches, traversal_bits);
        self.stats.record(OpKind::Insert, cost);
        Ok(())
    }

    /// Mirror of [`Self::insert_planned_buf`] for removal.
    #[cfg(not(feature = "stats"))]
    fn remove_planned_buf(
        &self,
        plans: &PlanBuffer,
        i: usize,
        b1: u32,
        ops: &KernelOps,
    ) -> Result<(), FilterError> {
        for t in 0..plans.group_count() {
            let (word, probes) = plans.group(i, t);
            if self
                .update_word(word, |w| {
                    w.decrement_all_routed(probes, b1, ops).map(|_| ())
                })
                .is_err()
            {
                for u in (0..t).rev() {
                    let (rw, rp) = plans.group(i, u);
                    if self
                        .update_word(rw, |w| w.increment_all_routed(rp, b1, ops).map(|_| ()))
                        .is_err()
                    {
                        return Err(FilterError::CorruptionDetected {
                            segment: segment_of(rw),
                        });
                    }
                }
                return Err(FilterError::NotPresent);
            }
        }
        Ok(())
    }

    /// Metered twin of [`Self::remove_planned_buf`].
    #[cfg(feature = "stats")]
    fn remove_planned_buf(
        &self,
        plans: &PlanBuffer,
        i: usize,
        b1: u32,
        ops: &KernelOps,
    ) -> Result<(), FilterError> {
        let mut touches = WordTouches::new();
        let mut traversal_bits = 0u32;
        for t in 0..plans.group_count() {
            let (word, probes) = plans.group(i, t);
            touches.touch(word);
            let mut group_bits = 0u32;
            if self
                .update_word(word, |w| {
                    w.decrement_all_routed(probes, b1, ops)
                        .map(|bits| group_bits = bits)
                })
                .is_err()
            {
                for u in (0..t).rev() {
                    let (rw, rp) = plans.group(i, u);
                    if self
                        .update_word(rw, |w| w.increment_all_routed(rp, b1, ops).map(|_| ()))
                        .is_err()
                    {
                        return Err(FilterError::CorruptionDetected {
                            segment: segment_of(rw),
                        });
                    }
                }
                return Err(FilterError::NotPresent);
            }
            traversal_bits += group_bits;
        }
        let cost = self.probe_cost(self.shape.g, self.shape.k, &touches, traversal_bits);
        self.stats.record(OpKind::Remove, cost);
        Ok(())
    }

    /// Metered twin of the planned insert: same effects, cost recorded on
    /// success (a refused insert reports no cost). Traversal bits come
    /// from the CAS attempt that actually published.
    #[cfg(feature = "stats")]
    fn insert_planned(&self, plan: &ProbePlan, b1: u32) -> Result<(), FilterError> {
        let groups: Vec<(usize, &[u32])> = plan.groups().collect();
        let mut touches = WordTouches::new();
        let mut traversal_bits = 0u32;
        for (i, &(word, probes)) in groups.iter().enumerate() {
            touches.touch(word);
            let mut group_bits = 0u32;
            if self
                .update_word(word, |w| {
                    w.increment_all(probes, b1).map(|bits| group_bits = bits)
                })
                .is_err()
            {
                for &(rw, rp) in groups[..i].iter().rev() {
                    if self
                        .update_word(rw, |w| w.decrement_all(rp, b1).map(|_| ()))
                        .is_err()
                    {
                        return Err(FilterError::CorruptionDetected {
                            segment: segment_of(rw),
                        });
                    }
                }
                self.overflows.fetch_add(1, Ordering::Relaxed);
                return Err(FilterError::WordOverflow { word });
            }
            traversal_bits += group_bits;
        }
        let cost = self.probe_cost(self.shape.g, self.shape.k, &touches, traversal_bits);
        self.stats.record(OpKind::Insert, cost);
        Ok(())
    }

    /// Mirror of [`Self::insert_planned`] for removal (metered twin).
    #[cfg(feature = "stats")]
    fn remove_planned(&self, plan: &ProbePlan, b1: u32) -> Result<(), FilterError> {
        let groups: Vec<(usize, &[u32])> = plan.groups().collect();
        let mut touches = WordTouches::new();
        let mut traversal_bits = 0u32;
        for (i, &(word, probes)) in groups.iter().enumerate() {
            touches.touch(word);
            let mut group_bits = 0u32;
            if self
                .update_word(word, |w| {
                    w.decrement_all(probes, b1).map(|bits| group_bits = bits)
                })
                .is_err()
            {
                for &(rw, rp) in groups[..i].iter().rev() {
                    if self
                        .update_word(rw, |w| w.increment_all(rp, b1).map(|_| ()))
                        .is_err()
                    {
                        return Err(FilterError::CorruptionDetected {
                            segment: segment_of(rw),
                        });
                    }
                }
                return Err(FilterError::NotPresent);
            }
            traversal_bits += group_bits;
        }
        let cost = self.probe_cost(self.shape.g, self.shape.k, &touches, traversal_bits);
        self.stats.record(OpKind::Remove, cost);
        Ok(())
    }

    /// Batched membership check (hash all → probe all, in key order).
    /// Each word is read as one atomic snapshot.
    pub fn contains_batch_bytes(&self, keys: &[&[u8]]) -> Vec<bool> {
        self.contains_batch_bytes_with(keys, &mut PlanBuffer::new())
    }

    /// [`Self::contains_batch_bytes`] against a caller-held [`PlanBuffer`]:
    /// reusing the buffer across batches allocates nothing after warm-up
    /// and yields bit-identical results to a fresh buffer.
    pub fn contains_batch_bytes_with(&self, keys: &[&[u8]], plans: &mut PlanBuffer) -> Vec<bool> {
        self.plan_into(keys, plans);
        (0..keys.len())
            .map(|i| self.query_planned_buf(plans, i))
            .collect()
    }

    /// Batched insertion (hash all → update all, in key order). Per-key
    /// results are in input order.
    pub fn insert_batch_bytes(&self, keys: &[&[u8]]) -> Vec<Result<(), FilterError>> {
        self.insert_batch_bytes_with(keys, &mut PlanBuffer::new())
    }

    /// [`Self::insert_batch_bytes`] against a caller-held [`PlanBuffer`].
    /// The update kernel bundle is resolved once here and drives every CAS
    /// walk in the batch, rollbacks included.
    pub fn insert_batch_bytes_with(
        &self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> Vec<Result<(), FilterError>> {
        self.plan_into(keys, plans);
        let ops = Kernel::batch().update;
        let b1 = self.shape.b1;
        (0..keys.len())
            .map(|i| self.insert_planned_buf(plans, i, b1, &ops))
            .collect()
    }

    /// Batched removal (hash all → update all, in key order). Per-key
    /// results are in input order.
    pub fn remove_batch_bytes(&self, keys: &[&[u8]]) -> Vec<Result<(), FilterError>> {
        self.remove_batch_bytes_with(keys, &mut PlanBuffer::new())
    }

    /// [`Self::remove_batch_bytes`] against a caller-held [`PlanBuffer`].
    pub fn remove_batch_bytes_with(
        &self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> Vec<Result<(), FilterError>> {
        self.plan_into(keys, plans);
        let ops = Kernel::batch().update;
        let b1 = self.shape.b1;
        (0..keys.len())
            .map(|i| self.remove_planned_buf(plans, i, b1, &ops))
            .collect()
    }

    /// Batched membership for any [`mpcbf_hash::Key`] type.
    pub fn contains_batch<K: mpcbf_hash::Key>(&self, keys: &[K]) -> Vec<bool> {
        let owned: Vec<_> = keys.iter().map(mpcbf_hash::Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.contains_batch_bytes(&views)
    }

    /// Batched insertion for any [`mpcbf_hash::Key`] type.
    pub fn insert_batch<K: mpcbf_hash::Key>(&self, keys: &[K]) -> Vec<Result<(), FilterError>> {
        let owned: Vec<_> = keys.iter().map(mpcbf_hash::Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.insert_batch_bytes(&views)
    }

    /// Batched removal for any [`mpcbf_hash::Key`] type.
    pub fn remove_batch<K: mpcbf_hash::Key>(&self, keys: &[K]) -> Vec<Result<(), FilterError>> {
        let owned: Vec<_> = keys.iter().map(mpcbf_hash::Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.remove_batch_bytes(&views)
    }

    /// One `Acquire` load per word into a plain vector. Each word is
    /// internally consistent (a word is one atomic cell); the vector as a
    /// whole is a *point-in-time-per-word* snapshot, so seal/scrub pairs
    /// are only meaningful when the filter is quiescent — concurrent
    /// updates legitimately change CRCs.
    pub fn raw_snapshot(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire))
            .collect()
    }

    /// Checksums the current word array (see [`Self::raw_snapshot`] for
    /// the quiescence caveat).
    pub fn seal(&self) -> FilterSeal {
        FilterSeal::compute(&self.raw_snapshot())
    }

    /// Structural self-check: re-walks every word's hierarchy invariants
    /// against a fresh snapshot. Unlike seal/scrub this is sound even
    /// under concurrency — every legitimate CAS publishes an
    /// invariant-respecting word, so any violation is genuine damage.
    pub fn verify(&self) -> Result<(), FilterError> {
        let b1 = self.shape.b1;
        for (i, w) in self.words.iter().enumerate() {
            let word = HcbfWord::from_raw(w.load(Ordering::Acquire));
            if word.check_invariants(b1).is_err() {
                return Err(FilterError::CorruptionDetected {
                    segment: segment_of(i),
                });
            }
        }
        Ok(())
    }

    /// Compares a fresh snapshot against `seal` segment by segment and
    /// re-walks the word invariants; returns every damaged segment.
    ///
    /// # Panics
    /// Panics if `seal` was computed over a different word count.
    pub fn scrub(&self, seal: &FilterSeal) -> ScrubReport {
        let snapshot = self.raw_snapshot();
        let mut corrupt = seal.diff(&snapshot);
        let b1 = self.shape.b1;
        for (i, &raw) in snapshot.iter().enumerate() {
            if HcbfWord::from_raw(raw).check_invariants(b1).is_err() {
                corrupt.push(segment_of(i));
            }
        }
        ScrubReport::new(seal.segments(), corrupt)
    }

    /// Fault-injection hook: atomically XORs `mask` into word `word`,
    /// simulating an in-memory bit flip for scrub drills. Never part of
    /// normal operation.
    pub fn corrupt_word_xor(&self, word: usize, mask: u64) {
        self.words[word].fetch_xor(mask, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::MpcbfConfig;

    fn filter() -> AtomicMpcbf<Murmur3> {
        let c = MpcbfConfig::builder()
            .memory_bits(1_000_000)
            .expected_items(10_000)
            .hashes(3)
            .seed(33)
            .build()
            .unwrap();
        AtomicMpcbf::new(c)
    }

    #[test]
    fn word_storage_is_cache_line_aligned() {
        let f = filter();
        let addr = f.words.as_slice().as_ptr() as usize;
        assert_eq!(addr % mpcbf_bitvec::CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn sequential_roundtrip() {
        let f = filter();
        for i in 0..3_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..3_000u64 {
            assert!(f.contains(&i));
        }
        for i in 0..3_000u64 {
            f.remove(&i).unwrap();
        }
        assert_eq!(f.total_load(), 0);
    }

    #[test]
    fn agrees_with_sequential_filter() {
        // Same config/seed ⇒ identical hashing ⇒ identical membership.
        use mpcbf_core::{CountingFilter, Filter, Mpcbf};
        let c = MpcbfConfig::builder()
            .memory_bits(500_000)
            .expected_items(5_000)
            .hashes(3)
            .seed(44)
            .build()
            .unwrap();
        let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(c);
        let mut seq: Mpcbf<u64, Murmur3> = Mpcbf::new(c);
        for i in 0..2_000u64 {
            atomic.insert(&i).unwrap();
            seq.insert(&i).unwrap();
        }
        for i in 0..1_000u64 {
            atomic.remove(&i).unwrap();
            seq.remove(&i).unwrap();
        }
        for probe in 0..50_000u64 {
            assert_eq!(
                atomic.contains(&probe),
                seq.contains(&probe),
                "divergence at {probe}"
            );
        }
    }

    #[test]
    fn batch_matches_scalar_and_sequential() {
        use mpcbf_core::{CountingFilter, Filter, Mpcbf};
        let c = MpcbfConfig::builder()
            .memory_bits(500_000)
            .expected_items(5_000)
            .hashes(3)
            .seed(44)
            .build()
            .unwrap();
        let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(c);
        let mut seq: Mpcbf<u64, Murmur3> = Mpcbf::new(c);
        let keys: Vec<u64> = (0..2_000).collect();
        for r in atomic.insert_batch(&keys) {
            r.unwrap();
        }
        for k in &keys {
            seq.insert(k).unwrap();
        }
        let removals: Vec<u64> = (1_000..3_000).collect();
        let atomic_r = atomic.remove_batch(&removals);
        let seq_r: Vec<_> = removals.iter().map(|k| seq.remove(k)).collect();
        assert_eq!(atomic_r, seq_r);
        let probes: Vec<u64> = (0..20_000).collect();
        let batched = atomic.contains_batch(&probes);
        for (k, hit) in probes.iter().zip(&batched) {
            assert_eq!(seq.contains(k), *hit, "divergence at {k}");
            assert_eq!(atomic.contains(k), *hit, "scalar/batch divergence at {k}");
        }
    }

    #[test]
    fn parallel_inserts_all_visible() {
        let f = filter();
        let threads = 8u64;
        let per = 1_000u64;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let f = &f;
                s.spawn(move |_| {
                    for i in t * per..(t + 1) * per {
                        f.insert(&i).unwrap();
                    }
                });
            }
        })
        .unwrap();
        for i in 0..threads * per {
            assert!(f.contains(&i), "lost {i}");
        }
    }

    #[test]
    fn contended_single_word_stays_consistent() {
        // Force every thread onto the same few words by inserting the same
        // keys, then drain completely.
        let f = filter();
        let reps = 4u32; // capacity-safe: k·reps ≤ word capacity
        crossbeam::scope(|s| {
            for _ in 0..reps {
                let f = &f;
                s.spawn(move |_| {
                    f.insert(&"hot-key").unwrap();
                });
            }
        })
        .unwrap();
        assert!(f.contains(&"hot-key"));
        for _ in 0..reps {
            f.remove(&"hot-key").unwrap();
        }
        assert!(!f.contains(&"hot-key"));
        assert_eq!(f.total_load(), 0);
    }

    #[test]
    fn scrub_localises_injected_damage() {
        use mpcbf_core::scrub::SEGMENT_WORDS;
        let f = filter();
        for i in 0..3_000u64 {
            f.insert(&i).unwrap();
        }
        assert_eq!(f.verify(), Ok(()));
        let seal = f.seal();
        assert!(f.scrub(&seal).is_clean());

        // One bit flip in word 200: exactly segment 200/64 = 3 is dirty.
        f.corrupt_word_xor(200, 1 << 11);
        let report = f.scrub(&seal);
        assert_eq!(report.corrupt_segments, vec![200 / SEGMENT_WORDS]);
        assert_eq!(report.segments_checked, seal.segments());

        // Undo restores a clean scrub.
        f.corrupt_word_xor(200, 1 << 11);
        assert!(f.scrub(&seal).is_clean());
    }

    #[test]
    fn verify_detects_invariant_breaking_flip() {
        use mpcbf_core::scrub::segment_of;
        let f = filter();
        for i in 0..500u64 {
            f.insert(&i).unwrap();
        }
        // A high bit with no supporting hierarchy below it breaks the
        // level-walk invariant — detectable without any seal.
        f.corrupt_word_xor(321, 1 << 63);
        assert_eq!(
            f.verify(),
            Err(FilterError::CorruptionDetected {
                segment: segment_of(321)
            })
        );
    }

    #[cfg(feature = "stats")]
    #[test]
    fn stats_ledger_matches_sequential_costs() {
        // Same config/seed as the sequential filter: the atomic ledger's
        // totals must equal what the sequential `_cost` calls report.
        use mpcbf_core::{CountingFilter, Filter, Mpcbf};
        let c = MpcbfConfig::builder()
            .memory_bits(500_000)
            .expected_items(5_000)
            .hashes(3)
            .seed(44)
            .build()
            .unwrap();
        let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(c);
        let mut seq: Mpcbf<u64, Murmur3> = Mpcbf::new(c);
        let mut expected = mpcbf_core::AccessStats::new();
        for i in 0..1_000u64 {
            let key = i.to_le_bytes();
            atomic.insert_bytes(&key).unwrap();
            expected
                .inserts
                .record(seq.insert_bytes_cost(&key).unwrap());
        }
        for i in 0..5_000u64 {
            let key = i.to_le_bytes();
            atomic.contains_bytes(&key);
            expected.queries.record(seq.contains_bytes_cost(&key).1);
        }
        for i in 0..300u64 {
            let key = i.to_le_bytes();
            atomic.remove_bytes(&key).unwrap();
            expected
                .removes
                .record(seq.remove_bytes_cost(&key).unwrap());
        }
        assert_eq!(atomic.access_stats(), expected);
    }

    #[test]
    fn racing_overflow_rollbacks_never_panic() {
        // Hammer one key with concurrent insert/remove pairs on a filter
        // tiny enough to overflow: an insert's rollback can race a remove
        // that drains the counter first. That must surface as a
        // CorruptionDetected error, never the old rollback panic.
        let c = MpcbfConfig::builder()
            .memory_bits(320)
            .expected_items(4)
            .hashes(2)
            .seed(7)
            .build()
            .unwrap();
        let f: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(c);
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let f = &f;
                s.spawn(move |_| {
                    for _ in 0..2_000 {
                        let _ = f.insert(&"hot");
                        let _ = f.remove(&"hot");
                    }
                });
            }
        })
        .unwrap();
        // However the race resolved, the filter still serves requests.
        let _ = f.contains(&"hot");
        while f.remove(&"hot").is_ok() {}
    }

    #[test]
    fn parallel_churn_drains_to_zero() {
        let f = filter();
        crossbeam::scope(|s| {
            for t in 0..8u64 {
                let f = &f;
                s.spawn(move |_| {
                    for i in 0..500u64 {
                        let k = t * 10_000 + i;
                        f.insert(&k).unwrap();
                        assert!(f.contains(&k));
                        f.remove(&k).unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f.total_load(), 0);
        assert_eq!(f.overflows(), 0);
    }
}
