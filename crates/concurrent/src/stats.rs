//! Instrumentation ledgers for the concurrent filters (feature `stats`).
//!
//! The sequential filters return an [`OpCost`] from every `_cost` call, so
//! a harness can meter them externally. The concurrent filters cannot: the
//! interesting numbers (per-shard contention, lock hold time, accesses
//! under concurrency) only exist *inside* the filter. With the `stats`
//! feature enabled, each shard (or the whole filter, for the lock-free
//! variant) carries one of these ledgers; every field is a relaxed
//! `AtomicU64`, so recording is wait-free and merging happens on read.

use mpcbf_core::metrics::{AccessStats, OpCost, OpKind};
use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed-atomic totals for one operation kind.
#[derive(Debug, Default)]
struct KindTotals {
    ops: AtomicU64,
    word_accesses: AtomicU64,
    hash_bits: AtomicU64,
}

impl KindTotals {
    #[inline]
    fn record(&self, cost: OpCost) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.word_accesses
            .fetch_add(u64::from(cost.word_accesses), Ordering::Relaxed);
        self.hash_bits
            .fetch_add(u64::from(cost.hash_bits), Ordering::Relaxed);
    }
}

/// A wait-free per-kind access ledger (queries / inserts / removes).
#[derive(Debug, Default)]
pub struct AccessLedger {
    queries: KindTotals,
    inserts: KindTotals,
    removes: KindTotals,
}

impl AccessLedger {
    /// A fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation's cost under its kind.
    #[inline]
    pub fn record(&self, kind: OpKind, cost: OpCost) {
        match kind {
            OpKind::Query => self.queries.record(cost),
            OpKind::Insert => self.inserts.record(cost),
            OpKind::Remove => self.removes.record(cost),
        }
    }

    /// Folds this ledger's totals into an [`AccessStats`] snapshot.
    pub fn fold_into(&self, stats: &mut AccessStats) {
        for (totals, tally) in [
            (&self.queries, &mut stats.queries),
            (&self.inserts, &mut stats.inserts),
            (&self.removes, &mut stats.removes),
        ] {
            tally.record_totals(
                totals.ops.load(Ordering::Relaxed),
                totals.word_accesses.load(Ordering::Relaxed),
                totals.hash_bits.load(Ordering::Relaxed),
            );
        }
    }
}

/// A point-in-time view of one lock's (or lock pool's) behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Times the lock was taken.
    pub acquisitions: u64,
    /// Acquisitions that found the lock already held (`try_lock` failed
    /// and the caller had to block).
    pub contended: u64,
    /// Total nanoseconds the lock was held.
    pub hold_nanos: u64,
}

impl LockStats {
    /// Merges another view (e.g. another shard's) into this one.
    pub fn merge(&mut self, other: &LockStats) {
        self.acquisitions += other.acquisitions;
        self.contended += other.contended;
        self.hold_nanos += other.hold_nanos;
    }

    /// Fraction of acquisitions that had to block, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

/// One shard's full ledger: access totals plus lock behaviour.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Access totals for operations executed inside this shard.
    pub accesses: AccessLedger,
    lock_acquisitions: AtomicU64,
    lock_contended: AtomicU64,
    lock_hold_nanos: AtomicU64,
}

impl ShardStats {
    /// A fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one lock acquisition; `contended` when `try_lock` failed
    /// and the caller blocked on `lock`.
    #[inline]
    pub fn record_lock(&self, contended: bool) {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.lock_contended.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records how long the lock was held, after release.
    #[inline]
    pub fn record_hold(&self, nanos: u64) {
        self.lock_hold_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// This shard's lock behaviour so far.
    pub fn lock_stats(&self) -> LockStats {
        LockStats {
            acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            contended: self.lock_contended.load(Ordering::Relaxed),
            hold_nanos: self.lock_hold_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_folds_per_kind() {
        let ledger = AccessLedger::new();
        let c = OpCost {
            word_accesses: 2,
            hash_bits: 40,
        };
        ledger.record(OpKind::Query, c);
        ledger.record(OpKind::Query, c);
        ledger.record(OpKind::Insert, c);
        let mut stats = AccessStats::new();
        ledger.fold_into(&mut stats);
        assert_eq!(stats.queries.ops(), 2);
        assert_eq!(stats.queries.total_accesses(), 4);
        assert_eq!(stats.inserts.ops(), 1);
        assert_eq!(stats.removes.ops(), 0);
        assert!((stats.queries.mean_accesses() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lock_stats_merge_and_ratio() {
        let shard = ShardStats::new();
        shard.record_lock(false);
        shard.record_lock(true);
        shard.record_hold(100);
        shard.record_hold(50);
        let mut total = shard.lock_stats();
        total.merge(&shard.lock_stats());
        assert_eq!(total.acquisitions, 4);
        assert_eq!(total.contended, 2);
        assert_eq!(total.hold_nanos, 300);
        assert!((total.contention_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(LockStats::default().contention_ratio(), 0.0);
    }
}
