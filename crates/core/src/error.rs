//! Error types shared by all filters.

use std::error::Error;
use std::fmt;

/// Errors a filter operation can report.
///
/// Operations that fail leave the filter in the state it had before the
/// operation began (partial updates are rolled back), so an `Err` never
/// corrupts the structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterError {
    /// An HCBF word ran out of hierarchy space (§III.B.4).
    ///
    /// With the paper's Eq.-(11) capacity heuristic this is rare enough
    /// that the authors "never observe any word overflow"; when it does
    /// happen the insert is refused and the filter is unchanged.
    WordOverflow {
        /// Index of the word that could not accommodate the increment.
        word: usize,
    },
    /// A deletion targeted an element that is not in the filter
    /// (one of its counters was already zero).
    NotPresent,
    /// A verify/scrub pass found state that no sequence of filter
    /// operations can produce: a structural invariant is violated or a
    /// segment checksum no longer matches (e.g. a radiation-style bit
    /// flip in memory). The filter's answers for keys hashing into the
    /// damaged segment can no longer be trusted.
    CorruptionDetected {
        /// Index of the damaged word segment (see
        /// [`crate::scrub::SEGMENT_WORDS`]).
        segment: usize,
    },
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::WordOverflow { word } => {
                write!(f, "HCBF word {word} overflowed: no hierarchy space left")
            }
            FilterError::NotPresent => {
                write!(f, "cannot delete: element is not present in the filter")
            }
            FilterError::CorruptionDetected { segment } => {
                write!(f, "memory corruption detected in word segment {segment}")
            }
        }
    }
}

impl Error for FilterError {}

/// Errors raised while validating a filter configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The memory budget was zero or too small for the layout.
    InsufficientMemory {
        /// Human-readable detail.
        detail: String,
    },
    /// `expected_items` was zero.
    ZeroItems,
    /// The hash count was zero or exceeded the supported maximum.
    BadHashCount {
        /// The offending value.
        k: u32,
    },
    /// `g` (memory accesses) was zero or exceeded `k`.
    BadAccessCount {
        /// The offending value.
        g: u32,
    },
    /// The derived MPCBF shape was infeasible (first level too small).
    Shape(mpcbf_analysis::heuristic::ShapeError),
    /// A structural parameter (word size, counter width, word count, …)
    /// is outside its supported range.
    BadGeometry {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InsufficientMemory { detail } => {
                write!(f, "insufficient memory: {detail}")
            }
            ConfigError::ZeroItems => write!(f, "expected_items must be positive"),
            ConfigError::BadHashCount { k } => {
                write!(f, "hash count {k} out of supported range 1..=64")
            }
            ConfigError::BadAccessCount { g } => {
                write!(
                    f,
                    "access count g = {g} must satisfy 1 <= g <= k and g <= 8"
                )
            }
            ConfigError::Shape(e) => write!(f, "infeasible MPCBF shape: {e}"),
            ConfigError::BadGeometry { detail } => {
                write!(f, "invalid filter geometry: {detail}")
            }
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mpcbf_analysis::heuristic::ShapeError> for ConfigError {
    fn from(e: mpcbf_analysis::heuristic::ShapeError) -> Self {
        ConfigError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_render() {
        assert!(FilterError::WordOverflow { word: 3 }
            .to_string()
            .contains('3'));
        assert!(FilterError::NotPresent.to_string().contains("not present"));
        assert!(FilterError::CorruptionDetected { segment: 7 }
            .to_string()
            .contains("segment 7"));
        assert!(ConfigError::ZeroItems.to_string().contains("positive"));
        assert!(ConfigError::BadHashCount { k: 0 }.to_string().contains('0'));
        assert!(ConfigError::BadGeometry {
            detail: "w = 7".into()
        }
        .to_string()
        .contains("w = 7"));
    }

    #[test]
    fn shape_error_converts() {
        let e = mpcbf_analysis::heuristic::derive_shape(64, 64, 100, 3, 1).unwrap_err();
        let c: ConfigError = e.into();
        assert!(matches!(c, ConfigError::Shape(_)));
        assert!(std::error::Error::source(&c).is_some());
    }
}
