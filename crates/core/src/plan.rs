//! Probe planning: the hash stage of the batch pipeline.
//!
//! Scalar filter operations interleave hashing and probing per key. The
//! batch pipeline splits them: a [`ProbePlan`] is the fully materialised
//! hash stage of one key — every target word and every in-word position —
//! computed up front so a batch can (1) hash all keys, (2) prefetch all
//! target words, (3) probe all keys, without a hash computation stalling
//! between dependent memory accesses.
//!
//! Two shapes cover every filter in the workspace:
//!
//! * [`ProbePlan::partitioned`] — the §III layout shared by BF-g, PCBF-g
//!   and MPCBF-g: a word-selector stream (`WORD_SALT`) picks `g`
//!   words out of `l`, and per word `t` an independent salted stream
//!   (`GROUP_SALT ^ t`) yields that group's in-word positions,
//!   with the `k` hashes spread over groups by `split_hashes`.
//! * [`ProbePlan::flat`] — the classic unpartitioned layout of Bloom/CBF:
//!   one unsalted double-hashing stream over the whole array.
//!
//! Plans cost pure hashing; the paper's access-bandwidth metering charges
//! only *evaluated* address bits, so planning eagerly does not change any
//! reported [`OpCost`](crate::OpCost) — the probe stage replays the plan
//! in exactly the scalar order, including query short-circuiting.

use crate::{split_hashes, GROUP_SALT, WORD_SALT};
use mpcbf_hash::DoubleHasher;

/// Upper bound on probe groups per plan (`g ≤ k ≤ 64`).
pub const MAX_GROUPS: usize = 64;

/// Upper bound on total probes per plan (`k ≤ 64`).
pub const MAX_PROBES: usize = 64;

/// The precomputed probe targets of one key: the hash stage of the batch
/// pipeline, separated from the probe stage.
///
/// A plan is a flat fixed-size value (no heap), so a batch of plans is one
/// contiguous allocation the probe stage streams through.
#[derive(Debug, Clone, Copy)]
pub struct ProbePlan {
    /// Target word per group (partitioned plans); unused for flat plans.
    words: [u32; MAX_GROUPS],
    /// Probe count per group; group `t`'s probes are the next
    /// `group_len[t]` entries of `slots`.
    group_len: [u8; MAX_GROUPS],
    groups: u8,
    /// In-word positions (partitioned) or global positions (flat), in
    /// exactly the order the scalar path would evaluate them.
    slots: [u32; MAX_PROBES],
    probes: u8,
}

impl ProbePlan {
    /// Plans a key for the partitioned layout: `g` words drawn from
    /// `[0, l)` by the `WORD_SALT`-salted selector stream, and
    /// per group `t` the `split_hashes(k, g, t)` positions in
    /// `[0, inner_range)` drawn from the `GROUP_SALT ^ t` stream.
    ///
    /// This is bit-for-bit the hashing of the scalar `for_each_position`
    /// walks in `BfG`, `Pcbf` and `Mpcbf`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > 64`, `g == 0` or `g > k`.
    pub fn partitioned(digest: u128, l: u64, k: u32, g: u32, inner_range: u64) -> Self {
        assert!(k >= 1 && k <= MAX_PROBES as u32, "k = {k} out of 1..=64");
        assert!(g >= 1 && g <= k, "g = {g} out of 1..=k");
        assert!(l <= 1 << 32, "word count {l} exceeds u32 plan entries");
        assert!(
            inner_range <= 1 << 32,
            "inner range {inner_range} exceeds u32 plan entries"
        );
        let mut plan = ProbePlan {
            words: [0; MAX_GROUPS],
            group_len: [0; MAX_GROUPS],
            groups: g as u8,
            slots: [0; MAX_PROBES],
            probes: 0,
        };
        let mut word_picker = DoubleHasher::with_salt(digest, WORD_SALT, l);
        for t in 0..g {
            plan.words[t as usize] = word_picker.next_index() as u32;
            let k_t = split_hashes(k, g, t);
            plan.group_len[t as usize] = k_t as u8;
            let mut inner = DoubleHasher::with_salt(digest, GROUP_SALT ^ u64::from(t), inner_range);
            for _ in 0..k_t {
                plan.slots[plan.probes as usize] = inner.next_index() as u32;
                plan.probes += 1;
            }
        }
        plan
    }

    /// Plans a key for the flat layout: `k` positions in `[0, range)` from
    /// the unsalted double-hashing stream — the hashing of `BloomFilter`
    /// and `Cbf`.
    ///
    /// Flat plans have no groups; [`ProbePlan::probes`] is the whole plan.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > 64` or `range > u32::MAX + 1`.
    pub fn flat(digest: u128, k: u32, range: u64) -> Self {
        assert!(k >= 1 && k <= MAX_PROBES as u32, "k = {k} out of 1..=64");
        assert!(
            range <= 1 << 32,
            "flat plan range {range} exceeds u32 positions"
        );
        let mut plan = ProbePlan {
            words: [0; MAX_GROUPS],
            group_len: [0; MAX_GROUPS],
            groups: 0,
            slots: [0; MAX_PROBES],
            probes: k as u8,
        };
        let mut stream = DoubleHasher::new(digest, range);
        for slot in plan.slots.iter_mut().take(k as usize) {
            *slot = stream.next_index() as u32;
        }
        plan
    }

    /// Number of probe groups (`g`; 0 for flat plans).
    #[inline]
    pub fn group_count(&self) -> usize {
        self.groups as usize
    }

    /// Total probe count (`k`).
    #[inline]
    pub fn probe_count(&self) -> u32 {
        u32::from(self.probes)
    }

    /// All planned positions in scalar evaluation order. For flat plans
    /// these are global positions; for partitioned plans, in-word offsets
    /// concatenated group by group.
    #[inline]
    pub fn probes(&self) -> &[u32] {
        &self.slots[..self.probes as usize]
    }

    /// The target words of a partitioned plan (empty for flat plans).
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words[..self.groups as usize]
    }

    /// Iterates a partitioned plan's groups as `(word, in-word probes)`,
    /// in scalar evaluation order.
    #[inline]
    pub fn groups(&self) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        let mut cursor = 0usize;
        (0..self.groups as usize).map(move |t| {
            let len = self.group_len[t] as usize;
            let probes = &self.slots[cursor..cursor + len];
            cursor += len;
            (self.words[t] as usize, probes)
        })
    }
}

/// Requests a best-effort CPU prefetch of the cache line holding `value`.
///
/// The probe stage calls this for every planned target word before any
/// probing starts, so the loads overlap instead of serialising. With the
/// `prefetch` feature enabled on x86-64 this lowers to
/// `core::arch::x86_64::_mm_prefetch` (T0 hint); everywhere else it is a
/// no-op, so portable builds keep `#![forbid(unsafe_code)]`.
#[inline]
pub fn prefetch_read<T>(value: &T) {
    #[cfg(all(feature = "prefetch", target_arch = "x86_64"))]
    #[allow(unsafe_code)]
    // SAFETY: `_mm_prefetch` is a pure cache hint; it dereferences nothing
    // and is defined for any address, valid or not.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>((value as *const T).cast::<i8>());
    }
    #[cfg(not(all(feature = "prefetch", target_arch = "x86_64")))]
    let _ = value;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_hash::{Hasher128, Murmur3};

    fn digest(key: u64) -> u128 {
        Murmur3::hash128(7, &key.to_le_bytes())
    }

    #[test]
    fn partitioned_matches_scalar_hashing() {
        // The plan must replay exactly the word-selector and per-group
        // streams the scalar for_each_position walks.
        let (l, k, g, b1) = (4096u64, 3u32, 2u32, 40u64);
        for key in 0..200u64 {
            let d = digest(key);
            let plan = ProbePlan::partitioned(d, l, k, g, b1);
            assert_eq!(plan.group_count(), g as usize);
            assert_eq!(plan.probe_count(), k);
            let mut picker = DoubleHasher::with_salt(d, WORD_SALT, l);
            let mut seen = 0u32;
            for (t, (word, probes)) in plan.groups().enumerate() {
                assert_eq!(word, picker.next_index());
                let k_t = split_hashes(k, g, t as u32);
                assert_eq!(probes.len() as u32, k_t);
                let mut inner = DoubleHasher::with_salt(d, GROUP_SALT ^ t as u64, b1);
                for &p in probes {
                    assert_eq!(p as usize, inner.next_index());
                }
                seen += k_t;
            }
            assert_eq!(seen, k);
        }
    }

    #[test]
    fn flat_matches_scalar_hashing() {
        let (k, m) = (5u32, 1u64 << 20);
        for key in 0..200u64 {
            let d = digest(key);
            let plan = ProbePlan::flat(d, k, m);
            assert_eq!(plan.group_count(), 0);
            let mut stream = DoubleHasher::new(d, m);
            for &p in plan.probes() {
                assert_eq!(p as usize, stream.next_index());
            }
        }
    }

    #[test]
    fn groups_cover_all_probes_in_order() {
        let plan = ProbePlan::partitioned(digest(9), 1 << 16, 7, 3, 61);
        let via_groups: Vec<u32> = plan
            .groups()
            .flat_map(|(_, probes)| probes.iter().copied())
            .collect();
        assert_eq!(via_groups.as_slice(), plan.probes());
        // split_hashes(7, 3, ·) = [3, 2, 2].
        let lens: Vec<usize> = plan.groups().map(|(_, p)| p.len()).collect();
        assert_eq!(lens, vec![3, 2, 2]);
    }

    #[test]
    fn plans_are_deterministic() {
        let a = ProbePlan::partitioned(digest(3), 500, 4, 2, 33);
        let b = ProbePlan::partitioned(digest(3), 500, 4, 2, 33);
        assert_eq!(a.words(), b.words());
        assert_eq!(a.probes(), b.probes());
    }

    #[test]
    fn prefetch_is_callable_on_anything() {
        // A behavioural no-op either way; must simply not crash.
        let word = 0xdead_beefu64;
        prefetch_read(&word);
        let vec = [1u64, 2, 3];
        prefetch_read(&vec[2]);
    }

    #[test]
    #[should_panic(expected = "out of 1..=k")]
    fn partitioned_rejects_g_above_k() {
        let _ = ProbePlan::partitioned(1, 64, 2, 3, 8);
    }
}
