//! Probe planning: the hash stage of the batch pipeline.
//!
//! Scalar filter operations interleave hashing and probing per key. The
//! batch pipeline splits them: the hash stage materialises every target
//! word and every in-word position up front, so the probe stage can stream
//! through independent memory accesses without a hash computation stalling
//! between them.
//!
//! Two shapes cover every filter in the workspace:
//!
//! * **partitioned** — the §III layout shared by BF-g, PCBF-g and MPCBF-g:
//!   a word-selector stream (`WORD_SALT`) picks `g` words out of `l`, and
//!   per word `t` an independent salted stream (`GROUP_SALT ^ t`) yields
//!   that group's in-word positions, with the `k` hashes spread over
//!   groups by `split_hashes`.
//! * **flat** — the classic unpartitioned layout of Bloom/CBF: one
//!   unsalted double-hashing stream over the whole array.
//!
//! Two containers hold plans:
//!
//! * [`ProbePlan`] — one key's plan as a flat fixed-size value, for the
//!   single-key planned paths (e.g. the sharded filter's scalar
//!   operations).
//! * [`PlanBuffer`] — a whole batch's plans in compact structure-of-arrays
//!   storage that callers hold across batches. Per key it stores exactly
//!   `g` word indices and `k` slots (the group layout is uniform across
//!   keys, so it is stored once), and a reused buffer performs **zero
//!   allocations** after warm-up. This replaced a `Vec<ProbePlan>` per
//!   batch: at ~580 zero-initialised bytes per key for a k=3 plan, the
//!   old representation's memset + allocation cost alone pushed batch
//!   queries below scalar speed.
//!
//! Plans cost pure hashing; the paper's access-bandwidth metering charges
//! only *evaluated* address bits, so planning eagerly does not change any
//! reported [`OpCost`](crate::OpCost) — the probe stage replays the plan
//! in exactly the scalar order, including query short-circuiting.

use crate::{split_hashes, GROUP_SALT, WORD_SALT};
use mpcbf_hash::DoubleHasher;

/// Upper bound on probe groups per plan (`g ≤ k ≤ 64`).
pub const MAX_GROUPS: usize = 64;

/// Upper bound on total probes per plan (`k ≤ 64`).
pub const MAX_PROBES: usize = 64;

/// Batches smaller than this degrade to the scalar path.
///
/// Planning a batch costs a pass over the keys before any probing starts;
/// for one- or two-key "batches" that staging overhead is pure loss (the
/// measured batch-1 query ran at 0.51x scalar before this threshold
/// existed). Four keys is where the pipelined pass starts winning on the
/// bench harness; below it, every filter's `_with` override falls back to
/// the plain scalar loop — which is observationally identical by the batch
/// contract.
pub const SMALL_BATCH: usize = 4;

/// The precomputed probe targets of one key: the hash stage of the batch
/// pipeline, separated from the probe stage.
///
/// A plan is a flat fixed-size value (no heap). Batch paths do **not**
/// build one per key any more — they fill a [`PlanBuffer`] — but the
/// single-key planned paths (sharded scalar operations, the lock-free
/// filter's scalar CAS loops) still use it.
#[derive(Debug, Clone, Copy)]
pub struct ProbePlan {
    /// Target word per group (partitioned plans); unused for flat plans.
    words: [u32; MAX_GROUPS],
    /// Probe count per group; group `t`'s probes are the next
    /// `group_len[t]` entries of `slots`.
    group_len: [u8; MAX_GROUPS],
    groups: u8,
    /// In-word positions (partitioned) or global positions (flat), in
    /// exactly the order the scalar path would evaluate them.
    slots: [u32; MAX_PROBES],
    probes: u8,
}

/// Distinct values in `words` — the fused batch paths' replacement for a
/// per-key `WordTouches` tracker: same dedup semantics (a plan has at
/// most 64 groups, so the scalar tracker never saturates either), but
/// computed by an O(g²) scan over the plan's word slice instead of
/// maintaining a 520-byte zero-initialised tracker per key.
#[inline]
pub(crate) fn distinct_words(words: &[u32]) -> u32 {
    let mut n = 0u32;
    for (i, &w) in words.iter().enumerate() {
        if !words[..i].contains(&w) {
            n += 1;
        }
    }
    n
}

/// Validates the shared shape arguments of partitioned planning.
#[inline]
fn check_partitioned_shape(l: u64, k: u32, g: u32, inner_range: u64) {
    assert!(k >= 1 && k <= MAX_PROBES as u32, "k = {k} out of 1..=64");
    assert!(g >= 1 && g <= k, "g = {g} out of 1..=k");
    assert!(l <= 1 << 32, "word count {l} exceeds u32 plan entries");
    assert!(
        inner_range <= 1 << 32,
        "inner range {inner_range} exceeds u32 plan entries"
    );
}

impl ProbePlan {
    /// Plans a key for the partitioned layout: `g` words drawn from
    /// `[0, l)` by the `WORD_SALT`-salted selector stream, and
    /// per group `t` the `split_hashes(k, g, t)` positions in
    /// `[0, inner_range)` drawn from the `GROUP_SALT ^ t` stream.
    ///
    /// This is bit-for-bit the hashing of the scalar `for_each_position`
    /// walks in `BfG`, `Pcbf` and `Mpcbf`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > 64`, `g == 0` or `g > k`.
    pub fn partitioned(digest: u128, l: u64, k: u32, g: u32, inner_range: u64) -> Self {
        check_partitioned_shape(l, k, g, inner_range);
        let mut plan = ProbePlan {
            words: [0; MAX_GROUPS],
            group_len: [0; MAX_GROUPS],
            groups: g as u8,
            slots: [0; MAX_PROBES],
            probes: 0,
        };
        let mut word_picker = DoubleHasher::with_salt(digest, WORD_SALT, l);
        for t in 0..g {
            plan.words[t as usize] = word_picker.next_index() as u32;
            let k_t = split_hashes(k, g, t);
            plan.group_len[t as usize] = k_t as u8;
            let mut inner = DoubleHasher::with_salt(digest, GROUP_SALT ^ u64::from(t), inner_range);
            for _ in 0..k_t {
                plan.slots[plan.probes as usize] = inner.next_index() as u32;
                plan.probes += 1;
            }
        }
        plan
    }

    /// Plans a key for the flat layout: `k` positions in `[0, range)` from
    /// the unsalted double-hashing stream — the hashing of `BloomFilter`
    /// and `Cbf`.
    ///
    /// Flat plans have no groups; [`ProbePlan::probes`] is the whole plan.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > 64` or `range > u32::MAX + 1`.
    pub fn flat(digest: u128, k: u32, range: u64) -> Self {
        assert!(k >= 1 && k <= MAX_PROBES as u32, "k = {k} out of 1..=64");
        assert!(
            range <= 1 << 32,
            "flat plan range {range} exceeds u32 positions"
        );
        let mut plan = ProbePlan {
            words: [0; MAX_GROUPS],
            group_len: [0; MAX_GROUPS],
            groups: 0,
            slots: [0; MAX_PROBES],
            probes: k as u8,
        };
        let mut stream = DoubleHasher::new(digest, range);
        for slot in plan.slots.iter_mut().take(k as usize) {
            *slot = stream.next_index() as u32;
        }
        plan
    }

    /// Number of probe groups (`g`; 0 for flat plans).
    #[inline]
    pub fn group_count(&self) -> usize {
        self.groups as usize
    }

    /// Total probe count (`k`).
    #[inline]
    pub fn probe_count(&self) -> u32 {
        u32::from(self.probes)
    }

    /// All planned positions in scalar evaluation order. For flat plans
    /// these are global positions; for partitioned plans, in-word offsets
    /// concatenated group by group.
    #[inline]
    pub fn probes(&self) -> &[u32] {
        &self.slots[..self.probes as usize]
    }

    /// The target words of a partitioned plan (empty for flat plans).
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words[..self.groups as usize]
    }

    /// Iterates a partitioned plan's groups as `(word, in-word probes)`,
    /// in scalar evaluation order.
    #[inline]
    pub fn groups(&self) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        let mut cursor = 0usize;
        (0..self.groups as usize).map(move |t| {
            let len = self.group_len[t] as usize;
            let probes = &self.slots[cursor..cursor + len];
            cursor += len;
            (self.words[t] as usize, probes)
        })
    }
}

/// Reusable, allocation-free storage for a whole batch's probe plans.
///
/// Structure-of-arrays layout: one `u32` per planned word and one per
/// planned slot, contiguous across keys. Because every key of a batch
/// shares the same `(k, g)` shape, the group layout (`split_hashes`
/// lengths and their prefix offsets) is stored once, not per key.
///
/// Callers hold a `PlanBuffer` across batches — each `plan_*` call clears
/// and refills it, so after the first batch at a given size the fill does
/// no allocation at all. The `_with` batch methods on
/// [`Filter`](crate::Filter) / [`CountingFilter`](crate::CountingFilter)
/// take the buffer explicitly; the plain `_batch_cost` entry points
/// allocate a fresh one per call for API compatibility.
#[derive(Debug, Clone)]
pub struct PlanBuffer {
    /// `g` target words per key, contiguous (empty for flat plans).
    words: Vec<u32>,
    /// `k` slots per key, contiguous, in scalar evaluation order.
    slots: Vec<u32>,
    /// Probe count per group (uniform across keys).
    group_len: [u8; MAX_GROUPS],
    /// Prefix offsets of each group inside a key's slot run.
    group_off: [u8; MAX_GROUPS],
    g: u32,
    k: u32,
    keys: usize,
}

impl PlanBuffer {
    /// An empty buffer; the first `plan_*` call sizes it.
    pub fn new() -> Self {
        PlanBuffer {
            words: Vec::new(),
            slots: Vec::new(),
            group_len: [0; MAX_GROUPS],
            group_off: [0; MAX_GROUPS],
            g: 0,
            k: 0,
            keys: 0,
        }
    }

    /// Number of keys planned by the last `plan_*` call.
    #[inline]
    pub fn keys(&self) -> usize {
        self.keys
    }

    /// True when the buffer holds flat (ungrouped) plans.
    #[inline]
    pub fn is_flat(&self) -> bool {
        self.g == 0
    }

    /// Groups per key (`g`; 0 for flat plans).
    #[inline]
    pub fn group_count(&self) -> usize {
        self.g as usize
    }

    /// Probes per key (`k`).
    #[inline]
    pub fn probe_count(&self) -> u32 {
        self.k
    }

    /// Drops all planned keys, keeping the storage.
    pub fn clear(&mut self) {
        self.words.clear();
        self.slots.clear();
        self.keys = 0;
    }

    /// Plans a batch for the partitioned layout — the exact hashing of
    /// [`ProbePlan::partitioned`], one entry per digest, reusing storage.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > 64`, `g == 0` or `g > k`.
    pub fn plan_partitioned(
        &mut self,
        digests: impl Iterator<Item = u128>,
        l: u64,
        k: u32,
        g: u32,
        inner_range: u64,
    ) {
        check_partitioned_shape(l, k, g, inner_range);
        self.clear();
        self.g = g;
        self.k = k;
        let mut off = 0u8;
        for t in 0..g {
            let k_t = split_hashes(k, g, t) as u8;
            self.group_len[t as usize] = k_t;
            self.group_off[t as usize] = off;
            off += k_t;
        }
        if let (_, Some(upper)) = digests.size_hint() {
            self.words.reserve(upper * g as usize);
            self.slots.reserve(upper * k as usize);
        }
        for digest in digests {
            let mut word_picker = DoubleHasher::with_salt(digest, WORD_SALT, l);
            for t in 0..g {
                self.words.push(word_picker.next_index() as u32);
                let k_t = split_hashes(k, g, t);
                let mut inner =
                    DoubleHasher::with_salt(digest, GROUP_SALT ^ u64::from(t), inner_range);
                for _ in 0..k_t {
                    self.slots.push(inner.next_index() as u32);
                }
            }
            self.keys += 1;
        }
    }

    /// Plans a batch for the flat layout — the exact hashing of
    /// [`ProbePlan::flat`], one entry per digest, reusing storage. Flat
    /// plans carry no group bookkeeping at all: consumers walk
    /// [`PlanBuffer::slots_of`] directly.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > 64` or `range > u32::MAX + 1`.
    pub fn plan_flat(&mut self, digests: impl Iterator<Item = u128>, k: u32, range: u64) {
        assert!(k >= 1 && k <= MAX_PROBES as u32, "k = {k} out of 1..=64");
        assert!(
            range <= 1 << 32,
            "flat plan range {range} exceeds u32 positions"
        );
        self.clear();
        self.g = 0;
        self.k = k;
        if let (_, Some(upper)) = digests.size_hint() {
            self.slots.reserve(upper * k as usize);
        }
        for digest in digests {
            let mut stream = DoubleHasher::new(digest, range);
            for _ in 0..k {
                self.slots.push(stream.next_index() as u32);
            }
            self.keys += 1;
        }
    }

    /// Key `i`'s `k` slots in scalar evaluation order.
    #[inline]
    pub fn slots_of(&self, i: usize) -> &[u32] {
        let k = self.k as usize;
        &self.slots[i * k..(i + 1) * k]
    }

    /// Key `i`'s `g` target words (empty for flat plans).
    #[inline]
    pub fn words_of(&self, i: usize) -> &[u32] {
        let g = self.g as usize;
        &self.words[i * g..(i + 1) * g]
    }

    /// Key `i`'s group `t` as `(word, in-word probes)`.
    #[inline]
    pub fn group(&self, i: usize, t: usize) -> (usize, &[u32]) {
        debug_assert!(t < self.g as usize);
        let word = self.words[i * self.g as usize + t] as usize;
        let base = i * self.k as usize + self.group_off[t] as usize;
        (word, &self.slots[base..base + self.group_len[t] as usize])
    }

    /// Iterates key `i`'s groups as `(word, in-word probes)`, in scalar
    /// evaluation order.
    #[inline]
    pub fn groups_of(&self, i: usize) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        (0..self.g as usize).map(move |t| self.group(i, t))
    }
}

impl Default for PlanBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_hash::{Hasher128, Murmur3};

    fn digest(key: u64) -> u128 {
        Murmur3::hash128(7, &key.to_le_bytes())
    }

    #[test]
    fn partitioned_matches_scalar_hashing() {
        // The plan must replay exactly the word-selector and per-group
        // streams the scalar for_each_position walks.
        let (l, k, g, b1) = (4096u64, 3u32, 2u32, 40u64);
        for key in 0..200u64 {
            let d = digest(key);
            let plan = ProbePlan::partitioned(d, l, k, g, b1);
            assert_eq!(plan.group_count(), g as usize);
            assert_eq!(plan.probe_count(), k);
            let mut picker = DoubleHasher::with_salt(d, WORD_SALT, l);
            let mut seen = 0u32;
            for (t, (word, probes)) in plan.groups().enumerate() {
                assert_eq!(word, picker.next_index());
                let k_t = split_hashes(k, g, t as u32);
                assert_eq!(probes.len() as u32, k_t);
                let mut inner = DoubleHasher::with_salt(d, GROUP_SALT ^ t as u64, b1);
                for &p in probes {
                    assert_eq!(p as usize, inner.next_index());
                }
                seen += k_t;
            }
            assert_eq!(seen, k);
        }
    }

    #[test]
    fn flat_matches_scalar_hashing() {
        let (k, m) = (5u32, 1u64 << 20);
        for key in 0..200u64 {
            let d = digest(key);
            let plan = ProbePlan::flat(d, k, m);
            assert_eq!(plan.group_count(), 0);
            let mut stream = DoubleHasher::new(d, m);
            for &p in plan.probes() {
                assert_eq!(p as usize, stream.next_index());
            }
        }
    }

    #[test]
    fn groups_cover_all_probes_in_order() {
        let plan = ProbePlan::partitioned(digest(9), 1 << 16, 7, 3, 61);
        let via_groups: Vec<u32> = plan
            .groups()
            .flat_map(|(_, probes)| probes.iter().copied())
            .collect();
        assert_eq!(via_groups.as_slice(), plan.probes());
        // split_hashes(7, 3, ·) = [3, 2, 2].
        let lens: Vec<usize> = plan.groups().map(|(_, p)| p.len()).collect();
        assert_eq!(lens, vec![3, 2, 2]);
    }

    #[test]
    fn plans_are_deterministic() {
        let a = ProbePlan::partitioned(digest(3), 500, 4, 2, 33);
        let b = ProbePlan::partitioned(digest(3), 500, 4, 2, 33);
        assert_eq!(a.words(), b.words());
        assert_eq!(a.probes(), b.probes());
    }

    #[test]
    fn buffer_matches_per_key_plans_partitioned() {
        let (l, k, g, b1) = (4096u64, 7u32, 3u32, 40u64);
        let mut buf = PlanBuffer::new();
        buf.plan_partitioned((0..100u64).map(digest), l, k, g, b1);
        assert_eq!(buf.keys(), 100);
        assert_eq!(buf.group_count(), g as usize);
        assert!(!buf.is_flat());
        for i in 0..100usize {
            let plan = ProbePlan::partitioned(digest(i as u64), l, k, g, b1);
            assert_eq!(buf.words_of(i), plan.words(), "key {i}");
            assert_eq!(buf.slots_of(i), plan.probes(), "key {i}");
            let from_buf: Vec<_> = buf.groups_of(i).collect();
            let from_plan: Vec<_> = plan.groups().collect();
            assert_eq!(from_buf, from_plan, "key {i}");
            for (t, expect) in plan.groups().enumerate() {
                assert_eq!(buf.group(i, t), expect, "key {i} group {t}");
            }
        }
    }

    #[test]
    fn buffer_matches_per_key_plans_flat() {
        let (k, m) = (5u32, 1u64 << 20);
        let mut buf = PlanBuffer::new();
        buf.plan_flat((0..50u64).map(digest), k, m);
        assert_eq!(buf.keys(), 50);
        assert!(buf.is_flat());
        assert_eq!(buf.group_count(), 0);
        for i in 0..50usize {
            let plan = ProbePlan::flat(digest(i as u64), k, m);
            assert_eq!(buf.slots_of(i), plan.probes(), "key {i}");
        }
    }

    #[test]
    fn buffer_reuse_is_bit_identical_across_shapes() {
        // Refilling a used buffer — same shape, different shape, different
        // batch size — must behave exactly like a fresh buffer.
        let mut reused = PlanBuffer::new();
        reused.plan_partitioned((0..64u64).map(digest), 1 << 16, 3, 2, 61);
        reused.plan_flat((0..10u64).map(digest), 4, 1 << 20);
        reused.plan_partitioned((5..37u64).map(digest), 4096, 7, 3, 40);

        let mut fresh = PlanBuffer::new();
        fresh.plan_partitioned((5..37u64).map(digest), 4096, 7, 3, 40);
        assert_eq!(reused.keys(), fresh.keys());
        for i in 0..fresh.keys() {
            assert_eq!(reused.words_of(i), fresh.words_of(i));
            assert_eq!(reused.slots_of(i), fresh.slots_of(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of 1..=k")]
    fn partitioned_rejects_g_above_k() {
        let _ = ProbePlan::partitioned(1, 64, 2, 3, 8);
    }

    #[test]
    #[should_panic(expected = "out of 1..=k")]
    fn buffer_rejects_g_above_k() {
        PlanBuffer::new().plan_partitioned(std::iter::once(1), 64, 2, 3, 8);
    }
}
