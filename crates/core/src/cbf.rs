//! The standard Counting Bloom Filter (§II.A, reference \[3\]):
//! `m` packed 4-bit counters, `k` hashed positions per element.
//!
//! This is the primary baseline of every figure and table in the paper.
//! Counters saturate at 15 (the classic policy that preserves the
//! no-false-negative guarantee); queries short-circuit at the first zero
//! counter, which is what produces the fractional per-query access counts
//! the paper reports (e.g. 2.1 for k = 3 on the trace workload).

use crate::metrics::{OpCost, WordTouches};
use crate::plan::{PlanBuffer, SMALL_BATCH};
use crate::scrub::{segment_of, FilterSeal, ScrubReport};
use crate::traits::{CountingFilter, Filter};
use crate::{ConfigError, FilterError};
use mpcbf_bitvec::CounterVec;
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use std::marker::PhantomData;

/// A standard CBF with `m` counters of `c` bits.
///
/// ```
/// use mpcbf_core::{Cbf, CountingFilter, Filter};
/// use mpcbf_hash::Murmur3;
///
/// let mut cbf = Cbf::<Murmur3>::with_memory(4_000, 3, 42);
/// cbf.insert(&"tcp:443").unwrap();
/// assert!(cbf.contains(&"tcp:443"));
/// cbf.remove(&"tcp:443").unwrap();
/// assert!(!cbf.contains(&"tcp:443"));
/// ```
#[derive(Debug, Clone)]
pub struct Cbf<H: Hasher128 = Murmur3> {
    counters: CounterVec,
    k: u32,
    seed: u64,
    /// Machine-word granularity for access metering.
    word_bits: u32,
    items: u64,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> Cbf<H> {
    /// Creates a CBF with `m` counters of the paper's default 4 bits.
    ///
    /// # Panics
    /// Panics on an invalid shape; use [`Cbf::try_new`] to handle
    /// untrusted parameters as errors.
    pub fn new(m: usize, k: u32, seed: u64) -> Self {
        Self::with_counter_width(m, 4, k, seed)
    }

    /// Fallible counterpart of [`Cbf::new`].
    pub fn try_new(m: usize, k: u32, seed: u64) -> Result<Self, ConfigError> {
        Self::try_with_counter_width(m, 4, k, seed)
    }

    /// Creates a CBF sized to a memory budget of `memory_bits`
    /// (`m = memory_bits / 4`), the layout used in all comparisons.
    ///
    /// # Panics
    /// Panics on an invalid shape; use [`Cbf::try_with_memory`] to handle
    /// untrusted parameters as errors.
    pub fn with_memory(memory_bits: u64, k: u32, seed: u64) -> Self {
        Self::new((memory_bits / 4) as usize, k, seed)
    }

    /// Fallible counterpart of [`Cbf::with_memory`].
    pub fn try_with_memory(memory_bits: u64, k: u32, seed: u64) -> Result<Self, ConfigError> {
        Self::try_new((memory_bits / 4) as usize, k, seed)
    }

    /// Creates a CBF with an explicit counter width.
    ///
    /// # Panics
    /// Panics if `m == 0`, `k ∉ 1..=64` or `width ∉ 1..=32`; use
    /// [`Cbf::try_with_counter_width`] to handle untrusted parameters as
    /// errors.
    pub fn with_counter_width(m: usize, width: u32, k: u32, seed: u64) -> Self {
        match Self::try_with_counter_width(m, width, k, seed) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`Cbf::with_counter_width`]: validates the
    /// shape and returns a [`ConfigError`] instead of panicking, for
    /// callers (CLIs, config loaders) handling untrusted parameters.
    pub fn try_with_counter_width(
        m: usize,
        width: u32,
        k: u32,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if m == 0 {
            return Err(ConfigError::InsufficientMemory {
                detail: "counter vector needs at least one counter".into(),
            });
        }
        if !(1..=32).contains(&width) {
            return Err(ConfigError::BadGeometry {
                detail: format!("counter width {width} out of 1..=32"),
            });
        }
        if !(1..=64).contains(&k) {
            return Err(ConfigError::BadHashCount { k });
        }
        Ok(Cbf {
            counters: CounterVec::new(m, width),
            k,
            seed,
            word_bits: 64,
            items: 0,
            _hasher: PhantomData,
        })
    }

    /// Sets the machine-word width used when counting memory accesses.
    pub fn with_word_bits(mut self, word_bits: u32) -> Self {
        assert!(word_bits.is_power_of_two() && (8..=512).contains(&word_bits));
        self.word_bits = word_bits;
        self
    }

    /// Number of counters.
    pub fn len_counters(&self) -> usize {
        self.counters.len()
    }

    /// Net insertions currently stored.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Number of increments that hit a saturated counter.
    pub fn saturations(&self) -> u64 {
        self.counters.saturations()
    }

    /// Value of counter `i` (for tests and diagnostics).
    pub fn counter(&self, i: usize) -> u64 {
        self.counters.get(i)
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The metering word width.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Raw storage view for serialization:
    /// `(limbs, counter count, counter width, saturations)`.
    pub fn raw_parts(&self) -> (&[u64], usize, u32, u64) {
        (
            self.counters.raw_limbs(),
            self.counters.len(),
            self.counters.width(),
            self.counters.saturations(),
        )
    }

    /// Checksums the current counter storage into a [`FilterSeal`].
    ///
    /// Take a seal whenever the filter is known healthy (after a batch of
    /// updates, before going idle); [`Cbf::scrub`] later compares the
    /// storage against it to localise silent memory corruption.
    pub fn seal(&self) -> FilterSeal {
        FilterSeal::compute(self.counters.raw_limbs())
    }

    /// Checks the structural invariants no sequence of operations can
    /// violate: the padding bits past the last counter must stay zero.
    ///
    /// Flat counters carry far weaker invariants than the HCBF hierarchy
    /// (any counter value is reachable), so `verify` alone catches only
    /// flips landing in the padding; pair it with a [`Cbf::seal`] and
    /// [`Cbf::scrub`] for full coverage.
    pub fn verify(&self) -> Result<(), FilterError> {
        let limbs = self.counters.raw_limbs();
        if let Some((&last, _)) = limbs.split_last() {
            let used = self.counters.memory_bits() - (limbs.len() - 1) * 64;
            if used < 64 && (last >> used) != 0 {
                return Err(FilterError::CorruptionDetected {
                    segment: segment_of(limbs.len() - 1),
                });
            }
        }
        Ok(())
    }

    /// Scrubs the counter storage against a previously taken seal,
    /// reporting every segment whose checksum or structural invariants no
    /// longer hold.
    ///
    /// # Panics
    /// Panics if `seal` was taken from a different-sized filter.
    pub fn scrub(&self, seal: &FilterSeal) -> ScrubReport {
        let mut corrupt = seal.diff(self.counters.raw_limbs());
        if let Err(FilterError::CorruptionDetected { segment }) = self.verify() {
            corrupt.push(segment);
        }
        ScrubReport::new(seal.segments(), corrupt)
    }

    /// Fault-injection hook: XORs `mask` into raw limb `limb`, simulating
    /// an in-memory bit flip. Test/diagnostic use only — the damage is
    /// exactly what [`Cbf::scrub`] exists to detect.
    pub fn corrupt_limb_xor(&mut self, limb: usize, mask: u64) {
        self.counters.xor_limb(limb, mask);
    }

    /// Rebuilds a filter from raw storage (the codec's decode path).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        limbs: Vec<u64>,
        len: usize,
        width: u32,
        saturations: u64,
        k: u32,
        seed: u64,
        word_bits: u32,
        items: u64,
    ) -> Self {
        Cbf {
            counters: CounterVec::from_raw_parts(limbs, len, width, saturations),
            k,
            seed,
            word_bits,
            items,
            _hasher: PhantomData,
        }
    }

    #[inline]
    fn hasher(&self, key: &[u8]) -> DoubleHasher {
        DoubleHasher::new(H::hash128(self.seed, key), self.counters.len() as u64)
    }

    #[inline]
    fn word_of(&self, counter: usize) -> usize {
        counter * self.counters.width() as usize / self.word_bits as usize
    }

    /// Stage 1 of the batch pipeline: hash every key into the caller's
    /// [`PlanBuffer`] as flat plans — no group bookkeeping at all, just
    /// `k` counter indices per key, with zero allocation once the buffer
    /// is warm.
    fn plan_into(&self, keys: &[&[u8]], plans: &mut PlanBuffer) {
        plans.plan_flat(
            keys.iter().map(|key| H::hash128(self.seed, key)),
            self.k,
            self.counters.len() as u64,
        );
    }

    /// Distinct machine words among `probes` — the fused path's
    /// replacement for a per-key [`WordTouches`] tracker: same dedup
    /// semantics (k ≤ 64 never saturates the scalar tracker either),
    /// computed by an O(k²) scan with no per-key state.
    #[inline]
    fn distinct_probe_words(&self, probes: &[u32]) -> u32 {
        let mut n = 0u32;
        for (i, &p) in probes.iter().enumerate() {
            let w = self.word_of(p as usize);
            if !probes[..i].iter().any(|&q| self.word_of(q as usize) == w) {
                n += 1;
            }
        }
        n
    }
}

impl<H: Hasher128> Filter for Cbf<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut dh = self.hasher(key);
        let mut touches = WordTouches::new();
        let addr_bits = bits_for(self.counters.len() as u64);
        let mut evaluated = 0u32;
        let mut member = true;
        for _ in 0..self.k {
            let p = dh.next_index();
            touches.touch(self.word_of(p));
            evaluated += 1;
            if !self.counters.is_set(p) {
                member = false;
                break;
            }
        }
        (
            member,
            OpCost {
                word_accesses: touches.count(),
                hash_bits: evaluated * addr_bits,
            },
        )
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let mut dh = self.hasher(key);
        let mut touches = WordTouches::new();
        let addr_bits = bits_for(self.counters.len() as u64);
        for _ in 0..self.k {
            let p = dh.next_index();
            touches.touch(self.word_of(p));
            self.counters.increment(p);
        }
        self.items += 1;
        Ok(OpCost {
            word_accesses: touches.count(),
            hash_bits: self.k * addr_bits,
        })
    }

    fn memory_bits(&self) -> u64 {
        self.counters.memory_bits() as u64
    }

    fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Batch query via the fused flat pipeline with a fresh plan buffer;
    /// hold a [`PlanBuffer`] and call [`Filter::contains_batch_with`] to
    /// skip the per-call allocation.
    fn contains_batch_cost(&self, keys: &[&[u8]]) -> (Vec<bool>, OpCost) {
        self.contains_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused flat batch query: the plan buffer holds just `k` counter
    /// indices per key — no groups, no per-key tracker structures — and
    /// each key probes in scalar order, short-circuiting on the first
    /// zero counter. Batches below [`SMALL_BATCH`] degrade to the scalar
    /// loop.
    fn contains_batch_with(&self, keys: &[&[u8]], plans: &mut PlanBuffer) -> (Vec<bool>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut hits = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                let (hit, cost) = self.contains_bytes_cost(key);
                hits.push(hit);
                total = total.add(cost);
            }
            return (hits, total);
        }
        self.plan_into(keys, plans);
        let addr_bits = bits_for(self.counters.len() as u64);
        let mut hits = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let probes = plans.slots_of(i);
            let mut evaluated = 0u32;
            let mut member = true;
            for &p in probes {
                evaluated += 1;
                if !self.counters.is_set(p as usize) {
                    member = false;
                    break;
                }
            }
            hits.push(member);
            total = total.add(OpCost {
                word_accesses: self.distinct_probe_words(&probes[..evaluated as usize]),
                hash_bits: evaluated * addr_bits,
            });
        }
        (hits, total)
    }

    /// Batch insert via the fused flat pipeline with a fresh plan buffer;
    /// hold a [`PlanBuffer`] and call [`Filter::insert_batch_with`] to
    /// skip the per-call allocation.
    fn insert_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.insert_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused flat batch insert: increments are applied strictly in key
    /// order straight off the plan buffer's index runs, so the counter
    /// array ends bit-identical to a scalar loop. Batches below
    /// [`SMALL_BATCH`] degrade to the scalar loop.
    fn insert_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut results = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                match self.insert_bytes_cost(key) {
                    Ok(cost) => {
                        total = total.add(cost);
                        results.push(Ok(()));
                    }
                    Err(e) => results.push(Err(e)),
                }
            }
            return (results, total);
        }
        self.plan_into(keys, plans);
        let addr_bits = bits_for(self.counters.len() as u64);
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let probes = plans.slots_of(i);
            for &p in probes {
                self.counters.increment(p as usize);
            }
            self.items += 1;
            total = total.add(OpCost {
                word_accesses: self.distinct_probe_words(probes),
                hash_bits: self.k * addr_bits,
            });
            results.push(Ok(()));
        }
        (results, total)
    }
}

impl<H: Hasher128> CountingFilter for Cbf<H> {
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let mut dh = self.hasher(key);
        let mut touches = WordTouches::new();
        let addr_bits = bits_for(self.counters.len() as u64);
        // First pass: verify presence so a bogus delete cannot corrupt the
        // filter (decrementing a zero counter would manufacture false
        // negatives for other elements).
        let mut probe = self.hasher(key);
        for _ in 0..self.k {
            if !self.counters.is_set(probe.next_index()) {
                return Err(FilterError::NotPresent);
            }
        }
        for _ in 0..self.k {
            let p = dh.next_index();
            touches.touch(self.word_of(p));
            self.counters.decrement(p);
        }
        self.items = self.items.saturating_sub(1);
        Ok(OpCost {
            word_accesses: touches.count(),
            hash_bits: self.k * addr_bits,
        })
    }

    /// Batch remove via the fused flat pipeline with a fresh plan buffer;
    /// hold a [`PlanBuffer`] and call [`CountingFilter::remove_batch_with`]
    /// to skip the per-call allocation.
    fn remove_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.remove_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused flat batch remove: each key runs the same unmetered presence
    /// pass as the scalar path, then the metered decrements — applied in
    /// key order off the plan buffer, so an absent key leaves the counters
    /// untouched and later keys in the batch see every earlier key's
    /// decrements. Batches below [`SMALL_BATCH`] degrade to the scalar
    /// loop.
    fn remove_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut results = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                match self.remove_bytes_cost(key) {
                    Ok(cost) => {
                        total = total.add(cost);
                        results.push(Ok(()));
                    }
                    Err(e) => results.push(Err(e)),
                }
            }
            return (results, total);
        }
        self.plan_into(keys, plans);
        let addr_bits = bits_for(self.counters.len() as u64);
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let probes = plans.slots_of(i);
            if probes.iter().any(|&p| !self.counters.is_set(p as usize)) {
                results.push(Err(FilterError::NotPresent));
                continue;
            }
            for &p in probes {
                self.counters.decrement(p as usize);
            }
            self.items = self.items.saturating_sub(1);
            total = total.add(OpCost {
                word_accesses: self.distinct_probe_words(probes),
                hash_bits: self.k * addr_bits,
            });
            results.push(Ok(()));
        }
        (results, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = Cbf<Murmur3>;

    #[test]
    fn insert_query_delete_roundtrip() {
        let mut f = C::new(10_000, 3, 1);
        f.insert(&"x").unwrap();
        assert!(f.contains(&"x"));
        f.remove(&"x").unwrap();
        assert!(!f.contains(&"x"));
        assert_eq!(f.items(), 0);
    }

    #[test]
    fn no_false_negatives_under_churn() {
        let mut f = C::new(50_000, 3, 2);
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        // Delete the first half; the second half must all remain.
        for i in 0..2_500u64 {
            f.remove(&i).unwrap();
        }
        for i in 2_500..5_000u64 {
            assert!(f.contains(&i), "false negative for {i}");
        }
    }

    #[test]
    fn delete_absent_errors_and_preserves_state() {
        let mut f = C::new(1_000, 3, 3);
        f.insert(&"keep").unwrap();
        let before: Vec<u64> = (0..1_000).map(|i| f.counter(i)).collect();
        assert_eq!(f.remove(&"never-inserted"), Err(FilterError::NotPresent));
        let after: Vec<u64> = (0..1_000).map(|i| f.counter(i)).collect();
        assert_eq!(before, after);
        assert!(f.contains(&"keep"));
    }

    #[test]
    fn duplicate_inserts_need_matching_deletes() {
        let mut f = C::new(1_000, 3, 4);
        f.insert(&"dup").unwrap();
        f.insert(&"dup").unwrap();
        f.remove(&"dup").unwrap();
        assert!(f.contains(&"dup"), "one copy should remain");
        f.remove(&"dup").unwrap();
        assert!(!f.contains(&"dup"));
    }

    #[test]
    fn memory_matches_4_bits_per_counter() {
        let f = C::with_memory(4_000_000, 3, 0);
        assert_eq!(f.len_counters(), 1_000_000);
        assert_eq!(f.memory_bits(), 4_000_000);
    }

    #[test]
    fn query_short_circuit_on_empty_filter() {
        let f = C::new(1 << 20, 3, 5);
        let (hit, cost) = f.contains_bytes_cost(b"miss");
        assert!(!hit);
        assert_eq!(cost.word_accesses, 1);
        assert_eq!(cost.hash_bits, 20);
    }

    #[test]
    fn member_query_costs_k_addresses() {
        let mut f = C::new(1 << 20, 3, 5);
        f.insert(&"m").unwrap();
        let (hit, cost) = f.contains_bytes_cost(b"m");
        assert!(hit);
        assert_eq!(cost.hash_bits, 3 * 20);
        assert!(cost.word_accesses <= 3);
    }

    #[test]
    fn fpr_close_to_analytic() {
        let n = 10_000u64;
        let m = 100_000;
        let mut f = C::new(m, 3, 6);
        for i in 0..n {
            f.insert(&i).unwrap();
        }
        let trials = 100_000u64;
        let fp = (n..n + trials).filter(|i| f.contains(i)).count() as f64;
        let rate = fp / trials as f64;
        let analytic = mpcbf_analysis::cbf::fpr(n, m as u64, 3);
        assert!(
            (rate - analytic).abs() < 0.5 * analytic + 1e-3,
            "measured {rate}, analytic {analytic}"
        );
    }

    #[test]
    fn batch_matches_scalar_loop_including_removes() {
        let mut batch = C::new(20_000, 3, 8);
        let mut scalar = C::new(20_000, 3, 8);
        let keys: Vec<Vec<u8>> = (0..200u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

        let (_, bi) = batch.insert_batch_cost(&views);
        let mut si = OpCost::zero();
        for k in &views {
            si = si.add(scalar.insert_bytes_cost(k).unwrap());
        }
        assert_eq!(bi, si);

        // Remove a mix of present and absent keys (absent ones report
        // NotPresent and no cost on both paths).
        let mixed: Vec<Vec<u8>> = (100..300u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let mixed_views: Vec<&[u8]> = mixed.iter().map(|k| k.as_slice()).collect();
        let (batch_res, br) = batch.remove_batch_cost(&mixed_views);
        let mut sr = OpCost::zero();
        for (i, k) in mixed_views.iter().enumerate() {
            match scalar.remove_bytes_cost(k) {
                Ok(c) => {
                    sr = sr.add(c);
                    assert_eq!(batch_res[i], Ok(()));
                }
                Err(e) => assert_eq!(batch_res[i], Err(e)),
            }
        }
        assert_eq!(br, sr);
        assert_eq!(batch.raw_parts().0, scalar.raw_parts().0);
        assert_eq!(batch.items(), scalar.items());
    }

    #[test]
    fn try_constructors_report_bad_shapes() {
        use crate::ConfigError;
        assert!(matches!(
            C::try_new(0, 3, 0),
            Err(ConfigError::InsufficientMemory { .. })
        ));
        assert!(matches!(
            C::try_with_memory(3, 3, 0), // 3 bits -> zero counters
            Err(ConfigError::InsufficientMemory { .. })
        ));
        assert!(matches!(
            C::try_with_counter_width(100, 33, 3, 0),
            Err(ConfigError::BadGeometry { .. })
        ));
        assert_eq!(
            C::try_new(100, 0, 0).err(),
            Some(ConfigError::BadHashCount { k: 0 })
        );
        assert!(C::try_new(100, 3, 0).is_ok());
        assert!(C::try_with_memory(4_000, 3, 0).is_ok());
    }

    #[test]
    fn scrub_detects_injected_bit_flip() {
        let mut f = C::new(10_000, 3, 11);
        for i in 0..500u64 {
            f.insert(&i).unwrap();
        }
        assert_eq!(f.verify(), Ok(()));
        let seal = f.seal();
        assert!(f.scrub(&seal).is_clean());

        f.corrupt_limb_xor(100, 1 << 17);
        let report = f.scrub(&seal);
        assert_eq!(report.corrupt_segments, vec![segment_of(100)]);
        assert_eq!(
            report.to_result(),
            Err(FilterError::CorruptionDetected {
                segment: segment_of(100)
            })
        );

        // Undo the flip: the same seal scrubs clean again.
        f.corrupt_limb_xor(100, 1 << 17);
        assert!(f.scrub(&seal).is_clean());
    }

    #[test]
    fn verify_catches_padding_damage() {
        // 100 counters x 4 bits = 400 bits: limb 6 uses 16 bits, the top
        // 48 are padding no legitimate operation ever writes.
        let mut f = C::new(100, 3, 0);
        assert_eq!(f.verify(), Ok(()));
        f.corrupt_limb_xor(6, 1 << 60);
        assert_eq!(
            f.verify(),
            Err(FilterError::CorruptionDetected { segment: 0 })
        );
        // verify() damage also surfaces through a scrub of a clean seal.
        f.corrupt_limb_xor(6, 1 << 60);
        let seal = f.seal();
        f.corrupt_limb_xor(6, 1 << 60);
        assert_eq!(f.scrub(&seal).corrupt_segments, vec![0]);
    }

    #[test]
    fn saturation_does_not_lose_membership() {
        let mut f = C::with_counter_width(64, 2, 2, 7); // counters max out at 3
        for _ in 0..20 {
            f.insert(&"hot").unwrap();
        }
        assert!(f.saturations() > 0);
        assert!(f.contains(&"hot"));
        // Deletes on saturated counters keep them stuck at max — still no
        // false negative for the remaining copies.
        for _ in 0..5 {
            f.remove(&"hot").unwrap();
        }
        assert!(f.contains(&"hot"));
    }
}
