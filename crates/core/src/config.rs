//! Configuration and builder for MPCBF instances.
//!
//! The builder follows the paper's own sizing procedure (§III.B.3, §IV.B):
//! given a memory budget, an expected element count, `k` and `g`, it
//! derives `l = M/w`, picks `n_max` with the inverse-Poisson heuristic
//! (Eq. 11) unless overridden, and maximises the first level
//! `b1 = w − ceil(k/g)·n_max`.

use crate::error::ConfigError;
use mpcbf_analysis::heuristic::{derive_shape, MpcbfShape};

/// A fully validated MPCBF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpcbfConfig {
    shape: MpcbfShape,
    seed: u64,
    expected_items: u64,
}

impl MpcbfConfig {
    /// Starts a builder.
    pub fn builder() -> MpcbfConfigBuilder {
        MpcbfConfigBuilder::default()
    }

    /// The derived structural parameters.
    pub fn shape(&self) -> MpcbfShape {
        self.shape
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The expected element count the shape was derived for.
    pub fn expected_items(&self) -> u64 {
        self.expected_items
    }
}

/// Builder for [`MpcbfConfig`].
#[derive(Debug, Clone)]
pub struct MpcbfConfigBuilder {
    memory_bits: u64,
    expected_items: u64,
    hashes: u32,
    accesses: u32,
    word_bits: u32,
    seed: u64,
    n_max_override: Option<u32>,
}

impl Default for MpcbfConfigBuilder {
    fn default() -> Self {
        MpcbfConfigBuilder {
            memory_bits: 0,
            expected_items: 0,
            hashes: 3,
            accesses: 1,
            word_bits: 64,
            seed: 0x6d70_6362_6631_0000, // "mpcbf1"
            n_max_override: None,
        }
    }
}

impl MpcbfConfigBuilder {
    /// Memory budget in bits (`M`); the filter uses `l = M / w` words.
    pub fn memory_bits(mut self, bits: u64) -> Self {
        self.memory_bits = bits;
        self
    }

    /// Expected number of stored elements `n` (drives the `n_max`
    /// heuristic; the filter still works above `n`, with rising FPR).
    pub fn expected_items(mut self, n: u64) -> Self {
        self.expected_items = n;
        self
    }

    /// Number of hash functions `k` (default 3, the paper's main setting).
    pub fn hashes(mut self, k: u32) -> Self {
        self.hashes = k;
        self
    }

    /// Memory accesses per operation `g` (default 1 ⇒ MPCBF-1).
    pub fn accesses(mut self, g: u32) -> Self {
        self.accesses = g;
        self
    }

    /// Word size in bits (default 64). Must match the `Word` type the
    /// filter is instantiated with.
    pub fn word_bits(mut self, w: u32) -> Self {
        self.word_bits = w;
        self
    }

    /// Hash seed (distinct seeds give independent filters).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the Eq.-(11) `n_max` heuristic (for the ablation sweep of
    /// the FPR/overflow trade-off, §III.B.4).
    pub fn n_max(mut self, n_max: u32) -> Self {
        self.n_max_override = Some(n_max);
        self
    }

    /// Validates and derives the final configuration.
    pub fn build(self) -> Result<MpcbfConfig, ConfigError> {
        if self.expected_items == 0 {
            return Err(ConfigError::ZeroItems);
        }
        if !(1..=64).contains(&self.hashes) {
            return Err(ConfigError::BadHashCount { k: self.hashes });
        }
        if self.accesses == 0 || self.accesses > self.hashes || self.accesses > 8 {
            return Err(ConfigError::BadAccessCount { g: self.accesses });
        }
        if self.memory_bits < 2 * u64::from(self.word_bits) {
            return Err(ConfigError::InsufficientMemory {
                detail: format!(
                    "{} bits cannot hold two {}-bit words",
                    self.memory_bits, self.word_bits
                ),
            });
        }
        let shape = if let Some(n_max) = self.n_max_override {
            // Explicit n_max: build the shape directly, bypassing Eq. (11).
            let l = self.memory_bits / u64::from(self.word_bits);
            if l < 2 {
                return Err(ConfigError::Shape(
                    mpcbf_analysis::heuristic::ShapeError::TooFewWords { l },
                ));
            }
            let k_per_word = self.hashes.div_ceil(self.accesses);
            let hierarchy = k_per_word * n_max;
            let b1 = i64::from(self.word_bits) - i64::from(hierarchy);
            if b1 < i64::from(k_per_word.max(1)) {
                return Err(ConfigError::Shape(
                    mpcbf_analysis::heuristic::ShapeError::FirstLevelTooSmall {
                        b1,
                        hierarchy_bits: hierarchy,
                    },
                ));
            }
            MpcbfShape {
                l,
                w: self.word_bits,
                k: self.hashes,
                g: self.accesses,
                n_max,
                k_per_word,
                b1: b1 as u32,
            }
        } else {
            derive_shape(
                self.memory_bits,
                self.word_bits,
                self.expected_items,
                self.hashes,
                self.accesses,
            )?
        };
        Ok(MpcbfConfig {
            shape,
            seed: self.seed,
            expected_items: self.expected_items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_matches_paper_shape() {
        let c = MpcbfConfig::builder()
            .memory_bits(4_000_000)
            .expected_items(100_000)
            .hashes(3)
            .build()
            .unwrap();
        let s = c.shape();
        assert_eq!(s.w, 64);
        assert_eq!(s.l, 62_500);
        assert!((34..=43).contains(&s.b1), "b1 = {}", s.b1);
        assert_eq!(s.g, 1);
    }

    #[test]
    fn g2_splits_k() {
        let c = MpcbfConfig::builder()
            .memory_bits(4_000_000)
            .expected_items(100_000)
            .hashes(3)
            .accesses(2)
            .build()
            .unwrap();
        assert_eq!(c.shape().k_per_word, 2);
    }

    #[test]
    fn n_max_override_changes_b1() {
        let base = MpcbfConfig::builder()
            .memory_bits(4_000_000)
            .expected_items(100_000)
            .hashes(3);
        let a = base.clone().n_max(8).build().unwrap();
        let b = base.n_max(12).build().unwrap();
        assert_eq!(a.shape().b1, 64 - 24);
        assert_eq!(b.shape().b1, 64 - 36);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let b = || {
            MpcbfConfig::builder()
                .memory_bits(4_000_000)
                .expected_items(100_000)
        };
        assert!(matches!(
            b().expected_items(0).build(),
            Err(ConfigError::ZeroItems)
        ));
        assert!(matches!(
            b().hashes(0).build(),
            Err(ConfigError::BadHashCount { .. })
        ));
        assert!(matches!(
            b().hashes(3).accesses(4).build(),
            Err(ConfigError::BadAccessCount { .. })
        ));
        assert!(matches!(
            b().memory_bits(64).build(),
            Err(ConfigError::InsufficientMemory { .. })
        ));
        assert!(matches!(
            b().n_max(30).build(), // 3·30 = 90 > 64
            Err(ConfigError::Shape(_))
        ));
    }

    #[test]
    fn seeds_propagate() {
        let c = MpcbfConfig::builder()
            .memory_bits(1_000_000)
            .expected_items(10_000)
            .seed(42)
            .build()
            .unwrap();
        assert_eq!(c.seed(), 42);
        assert_eq!(c.expected_items(), 10_000);
    }
}
