//! # mpcbf-core
//!
//! The filters from *"A Multi-Partitioning Approach to Building Fast and
//! Accurate Counting Bloom Filters"* (Huang et al., IEEE IPDPS 2013), plus
//! the baselines they are evaluated against:
//!
//! | Type | Paper section | Role |
//! |---|---|---|
//! | [`BloomFilter`] | §II.A \[1\] | insert-only baseline |
//! | [`BfG`] (BF-1/BF-g) | §II.B \[11\] | one-access Bloom filter, the inspiration |
//! | [`Cbf`] | §II.A \[3\] | standard Counting Bloom Filter, primary baseline |
//! | [`Pcbf`] (PCBF-1/g) | §III.A | partitioning without the hierarchy |
//! | [`HcbfWord`] | §III.B.1/3 | the in-word hierarchical counter codec |
//! | [`Mpcbf`] (MPCBF-1/g) | §III.B.2, §III.C | **the contribution** |
//!
//! All filters implement [`Filter`] (and the counting ones
//! [`CountingFilter`]), expose metered `_cost` operations reporting the
//! paper's processing-overhead metrics (distinct-word memory accesses and
//! hash-bit access bandwidth, with query short-circuiting), and share the
//! hash substrate of [`mpcbf_hash`].
//!
//! ```
//! use mpcbf_core::prelude::*;
//!
//! let config = MpcbfConfig::builder()
//!     .memory_bits(1_000_000)
//!     .expected_items(10_000)
//!     .hashes(3)
//!     .build()
//!     .unwrap();
//! let mut filter = Mpcbf1::new(config);
//! filter.insert(&"alice").unwrap();
//! assert!(filter.contains(&"alice"));
//! filter.remove(&"alice").unwrap();
//! assert!(!filter.contains(&"alice"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bf1;
pub mod bloom;
pub mod bulk;
pub mod cbf;
pub mod codec;
pub mod config;
pub mod elastic;
pub mod error;
pub mod hcbf;
pub mod metrics;
pub mod mpcbf;
pub mod pcbf;
pub mod plan;
pub mod policy;
pub mod resilient;
pub mod scrub;
pub mod traits;
pub mod window;

pub use codec::CodecError;

pub use bf1::BfG;
pub use bloom::BloomFilter;
pub use bulk::{BulkBuilder, BulkStage, BulkStats, RegionJob, ResilientBulkBuilder};
pub use cbf::Cbf;
pub use config::{MpcbfConfig, MpcbfConfigBuilder};
pub use elastic::{ElasticMpcbf, GenerationInfo, ScaleSpec};
pub use error::{ConfigError, FilterError};
pub use hcbf::{HcbfWord, WordError};
pub use metrics::{AccessStats, HealthReport, NoopSink, OpCost, OpKind, OpSink, OpTally};
pub use mpcbf::{Mpcbf, Mpcbf1};
pub use pcbf::Pcbf;
pub use plan::{PlanBuffer, ProbePlan, SMALL_BATCH};
pub use policy::CapacityPolicy;
pub use resilient::{ResilientMpcbf, ResilientSeal};
pub use scrub::{FilterSeal, ScrubReport, SEGMENT_WORDS};
pub use traits::{CountingFilter, Filter};
pub use window::SlidingWindowMpcbf;

/// Salt for the word-selector hash stream (`H_1..H_g` in the paper).
pub(crate) const WORD_SALT: u64 = 0x4d50_4342_465f_5744; // "MPCBF_WD"

/// Salt base for per-word in-word index streams (`h_1..h_k`).
pub(crate) const GROUP_SALT: u64 = 0x4d50_4342_465f_4752; // "MPCBF_GR"

/// How many of the `k` hash functions group `t` (0-based) receives when
/// spread over `g` words: the first `k mod g` groups get `ceil(k/g)`,
/// the rest `floor(k/g)` (§III.C: "as k might be not divisible by g, we
/// might assign less value to the last word" — e.g. k=3, g=2 ⇒ [2, 1]).
#[inline]
pub(crate) fn split_hashes(k: u32, g: u32, t: u32) -> u32 {
    debug_assert!(t < g && g <= k);
    let base = k / g;
    let rem = k % g;
    if t < rem {
        base + 1
    } else {
        base
    }
}

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use crate::bf1::BfG;
    pub use crate::bloom::BloomFilter;
    pub use crate::bulk::{BulkBuilder, BulkStats, ResilientBulkBuilder};
    pub use crate::cbf::Cbf;
    pub use crate::config::MpcbfConfig;
    pub use crate::elastic::{ElasticMpcbf, GenerationInfo, ScaleSpec};
    pub use crate::error::{ConfigError, FilterError};
    pub use crate::metrics::{AccessStats, HealthReport, NoopSink, OpCost, OpKind, OpSink};
    pub use crate::mpcbf::{Mpcbf, Mpcbf1};
    pub use crate::pcbf::Pcbf;
    pub use crate::plan::{PlanBuffer, ProbePlan};
    pub use crate::policy::CapacityPolicy;
    pub use crate::resilient::{ResilientMpcbf, ResilientSeal};
    pub use crate::scrub::{FilterSeal, ScrubReport};
    pub use crate::traits::{CountingFilter, Filter};
    pub use crate::window::SlidingWindowMpcbf;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_hashes_partitions_k() {
        for k in 1..=12u32 {
            for g in 1..=k.min(8) {
                let total: u32 = (0..g).map(|t| split_hashes(k, g, t)).sum();
                assert_eq!(total, k, "k={k} g={g}");
                // Non-increasing across groups.
                for t in 1..g {
                    assert!(split_hashes(k, g, t - 1) >= split_hashes(k, g, t));
                }
            }
        }
    }

    #[test]
    fn split_hashes_paper_example() {
        // "in MPCBF-2 with k=3, we allocate two hash functions to the
        //  first word, and one to the second word."
        assert_eq!(split_hashes(3, 2, 0), 2);
        assert_eq!(split_hashes(3, 2, 1), 1);
    }
}
