//! Access metering: the paper's "processing overhead" metrics.
//!
//! The paper characterises every filter by (a) **memory accesses** per
//! operation — the number of distinct machine words fetched — and (b)
//! **access bandwidth** — the number of hash/address bits the operation
//! consumes (Tables I–III, Fig. 11). Queries *short-circuit*: a membership
//! check stops at the first zero position, which is why the paper's
//! measured per-query averages are fractional (e.g. 2.1 accesses for CBF
//! and 1.8 for MPCBF-2 at k = 3).
//!
//! Each filter operation returns an [`OpCost`]; harnesses fold them into an
//! [`AccessStats`] ledger per operation kind.

/// The kind of a filter operation, for sinks that ledger per kind (the
/// split the paper's tables use: queries vs. updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Membership query.
    Query,
    /// Insertion.
    Insert,
    /// Deletion.
    Remove,
}

impl OpKind {
    /// Stable lowercase label (used as a metric label by exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Query => "query",
            OpKind::Insert => "insert",
            OpKind::Remove => "remove",
        }
    }

    /// All kinds, in ledger order.
    pub const ALL: [OpKind; 3] = [OpKind::Query, OpKind::Insert, OpKind::Remove];
}

/// A consumer of operation telemetry: the metered batch methods on
/// [`Filter`](crate::traits::Filter) report each batch call here as
/// `(kind, ops, summed cost, wall nanos)`.
///
/// Takes `&self` so one sink can be shared across threads; implementations
/// are expected to use interior mutability (atomics). The telemetry crate's
/// registry is the primary implementation; [`NoopSink`] is the zero-cost
/// default.
pub trait OpSink {
    /// Records one batch call: `ops` operations of `kind`, their summed
    /// [`OpCost`], and the wall-clock nanoseconds the batch took.
    fn record_batch(&self, kind: OpKind, ops: u64, cost: OpCost, nanos: u64);
}

/// An [`OpSink`] that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl OpSink for NoopSink {
    #[inline]
    fn record_batch(&self, _kind: OpKind, _ops: u64, _cost: OpCost, _nanos: u64) {}
}

/// The metered cost of one filter operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Distinct machine words fetched.
    pub word_accesses: u32,
    /// Hash/address bits consumed (the paper's access bandwidth).
    pub hash_bits: u32,
}

impl OpCost {
    /// A zero cost.
    #[inline]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Component-wise sum.
    #[inline]
    #[allow(clippy::should_implement_trait)] // not an `Add` impl: takes/returns by value for metering folds
    pub fn add(self, other: OpCost) -> OpCost {
        OpCost {
            word_accesses: self.word_accesses + other.word_accesses,
            hash_bits: self.hash_bits + other.hash_bits,
        }
    }

    /// Folds per-key costs into one batch total.
    ///
    /// Batch operations report a single summed [`OpCost`]; this is the
    /// canonical fold so every batch path aggregates identically to a
    /// scalar loop calling [`OpCost::add`] per key.
    #[inline]
    pub fn accumulate<I: IntoIterator<Item = OpCost>>(costs: I) -> OpCost {
        costs.into_iter().fold(OpCost::zero(), OpCost::add)
    }
}

/// Running totals for one kind of operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTally {
    ops: u64,
    word_accesses: u64,
    hash_bits: u64,
}

impl OpTally {
    /// Records one operation's cost.
    #[inline]
    pub fn record(&mut self, cost: OpCost) {
        self.ops += 1;
        self.word_accesses += u64::from(cost.word_accesses);
        self.hash_bits += u64::from(cost.hash_bits);
    }

    /// Number of operations recorded.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total distinct-word accesses recorded.
    #[inline]
    pub fn total_accesses(&self) -> u64 {
        self.word_accesses
    }

    /// Total hash/address bits recorded.
    #[inline]
    pub fn total_hash_bits(&self) -> u64 {
        self.hash_bits
    }

    /// Mean memory accesses per operation (0 if none recorded).
    #[inline]
    pub fn mean_accesses(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.word_accesses as f64 / self.ops as f64
        }
    }

    /// Mean access bandwidth (hash bits) per operation.
    #[inline]
    pub fn mean_hash_bits(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.hash_bits as f64 / self.ops as f64
        }
    }

    /// Folds pre-aggregated totals into the tally — how instrumentation
    /// that keeps its own atomic counters (the concurrent filters'
    /// per-shard ledgers) reports into the shared [`AccessStats`] shape.
    #[inline]
    pub fn record_totals(&mut self, ops: u64, word_accesses: u64, hash_bits: u64) {
        self.ops += ops;
        self.word_accesses += word_accesses;
        self.hash_bits += hash_bits;
    }

    /// Merges another tally into this one.
    #[inline]
    pub fn merge(&mut self, other: &OpTally) {
        self.ops += other.ops;
        self.word_accesses += other.word_accesses;
        self.hash_bits += other.hash_bits;
    }
}

/// Ledger of operation costs, split by kind as the paper's tables are.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Membership queries.
    pub queries: OpTally,
    /// Insertions.
    pub inserts: OpTally,
    /// Deletions.
    pub removes: OpTally,
}

impl AccessStats {
    /// A fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Combined update tally (inserts + removes), as Table II reports.
    pub fn updates(&self) -> OpTally {
        let mut t = self.inserts;
        t.merge(&self.removes);
        t
    }

    /// Merges another ledger.
    pub fn merge(&mut self, other: &AccessStats) {
        self.queries.merge(&other.queries);
        self.inserts.merge(&other.inserts);
        self.removes.merge(&other.removes);
    }
}

/// A point-in-time saturation snapshot of a counting filter.
///
/// The paper sizes words so overflow "never" happens on the expected
/// workload; production traffic is skewed, so operators need to *see* how
/// close a filter is to that cliff. `fill_ratio` and `max_word_load` track
/// the main structure; the `spill_*` fields are nonzero only for
/// [`ResilientMpcbf`](crate::resilient::ResilientMpcbf), which absorbs
/// overflowing keys into a side structure instead of refusing them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthReport {
    /// Net elements currently stored (main structure).
    pub items: u64,
    /// Stored increments over total hierarchy capacity, in `[0, 1]`.
    pub fill_ratio: f64,
    /// Increments stored in the most loaded word.
    pub max_word_load: u32,
    /// Increments one word can hold (`w − b1`).
    pub word_capacity: u32,
    /// Inserts the main structure refused because a word overflowed.
    pub overflows: u64,
    /// Distinct keys currently living in the spill structure.
    pub spill_keys: u64,
    /// Total multiplicity stored in the spill structure.
    pub spill_occupancy: u64,
    /// Lifetime count of inserts routed to the spill structure.
    pub spilled_inserts: u64,
}

impl HealthReport {
    /// True if any key currently lives in the spill structure.
    pub fn is_spilling(&self) -> bool {
        self.spill_occupancy > 0
    }

    /// True if the most loaded word has no room for another increment —
    /// the next insert hashing there will overflow (or spill).
    pub fn is_saturated(&self) -> bool {
        self.max_word_load >= self.word_capacity
    }

    /// One-number capacity-pressure summary in `[0, 1]` and beyond.
    ///
    /// Defined as the worst of the average fill ratio and the hottest
    /// word's load fraction, clamped up to at least `1.0` whenever the
    /// structure has already overflowed or is spilling — those states mean
    /// the shape has *demonstrably* run out of room regardless of what
    /// the averages claim. A
    /// [`CapacityPolicy`](crate::policy::CapacityPolicy) compares this
    /// summary (plus the raw spill gauges) against its thresholds to
    /// decide when an elastic filter must grow.
    pub fn pressure(&self) -> f64 {
        let word_pressure = if self.word_capacity == 0 {
            0.0
        } else {
            f64::from(self.max_word_load) / f64::from(self.word_capacity)
        };
        let p = self.fill_ratio.max(word_pressure);
        if self.overflows > 0 || self.is_spilling() {
            p.max(1.0)
        } else {
            p
        }
    }
}

/// Deduplicating tracker for word indices touched within one operation.
///
/// Operations touch at most a handful of words (`g ≤ 8` for MPCBF, `k ≤ 64`
/// for CBF), so a linear scan over a stack buffer beats any hash set.
#[derive(Debug)]
pub struct WordTouches {
    seen: [usize; 64],
    len: usize,
}

impl WordTouches {
    /// An empty tracker.
    #[inline]
    pub fn new() -> Self {
        WordTouches {
            seen: [0; 64],
            len: 0,
        }
    }

    /// Records a touch of `word`; duplicate touches are free (a word
    /// already fetched this operation stays in registers/cache).
    #[inline]
    pub fn touch(&mut self, word: usize) {
        if self.seen[..self.len].contains(&word) {
            return;
        }
        // If an operation somehow touches more than 64 distinct words we
        // saturate rather than panic; no paper configuration approaches it.
        if self.len < self.seen.len() {
            self.seen[self.len] = word;
            self.len += 1;
        }
    }

    /// Number of distinct words touched.
    #[inline]
    pub fn count(&self) -> u32 {
        self.len as u32
    }
}

impl Default for WordTouches {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_cost_adds() {
        let a = OpCost {
            word_accesses: 1,
            hash_bits: 22,
        };
        let b = OpCost {
            word_accesses: 2,
            hash_bits: 10,
        };
        assert_eq!(
            a.add(b),
            OpCost {
                word_accesses: 3,
                hash_bits: 32
            }
        );
        assert_eq!(OpCost::zero().add(a), a);
    }

    #[test]
    fn op_cost_accumulates() {
        let costs = [
            OpCost {
                word_accesses: 1,
                hash_bits: 22,
            },
            OpCost {
                word_accesses: 2,
                hash_bits: 10,
            },
            OpCost {
                word_accesses: 4,
                hash_bits: 8,
            },
        ];
        assert_eq!(
            OpCost::accumulate(costs),
            OpCost {
                word_accesses: 7,
                hash_bits: 40
            }
        );
        assert_eq!(OpCost::accumulate(std::iter::empty()), OpCost::zero());
    }

    #[test]
    fn tally_means() {
        let mut t = OpTally::default();
        t.record(OpCost {
            word_accesses: 1,
            hash_bits: 30,
        });
        t.record(OpCost {
            word_accesses: 3,
            hash_bits: 50,
        });
        assert_eq!(t.ops(), 2);
        assert!((t.mean_accesses() - 2.0).abs() < 1e-12);
        assert!((t.mean_hash_bits() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_is_zero() {
        let t = OpTally::default();
        assert_eq!(t.mean_accesses(), 0.0);
        assert_eq!(t.mean_hash_bits(), 0.0);
    }

    #[test]
    fn updates_combines_inserts_and_removes() {
        let mut s = AccessStats::new();
        s.inserts.record(OpCost {
            word_accesses: 1,
            hash_bits: 10,
        });
        s.removes.record(OpCost {
            word_accesses: 3,
            hash_bits: 20,
        });
        let u = s.updates();
        assert_eq!(u.ops(), 2);
        assert!((u.mean_accesses() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn word_touches_dedupes() {
        let mut t = WordTouches::new();
        t.touch(5);
        t.touch(9);
        t.touch(5);
        t.touch(9);
        t.touch(1);
        assert_eq!(t.count(), 3);
    }

    #[test]
    fn word_touches_saturates_safely() {
        let mut t = WordTouches::new();
        for w in 0..100 {
            t.touch(w);
        }
        assert_eq!(t.count(), 64);
    }

    #[test]
    fn stats_merge() {
        let mut a = AccessStats::new();
        a.queries.record(OpCost {
            word_accesses: 1,
            hash_bits: 1,
        });
        let mut b = AccessStats::new();
        b.queries.record(OpCost {
            word_accesses: 3,
            hash_bits: 3,
        });
        a.merge(&b);
        assert_eq!(a.queries.ops(), 2);
        assert!((a.queries.mean_accesses() - 2.0).abs() < 1e-12);
    }
}
