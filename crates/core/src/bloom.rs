//! The standard Bloom filter (§II.A, reference \[1\]).
//!
//! An `m`-bit vector with `k` hashed positions per element. Included as the
//! insert-only baseline underlying every counting variant; the BF-1/BF-g
//! one-access generalisation lives in [`crate::bf1`].

use crate::metrics::{OpCost, WordTouches};
use crate::plan::{PlanBuffer, SMALL_BATCH};
use crate::traits::Filter;
use crate::{ConfigError, FilterError};
use mpcbf_bitvec::BitVec;
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use std::marker::PhantomData;

/// A standard Bloom filter over an `m`-bit vector.
///
/// ```
/// use mpcbf_core::{BloomFilter, Filter};
/// use mpcbf_hash::Murmur3;
///
/// let mut bf = BloomFilter::<Murmur3>::new(10_000, 3, 7);
/// bf.insert(&1234u64).unwrap();
/// assert!(bf.contains(&1234u64));
/// // Insert-only: no `remove` — that's what the counting variants add.
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter<H: Hasher128 = Murmur3> {
    bits: BitVec,
    k: u32,
    seed: u64,
    /// Machine-word granularity used for access metering.
    word_bits: u32,
    items: u64,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> BloomFilter<H> {
    /// Creates a Bloom filter with `m` bits and `k` hash functions.
    ///
    /// # Panics
    /// Panics if `m == 0` or `k` is outside `1..=64`; use
    /// [`BloomFilter::try_new`] to handle untrusted shapes as errors.
    pub fn new(m: usize, k: u32, seed: u64) -> Self {
        match Self::try_new(m, k, seed) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`BloomFilter::new`]: validates the shape
    /// and returns a [`ConfigError`] instead of panicking, for callers
    /// (CLIs, config loaders) handling untrusted parameters.
    pub fn try_new(m: usize, k: u32, seed: u64) -> Result<Self, ConfigError> {
        if m == 0 {
            return Err(ConfigError::InsufficientMemory {
                detail: "bit vector needs at least one bit".into(),
            });
        }
        if !(1..=64).contains(&k) {
            return Err(ConfigError::BadHashCount { k });
        }
        Ok(BloomFilter {
            bits: BitVec::new(m),
            k,
            seed,
            word_bits: 64,
            items: 0,
            _hasher: PhantomData,
        })
    }

    /// Sets the machine-word width used when counting memory accesses.
    pub fn with_word_bits(mut self, word_bits: u32) -> Self {
        assert!(word_bits.is_power_of_two() && (8..=512).contains(&word_bits));
        self.word_bits = word_bits;
        self
    }

    /// Number of bits in the vector.
    pub fn len_bits(&self) -> usize {
        self.bits.len()
    }

    /// Number of (net) insertions performed.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Fraction of bits currently set.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    #[inline]
    fn hasher(&self, key: &[u8]) -> DoubleHasher {
        DoubleHasher::new(H::hash128(self.seed, key), self.bits.len() as u64)
    }

    #[inline]
    fn word_of(&self, bit: usize) -> usize {
        bit / self.word_bits as usize
    }

    /// Stage 1 of the batch pipeline: hash every key into the caller's
    /// [`PlanBuffer`] as flat plans (no group bookkeeping).
    fn plan_into(&self, keys: &[&[u8]], plans: &mut PlanBuffer) {
        plans.plan_flat(
            keys.iter().map(|key| H::hash128(self.seed, key)),
            self.k,
            self.bits.len() as u64,
        );
    }

    /// Distinct machine words among `probes` — same dedup semantics as a
    /// per-key [`WordTouches`] tracker (k ≤ 64 never saturates), without
    /// the per-key state.
    #[inline]
    fn distinct_probe_words(&self, probes: &[u32]) -> u32 {
        let mut n = 0u32;
        for (i, &p) in probes.iter().enumerate() {
            let w = self.word_of(p as usize);
            if !probes[..i].iter().any(|&q| self.word_of(q as usize) == w) {
                n += 1;
            }
        }
        n
    }
}

impl<H: Hasher128> Filter for BloomFilter<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut dh = self.hasher(key);
        let mut touches = WordTouches::new();
        let addr_bits = bits_for(self.bits.len() as u64);
        let mut evaluated = 0u32;
        let mut member = true;
        for _ in 0..self.k {
            let p = dh.next_index();
            touches.touch(self.word_of(p));
            evaluated += 1;
            if !self.bits.get(p) {
                member = false;
                break; // short-circuit on first zero
            }
        }
        (
            member,
            OpCost {
                word_accesses: touches.count(),
                hash_bits: evaluated * addr_bits,
            },
        )
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let mut dh = self.hasher(key);
        let mut touches = WordTouches::new();
        let addr_bits = bits_for(self.bits.len() as u64);
        for _ in 0..self.k {
            let p = dh.next_index();
            touches.touch(self.word_of(p));
            self.bits.set(p);
        }
        self.items += 1;
        Ok(OpCost {
            word_accesses: touches.count(),
            hash_bits: self.k * addr_bits,
        })
    }

    fn memory_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Batch query via the fused flat pipeline with a fresh plan buffer;
    /// hold a [`PlanBuffer`] and call [`Filter::contains_batch_with`] to
    /// skip the per-call allocation.
    fn contains_batch_cost(&self, keys: &[&[u8]]) -> (Vec<bool>, OpCost) {
        self.contains_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused flat batch query: probe each planned key in scalar order
    /// (including the short-circuit on the first zero bit), straight off
    /// the buffer's index runs. Batches below [`SMALL_BATCH`] degrade to
    /// the scalar loop.
    fn contains_batch_with(&self, keys: &[&[u8]], plans: &mut PlanBuffer) -> (Vec<bool>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut hits = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                let (hit, cost) = self.contains_bytes_cost(key);
                hits.push(hit);
                total = total.add(cost);
            }
            return (hits, total);
        }
        self.plan_into(keys, plans);
        let addr_bits = bits_for(self.bits.len() as u64);
        let mut hits = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let probes = plans.slots_of(i);
            let mut evaluated = 0u32;
            let mut member = true;
            for &p in probes {
                evaluated += 1;
                if !self.bits.get(p as usize) {
                    member = false;
                    break;
                }
            }
            hits.push(member);
            total = total.add(OpCost {
                word_accesses: self.distinct_probe_words(&probes[..evaluated as usize]),
                hash_bits: evaluated * addr_bits,
            });
        }
        (hits, total)
    }

    /// Batch insert via the fused flat pipeline with a fresh plan buffer;
    /// hold a [`PlanBuffer`] and call [`Filter::insert_batch_with`] to
    /// skip the per-call allocation.
    fn insert_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.insert_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused flat batch insert: sets bits strictly in key order off the
    /// buffer's index runs (never fails for a plain Bloom filter).
    /// Batches below [`SMALL_BATCH`] degrade to the scalar loop.
    fn insert_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut results = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                match self.insert_bytes_cost(key) {
                    Ok(cost) => {
                        total = total.add(cost);
                        results.push(Ok(()));
                    }
                    Err(e) => results.push(Err(e)),
                }
            }
            return (results, total);
        }
        self.plan_into(keys, plans);
        let addr_bits = bits_for(self.bits.len() as u64);
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let probes = plans.slots_of(i);
            for &p in probes {
                self.bits.set(p as usize);
            }
            self.items += 1;
            total = total.add(OpCost {
                word_accesses: self.distinct_probe_words(probes),
                hash_bits: self.k * addr_bits,
            });
            results.push(Ok(()));
        }
        (results, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Bf = BloomFilter<Murmur3>;

    #[test]
    fn no_false_negatives() {
        let mut f = Bf::new(10_000, 3, 1);
        for i in 0..500u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..500u64 {
            assert!(f.contains(&i), "false negative for {i}");
        }
        assert_eq!(f.items(), 500);
    }

    #[test]
    fn fpr_in_expected_ballpark() {
        // m/n = 10, k = 3 ⇒ analytic FPR ≈ 2.4%; allow generous slack.
        let mut f = Bf::new(100_000, 3, 2);
        for i in 0..10_000u64 {
            f.insert(&i).unwrap();
        }
        let fp = (10_000..60_000u64).filter(|i| f.contains(i)).count();
        let rate = fp as f64 / 50_000.0;
        let analytic = mpcbf_analysis::cbf::fpr(10_000, 100_000, 3);
        assert!(
            (rate - analytic).abs() < analytic,
            "measured {rate} vs analytic {analytic}"
        );
    }

    #[test]
    fn query_cost_short_circuits() {
        let f = Bf::new(1 << 16, 4, 3);
        // Empty filter: first probe misses, one word touched, one address.
        let (hit, cost) = f.contains_bytes_cost(b"nope");
        assert!(!hit);
        assert_eq!(cost.word_accesses, 1);
        assert_eq!(cost.hash_bits, 16);
    }

    #[test]
    fn member_query_costs_full_k() {
        let mut f = Bf::new(1 << 16, 4, 3);
        f.insert(&"present").unwrap();
        let (hit, cost) = f.contains_bytes_cost(b"present");
        assert!(hit);
        assert_eq!(cost.hash_bits, 4 * 16);
        assert!(cost.word_accesses >= 1 && cost.word_accesses <= 4);
    }

    #[test]
    fn insert_cost_counts_distinct_words() {
        let mut f = Bf::new(128, 8, 7).with_word_bits(64);
        // Only 2 machine words exist, so accesses ≤ 2 despite k = 8.
        let cost = f.insert_bytes_cost(b"x").unwrap();
        assert!(cost.word_accesses <= 2);
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = Bf::new(1000, 3, 0);
        assert_eq!(f.fill_ratio(), 0.0);
        for i in 0..100u64 {
            f.insert(&i).unwrap();
        }
        assert!(f.fill_ratio() > 0.1);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_k_panics() {
        let _ = Bf::new(100, 0, 0);
    }

    #[test]
    fn try_new_reports_bad_shapes() {
        use crate::ConfigError;
        assert!(matches!(
            Bf::try_new(0, 3, 0),
            Err(ConfigError::InsufficientMemory { .. })
        ));
        assert_eq!(
            Bf::try_new(100, 0, 0).err(),
            Some(ConfigError::BadHashCount { k: 0 })
        );
        assert_eq!(
            Bf::try_new(100, 65, 0).err(),
            Some(ConfigError::BadHashCount { k: 65 })
        );
        assert!(Bf::try_new(100, 3, 0).is_ok());
    }

    #[test]
    fn batch_matches_scalar_loop() {
        let mut batch = Bf::new(50_000, 3, 11);
        let mut scalar = Bf::new(50_000, 3, 11);
        let keys: Vec<Vec<u8>> = (0..300u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

        let (_, batch_cost) = batch.insert_batch_cost(&views);
        let mut scalar_cost = OpCost::zero();
        for k in &views {
            scalar_cost = scalar_cost.add(scalar.insert_bytes_cost(k).unwrap());
        }
        assert_eq!(batch_cost, scalar_cost);
        assert_eq!(batch.bits.raw_limbs(), scalar.bits.raw_limbs());

        let probes: Vec<Vec<u8>> = (200..600u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let probe_views: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
        let (batch_hits, batch_qcost) = batch.contains_batch_cost(&probe_views);
        let mut scalar_qcost = OpCost::zero();
        for (i, k) in probe_views.iter().enumerate() {
            let (hit, cost) = scalar.contains_bytes_cost(k);
            assert_eq!(hit, batch_hits[i]);
            scalar_qcost = scalar_qcost.add(cost);
        }
        assert_eq!(batch_qcost, scalar_qcost);
    }
}
