//! Wire format for shipping filters between nodes.
//!
//! The paper's MapReduce deployment *broadcasts the filter* to every map
//! task through DistributedCache (§V) — which requires a byte encoding.
//! This module defines a small, versioned, checksummed format:
//!
//! ```text
//! magic  "MPCB"          4 bytes
//! kind   u8              1 = CBF, 2 = MPCBF(u64 words)
//! ver    u8              format version (currently 1)
//! header fields          kind-specific, little-endian
//! payload                raw limbs, little-endian u64s
//! crc32  u32             IEEE CRC-32 of everything above
//! ```
//!
//! No serde: the format is explicit, stable, and independent of Rust
//! struct layout. Decoding validates the checksum, the magic, and every
//! structural invariant before constructing a filter.

use crate::cbf::Cbf;
use crate::config::MpcbfConfig;
use crate::mpcbf::Mpcbf;
use crate::traits::Filter;
use mpcbf_hash::Hasher128;

/// Errors from decoding a filter image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// The magic bytes don't match.
    BadMagic,
    /// Unknown filter kind byte.
    UnknownKind(u8),
    /// Unsupported format version.
    UnsupportedVersion(u8),
    /// The CRC-32 does not match the contents.
    ChecksumMismatch {
        /// CRC stored in the image.
        stored: u32,
        /// CRC computed over the image.
        computed: u32,
    },
    /// A header field is structurally invalid.
    BadHeader(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "filter image truncated"),
            CodecError::BadMagic => write!(f, "bad magic (not a filter image)"),
            CodecError::UnknownKind(k) => write!(f, "unknown filter kind {k}"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#10x}, computed {computed:#10x}"
                )
            }
            CodecError::BadHeader(what) => write!(f, "invalid header field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

const MAGIC: &[u8; 4] = b"MPCB";
const VERSION: u8 = 1;
/// Image kind byte for [`Cbf`].
pub const KIND_CBF: u8 = 1;
/// Image kind byte for [`Mpcbf`] over 64-bit words.
pub const KIND_MPCBF64: u8 = 2;
/// Image kind byte for [`ResilientMpcbf`] (main + gate + spill map).
pub const KIND_RESILIENT: u8 = 3;
/// Image kind byte for `ShardedMpcbf` over 64-bit words (encoded by the
/// `mpcbf-concurrent` crate through this module's [`Writer`]/[`Reader`]).
pub const KIND_SHARDED64: u8 = 4;
/// Image kind byte for [`ElasticMpcbf`](crate::elastic::ElasticMpcbf)
/// (generation stack + rosters + capacity-policy state).
pub const KIND_ELASTIC: u8 = 5;
/// Image kind byte for `ElasticShardedMpcbf` (encoded by the
/// `mpcbf-concurrent` crate through this module's [`Writer`]/[`Reader`]).
pub const KIND_ELASTIC_SHARDED: u8 = 6;

/// Hard ceiling on any single length field decoded from an image, in
/// entries. Nothing this codec serializes legitimately exceeds it, and
/// rejecting larger values up front means a crafted (but CRC-valid)
/// header can never drive `Vec::with_capacity` into an abort or OOM.
const MAX_DECODE_ENTRIES: u64 = 1 << 40;

/// IEEE CRC-32 (reflected, poly 0xEDB88320), table-free bitwise variant —
/// encoding happens once per broadcast, so simplicity beats speed here.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Builds a framed image: magic + kind + version, caller-appended
/// fields, and a trailing CRC-32 sealed by [`Writer::finish`].
///
/// Public so sibling crates (e.g. `mpcbf-concurrent`'s sharded codec and
/// the durability crate's snapshots) can emit images in the same framed
/// format without re-implementing the envelope.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts an image of the given kind byte (see the `KIND_*` consts).
    pub fn new(kind: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.push(kind);
        buf.push(VERSION);
        Writer { buf }
    }

    /// Appends a little-endian u32 field.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64 field.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim (callers encode the length separately).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a limb array as little-endian u64s.
    pub fn limbs(&mut self, limbs: &[u64]) {
        self.buf.reserve(limbs.len() * 8);
        for &l in limbs {
            self.buf.extend_from_slice(&l.to_le_bytes());
        }
    }

    /// Seals the image with its CRC-32 and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.u32(crc);
        self.buf
    }
}

/// Cursor over a framed image previously produced by [`Writer`].
///
/// [`Reader::open`] validates the envelope (magic, kind, version, CRC)
/// before any field is read, and every accessor bounds-checks against
/// the body — malformed input yields [`CodecError`], never a panic and
/// never an unbounded allocation.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Validates magic/kind/version/CRC and positions after the header.
    pub fn open(buf: &'a [u8], kind: u8) -> Result<Self, CodecError> {
        if buf.len() < MAGIC.len() + 2 + 4 {
            return Err(CodecError::Truncated);
        }
        if &buf[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        if buf[4] != kind {
            return Err(CodecError::UnknownKind(buf[4]));
        }
        if buf[5] != VERSION {
            return Err(CodecError::UnsupportedVersion(buf[5]));
        }
        let body = &buf[..buf.len() - 4];
        let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }
        Ok(Reader { buf: body, pos: 6 })
    }

    /// Reads a little-endian u32 field.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let end = self.pos + 4;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let v = u32::from_le_bytes(self.buf[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }

    /// Reads a little-endian u64 field.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let end = self.pos + 8;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    /// Reads `count` raw bytes, bounds-checked against the body.
    pub fn bytes(&mut self, count: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(count)
            .ok_or(CodecError::BadHeader("byte run overflows"))?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let b = &self.buf[self.pos..end];
        self.pos = end;
        Ok(b)
    }

    /// Body bytes not yet consumed (excludes the CRC trailer).
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Reads `count` little-endian u64 limbs.
    ///
    /// The count is validated against the remaining body *before* any
    /// allocation: a CRC-valid image with a crafted huge length field
    /// must produce [`CodecError::Truncated`], not an OOM abort from
    /// `Vec::with_capacity`.
    pub fn limbs(&mut self, count: usize) -> Result<Vec<u64>, CodecError> {
        let need = count
            .checked_mul(8)
            .ok_or(CodecError::BadHeader("limb count overflows"))?;
        if need > self.remaining() {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Fails unless every body byte has been consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::BadHeader("trailing bytes"))
        }
    }
}

impl<H: Hasher128> Cbf<H> {
    /// Encodes the filter into the portable wire format.
    pub fn encode(&self) -> Vec<u8> {
        let (limbs, len, width, saturations) = self.raw_parts();
        let mut w = Writer::new(KIND_CBF);
        w.u64(len as u64);
        w.u32(width);
        w.u32(self.num_hashes());
        w.u64(self.seed());
        w.u32(self.word_bits());
        w.u64(self.items());
        w.u64(saturations);
        w.limbs(limbs);
        w.finish()
    }

    /// Decodes a filter previously produced by [`Cbf::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::open(buf, KIND_CBF)?;
        let len = r.u64()? as usize;
        let width = r.u32()?;
        let k = r.u32()?;
        let seed = r.u64()?;
        let word_bits = r.u32()?;
        let items = r.u64()?;
        let saturations = r.u64()?;
        if len == 0 || len as u64 > MAX_DECODE_ENTRIES || !(1..=32).contains(&width) {
            return Err(CodecError::BadHeader("counter geometry"));
        }
        if !(1..=64).contains(&k) {
            return Err(CodecError::BadHeader("hash count"));
        }
        if !word_bits.is_power_of_two() || !(8..=512).contains(&word_bits) {
            return Err(CodecError::BadHeader("word bits"));
        }
        let limb_count = len
            .checked_mul(width as usize)
            .ok_or(CodecError::BadHeader("counter geometry"))?
            .div_ceil(64);
        let limbs = r.limbs(limb_count)?;
        r.expect_end()?;
        Ok(Self::from_raw_parts(
            limbs,
            len,
            width,
            saturations,
            k,
            seed,
            word_bits,
            items,
        ))
    }
}

impl<H: Hasher128> Mpcbf<u64, H> {
    /// Encodes the filter into the portable wire format
    /// (64-bit-word filters only — the paper's deployment configuration).
    pub fn encode(&self) -> Vec<u8> {
        let shape = self.shape();
        let mut w = Writer::new(KIND_MPCBF64);
        w.u64(shape.l);
        w.u32(shape.k);
        w.u32(shape.g);
        w.u32(shape.n_max);
        w.u64(self.seed());
        w.u64(self.items());
        w.u64(self.overflows());
        w.limbs(&self.raw_words());
        w.finish()
    }

    /// Decodes a filter previously produced by [`Mpcbf::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::open(buf, KIND_MPCBF64)?;
        let l = r.u64()?;
        let k = r.u32()?;
        let g = r.u32()?;
        let n_max = r.u32()?;
        let seed = r.u64()?;
        let items = r.u64()?;
        let overflows = r.u64()?;
        if !(2..=MAX_DECODE_ENTRIES).contains(&l) {
            return Err(CodecError::BadHeader("word count"));
        }
        let config = MpcbfConfig::builder()
            .memory_bits(l * 64)
            .expected_items(items.max(1))
            .hashes(k)
            .accesses(g)
            .n_max(n_max)
            .seed(seed)
            .build()
            .map_err(|_| CodecError::BadHeader("shape"))?;
        let limbs = r.limbs(l as usize)?;
        r.expect_end()?;
        // Reject corrupted words: every word must satisfy the HCBF
        // capacity invariant for this b1.
        let b1 = config.shape().b1;
        for (i, &raw) in limbs.iter().enumerate() {
            let word = crate::hcbf::HcbfWord::<u64>::from_raw(raw);
            if word.check_invariants(b1).is_err() {
                let _ = i;
                return Err(CodecError::BadHeader("word invariant"));
            }
        }
        Ok(Self::from_raw_parts(config, limbs, items, overflows))
    }
}

impl<H: Hasher128> crate::resilient::ResilientMpcbf<H> {
    /// Encodes the resilient filter — main filter image, spill-gate
    /// image, and the exact spill map — into one framed image.
    ///
    /// Spill entries are sorted by key so the encoding is deterministic:
    /// two filters in the same logical state produce byte-identical
    /// images (snapshots taken by the durability layer rely on this).
    pub fn encode(&self) -> Vec<u8> {
        let (main, gate, exact, spilled_inserts) = self.spill_parts();
        let main_image = main.encode();
        let gate_image = gate.encode();
        let mut w = Writer::new(KIND_RESILIENT);
        w.u64(main_image.len() as u64);
        w.bytes(&main_image);
        w.u64(gate_image.len() as u64);
        w.bytes(&gate_image);
        w.u64(spilled_inserts);
        w.u64(exact.len() as u64);
        let mut entries: Vec<(&Vec<u8>, &u32)> = exact.iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        for (key, &mult) in entries {
            w.u32(key.len() as u32);
            w.bytes(key);
            w.u32(mult);
        }
        w.finish()
    }

    /// Decodes a filter previously produced by [`ResilientMpcbf::encode`].
    ///
    /// Both nested images revalidate their own envelopes, and every
    /// spill entry is bounds-checked — a malformed image errors, it
    /// never panics or fabricates spill state.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::open(buf, KIND_RESILIENT)?;
        let main_len = r.u64()? as usize;
        let main = Mpcbf::<u64, H>::decode(r.bytes(main_len)?)?;
        let gate_len = r.u64()? as usize;
        let gate = Cbf::<H>::decode(r.bytes(gate_len)?)?;
        let spilled_inserts = r.u64()?;
        let entry_count = r.u64()?;
        // Each entry is at least 8 bytes on the wire, so the remaining
        // body bounds the plausible count before anything is allocated.
        if entry_count > (r.remaining() as u64) / 8 {
            return Err(CodecError::BadHeader("spill entry count"));
        }
        let mut exact = std::collections::HashMap::with_capacity(entry_count as usize);
        for _ in 0..entry_count {
            let klen = r.u32()? as usize;
            let key = r.bytes(klen)?.to_vec();
            let mult = r.u32()?;
            if mult == 0 {
                return Err(CodecError::BadHeader("zero spill multiplicity"));
            }
            if exact.insert(key, mult).is_some() {
                return Err(CodecError::BadHeader("duplicate spill key"));
            }
        }
        r.expect_end()?;
        Ok(Self::from_spill_parts(main, gate, exact, spilled_inserts))
    }
}

/// Encodes one sorted roster (key → multiplicity) into `w`.
fn encode_roster(w: &mut Writer, roster: &std::collections::HashMap<Vec<u8>, u32>) {
    w.u64(roster.len() as u64);
    let mut entries: Vec<(&Vec<u8>, &u32)> = roster.iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
    for (key, &mult) in entries {
        w.u32(key.len() as u32);
        w.bytes(key);
        w.u32(mult);
    }
}

/// Decodes a roster written by [`encode_roster`], rejecting zero
/// multiplicities, duplicate keys, and counts the body cannot hold.
fn decode_roster(
    r: &mut Reader<'_>,
) -> Result<std::collections::HashMap<Vec<u8>, u32>, CodecError> {
    let entry_count = r.u64()?;
    if entry_count > (r.remaining() as u64) / 8 {
        return Err(CodecError::BadHeader("roster entry count"));
    }
    let mut roster = std::collections::HashMap::with_capacity(entry_count as usize);
    for _ in 0..entry_count {
        let klen = r.u32()? as usize;
        let key = r.bytes(klen)?.to_vec();
        let mult = r.u32()?;
        if mult == 0 {
            return Err(CodecError::BadHeader("zero roster multiplicity"));
        }
        if roster.insert(key, mult).is_some() {
            return Err(CodecError::BadHeader("duplicate roster key"));
        }
    }
    Ok(roster)
}

impl<H: Hasher128> crate::elastic::ElasticMpcbf<H> {
    /// Encodes the whole generation stack — policy, trigger state, every
    /// generation's resilient image + roster, and the in-flight
    /// migration's source ids — into one framed image.
    ///
    /// The migration *worklist* is deliberately not serialized: migrated
    /// keys leave their source roster, so the remaining work is exactly
    /// the keys still in the source rosters and [`decode`] rebuilds it
    /// deterministically. Rosters are sorted, so the encoding is
    /// deterministic end to end (durability snapshots rely on this).
    ///
    /// [`decode`]: ElasticMpcbf::decode
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_ELASTIC);
        // Policy (f64 thresholds as raw bits).
        w.u64(self.policy.max_pressure.to_bits());
        w.u64(self.policy.release_pressure.to_bits());
        w.u64(self.policy.max_spilled);
        w.u64(self.policy.growth.to_bits());
        w.u64(self.policy.max_generations as u64);
        w.u64(self.policy.check_interval);
        w.u64(self.policy.compact_batch as u64);
        // Base shape parameters.
        w.u64(self.base.seed);
        w.u32(self.base.k);
        w.u32(self.base.g);
        w.u32(self.base.w);
        w.u32(self.base.n_max);
        // Trigger / lifecycle state.
        let mut flags = 0u32;
        if self.auto {
            flags |= 1;
        }
        if self.latched {
            flags |= 2;
        }
        if self.pending_scale.is_some() {
            flags |= 4;
        }
        if self.migration.is_some() {
            flags |= 8;
        }
        w.u32(flags);
        w.u64(self.next_id);
        w.u64(self.scale_events);
        w.u64(self.compactions);
        w.u64(self.migrated_keys);
        if let Some(spec) = &self.pending_scale {
            w.u64(spec.memory_bits);
            w.u64(spec.expected_items);
        }
        // The generation stack, oldest first.
        w.u64(self.generations.len() as u64);
        for gen in &self.generations {
            w.u64(gen.id);
            w.u64(gen.memory_bits);
            w.u64(gen.expected_items);
            let image = gen.filter.encode();
            w.u64(image.len() as u64);
            w.bytes(&image);
            encode_roster(&mut w, &gen.roster);
        }
        if let Some(migration) = &self.migration {
            w.u64(migration.source_ids.len() as u64);
            for &id in &migration.source_ids {
                w.u64(id);
            }
        }
        w.finish()
    }

    /// Decodes a filter previously produced by [`ElasticMpcbf::encode`].
    ///
    /// Every nested resilient image revalidates its own envelope, the
    /// policy is re-validated, generation ids must be strictly increasing
    /// below `next_id`, each roster's total multiplicity must equal its
    /// filter's item count, and migration source ids must name sealed
    /// generations — a malformed image errors, never panics, and never
    /// fabricates a stack that the filter's own invariants would reject.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        use crate::elastic::{BaseParams, Generation, ScaleSpec};
        use crate::policy::CapacityPolicy;

        let mut r = Reader::open(buf, KIND_ELASTIC)?;
        let policy = CapacityPolicy {
            max_pressure: f64::from_bits(r.u64()?),
            release_pressure: f64::from_bits(r.u64()?),
            max_spilled: r.u64()?,
            growth: f64::from_bits(r.u64()?),
            max_generations: usize::try_from(r.u64()?)
                .map_err(|_| CodecError::BadHeader("max_generations"))?,
            check_interval: r.u64()?,
            compact_batch: usize::try_from(r.u64()?)
                .map_err(|_| CodecError::BadHeader("compact_batch"))?,
        };
        policy
            .validate()
            .map_err(|_| CodecError::BadHeader("capacity policy"))?;
        let base = BaseParams {
            seed: r.u64()?,
            k: r.u32()?,
            g: r.u32()?,
            w: r.u32()?,
            n_max: r.u32()?,
        };
        let flags = r.u32()?;
        if flags & !0xF != 0 {
            return Err(CodecError::BadHeader("unknown flags"));
        }
        let auto = flags & 1 != 0;
        let latched = flags & 2 != 0;
        let next_id = r.u64()?;
        let scale_events = r.u64()?;
        let compactions = r.u64()?;
        let migrated_keys = r.u64()?;
        let pending_scale = if flags & 4 != 0 {
            Some(ScaleSpec {
                memory_bits: r.u64()?,
                expected_items: r.u64()?,
            })
        } else {
            None
        };
        let gen_count = r.u64()?;
        if gen_count == 0 || gen_count > (r.remaining() as u64) / 32 {
            return Err(CodecError::BadHeader("generation count"));
        }
        let mut generations: Vec<Generation<H>> = Vec::with_capacity(gen_count as usize);
        let mut last_id: Option<u64> = None;
        for _ in 0..gen_count {
            let id = r.u64()?;
            if id >= next_id || last_id.is_some_and(|prev| id <= prev) {
                return Err(CodecError::BadHeader("generation id order"));
            }
            last_id = Some(id);
            let memory_bits = r.u64()?;
            let expected_items = r.u64()?;
            let image_len = r.u64()? as usize;
            let filter = crate::resilient::ResilientMpcbf::<H>::decode(r.bytes(image_len)?)?;
            let roster = decode_roster(&mut r)?;
            let total: u64 = roster.values().map(|&c| u64::from(c)).sum();
            if total != filter.items() {
                return Err(CodecError::BadHeader("roster does not cover the filter"));
            }
            generations.push(Generation {
                id,
                filter,
                roster,
                memory_bits,
                expected_items,
            });
        }
        let migration_sources = if flags & 8 != 0 {
            let count = r.u64()?;
            if count > (r.remaining() as u64) / 8 {
                return Err(CodecError::BadHeader("migration source count"));
            }
            let active_id = generations.last().expect("gen_count >= 1").id;
            let mut sources = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let id = r.u64()?;
                if id == active_id || !generations.iter().any(|g| g.id == id) {
                    return Err(CodecError::BadHeader("migration source id"));
                }
                sources.push(id);
            }
            Some(sources)
        } else {
            None
        };
        r.expect_end()?;
        Ok(Self::from_parts(
            generations,
            policy,
            base,
            next_id,
            latched,
            auto,
            pending_scale,
            migration_sources,
            scale_events,
            compactions,
            migrated_keys,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::ElasticMpcbf;
    use crate::resilient::ResilientMpcbf;
    use crate::traits::{CountingFilter, Filter};
    use mpcbf_hash::Murmur3;

    fn loaded_cbf() -> Cbf<Murmur3> {
        let mut f = Cbf::new(5_000, 3, 77);
        for i in 0..1_000u64 {
            f.insert(&i).unwrap();
        }
        f
    }

    fn loaded_mpcbf() -> Mpcbf<u64, Murmur3> {
        let cfg = MpcbfConfig::builder()
            .memory_bits(200_000)
            .expected_items(2_000)
            .hashes(3)
            .seed(78)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        for i in 0..2_000u64 {
            let _ = f.insert(&i);
        }
        f
    }

    #[test]
    fn cbf_roundtrip_preserves_behaviour() {
        let original = loaded_cbf();
        let decoded = Cbf::<Murmur3>::decode(&original.encode()).unwrap();
        for probe in 0..20_000u64 {
            assert_eq!(
                original.contains(&probe),
                decoded.contains(&probe),
                "probe {probe}"
            );
        }
        assert_eq!(original.items(), decoded.items());
        // The decoded filter keeps working: delete + re-query.
        let mut decoded = decoded;
        decoded.remove(&5u64).unwrap();
    }

    #[test]
    fn mpcbf_roundtrip_preserves_behaviour() {
        let original = loaded_mpcbf();
        let decoded = Mpcbf::<u64, Murmur3>::decode(&original.encode()).unwrap();
        for probe in 0..20_000u64 {
            assert_eq!(
                original.contains(&probe),
                decoded.contains(&probe),
                "probe {probe}"
            );
        }
        assert_eq!(original.shape(), decoded.shape());
        assert_eq!(original.items(), decoded.items());
        let mut decoded = decoded;
        decoded.remove(&7u64).unwrap();
        assert!(!decoded.contains(&7u64) || original.contains(&7u64));
    }

    #[test]
    fn bitflips_are_detected() {
        let image = loaded_mpcbf().encode();
        for pos in [0usize, 5, 6, 20, image.len() / 2, image.len() - 1] {
            let mut corrupt = image.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                Mpcbf::<u64, Murmur3>::decode(&corrupt).is_err(),
                "bitflip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let image = loaded_cbf().encode();
        for cut in [0usize, 3, 9, image.len() - 5] {
            assert!(
                Cbf::<Murmur3>::decode(&image[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let cbf_image = loaded_cbf().encode();
        assert!(matches!(
            Mpcbf::<u64, Murmur3>::decode(&cbf_image),
            Err(CodecError::UnknownKind(_))
        ));
        let mp_image = loaded_mpcbf().encode();
        assert!(matches!(
            Cbf::<Murmur3>::decode(&mp_image),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn wire_format_is_pinned() {
        // Golden prefix: any change to magic/kind/version/header layout
        // breaks cross-version compatibility and must fail this test.
        let cfg = MpcbfConfig::builder()
            .memory_bits(1_024) // l = 16 words
            .expected_items(10)
            .hashes(3)
            .seed(0x0102_0304_0506_0708)
            .build()
            .unwrap();
        let f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let image = f.encode();
        // magic "MPCB", kind 2, version 1
        assert_eq!(&image[..6], b"MPCB\x02\x01");
        // l = 16 (LE u64), k = 3, g = 1 (LE u32s)
        assert_eq!(&image[6..14], &16u64.to_le_bytes());
        assert_eq!(&image[14..18], &3u32.to_le_bytes());
        assert_eq!(&image[18..22], &1u32.to_le_bytes());
        // n_max, then seed at its fixed offset
        assert_eq!(&image[26..34], &0x0102_0304_0506_0708u64.to_le_bytes());
        // Total size: 6 header + 8+4+4+4+8+8+8 fields + 16·8 payload + 4 CRC.
        assert_eq!(image.len(), 6 + 44 + 128 + 4);
    }

    #[test]
    fn empty_filter_roundtrips() {
        let cfg = MpcbfConfig::builder()
            .memory_bits(2_048)
            .expected_items(5)
            .hashes(2)
            .build()
            .unwrap();
        let f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let d = Mpcbf::<u64, Murmur3>::decode(&f.encode()).unwrap();
        assert_eq!(d.items(), 0);
        assert!(!d.contains(&1u64));
    }

    #[test]
    fn crc32_known_answer() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn resilient_roundtrip_is_deterministic_and_preserves_spill() {
        let cfg = MpcbfConfig::builder()
            .memory_bits(256)
            .expected_items(1000)
            .hashes(3)
            .n_max(1)
            .seed(5)
            .build()
            .unwrap();
        let mut f: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(cfg);
        for i in 0..200u64 {
            f.insert(&i).unwrap();
        }
        assert!(f.spill_occupancy() > 0, "tiny shape must spill");
        let image = f.encode();
        // Determinism: re-encoding the same logical state is byte-identical
        // (spill entries are sorted, HashMap order doesn't leak through).
        assert_eq!(image, f.encode());
        let d = ResilientMpcbf::<Murmur3>::decode(&image).unwrap();
        assert_eq!(d.items(), f.items());
        assert_eq!(d.spill_occupancy(), f.spill_occupancy());
        assert_eq!(d.spill_keys(), f.spill_keys());
        assert_eq!(d.spilled_inserts(), f.spilled_inserts());
        assert_eq!(d.main().raw_words(), f.main().raw_words());
        for i in 0..200u64 {
            assert!(d.contains(&i), "false negative for {i} after roundtrip");
        }
        assert_eq!(d.encode(), image);
        // The decoded filter keeps working.
        let mut d = d;
        d.remove(&3u64).unwrap();
    }

    #[test]
    fn resilient_bitflips_and_truncation_are_detected() {
        let cfg = MpcbfConfig::builder()
            .memory_bits(256)
            .expected_items(1000)
            .hashes(3)
            .n_max(1)
            .seed(9)
            .build()
            .unwrap();
        let mut f: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(cfg);
        for i in 0..150u64 {
            f.insert(&i).unwrap();
        }
        let image = f.encode();
        for pos in [0usize, 4, 5, 40, image.len() / 2, image.len() - 1] {
            let mut corrupt = image.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                ResilientMpcbf::<Murmur3>::decode(&corrupt).is_err(),
                "bitflip at {pos} went undetected"
            );
        }
        for cut in [0usize, 5, 10, image.len() / 3, image.len() - 3] {
            assert!(
                ResilientMpcbf::<Murmur3>::decode(&image[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn crafted_huge_lengths_error_instead_of_aborting() {
        // A CRC-valid image whose length field claims more limbs than
        // any buffer could hold must fail cleanly, not OOM.
        let mut w = Writer::new(KIND_MPCBF64);
        w.u64(u64::MAX / 8); // l
        w.u32(3); // k
        w.u32(1); // g
        w.u32(0); // n_max
        w.u64(1); // seed
        w.u64(0); // items
        w.u64(0); // overflows
        let image = w.finish();
        assert!(Mpcbf::<u64, Murmur3>::decode(&image).is_err());

        let mut w = Writer::new(KIND_CBF);
        w.u64(u64::MAX / 2); // len: len*width overflows usize
        w.u32(32); // width
        w.u32(3); // k
        w.u64(1); // seed
        w.u32(64); // word_bits
        w.u64(0); // items
        w.u64(0); // saturations
        let image = w.finish();
        assert!(Cbf::<Murmur3>::decode(&image).is_err());
    }

    fn loaded_elastic() -> ElasticMpcbf<Murmur3> {
        let cfg = MpcbfConfig::builder()
            .memory_bits(32_768)
            .expected_items(500)
            .hashes(3)
            .seed(31)
            .build()
            .unwrap();
        let mut f: ElasticMpcbf<Murmur3> =
            ElasticMpcbf::manual(cfg, crate::policy::CapacityPolicy::default()).unwrap();
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        let spec = f.scale_plan().expect("overload must park a plan");
        f.apply_scale(&spec).unwrap();
        for i in 5_000..6_000u64 {
            f.insert(&i).unwrap();
        }
        f
    }

    #[test]
    fn elastic_roundtrip_is_deterministic_and_preserves_the_stack() {
        let f = loaded_elastic();
        assert!(f.generation_count() >= 2);
        let image = f.encode();
        assert_eq!(image, f.encode(), "encoding must be deterministic");
        let d = ElasticMpcbf::<Murmur3>::decode(&image).unwrap();
        assert_eq!(d.generation_count(), f.generation_count());
        assert_eq!(d.items(), f.items());
        assert_eq!(d.scale_events(), f.scale_events());
        assert_eq!(d.generation_infos(), f.generation_infos());
        for i in 0..6_000u64 {
            assert!(d.contains(&i), "false negative for {i} after roundtrip");
        }
        assert_eq!(d.encode(), image);
        // The decoded filter keeps working: removals route by roster.
        let mut d = d;
        for i in 0..6_000u64 {
            d.remove(&i).unwrap();
        }
        assert_eq!(d.items(), 0);
    }

    #[test]
    fn elastic_mid_migration_roundtrip_resumes_compaction() {
        let mut f = loaded_elastic();
        assert!(f.begin_compaction());
        f.step_compaction(100);
        assert!(f.compacting(), "partial step must leave work");
        let image = f.encode();
        let mut d = ElasticMpcbf::<Murmur3>::decode(&image).unwrap();
        assert!(d.compacting(), "migration must survive the roundtrip");
        assert_eq!(d.items(), f.items());
        // Both copies drain to the same final state.
        while d.step_compaction(512) > 0 {}
        while f.step_compaction(512) > 0 {}
        assert_eq!(d.generation_count(), f.generation_count());
        assert_eq!(d.items(), f.items());
        for i in 0..6_000u64 {
            assert!(d.contains(&i));
        }
        assert_eq!(d.encode(), f.encode(), "resumed stacks must converge");
    }

    #[test]
    fn elastic_bitflips_and_truncation_are_detected() {
        let image = loaded_elastic().encode();
        for pos in [0usize, 4, 5, 30, 80, image.len() / 2, image.len() - 1] {
            let mut corrupt = image.clone();
            corrupt[pos] ^= 0x20;
            assert!(
                ElasticMpcbf::<Murmur3>::decode(&corrupt).is_err(),
                "bitflip at {pos} went undetected"
            );
        }
        for cut in [0usize, 5, 20, image.len() / 3, image.len() - 3] {
            assert!(
                ElasticMpcbf::<Murmur3>::decode(&image[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn errors_display() {
        let e = CodecError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(CodecError::BadMagic.to_string().contains("magic"));
    }
}
