//! Sliding-window MPCBF: a ring of timed generations.
//!
//! Flow-trace workloads care about *recent* membership — "has this flow
//! been seen in the last N intervals?" — and stale flows must age out or
//! the filter's occupancy (and FPR) only ever grows.
//! [`SlidingWindowMpcbf`] holds a **ring of generation slots**, each a
//! lossless [`ResilientMpcbf`]:
//!
//! * inserts land in the **active** slot,
//! * queries OR across **all** slots (so the window FPR is bounded by
//!   the sum of per-slot envelopes, like the elastic stack),
//! * [`SlidingWindowMpcbf::rotate`] advances the window one interval:
//!   the *oldest* slot is dropped wholesale and rebuilt empty (with a
//!   fresh epoch-derived seed) to become the new active slot.
//!
//! Dropping a whole generation is what makes ageing **exact**: a key
//! inserted during the last `slots` intervals lives in a slot that has
//! not been rebuilt yet, so in-window keys can never produce a false
//! negative; out-of-window keys vanish with their slot, counters and
//! all, with none of the decay-error of per-counter ageing schemes. The
//! caller drives rotation (a packet pipeline rotates on interval
//! boundaries; tests rotate explicitly), keeping the structure free of
//! clocks and therefore deterministic.

use crate::config::MpcbfConfig;
use crate::metrics::OpCost;
use crate::resilient::ResilientMpcbf;
use crate::traits::Filter;
use crate::FilterError;
use mpcbf_hash::{Hasher128, Murmur3};

/// Salt folded into per-epoch slot seeds so every slot generation hashes
/// independently of its predecessors.
const WINDOW_SALT: u64 = 0x5749_4e44_4f57_2121; // "WINDOW!!"

/// splitmix64 finalizer (same mixing as the elastic generations).
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A sliding-window filter over a ring of MPCBF generations.
///
/// ```
/// use mpcbf_core::{Filter, MpcbfConfig, SlidingWindowMpcbf};
///
/// let config = MpcbfConfig::builder()
///     .memory_bits(100_000)
///     .expected_items(1_000)
///     .hashes(3)
///     .seed(21)
///     .build()
///     .unwrap();
/// let mut window: SlidingWindowMpcbf = SlidingWindowMpcbf::new(config, 4);
/// window.insert(&"flow-a").unwrap();
/// window.rotate(); // one interval passes
/// assert!(window.contains(&"flow-a")); // still in-window
/// for _ in 0..4 {
///     window.rotate();
/// }
/// assert!(!window.contains(&"flow-a")); // aged out with its slot
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindowMpcbf<H: Hasher128 = Murmur3> {
    /// The ring; `slots[active]` takes inserts.
    slots: Vec<ResilientMpcbf<H>>,
    /// Index of the slot currently taking inserts.
    active: usize,
    /// Lifetime rotation count; also the epoch feeding fresh slot seeds.
    rotations: u64,
    /// Per-slot configuration template (seed re-derived per epoch).
    config: MpcbfConfig,
}

impl<H: Hasher128> SlidingWindowMpcbf<H> {
    /// Creates a window of `slots` generations, each shaped by `config`
    /// (so the whole window holds roughly `slots x expected_items` flows
    /// in `slots x memory_bits` of memory).
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    pub fn new(config: MpcbfConfig, slots: usize) -> Self {
        assert!(slots > 0, "a window needs at least one slot");
        let ring = (0..slots as u64)
            .map(|i| ResilientMpcbf::new(Self::slot_config(&config, i)))
            .collect();
        SlidingWindowMpcbf {
            slots: ring,
            active: 0,
            rotations: 0,
            config,
        }
    }

    /// The slot configuration for epoch `epoch`: the template with an
    /// epoch-mixed seed, so rebuilt slots never correlate with the key
    /// placements of the generation they replaced.
    fn slot_config(template: &MpcbfConfig, epoch: u64) -> MpcbfConfig {
        let shape = template.shape();
        MpcbfConfig::builder()
            .memory_bits(shape.l * u64::from(shape.w))
            .expected_items(template.expected_items())
            .hashes(shape.k)
            .accesses(shape.g)
            .word_bits(shape.w)
            .n_max(shape.n_max)
            .seed(template.seed() ^ mix64(WINDOW_SALT.wrapping_add(epoch)))
            .build()
            .expect("template config already validated")
    }

    /// Number of slots in the ring (the window length, in intervals).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Lifetime rotation count.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Net elements currently stored across the window.
    pub fn items(&self) -> u64 {
        self.slots.iter().map(|s| s.items()).sum()
    }

    /// Analytic false-positive envelope of the window: the sum of every
    /// slot's envelope (union bound over the OR'd queries).
    pub fn fpr_envelope(&self) -> f64 {
        self.slots.iter().map(|s| s.fpr_envelope()).sum()
    }

    /// Structural self-check across every slot.
    pub fn verify(&self) -> Result<(), FilterError> {
        for slot in &self.slots {
            slot.verify()?;
        }
        Ok(())
    }

    /// Advances the window one interval: the oldest slot is dropped
    /// wholesale (its keys age out *exactly*) and rebuilt empty with a
    /// fresh epoch seed, becoming the new active slot.
    pub fn rotate(&mut self) {
        self.rotations += 1;
        let next = (self.active + 1) % self.slots.len();
        let epoch = self.rotations.wrapping_add(self.slots.len() as u64);
        self.slots[next] = ResilientMpcbf::new(Self::slot_config(&self.config, epoch));
        self.active = next;
    }
}

impl<H: Hasher128> Filter for SlidingWindowMpcbf<H> {
    /// ORs the query across all slots, active (most recent) first.
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut total = OpCost::zero();
        let n = self.slots.len();
        for back in 0..n {
            let slot = &self.slots[(self.active + n - back) % n];
            let (hit, cost) = slot.contains_bytes_cost(key);
            total = total.add(cost);
            if hit {
                return (true, total);
            }
        }
        (false, total)
    }

    /// Lossless insert into the active slot.
    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        self.slots[self.active].insert_bytes_cost(key)
    }

    fn memory_bits(&self) -> u64 {
        self.slots.iter().map(|s| s.memory_bits()).sum()
    }

    fn num_hashes(&self) -> u32 {
        self.config.shape().k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_config(seed: u64) -> MpcbfConfig {
        MpcbfConfig::builder()
            .memory_bits(100_000)
            .expected_items(1_000)
            .hashes(3)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn in_window_keys_never_false_negative_across_a_full_rotation() {
        let slots = 4usize;
        let mut w: SlidingWindowMpcbf = SlidingWindowMpcbf::new(window_config(1), slots);
        // Insert a distinct batch per interval across one full rotation
        // of the ring, plus change.
        let mut live: Vec<Vec<u64>> = Vec::new();
        for interval in 0..(2 * slots as u64) {
            let batch: Vec<u64> = (0..500u64).map(|i| interval * 10_000 + i).collect();
            for key in &batch {
                w.insert(key).unwrap();
            }
            live.push(batch);
            // Every batch inserted within the last `slots` intervals must
            // still be present — zero false negatives on in-window keys.
            let start = live.len().saturating_sub(slots);
            for batch in &live[start..] {
                for key in batch {
                    assert!(w.contains(key), "in-window key {key} lost");
                }
            }
            w.rotate();
        }
        assert_eq!(w.rotations(), 2 * slots as u64);
        assert_eq!(w.verify(), Ok(()));
    }

    #[test]
    fn out_of_window_keys_age_out() {
        let mut w: SlidingWindowMpcbf = SlidingWindowMpcbf::new(window_config(2), 3);
        for key in 0..200u64 {
            w.insert(&key).unwrap();
        }
        for _ in 0..3 {
            w.rotate();
        }
        let survivors = (0..200u64).filter(|k| w.contains(k)).count();
        // Aged-out keys can only reappear as fresh false positives of the
        // rebuilt slots, which are empty — so none survive.
        assert_eq!(survivors, 0, "aged-out keys must vanish with their slot");
        assert_eq!(w.items(), 0);
    }

    #[test]
    fn rotation_resets_occupancy_and_envelope() {
        let mut w: SlidingWindowMpcbf = SlidingWindowMpcbf::new(window_config(3), 2);
        for key in 0..1_000u64 {
            w.insert(&key).unwrap();
        }
        let full = w.fpr_envelope();
        assert!(full > 0.0);
        w.rotate();
        w.rotate();
        assert_eq!(w.items(), 0);
        assert!(w.fpr_envelope() < full);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_rejected() {
        let _w: SlidingWindowMpcbf = SlidingWindowMpcbf::new(window_config(4), 0);
    }
}
