//! BF-1 / BF-g: the one-memory-access Bloom filter (Qiao, Li & Chen,
//! INFOCOM 2011 — the paper's reference \[11\] and its direct inspiration).
//!
//! The bit vector is partitioned into `l` words of `w` bits; an element is
//! hashed to `g` words and to `k/g` bits inside each, so a query costs `g`
//! memory accesses instead of `k`. The penalty is a higher false-positive
//! rate — exactly the penalty MPCBF's hierarchical counters remove in the
//! counting setting.

use crate::metrics::{OpCost, WordTouches};
use crate::plan::{distinct_words, PlanBuffer, SMALL_BATCH};
use crate::traits::Filter;
use crate::{split_hashes, ConfigError, FilterError, GROUP_SALT, WORD_SALT};
use mpcbf_bitvec::BitVec;
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use std::marker::PhantomData;

/// A word-partitioned Bloom filter with `g` memory accesses per operation.
///
/// ```
/// use mpcbf_core::{BfG, Filter};
/// use mpcbf_hash::Murmur3;
///
/// let mut bf1 = BfG::<Murmur3>::bf1(1024, 64, 3, 7);
/// bf1.insert(&"pkt").unwrap();
/// let (hit, cost) = bf1.contains_bytes_cost(b"pkt");
/// assert!(hit && cost.word_accesses == 1);
/// ```
#[derive(Debug, Clone)]
pub struct BfG<H: Hasher128 = Murmur3> {
    bits: BitVec,
    l: usize,
    w: u32,
    k: u32,
    g: u32,
    seed: u64,
    items: u64,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> BfG<H> {
    /// Creates a BF-g over `l` words of `w` bits with `k` hashes spread
    /// over `g` words.
    ///
    /// # Panics
    /// Panics unless `l ≥ 2`, `w ∈ 8..=512`, `1 ≤ g ≤ k ≤ 64`, `g ≤ 8`;
    /// use [`BfG::try_new`] to handle untrusted shapes as errors.
    pub fn new(l: usize, w: u32, k: u32, g: u32, seed: u64) -> Self {
        match Self::try_new(l, w, k, g, seed) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`BfG::new`]: validates the shape and
    /// returns a [`ConfigError`] instead of panicking.
    pub fn try_new(l: usize, w: u32, k: u32, g: u32, seed: u64) -> Result<Self, ConfigError> {
        if l < 2 {
            return Err(ConfigError::InsufficientMemory {
                detail: "need at least two words".into(),
            });
        }
        if !(8..=512).contains(&w) {
            return Err(ConfigError::BadGeometry {
                detail: format!("word size {w} out of 8..=512"),
            });
        }
        if !(1..=64).contains(&k) {
            return Err(ConfigError::BadHashCount { k });
        }
        if g < 1 || g > k || g > 8 {
            return Err(ConfigError::BadAccessCount { g });
        }
        Ok(BfG {
            bits: BitVec::new(l * w as usize),
            l,
            w,
            k,
            g,
            seed,
            items: 0,
            _hasher: PhantomData,
        })
    }

    /// Convenience: BF-1 (single memory access).
    pub fn bf1(l: usize, w: u32, k: u32, seed: u64) -> Self {
        Self::new(l, w, k, 1, seed)
    }

    /// Number of words.
    pub fn words(&self) -> usize {
        self.l
    }

    /// Word size in bits.
    pub fn word_bits(&self) -> u32 {
        self.w
    }

    /// Memory accesses per operation.
    pub fn accesses(&self) -> u32 {
        self.g
    }

    /// Net insertions performed.
    pub fn items(&self) -> u64 {
        self.items
    }

    #[inline]
    fn for_each_position(
        &self,
        key: &[u8],
        mut visit: impl FnMut(usize, usize, u32) -> bool,
    ) -> (u32, u32) {
        // Returns (words evaluated, in-word positions evaluated); `visit`
        // gets (word index, global bit index, group) and returns `false`
        // to stop early (query short-circuit).
        let digest = H::hash128(self.seed, key);
        let mut word_picker = DoubleHasher::with_salt(digest, WORD_SALT, self.l as u64);
        let mut words_eval = 0u32;
        let mut pos_eval = 0u32;
        'outer: for t in 0..self.g {
            let word = word_picker.next_index();
            words_eval += 1;
            let k_t = split_hashes(self.k, self.g, t);
            let mut inner =
                DoubleHasher::with_salt(digest, GROUP_SALT ^ u64::from(t), u64::from(self.w));
            for _ in 0..k_t {
                let off = inner.next_index();
                pos_eval += 1;
                if !visit(word, word * self.w as usize + off, t) {
                    break 'outer;
                }
            }
        }
        (words_eval, pos_eval)
    }

    /// Stage 1 of the batch pipeline: hash every key into the caller's
    /// [`PlanBuffer`] (same word-selector and per-group streams as
    /// [`BfG::for_each_position`]), with zero allocation once the buffer
    /// is warm.
    fn plan_into(&self, keys: &[&[u8]], plans: &mut PlanBuffer) {
        plans.plan_partitioned(
            keys.iter().map(|key| H::hash128(self.seed, key)),
            self.l as u64,
            self.k,
            self.g,
            u64::from(self.w),
        );
    }
}

impl<H: Hasher128> Filter for BfG<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut touches = WordTouches::new();
        let mut member = true;
        let (words_eval, pos_eval) = self.for_each_position(key, |word, bit, _| {
            touches.touch(word);
            if self.bits.get(bit) {
                true
            } else {
                member = false;
                false
            }
        });
        (
            member,
            OpCost {
                word_accesses: touches.count(),
                hash_bits: words_eval * bits_for(self.l as u64)
                    + pos_eval * bits_for(u64::from(self.w)),
            },
        )
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let mut touches = WordTouches::new();
        let mut sets = [0usize; 64];
        let mut n_sets = 0usize;
        let (words_eval, pos_eval) = self.for_each_position(key, |word, bit, _| {
            touches.touch(word);
            sets[n_sets] = bit;
            n_sets += 1;
            true
        });
        for &bit in &sets[..n_sets] {
            self.bits.set(bit);
        }
        self.items += 1;
        Ok(OpCost {
            word_accesses: touches.count(),
            hash_bits: words_eval * bits_for(self.l as u64)
                + pos_eval * bits_for(u64::from(self.w)),
        })
    }

    fn memory_bits(&self) -> u64 {
        (self.l * self.w as usize) as u64
    }

    fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Batch query via the fused pipeline with a fresh plan buffer; hold
    /// a [`PlanBuffer`] and call [`Filter::contains_batch_with`] to skip
    /// the per-call allocation.
    fn contains_batch_cost(&self, keys: &[&[u8]]) -> (Vec<bool>, OpCost) {
        self.contains_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused batch query: probe group by group in scalar order off the
    /// buffer's plans (short-circuiting on the first zero bit with the
    /// same words/positions accounting). Batches below [`SMALL_BATCH`]
    /// degrade to the scalar loop.
    fn contains_batch_with(&self, keys: &[&[u8]], plans: &mut PlanBuffer) -> (Vec<bool>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut hits = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                let (hit, cost) = self.contains_bytes_cost(key);
                hits.push(hit);
                total = total.add(cost);
            }
            return (hits, total);
        }
        self.plan_into(keys, plans);
        let mut hits = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let mut words_eval = 0u32;
            let mut pos_eval = 0u32;
            let mut member = true;
            'groups: for (word, probes) in plans.groups_of(i) {
                words_eval += 1;
                for &off in probes {
                    pos_eval += 1;
                    if !self.bits.get(word * self.w as usize + off as usize) {
                        member = false;
                        break 'groups;
                    }
                }
            }
            hits.push(member);
            total = total.add(OpCost {
                word_accesses: distinct_words(&plans.words_of(i)[..words_eval as usize]),
                hash_bits: words_eval * bits_for(self.l as u64)
                    + pos_eval * bits_for(u64::from(self.w)),
            });
        }
        (hits, total)
    }

    /// Batch insert via the fused pipeline with a fresh plan buffer; hold
    /// a [`PlanBuffer`] and call [`Filter::insert_batch_with`] to skip the
    /// per-call allocation.
    fn insert_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.insert_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused batch insert: bits are set strictly in key order off the
    /// buffer's plans. Batches below [`SMALL_BATCH`] degrade to the
    /// scalar loop.
    fn insert_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut results = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                match self.insert_bytes_cost(key) {
                    Ok(cost) => {
                        total = total.add(cost);
                        results.push(Ok(()));
                    }
                    Err(e) => results.push(Err(e)),
                }
            }
            return (results, total);
        }
        self.plan_into(keys, plans);
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            for (word, probes) in plans.groups_of(i) {
                for &off in probes {
                    self.bits.set(word * self.w as usize + off as usize);
                }
            }
            self.items += 1;
            total = total.add(OpCost {
                word_accesses: distinct_words(plans.words_of(i)),
                hash_bits: self.g * bits_for(self.l as u64) + self.k * bits_for(u64::from(self.w)),
            });
            results.push(Ok(()));
        }
        (results, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_bf1_and_bf2() {
        for g in [1u32, 2] {
            let mut f = BfG::<Murmur3>::new(4096, 64, 3.max(g), g, 11);
            for i in 0..2000u64 {
                f.insert(&i).unwrap();
            }
            for i in 0..2000u64 {
                assert!(f.contains(&i), "g={g}: false negative {i}");
            }
        }
    }

    #[test]
    fn bf1_query_touches_one_word() {
        let mut f = BfG::<Murmur3>::bf1(4096, 64, 3, 5);
        f.insert(&"hit").unwrap();
        let (_, cost) = f.contains_bytes_cost(b"hit");
        assert_eq!(cost.word_accesses, 1);
        let (_, cost_miss) = f.contains_bytes_cost(b"definitely-missing-key");
        assert_eq!(cost_miss.word_accesses, 1);
    }

    #[test]
    fn bf2_member_query_touches_at_most_two_words() {
        let mut f = BfG::<Murmur3>::new(4096, 64, 4, 2, 5);
        f.insert(&"hit").unwrap();
        let (hit, cost) = f.contains_bytes_cost(b"hit");
        assert!(hit);
        assert!(cost.word_accesses <= 2);
    }

    #[test]
    fn bf1_has_higher_fpr_than_standard_bloom() {
        // The paper's premise (§II.B): BF-1 pays accuracy for speed.
        use crate::bloom::BloomFilter;
        let m = 1 << 18;
        let n = 30_000u64;
        let mut std_bf = BloomFilter::<Murmur3>::new(m, 3, 7);
        let mut bf1 = BfG::<Murmur3>::bf1(m / 64, 64, 3, 7);
        for i in 0..n {
            std_bf.insert(&i).unwrap();
            bf1.insert(&i).unwrap();
        }
        let trials = 200_000u64;
        let fp_std = (n..n + trials).filter(|i| std_bf.contains(i)).count();
        let fp_bf1 = (n..n + trials).filter(|i| bf1.contains(i)).count();
        assert!(
            fp_bf1 > fp_std,
            "BF-1 {fp_bf1} should out-err standard BF {fp_std}"
        );
    }

    #[test]
    fn query_bandwidth_matches_paper_formula() {
        // BF-1 worst case: log2(l) + k·log2(w) bits.
        let mut f = BfG::<Murmur3>::bf1(4096, 64, 3, 5);
        f.insert(&"k").unwrap();
        let (hit, cost) = f.contains_bytes_cost(b"k");
        assert!(hit);
        assert_eq!(cost.hash_bits, 12 + 3 * 6);
    }

    #[test]
    fn memory_bits_is_l_times_w() {
        let f = BfG::<Murmur3>::bf1(100, 64, 3, 0);
        assert_eq!(f.memory_bits(), 6400);
    }

    #[test]
    #[should_panic(expected = "must satisfy")]
    fn g_greater_than_k_panics() {
        let _ = BfG::<Murmur3>::new(16, 64, 2, 3, 0);
    }

    #[test]
    fn try_new_reports_bad_shapes() {
        use crate::ConfigError;
        assert!(matches!(
            BfG::<Murmur3>::try_new(1, 64, 3, 1, 0),
            Err(ConfigError::InsufficientMemory { .. })
        ));
        assert!(matches!(
            BfG::<Murmur3>::try_new(16, 7, 3, 1, 0),
            Err(ConfigError::BadGeometry { .. })
        ));
        assert_eq!(
            BfG::<Murmur3>::try_new(16, 64, 0, 1, 0).err(),
            Some(ConfigError::BadHashCount { k: 0 })
        );
        assert_eq!(
            BfG::<Murmur3>::try_new(16, 64, 2, 3, 0).err(),
            Some(ConfigError::BadAccessCount { g: 3 })
        );
        assert!(BfG::<Murmur3>::try_new(16, 64, 3, 2, 0).is_ok());
    }

    #[test]
    fn batch_matches_scalar_loop() {
        for g in [1u32, 2] {
            let mut batch = BfG::<Murmur3>::new(4096, 64, 3, g, 13);
            let mut scalar = BfG::<Murmur3>::new(4096, 64, 3, g, 13);
            let keys: Vec<Vec<u8>> = (0..400u64).map(|i| i.to_le_bytes().to_vec()).collect();
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

            let (_, bi) = batch.insert_batch_cost(&views);
            let mut si = OpCost::zero();
            for k in &views {
                si = si.add(scalar.insert_bytes_cost(k).unwrap());
            }
            assert_eq!(bi, si, "g={g}");

            let probes: Vec<Vec<u8>> = (300..700u64).map(|i| i.to_le_bytes().to_vec()).collect();
            let probe_views: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let (batch_hits, bq) = batch.contains_batch_cost(&probe_views);
            let mut sq = OpCost::zero();
            for (i, k) in probe_views.iter().enumerate() {
                let (hit, cost) = scalar.contains_bytes_cost(k);
                assert_eq!(hit, batch_hits[i], "g={g} key {i}");
                sq = sq.add(cost);
            }
            assert_eq!(bq, sq, "g={g}");
        }
    }
}
