//! MPCBF-1 / MPCBF-g: the Multiple-Partitioned Counting Bloom Filter
//! (§III.B.2, §III.C) — the paper's contribution.
//!
//! The counter vector is an array of `l` machine words, each an
//! [`HcbfWord`]. An element is hashed to `g` words (one hash each) and to
//! `ceil(k/g)` first-level positions inside each word, so:
//!
//! * a **query** costs `g` memory accesses and reads only first-level
//!   bits (`log2 l + k·log2 b1` hash bits);
//! * an **update** costs the same `g` accesses plus the in-word popcount
//!   traversal (no extra memory access — the word is already fetched);
//! * the hierarchy stores each counter in exactly its value's worth of
//!   bits, freeing `b1 = w − ceil(k/g)·n_max` first-level positions per
//!   word — the source of the order-of-magnitude FPR win over CBF at
//!   equal memory.
//!
//! Failed operations (word overflow, deleting an absent element) roll back
//! any partial increments, so the filter always represents a consistent
//! multiset.

use crate::config::MpcbfConfig;
use crate::hcbf::{HcbfWord, WordError};
use crate::metrics::{HealthReport, OpCost, WordTouches};
use crate::plan::{distinct_words, PlanBuffer, SMALL_BATCH};
use crate::scrub::{segment_of, FilterSeal, ScrubReport};
use crate::traits::{CountingFilter, Filter};
use crate::{split_hashes, FilterError, GROUP_SALT, WORD_SALT};
use mpcbf_analysis::heuristic::MpcbfShape;
use mpcbf_bitvec::{AlignedVec, Kernel, Word};
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use std::marker::PhantomData;

/// In-flight word walks per interleaved query block.
///
/// Eight independent lanes give the memory subsystem enough outstanding
/// loads to cover DRAM latency on out-of-cache filters without spilling
/// the lane snapshots out of registers/L1 on cache-resident ones; this is
/// the software-pipelining replacement for the retired `prefetch` feature
/// (explicit prefetch hints lost on cache-resident filters, where the
/// hint costs an instruction but saves nothing).
const LANES: usize = 8;

/// Largest `g` for which the interleaved query snapshots every lane's
/// group words up front. Beyond this, a lane's snapshot no longer fits
/// the block's register/L1 budget, so keys fall back to the sequential
/// walk (still plan-driven and allocation-free). In practice `g ≤ 4`
/// covers every configuration in the paper (g ∈ {1, 2, 4}).
const MAX_SNAP_GROUPS: usize = 4;

/// The Multiple-Partitioned Counting Bloom Filter.
///
/// Generic over the machine word `W` (default `u64`, the paper's main
/// setting) and the hash family `H` (default Murmur3).
///
/// ```
/// use mpcbf_core::{CountingFilter, Filter, Mpcbf1, MpcbfConfig};
///
/// let config = MpcbfConfig::builder()
///     .memory_bits(100_000)
///     .expected_items(1_000)
///     .hashes(3)
///     .build()
///     .unwrap();
/// let mut filter = Mpcbf1::new(config);
/// filter.insert(&(0x0A00_0001u32, 0x0A00_0002u32)).unwrap(); // a flow
/// let (hit, cost) = filter.contains_bytes_cost(&1u64.to_le_bytes());
/// assert!(cost.word_accesses == 1); // one memory access, hit or miss
/// let _ = hit;
/// ```
#[derive(Debug, Clone)]
pub struct Mpcbf<W: Word = u64, H: Hasher128 = Murmur3> {
    words: AlignedVec<HcbfWord<W>>,
    shape: MpcbfShape,
    seed: u64,
    items: u64,
    overflows: u64,
    _hasher: PhantomData<H>,
}

impl<W: Word, H: Hasher128> Mpcbf<W, H> {
    /// Creates a filter from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration's word size differs from `W::BITS`.
    pub fn new(config: MpcbfConfig) -> Self {
        let shape = config.shape();
        assert_eq!(
            shape.w,
            W::BITS,
            "config word size {} != word type width {}",
            shape.w,
            W::BITS
        );
        Mpcbf {
            words: AlignedVec::filled(shape.l as usize, HcbfWord::new()),
            shape,
            seed: config.seed(),
            items: 0,
            overflows: 0,
            _hasher: PhantomData,
        }
    }

    /// The derived structural parameters.
    pub fn shape(&self) -> MpcbfShape {
        self.shape
    }

    /// Net elements currently stored.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Number of insertions refused because a word overflowed.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Reads the counter at (`word`, first-level position `p`) — for
    /// diagnostics and tests.
    pub fn counter(&self, word: usize, p: u32) -> u32 {
        self.words[word].counter(p, self.shape.b1)
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Occupancy histogram: for each word, the total increments stored.
    /// Useful for validating the Eq.-(11) heuristic empirically.
    pub fn word_loads(&self) -> Vec<u32> {
        self.words.iter().map(|w| w.total_count()).collect()
    }

    /// Resets the filter to empty, keeping its shape and seed.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = HcbfWord::new();
        }
        self.items = 0;
        self.overflows = 0;
    }

    /// Estimates the multiplicity of `key` as the minimum of its hashed
    /// counters (the count-min reading of a CBF; an overestimate, never
    /// an underestimate, for elements inserted without overflow).
    pub fn estimate_count(&self, key: &(impl mpcbf_hash::Key + ?Sized)) -> u32 {
        let bytes = key.key_bytes();
        let b1 = self.shape.b1;
        let mut min = u32::MAX;
        self.for_each_position(bytes.as_slice(), |word, p, _| {
            min = min.min(self.words[word].counter(p, b1));
            min > 0 // short-circuit once provably absent
        });
        if min == u32::MAX {
            0
        } else {
            min
        }
    }

    /// Merges `other` into `self` by adding counters position-wise — the
    /// distributed-build pattern: shard the key space, build partial
    /// filters in parallel, merge. Both filters must share an identical
    /// shape and seed (so keys hash identically).
    ///
    /// Fails with [`FilterError::WordOverflow`] — *without modifying
    /// `self`* — if any merged word would exceed its capacity.
    pub fn absorb(&mut self, other: &Self) -> Result<(), FilterError> {
        assert_eq!(
            self.shape, other.shape,
            "cannot merge differently-shaped filters"
        );
        assert_eq!(
            self.seed, other.seed,
            "cannot merge differently-seeded filters"
        );
        let b1 = self.shape.b1;
        // Pre-check: every word must have room for the other's increments.
        for (i, (mine, theirs)) in self.words.iter().zip(&other.words).enumerate() {
            if mine.used_bits(b1) + theirs.total_count() > W::BITS {
                return Err(FilterError::WordOverflow { word: i });
            }
        }
        for (mine, theirs) in self.words.iter_mut().zip(&other.words) {
            for p in 0..b1 {
                for _ in 0..theirs.counter(p, b1) {
                    mine.increment(p, b1).expect("capacity pre-checked");
                }
            }
        }
        self.items += other.items;
        Ok(())
    }

    /// Visits the hashed (word, position, group) triples of `key`;
    /// `visit` returning `false` short-circuits. Returns
    /// (words evaluated, positions evaluated).
    #[inline]
    fn for_each_position(
        &self,
        key: &[u8],
        mut visit: impl FnMut(usize, u32, u32) -> bool,
    ) -> (u32, u32) {
        let digest = H::hash128(self.seed, key);
        let mut word_picker = DoubleHasher::with_salt(digest, WORD_SALT, self.shape.l);
        let mut words_eval = 0u32;
        let mut pos_eval = 0u32;
        'outer: for t in 0..self.shape.g {
            let word = word_picker.next_index();
            words_eval += 1;
            let k_t = split_hashes(self.shape.k, self.shape.g, t);
            let mut inner = DoubleHasher::with_salt(
                digest,
                GROUP_SALT ^ u64::from(t),
                u64::from(self.shape.b1),
            );
            for _ in 0..k_t {
                let p = inner.next_index() as u32;
                pos_eval += 1;
                if !visit(word, p, t) {
                    break 'outer;
                }
            }
        }
        (words_eval, pos_eval)
    }

    #[inline]
    fn base_cost(&self, words_eval: u32, pos_eval: u32, touches: &WordTouches) -> OpCost {
        OpCost {
            word_accesses: touches.count(),
            hash_bits: words_eval * bits_for(self.shape.l)
                + pos_eval * bits_for(u64::from(self.shape.b1)),
        }
    }

    /// Structural self-check: re-walks every word's hierarchy levels
    /// against the §III.B.1 invariants (bits in use ≤ word width, zero
    /// tail beyond the used region, level sizes = previous level's
    /// popcount). No sequence of filter operations can violate them, so a
    /// failure means external damage — reported as the containing
    /// [`crate::scrub::SEGMENT_WORDS`]-word segment.
    pub fn verify(&self) -> Result<(), FilterError> {
        let b1 = self.shape.b1;
        for (i, w) in self.words.iter().enumerate() {
            if w.check_invariants(b1).is_err() {
                return Err(FilterError::CorruptionDetected {
                    segment: segment_of(i),
                });
            }
        }
        Ok(())
    }

    /// Saturation snapshot: how close each word is to the overflow cliff.
    /// The `spill_*` fields are zero for a bare `Mpcbf`; see
    /// [`crate::resilient::ResilientMpcbf::health`].
    pub fn health(&self) -> HealthReport {
        let capacity = self.shape.w - self.shape.b1;
        let mut total_load = 0u64;
        let mut max_load = 0u32;
        for w in &self.words {
            let load = w.total_count();
            total_load += u64::from(load);
            max_load = max_load.max(load);
        }
        let total_capacity = self.shape.l * u64::from(capacity);
        HealthReport {
            items: self.items,
            fill_ratio: if total_capacity == 0 {
                0.0
            } else {
                total_load as f64 / total_capacity as f64
            },
            max_word_load: max_load,
            word_capacity: capacity,
            overflows: self.overflows,
            spill_keys: 0,
            spill_occupancy: 0,
            spilled_inserts: 0,
        }
    }

    /// Stage 1 of the batch pipeline: hash every key into the caller's
    /// [`PlanBuffer`] — the same word-selector and per-group streams as
    /// [`Mpcbf::for_each_position`], with zero allocation once the buffer
    /// is warm.
    fn plan_into(&self, keys: &[&[u8]], plans: &mut PlanBuffer) {
        plans.plan_partitioned(
            keys.iter().map(|key| H::hash128(self.seed, key)),
            self.shape.l,
            self.shape.k,
            self.shape.g,
            u64::from(self.shape.b1),
        );
    }

    /// Probes one planned key sequentially (the g > [`MAX_SNAP_GROUPS`]
    /// query fallback), returning `(member, words_eval, pos_eval)` with
    /// exact scalar short-circuit accounting.
    #[inline]
    fn query_planned(&self, plans: &PlanBuffer, i: usize) -> (bool, u32, u32) {
        let mut words_eval = 0u32;
        let mut pos_eval = 0u32;
        for (word, probes) in plans.groups_of(i) {
            words_eval += 1;
            let (all_set, evaluated) = self.words[word].query_all(probes);
            pos_eval += evaluated;
            if !all_set {
                return (false, words_eval, pos_eval);
            }
        }
        (true, words_eval, pos_eval)
    }
}

impl<W: Word, H: Hasher128> Filter for Mpcbf<W, H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut touches = WordTouches::new();
        let mut member = true;
        let (we, pe) = self.for_each_position(key, |word, p, _| {
            touches.touch(word);
            if self.words[word].query(p) {
                true
            } else {
                member = false;
                false
            }
        });
        (member, self.base_cost(we, pe, &touches))
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let mut touches = WordTouches::new();
        let b1 = self.shape.b1;
        // Collect targets first (immutable pass), then apply with rollback.
        let mut targets = [(0usize, 0u32); 64];
        let mut n = 0usize;
        let (we, pe) = self.for_each_position(key, |word, p, _| {
            touches.touch(word);
            targets[n] = (word, p);
            n += 1;
            true
        });
        let mut traversal_bits = 0u32;
        for i in 0..n {
            let (word, p) = targets[i];
            match self.words[word].increment(p, b1) {
                Ok(report) => traversal_bits += report.traversal_bits,
                Err(e) => {
                    debug_assert_eq!(e, WordError::Overflow);
                    // Roll back the increments already applied.
                    for &(rw, rp) in targets[..i].iter().rev() {
                        self.words[rw]
                            .decrement(rp, b1)
                            .expect("rollback decrement must succeed");
                    }
                    self.overflows += 1;
                    return Err(e.at(word));
                }
            }
        }
        self.items += 1;
        let mut cost = self.base_cost(we, pe, &touches);
        cost.hash_bits += traversal_bits;
        Ok(cost)
    }

    fn memory_bits(&self) -> u64 {
        self.shape.l * u64::from(self.shape.w)
    }

    fn num_hashes(&self) -> u32 {
        self.shape.k
    }

    /// Batch query via the fused pipeline with a fresh plan buffer; hold
    /// a [`PlanBuffer`] and call [`Filter::contains_batch_with`] to skip
    /// the per-call allocation.
    fn contains_batch_cost(&self, keys: &[&[u8]]) -> (Vec<bool>, OpCost) {
        self.contains_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused batch query: hash every key into the caller's plan buffer,
    /// then walk [`LANES`] keys' word sets concurrently — each block first
    /// snapshots every lane's planned HCBF words (independent loads the
    /// CPU overlaps), then evaluates verdicts from the snapshots with the
    /// scalar evaluation order and short-circuit accounting. Batches below
    /// [`SMALL_BATCH`] degrade to the scalar loop, which is observationally
    /// identical and skips the plan stage.
    fn contains_batch_with(&self, keys: &[&[u8]], plans: &mut PlanBuffer) -> (Vec<bool>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut hits = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                let (hit, cost) = self.contains_bytes_cost(key);
                hits.push(hit);
                total = total.add(cost);
            }
            return (hits, total);
        }
        self.plan_into(keys, plans);
        let g = self.shape.g as usize;
        let mut hits = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        if g <= MAX_SNAP_GROUPS {
            let mut snap = [[HcbfWord::<W>::new(); MAX_SNAP_GROUPS]; LANES];
            let mut block = 0usize;
            while block < keys.len() {
                let lanes = LANES.min(keys.len() - block);
                // Phase 1: issue every lane's word loads back to back, so
                // up to LANES * g independent fetches are in flight before
                // any verdict logic runs.
                for (lane, snap_words) in snap.iter_mut().enumerate().take(lanes) {
                    let words = plans.words_of(block + lane);
                    for (slot, &word) in snap_words.iter_mut().zip(words) {
                        *slot = self.words[word as usize];
                    }
                }
                // Phase 2: evaluate each lane from its snapshot, replaying
                // the scalar order (groups in plan order, probes in stream
                // order, short-circuit on the first zero bit).
                for (lane, snap_words) in snap.iter().enumerate().take(lanes) {
                    let i = block + lane;
                    let mut words_eval = 0u32;
                    let mut pos_eval = 0u32;
                    let mut member = true;
                    for (t, word) in snap_words.iter().enumerate().take(g) {
                        words_eval += 1;
                        let (_, probes) = plans.group(i, t);
                        let (all_set, evaluated) = word.query_all(probes);
                        pos_eval += evaluated;
                        if !all_set {
                            member = false;
                            break;
                        }
                    }
                    hits.push(member);
                    total = total.add(OpCost {
                        word_accesses: distinct_words(&plans.words_of(i)[..words_eval as usize]),
                        hash_bits: words_eval * bits_for(self.shape.l)
                            + pos_eval * bits_for(u64::from(self.shape.b1)),
                    });
                }
                block += lanes;
            }
        } else {
            for i in 0..keys.len() {
                let (member, words_eval, pos_eval) = self.query_planned(plans, i);
                hits.push(member);
                total = total.add(OpCost {
                    word_accesses: distinct_words(&plans.words_of(i)[..words_eval as usize]),
                    hash_bits: words_eval * bits_for(self.shape.l)
                        + pos_eval * bits_for(u64::from(self.shape.b1)),
                });
            }
        }
        (hits, total)
    }

    /// Batch insert via the fused pipeline with a fresh plan buffer; hold
    /// a [`PlanBuffer`] and call [`Filter::insert_batch_with`] to skip the
    /// per-call allocation.
    fn insert_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.insert_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused batch insert: keys are applied strictly in order via
    /// [`HcbfWord::increment_all_routed`] per group, with the update
    /// kernel bundle resolved **once** for the whole batch
    /// ([`Kernel::batch`]) instead of a cached-atomic load per word probe.
    /// A word overflow rolls back that key's earlier groups through the
    /// plan buffer (no allocation; the HCBF encoding is canonical in the
    /// counter multiset, so the filter is left bit-identical to never
    /// having attempted the key) and is reported per key. Batches below
    /// [`SMALL_BATCH`] degrade to the scalar loop.
    fn insert_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut results = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                match self.insert_bytes_cost(key) {
                    Ok(cost) => {
                        total = total.add(cost);
                        results.push(Ok(()));
                    }
                    Err(e) => results.push(Err(e)),
                }
            }
            return (results, total);
        }
        self.plan_into(keys, plans);
        let ops = Kernel::batch().update;
        let b1 = self.shape.b1;
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let mut traversal_bits = 0u32;
            let mut failed: Option<(usize, WordError)> = None;
            let mut applied_groups = 0usize;
            for (word, probes) in plans.groups_of(i) {
                match self.words[word].increment_all_routed(probes, b1, &ops) {
                    Ok(bits) => {
                        traversal_bits += bits;
                        applied_groups += 1;
                    }
                    Err(e) => {
                        debug_assert_eq!(e, WordError::Overflow);
                        failed = Some((word, e));
                        break;
                    }
                }
            }
            if let Some((word, e)) = failed {
                for t in (0..applied_groups).rev() {
                    let (rw, probes) = plans.group(i, t);
                    self.words[rw]
                        .decrement_all_routed(probes, b1, &ops)
                        .expect("rollback decrement must succeed");
                }
                self.overflows += 1;
                results.push(Err(e.at(word)));
                continue;
            }
            self.items += 1;
            total = total.add(OpCost {
                word_accesses: distinct_words(plans.words_of(i)),
                hash_bits: self.shape.g * bits_for(self.shape.l)
                    + self.shape.k * bits_for(u64::from(self.shape.b1))
                    + traversal_bits,
            });
            results.push(Ok(()));
        }
        (results, total)
    }
}

impl<W: Word, H: Hasher128> CountingFilter for Mpcbf<W, H> {
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let mut touches = WordTouches::new();
        let b1 = self.shape.b1;
        let mut targets = [(0usize, 0u32); 64];
        let mut n = 0usize;
        let (we, pe) = self.for_each_position(key, |word, p, _| {
            touches.touch(word);
            targets[n] = (word, p);
            n += 1;
            true
        });
        let mut traversal_bits = 0u32;
        for i in 0..n {
            let (word, p) = targets[i];
            match self.words[word].decrement(p, b1) {
                Ok(report) => traversal_bits += report.traversal_bits,
                Err(e) => {
                    debug_assert_eq!(e, WordError::ZeroCounter);
                    // Roll back: the element was not (fully) present.
                    for &(rw, rp) in targets[..i].iter().rev() {
                        self.words[rw]
                            .increment(rp, b1)
                            .expect("rollback increment must succeed");
                    }
                    return Err(e.at(word));
                }
            }
        }
        self.items = self.items.saturating_sub(1);
        let mut cost = self.base_cost(we, pe, &touches);
        cost.hash_bits += traversal_bits;
        Ok(cost)
    }

    /// Batch remove via the fused pipeline with a fresh plan buffer; hold
    /// a [`PlanBuffer`] and call [`CountingFilter::remove_batch_with`] to
    /// skip the per-call allocation.
    fn remove_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.remove_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused batch remove: the mirror of the batch insert — keys are
    /// drained strictly in order via [`HcbfWord::decrement_all_routed`]
    /// per group under one batch-resolved update bundle, with a
    /// [`FilterError::NotPresent`] rolling back that key's earlier groups
    /// through the plan buffer and costing nothing, exactly like the
    /// scalar path.
    fn remove_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut results = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                match self.remove_bytes_cost(key) {
                    Ok(cost) => {
                        total = total.add(cost);
                        results.push(Ok(()));
                    }
                    Err(e) => results.push(Err(e)),
                }
            }
            return (results, total);
        }
        self.plan_into(keys, plans);
        let ops = Kernel::batch().update;
        let b1 = self.shape.b1;
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let mut traversal_bits = 0u32;
            let mut failed = false;
            let mut applied_groups = 0usize;
            for (word, probes) in plans.groups_of(i) {
                match self.words[word].decrement_all_routed(probes, b1, &ops) {
                    Ok(bits) => {
                        traversal_bits += bits;
                        applied_groups += 1;
                    }
                    Err(e) => {
                        debug_assert_eq!(e, WordError::ZeroCounter);
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                for t in (0..applied_groups).rev() {
                    let (rw, probes) = plans.group(i, t);
                    self.words[rw]
                        .increment_all_routed(probes, b1, &ops)
                        .expect("rollback increment must succeed");
                }
                results.push(Err(FilterError::NotPresent));
                continue;
            }
            self.items = self.items.saturating_sub(1);
            total = total.add(OpCost {
                word_accesses: distinct_words(plans.words_of(i)),
                hash_bits: self.shape.g * bits_for(self.shape.l)
                    + self.shape.k * bits_for(u64::from(self.shape.b1))
                    + traversal_bits,
            });
            results.push(Ok(()));
        }
        (results, total)
    }
}

impl<H: Hasher128> Mpcbf<u64, H> {
    /// The raw word array (for the wire codec; 64-bit words only).
    pub fn raw_words(&self) -> Vec<u64> {
        self.words.iter().map(|w| *w.raw()).collect()
    }

    /// Checksums the current word array for later [`Mpcbf::scrub`] passes.
    /// Re-seal after every batch of legitimate updates — any update flips
    /// its segment's CRC, exactly like a corruption would.
    pub fn seal(&self) -> FilterSeal {
        FilterSeal::compute(&self.raw_words())
    }

    /// Scrub pass: recomputes every segment CRC against `seal` *and*
    /// re-checks every word's structural invariants, reporting all damaged
    /// segments. A clean report proves the filter is bit-identical to its
    /// sealed state.
    ///
    /// # Panics
    /// Panics if `seal` was taken from a differently-sized filter.
    pub fn scrub(&self, seal: &FilterSeal) -> ScrubReport {
        let raw = self.raw_words();
        let mut corrupt = seal.diff(&raw);
        let b1 = self.shape.b1;
        for (i, w) in self.words.iter().enumerate() {
            if w.check_invariants(b1).is_err() {
                corrupt.push(segment_of(i));
            }
        }
        ScrubReport::new(seal.segments(), corrupt)
    }

    /// XORs `mask` into the raw bits of word `word`.
    ///
    /// This is a fault-injection hook for corruption drills: it simulates
    /// a memory bit flip that no filter operation could produce, so
    /// [`Mpcbf::verify`]/[`Mpcbf::scrub`] drills have a real defect to
    /// find. Never part of normal operation.
    pub fn corrupt_word_xor(&mut self, word: usize, mask: u64) {
        let damaged = self.words[word].raw() ^ mask;
        self.words[word] = HcbfWord::from_raw(damaged);
    }

    /// Assembles a filter around a bulk-built word array (the
    /// `bulk::BulkBuilder` finish path — the builder stages into its own
    /// array and installs it here).
    pub(crate) fn from_bulk_parts(
        config: crate::config::MpcbfConfig,
        words: AlignedVec<HcbfWord<u64>>,
        items: u64,
        overflows: u64,
    ) -> Self {
        let shape = config.shape();
        debug_assert_eq!(words.len(), shape.l as usize);
        Mpcbf {
            words,
            shape,
            seed: config.seed(),
            items,
            overflows,
            _hasher: PhantomData,
        }
    }

    /// Rebuilds a filter from decoded raw words (the codec's decode path).
    pub(crate) fn from_raw_parts(
        config: crate::config::MpcbfConfig,
        raw: Vec<u64>,
        items: u64,
        overflows: u64,
    ) -> Self {
        let shape = config.shape();
        debug_assert_eq!(raw.len(), shape.l as usize);
        Mpcbf {
            words: AlignedVec::from_iter_exact(
                shape.l as usize,
                raw.into_iter().map(HcbfWord::from_raw),
            ),
            shape,
            seed: config.seed(),
            items,
            overflows,
            _hasher: PhantomData,
        }
    }
}

/// MPCBF-1 over 64-bit words: the paper's headline configuration.
pub type Mpcbf1 = Mpcbf<u64, Murmur3>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcbfConfig;

    fn small(g: u32) -> Mpcbf<u64> {
        let c = MpcbfConfig::builder()
            .memory_bits(1_000_000)
            .expected_items(10_000)
            .hashes(3)
            .accesses(g)
            .seed(99)
            .build()
            .unwrap();
        Mpcbf::new(c)
    }

    #[test]
    fn word_storage_is_cache_line_aligned() {
        // The one-memory-access property (§III.B.2) needs every word to
        // live inside a single cache line, not straddle two.
        let f = small(1);
        let addr = f.words.as_slice().as_ptr() as usize;
        assert_eq!(addr % mpcbf_bitvec::CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn roundtrip_g1() {
        let mut f = small(1);
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..5_000u64 {
            assert!(f.contains(&i), "false negative {i}");
        }
        for i in 0..2_500u64 {
            f.remove(&i).unwrap();
        }
        for i in 2_500..5_000u64 {
            assert!(f.contains(&i), "lost {i} after churn");
        }
        assert_eq!(f.items(), 2_500);
        assert_eq!(f.overflows(), 0);
    }

    #[test]
    fn roundtrip_g2() {
        let mut f = small(2);
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..5_000u64 {
            assert!(f.contains(&i));
        }
        for i in 0..5_000u64 {
            f.remove(&i).unwrap();
        }
        assert_eq!(f.items(), 0);
        assert!(
            f.word_loads().iter().all(|&c| c == 0),
            "filter must be empty"
        );
    }

    #[test]
    fn query_is_one_access_for_g1() {
        let mut f = small(1);
        f.insert(&"x").unwrap();
        let (hit, cost) = f.contains_bytes_cost(b"x");
        assert!(hit);
        assert_eq!(cost.word_accesses, 1);
        // Bandwidth: log2(l) + k·log2(b1).
        let s = f.shape();
        let expect = mpcbf_hash::mix::bits_for(s.l) + 3 * mpcbf_hash::mix::bits_for(s.b1.into());
        assert_eq!(cost.hash_bits, expect);
    }

    #[test]
    fn query_short_circuits_for_g2() {
        let f = small(2);
        let (hit, cost) = f.contains_bytes_cost(b"missing");
        assert!(!hit);
        assert_eq!(cost.word_accesses, 1, "empty filter: first probe decides");
    }

    #[test]
    fn update_bandwidth_includes_traversal() {
        let mut f = small(1);
        // Insert the same key repeatedly: later increments must descend.
        let c1 = f.insert_bytes_cost(b"dup").unwrap();
        let c2 = f.insert_bytes_cost(b"dup").unwrap();
        assert!(
            c2.hash_bits > c1.hash_bits,
            "{} vs {}",
            c2.hash_bits,
            c1.hash_bits
        );
    }

    #[test]
    fn remove_absent_rolls_back() {
        let mut f = small(1);
        f.insert(&"present").unwrap();
        let loads_before = f.word_loads();
        assert_eq!(f.remove(&"absent"), Err(FilterError::NotPresent));
        assert_eq!(f.word_loads(), loads_before);
        assert!(f.contains(&"present"));
    }

    #[test]
    fn overflow_rolls_back_cleanly() {
        // Force overflow: tiny n_max so capacity is 3 increments per word.
        let c = MpcbfConfig::builder()
            .memory_bits(256) // l = 4 words: collisions guaranteed
            .expected_items(1000)
            .hashes(3)
            .n_max(1)
            .seed(5)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64> = Mpcbf::new(c);
        let mut stored = Vec::new();
        let mut overflowed = 0;
        for i in 0..100u64 {
            match f.insert(&i) {
                Ok(()) => stored.push(i),
                Err(FilterError::WordOverflow { .. }) => overflowed += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(overflowed > 0, "expected overflows with 4 tiny words");
        assert_eq!(f.overflows(), overflowed);
        // Everything that reported success must still be present.
        for i in &stored {
            assert!(f.contains(i), "lost stored element {i}");
        }
        // And the filter must still be able to drain cleanly.
        for i in &stored {
            f.remove(i).unwrap();
        }
        assert!(f.word_loads().iter().all(|&c| c == 0));
    }

    #[test]
    fn fpr_beats_cbf_at_same_memory_k3() {
        // Empirical counterpart of Fig. 7(a) at reduced scale.
        use crate::cbf::Cbf;
        let big_m = 1_000_000u64;
        let n = 25_000u64;
        let c = MpcbfConfig::builder()
            .memory_bits(big_m)
            .expected_items(n)
            .hashes(3)
            .seed(1234)
            .build()
            .unwrap();
        let mut mp: Mpcbf<u64> = Mpcbf::new(c);
        let mut cbf = Cbf::<Murmur3>::with_memory(big_m, 3, 1234);
        for i in 0..n {
            mp.insert(&i).unwrap();
            cbf.insert(&i).unwrap();
        }
        let trials = 200_000u64;
        let fp_mp = (n..n + trials).filter(|i| mp.contains(i)).count();
        let fp_cbf = (n..n + trials).filter(|i| cbf.contains(i)).count();
        assert!(
            fp_mp < fp_cbf,
            "MPCBF-1 {fp_mp} should beat CBF {fp_cbf} at k=3"
        );
    }

    #[test]
    fn g2_fpr_beats_g1() {
        let big_m = 1_000_000u64;
        let n = 25_000u64;
        let build = |g: u32| {
            let c = MpcbfConfig::builder()
                .memory_bits(big_m)
                .expected_items(n)
                .hashes(3)
                .accesses(g)
                .seed(77)
                .build()
                .unwrap();
            let mut f: Mpcbf<u64> = Mpcbf::new(c);
            for i in 0..n {
                // Eq. (11) leaves ≈1 expected word at capacity, so the
                // occasional refused insert is within spec; it must stay rare.
                let _ = f.insert(&i);
            }
            assert!(f.overflows() <= 5, "excessive overflows: {}", f.overflows());
            f
        };
        let f1 = build(1);
        let f2 = build(2);
        let trials = 300_000u64;
        let fp1 = (n..n + trials).filter(|i| f1.contains(i)).count();
        let fp2 = (n..n + trials).filter(|i| f2.contains(i)).count();
        assert!(fp2 < fp1, "MPCBF-2 {fp2} should beat MPCBF-1 {fp1}");
    }

    #[test]
    fn no_overflow_at_paper_heuristic() {
        // §IV.B: "we never observe any word overflow" with Eq. (11).
        let mut f = small(1);
        for i in 0..10_000u64 {
            f.insert(&i).unwrap();
        }
        assert_eq!(f.overflows(), 0);
        // Max word load stays within capacity k·n_max.
        let s = f.shape();
        let max_load = f.word_loads().into_iter().max().unwrap();
        assert!(max_load <= s.w - s.b1);
    }

    #[test]
    fn works_with_u32_words() {
        let c = MpcbfConfig::builder()
            .memory_bits(500_000)
            .expected_items(5_000)
            .hashes(3)
            .word_bits(32)
            .seed(3)
            .build()
            .unwrap();
        let mut f: Mpcbf<u32> = Mpcbf::new(c);
        for i in 0..2_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..2_000u64 {
            assert!(f.contains(&i));
        }
    }

    #[test]
    fn estimate_count_tracks_multiplicity() {
        let mut f = small(1);
        assert_eq!(f.estimate_count(&"x"), 0);
        for expect in 1..=5u32 {
            f.insert(&"x").unwrap();
            let est = f.estimate_count(&"x");
            assert!(est >= expect, "estimate {est} under true count {expect}");
        }
        for _ in 0..5 {
            f.remove(&"x").unwrap();
        }
        assert_eq!(f.estimate_count(&"x"), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = small(1);
        for i in 0..100u64 {
            f.insert(&i).unwrap();
        }
        f.clear();
        assert_eq!(f.items(), 0);
        assert!(f.word_loads().iter().all(|&c| c == 0));
        assert!(!f.contains(&5u64));
        // Still usable after clear.
        f.insert(&5u64).unwrap();
        assert!(f.contains(&5u64));
    }

    #[test]
    fn absorb_merges_partial_filters() {
        let cfg = MpcbfConfig::builder()
            .memory_bits(1_000_000)
            .expected_items(10_000)
            .hashes(3)
            .seed(99)
            .build()
            .unwrap();
        let mut a: Mpcbf<u64> = Mpcbf::new(cfg);
        let mut b: Mpcbf<u64> = Mpcbf::new(cfg);
        let mut whole: Mpcbf<u64> = Mpcbf::new(cfg);
        for i in 0..2_000u64 {
            if i % 2 == 0 {
                a.insert(&i).unwrap();
            } else {
                b.insert(&i).unwrap();
            }
            whole.insert(&i).unwrap();
        }
        a.absorb(&b).unwrap();
        assert_eq!(a.items(), 2_000);
        // Merged filter is bit-identical in behaviour to the whole build.
        for probe in 0..50_000u64 {
            assert_eq!(a.contains(&probe), whole.contains(&probe), "probe {probe}");
        }
        // And it drains cleanly.
        for i in 0..2_000u64 {
            a.remove(&i).unwrap();
        }
        assert!(a.word_loads().iter().all(|&c| c == 0));
    }

    #[test]
    fn absorb_overflow_leaves_self_untouched() {
        let cfg = MpcbfConfig::builder()
            .memory_bits(256)
            .expected_items(100)
            .hashes(3)
            .n_max(2)
            .seed(5)
            .build()
            .unwrap();
        let mut a: Mpcbf<u64> = Mpcbf::new(cfg);
        let mut b: Mpcbf<u64> = Mpcbf::new(cfg);
        // Load both halves to near capacity so the merge must overflow.
        for i in 0..20u64 {
            let _ = a.insert(&i);
            let _ = b.insert(&(1000 + i));
        }
        let before = a.raw_words();
        match a.absorb(&b) {
            Ok(()) => {} // possible if loads landed disjointly
            Err(FilterError::WordOverflow { .. }) => {
                assert_eq!(a.raw_words(), before, "failed absorb must not mutate");
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn batch_matches_scalar_loop_for_all_ops() {
        for g in [1u32, 2] {
            let mut batch = small(g);
            let mut scalar = small(g);
            let keys: Vec<Vec<u8>> = (0..2_000u64).map(|i| i.to_le_bytes().to_vec()).collect();
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

            let (_, bi) = batch.insert_batch_cost(&views);
            let mut si = OpCost::zero();
            for k in &views {
                si = si.add(scalar.insert_bytes_cost(k).unwrap());
            }
            assert_eq!(bi, si, "g={g}");
            assert_eq!(batch.raw_words(), scalar.raw_words(), "g={g}");

            let probes: Vec<Vec<u8>> = (1_000..4_000u64)
                .map(|i| i.to_le_bytes().to_vec())
                .collect();
            let probe_views: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let (bh, bq) = batch.contains_batch_cost(&probe_views);
            let mut sq = OpCost::zero();
            for (i, k) in probe_views.iter().enumerate() {
                let (hit, cost) = scalar.contains_bytes_cost(k);
                assert_eq!(hit, bh[i], "g={g} key {i}");
                sq = sq.add(cost);
            }
            assert_eq!(bq, sq, "g={g}");

            // Remove a mix of present and absent keys.
            let (br_res, br) = batch.remove_batch_cost(&probe_views);
            let mut sr = OpCost::zero();
            for (i, k) in probe_views.iter().enumerate() {
                match scalar.remove_bytes_cost(k) {
                    Ok(c) => {
                        sr = sr.add(c);
                        assert_eq!(br_res[i], Ok(()), "g={g} key {i}");
                    }
                    Err(e) => assert_eq!(br_res[i], Err(e), "g={g} key {i}"),
                }
            }
            assert_eq!(br, sr, "g={g}");
            assert_eq!(batch.raw_words(), scalar.raw_words(), "g={g}");
            assert_eq!(batch.items(), scalar.items(), "g={g}");
        }
    }

    #[test]
    fn batch_insert_overflow_matches_scalar() {
        let cfg = || {
            MpcbfConfig::builder()
                .memory_bits(256) // 4 tiny words: overflows guaranteed
                .expected_items(1000)
                .hashes(3)
                .n_max(1)
                .seed(5)
                .build()
                .unwrap()
        };
        let mut batch: Mpcbf<u64> = Mpcbf::new(cfg());
        let mut scalar: Mpcbf<u64> = Mpcbf::new(cfg());
        let keys: Vec<Vec<u8>> = (0..100u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let (batch_res, bi) = batch.insert_batch_cost(&views);
        let mut si = OpCost::zero();
        for (i, k) in views.iter().enumerate() {
            match scalar.insert_bytes_cost(k) {
                Ok(c) => {
                    si = si.add(c);
                    assert_eq!(batch_res[i], Ok(()), "key {i}");
                }
                Err(e) => assert_eq!(batch_res[i], Err(e), "key {i}"),
            }
        }
        assert_eq!(bi, si);
        assert_eq!(batch.raw_words(), scalar.raw_words());
        assert_eq!(batch.overflows(), scalar.overflows());
        assert_eq!(batch.items(), scalar.items());
    }

    #[test]
    #[should_panic(expected = "word type width")]
    fn word_width_mismatch_panics() {
        let c = MpcbfConfig::builder()
            .memory_bits(500_000)
            .expected_items(5_000)
            .word_bits(32)
            .build()
            .unwrap();
        let _f: Mpcbf<u64> = Mpcbf::new(c);
    }
}
