//! Capacity policy: typed scale-up thresholds with hysteresis.
//!
//! [`ResilientMpcbf`](crate::resilient::ResilientMpcbf) exposes its
//! saturation gauges through [`HealthReport`], but until now they were
//! read-only telemetry — every consumer hard-coded its own notion of
//! "too full". [`CapacityPolicy`] turns those gauges into a typed
//! decision: *has this filter crossed the pressure threshold where an
//! elastic wrapper must open a new generation?*
//!
//! The decision is **hysteretic**. A workload hovering exactly at a
//! threshold would otherwise flip the trigger on and off every few
//! inserts ("flapping"), and each flip is expensive for the consumer —
//! [`ElasticMpcbf`](crate::elastic::ElasticMpcbf) allocates a whole new
//! generation on the rising edge. The policy therefore latches: it
//! *enters* the pressured state at [`CapacityPolicy::max_pressure`] and
//! *leaves* it only below the strictly lower
//! [`CapacityPolicy::release_pressure`], so a boundary-hugging gauge
//! produces exactly one transition per genuine excursion.

use crate::metrics::HealthReport;

/// Thresholds + hysteresis governing when an elastic filter scales up.
///
/// Consumed by [`ElasticMpcbf`](crate::elastic::ElasticMpcbf) (the
/// scale-up trigger) and usable standalone against any
/// [`HealthReport`] via [`CapacityPolicy::update`].
///
/// ```
/// use mpcbf_core::CapacityPolicy;
///
/// let policy = CapacityPolicy::default();
/// assert!(policy.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPolicy {
    /// Rising-edge threshold: the policy asserts pressure once
    /// [`HealthReport::pressure`] reaches this value. Default `0.7`.
    pub max_pressure: f64,
    /// Falling-edge threshold: an asserted policy releases only when
    /// pressure drops *below* this value (and the spill is empty). Must
    /// be strictly less than `max_pressure`. Default `0.5`.
    pub release_pressure: f64,
    /// Immediate trigger: lifetime spilled inserts above this count
    /// assert pressure regardless of the fill gauges (spill growth means
    /// the main shape has demonstrably run out of room). Default `0`
    /// (any spill triggers).
    pub max_spilled: u64,
    /// Multiplier applied to a generation's memory and expected-items
    /// budget when the elastic filter opens the next generation. Must be
    /// `>= 1.0`. Default `2.0` (classic doubling).
    pub growth: f64,
    /// Hard cap on live generations; scale-up requests beyond this are
    /// refused until compaction retires old generations. Default `8`.
    pub max_generations: usize,
    /// How many inserts may elapse between full [`HealthReport`] probes
    /// in the elastic hot path (a probe walks every word, so it is too
    /// costly per insert). Default `256`.
    pub check_interval: u64,
    /// Keys migrated per compaction step in auto-compacting mode; larger
    /// batches finish migration sooner at the cost of longer pauses.
    /// Default `32`.
    pub compact_batch: usize,
}

impl Default for CapacityPolicy {
    fn default() -> Self {
        CapacityPolicy {
            max_pressure: 0.7,
            release_pressure: 0.5,
            max_spilled: 0,
            growth: 2.0,
            max_generations: 8,
            check_interval: 256,
            compact_batch: 32,
        }
    }
}

impl CapacityPolicy {
    /// Checks the invariants the hysteresis and growth math rely on.
    /// Returns a static description of the first violated rule.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.max_pressure.is_finite() || self.max_pressure <= 0.0 {
            return Err("max_pressure must be finite and positive");
        }
        if !self.release_pressure.is_finite() || self.release_pressure < 0.0 {
            return Err("release_pressure must be finite and non-negative");
        }
        if self.release_pressure >= self.max_pressure {
            return Err("release_pressure must be strictly below max_pressure");
        }
        if !self.growth.is_finite() || self.growth < 1.0 {
            return Err("growth must be finite and at least 1.0");
        }
        if self.max_generations == 0 {
            return Err("max_generations must be at least 1");
        }
        if self.check_interval == 0 {
            return Err("check_interval must be at least 1");
        }
        if self.compact_batch == 0 {
            return Err("compact_batch must be at least 1");
        }
        Ok(())
    }

    /// True if `health` crosses the *rising* edge: pressure at or above
    /// [`CapacityPolicy::max_pressure`], spilled inserts above
    /// [`CapacityPolicy::max_spilled`], or outright saturation.
    pub fn asserts(&self, health: &HealthReport) -> bool {
        health.pressure() >= self.max_pressure
            || health.spilled_inserts > self.max_spilled
            || health.is_saturated()
    }

    /// True if `health` is below the *falling* edge: pressure strictly
    /// under [`CapacityPolicy::release_pressure`] with an empty spill.
    pub fn releases(&self, health: &HealthReport) -> bool {
        health.pressure() < self.release_pressure && !health.is_spilling()
    }

    /// One hysteresis step: feeds `health` through the latch and returns
    /// the new latched state. `latched` is the previous output; callers
    /// thread it through (the policy itself is stateless, so one policy
    /// value can serve many filters).
    ///
    /// The latch rises on [`CapacityPolicy::asserts`], falls on
    /// [`CapacityPolicy::releases`], and otherwise holds — gauges in the
    /// dead band between the two thresholds never cause a transition.
    pub fn update(&self, latched: bool, health: &HealthReport) -> bool {
        if latched {
            !self.releases(health)
        } else {
            self.asserts(health)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A HealthReport at a given fill pressure with everything else calm.
    fn calm_at(fill: f64) -> HealthReport {
        HealthReport {
            items: 100,
            fill_ratio: fill,
            max_word_load: 0,
            word_capacity: 32,
            overflows: 0,
            spill_keys: 0,
            spill_occupancy: 0,
            spilled_inserts: 0,
        }
    }

    #[test]
    fn default_policy_is_valid() {
        assert_eq!(CapacityPolicy::default().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_inverted_thresholds() {
        let mut p = CapacityPolicy::default();
        p.release_pressure = p.max_pressure;
        assert!(p.validate().is_err());
        p.release_pressure = 0.4;
        p.growth = 0.5;
        assert!(p.validate().is_err());
        p.growth = 2.0;
        p.max_generations = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn pressure_summary_tracks_worst_gauge() {
        let mut h = calm_at(0.2);
        h.max_word_load = 24; // 24/32 = 0.75 beats the 0.2 fill
        assert!((h.pressure() - 0.75).abs() < 1e-12);
        // Spilling clamps to >= 1.0 even with calm averages.
        h.max_word_load = 1;
        h.spill_occupancy = 1;
        assert!(h.pressure() >= 1.0);
        h.spill_occupancy = 0;
        h.overflows = 3;
        assert!(h.pressure() >= 1.0);
    }

    #[test]
    fn latch_rises_at_max_and_falls_below_release() {
        let p = CapacityPolicy::default();
        let mut latched = false;
        latched = p.update(latched, &calm_at(0.69));
        assert!(!latched, "below max_pressure must not assert");
        latched = p.update(latched, &calm_at(0.70));
        assert!(latched, "at max_pressure must assert");
        latched = p.update(latched, &calm_at(0.60));
        assert!(latched, "dead band holds the latch");
        latched = p.update(latched, &calm_at(0.50));
        assert!(latched, "release threshold is strict");
        latched = p.update(latched, &calm_at(0.49));
        assert!(!latched, "below release_pressure must release");
    }

    #[test]
    fn no_flapping_while_hugging_the_boundary() {
        // Oscillate tightly around the rising edge: once latched, the
        // latch must stay up — exactly one rising transition, zero falls.
        let p = CapacityPolicy::default();
        let mut latched = false;
        let mut transitions = 0u32;
        for i in 0..1000 {
            let jitter = if i % 2 == 0 { 0.005 } else { -0.005 };
            let next = p.update(latched, &calm_at(p.max_pressure + jitter));
            if next != latched {
                transitions += 1;
            }
            latched = next;
        }
        assert!(latched);
        assert_eq!(transitions, 1, "boundary hugging must not flap");

        // Same oscillation around the falling edge: one fall, no rises.
        let mut transitions = 0u32;
        for i in 0..1000 {
            let jitter = if i % 2 == 0 { 0.005 } else { -0.005 };
            let next = p.update(latched, &calm_at(p.release_pressure + jitter));
            if next != latched {
                transitions += 1;
            }
            latched = next;
        }
        assert!(!latched);
        assert_eq!(transitions, 1, "release boundary must not flap either");
    }

    #[test]
    fn spill_asserts_regardless_of_fill() {
        let p = CapacityPolicy::default();
        let mut h = calm_at(0.1);
        h.spilled_inserts = 1; // > max_spilled (0)
        assert!(p.asserts(&h));
        assert!(p.update(false, &h));
        // And a latched policy with residual spill never releases.
        let mut drained = calm_at(0.1);
        drained.spill_occupancy = 2;
        assert!(p.update(true, &drained));
    }

    #[test]
    fn saturation_asserts_even_with_low_fill() {
        let p = CapacityPolicy::default();
        let mut h = calm_at(0.05);
        h.max_word_load = h.word_capacity;
        assert!(p.asserts(&h));
    }
}
