//! The filter traits: approximate membership ([`Filter`]) and dynamic-set
//! support ([`CountingFilter`]).

use crate::error::FilterError;
use crate::metrics::{OpCost, OpKind, OpSink};
use crate::plan::PlanBuffer;
use mpcbf_hash::Key;
use std::time::Instant;

/// An approximate-membership filter.
///
/// Semantics are the usual Bloom guarantees: `contains` may return false
/// positives, never false negatives (for elements currently inserted and
/// not removed).
///
/// Every primitive operation has a `_cost` variant that also reports the
/// paper's processing-overhead metrics (memory accesses and hash bits);
/// the plain variants are thin wrappers.
pub trait Filter {
    /// Membership check with metering.
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost);

    /// Insertion with metering.
    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError>;

    /// Total memory footprint of the membership structure, in bits
    /// (the paper's "memory consumption" axis).
    fn memory_bits(&self) -> u64;

    /// The number of hash functions `k`.
    fn num_hashes(&self) -> u32;

    /// Membership check on raw bytes.
    #[inline]
    fn contains_bytes(&self, key: &[u8]) -> bool {
        self.contains_bytes_cost(key).0
    }

    /// Insertion of raw bytes.
    #[inline]
    fn insert_bytes(&mut self, key: &[u8]) -> Result<(), FilterError> {
        self.insert_bytes_cost(key).map(|_| ())
    }

    /// Membership check for any [`Key`] type.
    #[inline]
    fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.contains_bytes(key.key_bytes().as_slice())
    }

    /// Insertion of any [`Key`] type.
    #[inline]
    fn insert<K: Key + ?Sized>(&mut self, key: &K) -> Result<(), FilterError> {
        self.insert_bytes(key.key_bytes().as_slice())
    }

    /// Batched membership check with metering: one verdict per key, in key
    /// order, plus the summed cost of the whole batch.
    ///
    /// The default delegates to [`Filter::contains_bytes_cost`] per key.
    /// Implementations may override with a pipelined pass (hash all keys,
    /// prefetch all target words, then probe), but an override **must** be
    /// observationally identical to this scalar loop: same verdicts, same
    /// total cost (including per-key query short-circuiting).
    fn contains_batch_cost(&self, keys: &[&[u8]]) -> (Vec<bool>, OpCost) {
        let mut hits = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for key in keys {
            let (hit, cost) = self.contains_bytes_cost(key);
            hits.push(hit);
            total = total.add(cost);
        }
        (hits, total)
    }

    /// Batched insertion with metering: one result per key, in key order,
    /// plus the summed cost of the *successful* insertions (a refused
    /// insert reports no cost, exactly as the scalar call returns none).
    ///
    /// Keys are applied strictly in order, so overrides leave the filter
    /// in the bit-identical state a scalar loop would.
    fn insert_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for key in keys {
            match self.insert_bytes_cost(key) {
                Ok(cost) => {
                    total = total.add(cost);
                    results.push(Ok(()));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        (results, total)
    }

    /// Batched membership check using a caller-held [`PlanBuffer`] —
    /// the allocation-free entry point of the fused batch pipeline.
    ///
    /// Callers that issue many batches hold one buffer and pass it to
    /// every call; after the first batch at a given size the plan stage
    /// performs no allocation. The buffer is scratch space only: its
    /// contents on return are unspecified, and reusing a buffer **must**
    /// yield bit-identical verdicts and costs to a fresh one.
    ///
    /// The default ignores the buffer and delegates to
    /// [`Filter::contains_batch_cost`]; filters with a fused pipeline
    /// override this and route `contains_batch_cost` through it.
    fn contains_batch_with(&self, keys: &[&[u8]], _plans: &mut PlanBuffer) -> (Vec<bool>, OpCost) {
        self.contains_batch_cost(keys)
    }

    /// Batched insertion using a caller-held [`PlanBuffer`]; the buffer
    /// contract is as for [`Filter::contains_batch_with`].
    ///
    /// The default ignores the buffer and delegates to
    /// [`Filter::insert_batch_cost`].
    fn insert_batch_with(
        &mut self,
        keys: &[&[u8]],
        _plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.insert_batch_cost(keys)
    }

    /// Batched membership check that also reports the batch to an
    /// [`OpSink`] as one `(kind, ops, cost, wall nanos)` sample — the hook
    /// the telemetry layer's histograms and ledgers hang off.
    ///
    /// Verdicts and cost are exactly those of
    /// [`Filter::contains_batch_cost`]; the sink only observes.
    fn contains_batch_metered(&self, keys: &[&[u8]], sink: &dyn OpSink) -> (Vec<bool>, OpCost) {
        let t = Instant::now();
        let (hits, cost) = self.contains_batch_cost(keys);
        sink.record_batch(
            OpKind::Query,
            keys.len() as u64,
            cost,
            t.elapsed().as_nanos() as u64,
        );
        (hits, cost)
    }

    /// Batched insertion that also reports the batch to an [`OpSink`].
    /// Results and cost are exactly those of [`Filter::insert_batch_cost`];
    /// refused inserts count toward `ops` but (as always) cost nothing.
    fn insert_batch_metered(
        &mut self,
        keys: &[&[u8]],
        sink: &dyn OpSink,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        let t = Instant::now();
        let (results, cost) = self.insert_batch_cost(keys);
        sink.record_batch(
            OpKind::Insert,
            keys.len() as u64,
            cost,
            t.elapsed().as_nanos() as u64,
        );
        (results, cost)
    }

    /// Batched membership check for any [`Key`] type (results only).
    fn contains_batch<K: Key>(&self, keys: &[K]) -> Vec<bool> {
        let owned: Vec<_> = keys.iter().map(Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.contains_batch_cost(&views).0
    }

    /// Batched insertion for any [`Key`] type (results only).
    fn insert_batch<K: Key>(&mut self, keys: &[K]) -> Vec<Result<(), FilterError>> {
        let owned: Vec<_> = keys.iter().map(Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.insert_batch_cost(&views).0
    }
}

/// A filter that also supports deletion (the "counting" in CBF).
pub trait CountingFilter: Filter {
    /// Deletion with metering.
    ///
    /// Deleting an element that is not present returns
    /// [`FilterError::NotPresent`] and leaves the filter unchanged.
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError>;

    /// Deletion of raw bytes.
    #[inline]
    fn remove_bytes(&mut self, key: &[u8]) -> Result<(), FilterError> {
        self.remove_bytes_cost(key).map(|_| ())
    }

    /// Deletion of any [`Key`] type.
    #[inline]
    fn remove<K: Key + ?Sized>(&mut self, key: &K) -> Result<(), FilterError> {
        self.remove_bytes(key.key_bytes().as_slice())
    }

    /// Batched deletion with metering: one result per key, in key order,
    /// plus the summed cost of the *successful* deletions (removing an
    /// absent key reports [`FilterError::NotPresent`] and no cost).
    ///
    /// Keys are applied strictly in order; overrides must leave the filter
    /// in the bit-identical state a scalar loop would.
    fn remove_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for key in keys {
            match self.remove_bytes_cost(key) {
                Ok(cost) => {
                    total = total.add(cost);
                    results.push(Ok(()));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        (results, total)
    }

    /// Batched deletion using a caller-held [`PlanBuffer`]; the buffer
    /// contract is as for [`Filter::contains_batch_with`].
    ///
    /// The default ignores the buffer and delegates to
    /// [`CountingFilter::remove_batch_cost`].
    fn remove_batch_with(
        &mut self,
        keys: &[&[u8]],
        _plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.remove_batch_cost(keys)
    }

    /// Batched deletion that also reports the batch to an [`OpSink`].
    /// Results and cost are exactly those of
    /// [`CountingFilter::remove_batch_cost`]; failed removals count toward
    /// `ops` but cost nothing.
    fn remove_batch_metered(
        &mut self,
        keys: &[&[u8]],
        sink: &dyn OpSink,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        let t = Instant::now();
        let (results, cost) = self.remove_batch_cost(keys);
        sink.record_batch(
            OpKind::Remove,
            keys.len() as u64,
            cost,
            t.elapsed().as_nanos() as u64,
        );
        (results, cost)
    }

    /// Batched deletion for any [`Key`] type (results only).
    fn remove_batch<K: Key>(&mut self, keys: &[K]) -> Vec<Result<(), FilterError>> {
        let owned: Vec<_> = keys.iter().map(Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        self.remove_batch_cost(&views).0
    }
}
