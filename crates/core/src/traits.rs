//! The filter traits: approximate membership ([`Filter`]) and dynamic-set
//! support ([`CountingFilter`]).

use crate::error::FilterError;
use crate::metrics::OpCost;
use mpcbf_hash::Key;

/// An approximate-membership filter.
///
/// Semantics are the usual Bloom guarantees: `contains` may return false
/// positives, never false negatives (for elements currently inserted and
/// not removed).
///
/// Every primitive operation has a `_cost` variant that also reports the
/// paper's processing-overhead metrics (memory accesses and hash bits);
/// the plain variants are thin wrappers.
pub trait Filter {
    /// Membership check with metering.
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost);

    /// Insertion with metering.
    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError>;

    /// Total memory footprint of the membership structure, in bits
    /// (the paper's "memory consumption" axis).
    fn memory_bits(&self) -> u64;

    /// The number of hash functions `k`.
    fn num_hashes(&self) -> u32;

    /// Membership check on raw bytes.
    #[inline]
    fn contains_bytes(&self, key: &[u8]) -> bool {
        self.contains_bytes_cost(key).0
    }

    /// Insertion of raw bytes.
    #[inline]
    fn insert_bytes(&mut self, key: &[u8]) -> Result<(), FilterError> {
        self.insert_bytes_cost(key).map(|_| ())
    }

    /// Membership check for any [`Key`] type.
    #[inline]
    fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.contains_bytes(key.key_bytes().as_slice())
    }

    /// Insertion of any [`Key`] type.
    #[inline]
    fn insert<K: Key + ?Sized>(&mut self, key: &K) -> Result<(), FilterError> {
        self.insert_bytes(key.key_bytes().as_slice())
    }
}

/// A filter that also supports deletion (the "counting" in CBF).
pub trait CountingFilter: Filter {
    /// Deletion with metering.
    ///
    /// Deleting an element that is not present returns
    /// [`FilterError::NotPresent`] and leaves the filter unchanged.
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError>;

    /// Deletion of raw bytes.
    #[inline]
    fn remove_bytes(&mut self, key: &[u8]) -> Result<(), FilterError> {
        self.remove_bytes_cost(key).map(|_| ())
    }

    /// Deletion of any [`Key`] type.
    #[inline]
    fn remove<K: Key + ?Sized>(&mut self, key: &K) -> Result<(), FilterError> {
        self.remove_bytes(key.key_bytes().as_slice())
    }
}
