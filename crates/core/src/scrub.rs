//! Corruption detection and scrubbing: seal → verify → scrub.
//!
//! Filter state is long-lived, dense, and silently trusted: a single
//! flipped bit in an HCBF word desynchronises the hierarchy levels and
//! can manufacture false negatives — the one failure a counting Bloom
//! filter promises never to produce. This module makes such damage
//! *detectable* instead of silent:
//!
//! * a [`FilterSeal`] checksums the raw word array segment by segment
//!   (CRC-32, the same machinery the wire codec uses for whole images),
//!   taken at a moment the owner knows the filter is healthy;
//! * `verify()` on a filter re-checks every word's *structural*
//!   invariants (the §III.B.1 level-walk identities), which catches a
//!   large class of flips with no seal at all;
//! * `scrub(&seal)` combines both: recompute each segment's CRC against
//!   the seal and re-walk each word, reporting every damaged segment in a
//!   [`ScrubReport`].
//!
//! Detection is intentionally separated from repair: a damaged segment's
//! true contents are unknowable from the filter alone, so the honest
//! response is [`FilterError::CorruptionDetected`] and a rebuild from the
//! source of truth, not a guess.

use crate::codec::crc32;
use crate::FilterError;

/// 64-bit limbs per checksummed segment (512 bytes of filter state — a
/// few cache lines, so one flipped bit localises to a small region while
/// the seal stays ~0.1 % of the filter's size).
pub const SEGMENT_WORDS: usize = 64;

/// The segment a given word/limb index belongs to.
#[inline]
pub fn segment_of(word: usize) -> usize {
    word / SEGMENT_WORDS
}

/// Per-segment CRC-32 checksums of a filter's raw 64-bit storage, taken
/// at a moment the filter is known healthy.
///
/// A seal is a pure function of the word array: two bit-identical filters
/// produce equal seals, and any later divergence from the sealed state —
/// whether a legitimate update or a corruption — flips at least one
/// segment CRC. Owners therefore re-seal after every batch of updates and
/// scrub between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSeal {
    limbs: usize,
    crcs: Vec<u32>,
}

impl FilterSeal {
    /// Checksums `limbs` in [`SEGMENT_WORDS`]-sized segments.
    pub fn compute(limbs: &[u64]) -> Self {
        FilterSeal {
            limbs: limbs.len(),
            crcs: limbs.chunks(SEGMENT_WORDS).map(segment_crc).collect(),
        }
    }

    /// Number of checksummed segments.
    pub fn segments(&self) -> usize {
        self.crcs.len()
    }

    /// Number of limbs the seal covers.
    pub fn limb_count(&self) -> usize {
        self.limbs
    }

    /// Compares `limbs` against the sealed checksums, returning the
    /// indices of every segment that no longer matches (ascending).
    ///
    /// # Panics
    /// Panics if `limbs` has a different length than the sealed array —
    /// the seal belongs to a different filter.
    pub fn diff(&self, limbs: &[u64]) -> Vec<usize> {
        assert_eq!(
            limbs.len(),
            self.limbs,
            "seal covers {} limbs, filter has {}",
            self.limbs,
            limbs.len()
        );
        limbs
            .chunks(SEGMENT_WORDS)
            .enumerate()
            .filter(|(i, seg)| segment_crc(seg) != self.crcs[*i])
            .map(|(i, _)| i)
            .collect()
    }
}

fn segment_crc(segment: &[u64]) -> u32 {
    let mut bytes = Vec::with_capacity(segment.len() * 8);
    for limb in segment {
        bytes.extend_from_slice(&limb.to_le_bytes());
    }
    crc32(&bytes)
}

/// Outcome of one scrub pass over a filter's storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Segments examined.
    pub segments_checked: usize,
    /// Segments whose checksum or structural invariants failed, ascending
    /// and deduplicated.
    pub corrupt_segments: Vec<usize>,
}

impl ScrubReport {
    /// Builds a report, normalising the damage list (sorted, deduplicated).
    pub fn new(segments_checked: usize, mut corrupt: Vec<usize>) -> Self {
        corrupt.sort_unstable();
        corrupt.dedup();
        ScrubReport {
            segments_checked,
            corrupt_segments: corrupt,
        }
    }

    /// True if no corruption was found.
    pub fn is_clean(&self) -> bool {
        self.corrupt_segments.is_empty()
    }

    /// `Ok(())` when clean; otherwise the first damaged segment as a
    /// [`FilterError::CorruptionDetected`].
    pub fn to_result(&self) -> Result<(), FilterError> {
        match self.corrupt_segments.first() {
            None => Ok(()),
            Some(&segment) => Err(FilterError::CorruptionDetected { segment }),
        }
    }

    /// Merges another report over the same storage into this one.
    pub fn merge(&mut self, other: ScrubReport) {
        self.segments_checked = self.segments_checked.max(other.segments_checked);
        self.corrupt_segments.extend(other.corrupt_segments);
        self.corrupt_segments.sort_unstable();
        self.corrupt_segments.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_detects_any_single_bit_flip() {
        let mut limbs: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let seal = FilterSeal::compute(&limbs);
        assert_eq!(seal.segments(), 200usize.div_ceil(SEGMENT_WORDS));
        assert!(seal.diff(&limbs).is_empty());
        for limb in [0usize, 63, 64, 150, 199] {
            for bit in [0u32, 17, 63] {
                limbs[limb] ^= 1u64 << bit;
                assert_eq!(
                    seal.diff(&limbs),
                    vec![segment_of(limb)],
                    "flip at limb {limb} bit {bit}"
                );
                limbs[limb] ^= 1u64 << bit; // restore
            }
        }
        assert!(seal.diff(&limbs).is_empty());
    }

    #[test]
    fn diff_reports_multiple_segments() {
        let mut limbs = vec![0u64; 3 * SEGMENT_WORDS];
        let seal = FilterSeal::compute(&limbs);
        limbs[0] ^= 1;
        limbs[2 * SEGMENT_WORDS] ^= 1 << 40;
        assert_eq!(seal.diff(&limbs), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "seal covers")]
    fn diff_rejects_mismatched_length() {
        let seal = FilterSeal::compute(&[1, 2, 3]);
        let _ = seal.diff(&[1, 2]);
    }

    #[test]
    fn report_result_and_merge() {
        let clean = ScrubReport::new(4, vec![]);
        assert!(clean.is_clean());
        assert_eq!(clean.to_result(), Ok(()));
        let mut dirty = ScrubReport::new(4, vec![3, 1, 3]);
        assert_eq!(dirty.corrupt_segments, vec![1, 3]);
        assert_eq!(
            dirty.to_result(),
            Err(FilterError::CorruptionDetected { segment: 1 })
        );
        dirty.merge(ScrubReport::new(4, vec![0, 3]));
        assert_eq!(dirty.corrupt_segments, vec![0, 1, 3]);
    }

    #[test]
    fn empty_storage_seals_cleanly() {
        let seal = FilterSeal::compute(&[]);
        assert_eq!(seal.segments(), 0);
        assert!(seal.diff(&[]).is_empty());
    }
}
