//! Elastic MPCBF: a stack of generations that grows online.
//!
//! The paper sizes one filter from `(n_max, k, g)` and that sizing is
//! final; production traffic isn't. [`ElasticMpcbf`] keeps a **stack of
//! MPCBF generations** (each a [`ResilientMpcbf`], so even a mis-sized
//! generation stays lossless):
//!
//! * **inserts** land in the newest generation,
//! * **queries** OR across the stack newest-first (union semantics, so
//!   the stacked false-positive rate is bounded by the *sum* of the
//!   per-generation analytic envelopes — tracked by
//!   [`ElasticMpcbf::fpr_envelope`]),
//! * **removals** route by a per-generation exact membership check (the
//!   *roster*, an extension of [`ResilientMpcbf`]'s exact spill map to
//!   the whole generation), which eliminates the classic counting-filter
//!   hazard of decrementing a generation that never held the key.
//!
//! Scale-up triggers off the active generation's saturation gauges
//! ([`HealthReport::pressure`] plus the spill counters) crossing a
//! [`CapacityPolicy`] with hysteresis, opening a new generation sized by
//! the policy's growth factor. A **background compaction** then migrates
//! live keys out of the old generations into the right-sized active one
//! in *batch-granular* steps ([`ElasticMpcbf::step_compaction`]):
//! each key is inserted into the target **before** it is removed from
//! its source, so queries never lose the key and the summed envelope
//! stays a valid bound mid-migration; when every key has moved, the
//! drained source generations are dropped and their envelope terms
//! vanish.
//!
//! The per-generation roster costs exact-map memory proportional to the
//! live key count. That is the price of *online migration and correct
//! deletion* for a Bloom-family structure (a filter alone cannot
//! enumerate its keys); queries never touch the roster, so the paper's
//! word-access model still governs the hot path. Deployments that only
//! need age-out semantics without per-key deletion should prefer the
//! roster-free [`SlidingWindowMpcbf`](crate::window::SlidingWindowMpcbf).
//!
//! Grounding: "Autoscaling Bloom Filter" (arXiv 1705.03934) for the
//! controlled trade-off during growth, "Dynamic Partition Bloom Filters"
//! (arXiv 1901.06493) for bounded-FPR generation stacking.

use crate::config::MpcbfConfig;
use crate::error::ConfigError;
use crate::metrics::{HealthReport, OpCost};
use crate::policy::CapacityPolicy;
use crate::resilient::ResilientMpcbf;
use crate::traits::{CountingFilter, Filter};
use crate::FilterError;
use mpcbf_hash::{Hasher128, Murmur3};
use std::collections::HashMap;

/// Salt folded into per-generation seeds so every generation hashes
/// independently of its siblings and of the base filter.
const GENERATION_SALT: u64 = 0x454c_4153_5449_4321; // "ELASTIC!"

/// Keys migrated per insert while an auto-mode compaction is in flight —
/// small enough that no single insert stalls, large enough that a
/// migration of `n` keys finishes within `n / 4` inserts.
const AUTO_STEP_KEYS: usize = 4;

/// splitmix64 finalizer: decorrelates sequential generation ids into
/// independent seed material.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A sizing decision for the next generation, produced by the capacity
/// trigger and applied by [`ElasticMpcbf::apply_scale`]. Kept as plain
/// numbers so a durability layer can log it ahead of applying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleSpec {
    /// Memory budget of the new generation, in bits.
    pub memory_bits: u64,
    /// Expected element count the new generation is shaped for.
    pub expected_items: u64,
}

/// Read-only description of one live generation, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationInfo {
    /// Monotonic generation id (never reused within one filter).
    pub id: u64,
    /// Net elements currently stored in this generation.
    pub items: u64,
    /// Memory budget this generation was built with, in bits.
    pub memory_bits: u64,
    /// Analytic false-positive envelope of this generation alone.
    pub fpr: f64,
    /// True if this generation's resilient spill currently holds keys.
    pub spilling: bool,
}

/// One generation: a resilient filter plus its exact roster.
#[derive(Debug, Clone)]
pub(crate) struct Generation<H: Hasher128> {
    /// Monotonic id, assigned from [`ElasticMpcbf::next_id`].
    pub(crate) id: u64,
    /// The filter holding this generation's keys.
    pub(crate) filter: ResilientMpcbf<H>,
    /// Exact key → multiplicity ledger for this generation; authoritative
    /// for removal routing and the enumeration source for migration.
    pub(crate) roster: HashMap<Vec<u8>, u32>,
    /// Memory budget the generation was built with (codec roundtrip).
    pub(crate) memory_bits: u64,
    /// Expected-items budget the generation was built with.
    pub(crate) expected_items: u64,
}

/// In-flight compaction state: which generations are draining and the
/// snapshot of keys still to move. The worklist is *reconstructable*
/// from the source rosters (migrated keys leave their source roster), so
/// snapshots persist only the source ids.
#[derive(Debug, Clone)]
pub(crate) struct Migration {
    /// Ids of the generations being drained (everything but the active
    /// generation at the time compaction began).
    pub(crate) source_ids: Vec<u64>,
    /// Remaining `(source_id, key)` pairs, sorted for determinism.
    pub(crate) worklist: Vec<(u64, Vec<u8>)>,
    /// Index of the next worklist entry to migrate.
    pub(crate) cursor: usize,
}

/// Base shape parameters every generation inherits (the knobs that stay
/// fixed while memory and expected items grow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BaseParams {
    /// Base hash seed; generation `i` uses `seed ^ mix64(SALT + i)`.
    pub(crate) seed: u64,
    /// Hash count `k`.
    pub(crate) k: u32,
    /// Word accesses per op `g`.
    pub(crate) g: u32,
    /// Word size in bits `w`.
    pub(crate) w: u32,
    /// The first generation's `n_max`, the fallback when the Eq.-(11)
    /// heuristic cannot derive a shape for a scaled size.
    pub(crate) n_max: u32,
}

/// An autoscaling stack of MPCBF generations with bounded-FPR migration.
///
/// ```
/// use mpcbf_core::{CountingFilter, ElasticMpcbf, Filter, MpcbfConfig};
///
/// // A deliberately small first generation.
/// let config = MpcbfConfig::builder()
///     .memory_bits(64_000)
///     .expected_items(1_000)
///     .hashes(3)
///     .seed(9)
///     .build()
///     .unwrap();
/// let mut filter: ElasticMpcbf = ElasticMpcbf::new(config);
/// for i in 0..10_000u64 {
///     filter.insert(&i).unwrap(); // scales up online, never refuses
/// }
/// assert!((0..10_000u64).all(|i| filter.contains(&i)));
/// assert!(filter.scale_events() > 0);
/// assert!(filter.fpr_envelope() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ElasticMpcbf<H: Hasher128 = Murmur3> {
    pub(crate) generations: Vec<Generation<H>>,
    pub(crate) policy: CapacityPolicy,
    pub(crate) base: BaseParams,
    /// Next generation id to assign (monotonic, deterministic).
    pub(crate) next_id: u64,
    /// Hysteresis latch over the active generation's pressure.
    pub(crate) latched: bool,
    /// Inserts since the last full health probe.
    pub(crate) inserts_since_check: u64,
    /// Active generation's lifetime spill count at the last check, so a
    /// fresh spill forces an immediate probe.
    pub(crate) last_spilled: u64,
    /// Scale decision awaiting [`ElasticMpcbf::apply_scale`] (manual
    /// mode only; auto mode applies decisions inline).
    pub(crate) pending_scale: Option<ScaleSpec>,
    /// In-flight compaction, if any.
    pub(crate) migration: Option<Migration>,
    /// True: scale + compaction run inline on insert. False: the caller
    /// drives them via `scale_plan`/`apply_scale`/`step_compaction`
    /// (the durable server does, so it can WAL-log events first).
    pub(crate) auto: bool,
    /// Lifetime count of generations opened by scale-up.
    pub(crate) scale_events: u64,
    /// Lifetime count of completed compactions.
    pub(crate) compactions: u64,
    /// Lifetime count of keys migrated by compaction steps.
    pub(crate) migrated_keys: u64,
}

impl<H: Hasher128> ElasticMpcbf<H> {
    /// Creates an autoscaling filter: the first generation is built from
    /// `config` as-is, and the default [`CapacityPolicy`] drives inline
    /// scale-up and compaction.
    pub fn new(config: MpcbfConfig) -> Self {
        Self::build(config, CapacityPolicy::default(), true)
            .expect("default CapacityPolicy is valid")
    }

    /// Creates an autoscaling filter with an explicit policy.
    pub fn with_policy(config: MpcbfConfig, policy: CapacityPolicy) -> Result<Self, &'static str> {
        Self::build(config, policy, true)
    }

    /// Creates a *manually driven* elastic filter: the trigger still
    /// evaluates on insert, but scale-up and compaction only happen when
    /// the caller invokes [`ElasticMpcbf::apply_scale`],
    /// [`ElasticMpcbf::begin_compaction`] and
    /// [`ElasticMpcbf::step_compaction`]. This is the mode the durable
    /// server uses so every structural event is WAL-logged before it is
    /// applied.
    pub fn manual(config: MpcbfConfig, policy: CapacityPolicy) -> Result<Self, &'static str> {
        Self::build(config, policy, false)
    }

    fn build(
        config: MpcbfConfig,
        policy: CapacityPolicy,
        auto: bool,
    ) -> Result<Self, &'static str> {
        policy.validate()?;
        let shape = config.shape();
        let base = BaseParams {
            seed: config.seed(),
            k: shape.k,
            g: shape.g,
            w: shape.w,
            n_max: shape.n_max,
        };
        let memory_bits = shape.l * u64::from(shape.w);
        let expected_items = config.expected_items();
        let mut filter = ElasticMpcbf {
            generations: Vec::new(),
            policy,
            base,
            next_id: 0,
            latched: false,
            inserts_since_check: 0,
            last_spilled: 0,
            pending_scale: None,
            migration: None,
            auto,
            scale_events: 0,
            compactions: 0,
            migrated_keys: 0,
        };
        let spec = ScaleSpec {
            memory_bits,
            expected_items,
        };
        let gen = filter
            .new_generation(&spec)
            .map_err(|_| "base configuration cannot shape a generation")?;
        filter.generations.push(gen);
        Ok(filter)
    }

    /// Rebuilds a filter from codec-validated parts. The migration
    /// worklist is reconstructed from the rosters, so callers pass only
    /// the surviving source ids.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        generations: Vec<Generation<H>>,
        policy: CapacityPolicy,
        base: BaseParams,
        next_id: u64,
        latched: bool,
        auto: bool,
        pending_scale: Option<ScaleSpec>,
        migration_sources: Option<Vec<u64>>,
        scale_events: u64,
        compactions: u64,
        migrated_keys: u64,
    ) -> Self {
        let mut filter = ElasticMpcbf {
            generations,
            policy,
            base,
            next_id,
            latched,
            inserts_since_check: 0,
            last_spilled: 0,
            pending_scale,
            migration: None,
            auto,
            scale_events,
            compactions,
            migrated_keys,
        };
        filter.last_spilled = filter.active().filter.spilled_inserts();
        if let Some(sources) = migration_sources {
            filter.migration = Some(filter.rebuild_migration(sources));
        }
        filter
    }

    /// Deterministic seed for generation `id`.
    fn seed_for(&self, id: u64) -> u64 {
        self.base.seed ^ mix64(GENERATION_SALT.wrapping_add(id))
    }

    /// Builds the next generation for `spec`, assigning the next id. The
    /// shape is re-derived with the Eq.-(11) heuristic for the scaled
    /// size; if the heuristic refuses (degenerate ratios in tiny test
    /// shapes), the base generation's `n_max` is reused verbatim.
    fn new_generation(&mut self, spec: &ScaleSpec) -> Result<Generation<H>, ConfigError> {
        let id = self.next_id;
        let builder = || {
            MpcbfConfig::builder()
                .memory_bits(spec.memory_bits)
                .expected_items(spec.expected_items)
                .hashes(self.base.k)
                .accesses(self.base.g)
                .word_bits(self.base.w)
                .seed(self.seed_for(id))
        };
        let config = builder()
            .build()
            .or_else(|_| builder().n_max(self.base.n_max).build())?;
        self.next_id += 1;
        Ok(Generation {
            id,
            filter: ResilientMpcbf::new(config),
            roster: HashMap::new(),
            memory_bits: spec.memory_bits,
            expected_items: spec.expected_items,
        })
    }

    /// The active (newest) generation.
    fn active(&self) -> &Generation<H> {
        self.generations.last().expect("stack is never empty")
    }

    fn active_mut(&mut self) -> &mut Generation<H> {
        self.generations.last_mut().expect("stack is never empty")
    }

    /// Number of live generations in the stack.
    pub fn generation_count(&self) -> usize {
        self.generations.len()
    }

    /// Telemetry snapshot of every live generation, oldest first.
    pub fn generation_infos(&self) -> Vec<GenerationInfo> {
        self.generations
            .iter()
            .map(|g| GenerationInfo {
                id: g.id,
                items: g.filter.items(),
                memory_bits: g.memory_bits,
                fpr: g.filter.fpr_envelope(),
                spilling: g.filter.spill_occupancy() > 0,
            })
            .collect()
    }

    /// Net elements stored across the whole stack.
    pub fn items(&self) -> u64 {
        self.generations.iter().map(|g| g.filter.items()).sum()
    }

    /// The capacity policy driving the scale trigger.
    pub fn policy(&self) -> &CapacityPolicy {
        &self.policy
    }

    /// Lifetime count of generations opened by scale-up.
    pub fn scale_events(&self) -> u64 {
        self.scale_events
    }

    /// Lifetime count of completed compactions.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Lifetime count of keys migrated by compaction.
    pub fn migrated_keys(&self) -> u64 {
        self.migrated_keys
    }

    /// True while a compaction is draining old generations.
    pub fn compacting(&self) -> bool {
        self.migration.is_some()
    }

    /// Analytic false-positive envelope of the whole stack: the sum of
    /// each generation's envelope (union bound over the OR'd queries).
    /// Mid-migration keys are double-counted in source and target, so
    /// the sum remains a valid upper bound at every step.
    pub fn fpr_envelope(&self) -> f64 {
        self.generations
            .iter()
            .map(|g| g.filter.fpr_envelope())
            .sum()
    }

    /// Saturation snapshot of the *active* generation — the one the
    /// scale trigger watches. Older, draining generations no longer take
    /// inserts, so their pressure is not actionable.
    pub fn health(&self) -> HealthReport {
        self.active().filter.health()
    }

    /// The active generation's capacity pressure (see
    /// [`HealthReport::pressure`]).
    pub fn pressure(&self) -> f64 {
        self.health().pressure()
    }

    /// Structural self-check across every generation's storages.
    pub fn verify(&self) -> Result<(), FilterError> {
        for gen in &self.generations {
            gen.filter.verify()?;
        }
        Ok(())
    }

    /// The scale decision currently awaiting [`ElasticMpcbf::apply_scale`]
    /// (manual mode; always `None` in auto mode, which applies inline).
    pub fn scale_plan(&self) -> Option<ScaleSpec> {
        self.pending_scale
    }

    /// Opens a new generation sized to `spec` and makes it the active
    /// insert target; the previous active generation is sealed (takes no
    /// further inserts) until compaction drains it. Clears any pending
    /// plan and resets the trigger latch — the fresh generation starts
    /// unpressured.
    pub fn apply_scale(&mut self, spec: &ScaleSpec) -> Result<(), ConfigError> {
        let gen = self.new_generation(spec)?;
        self.generations.push(gen);
        self.pending_scale = None;
        self.latched = false;
        self.inserts_since_check = 0;
        self.last_spilled = 0;
        self.scale_events += 1;
        Ok(())
    }

    /// Starts draining every sealed generation into the active one.
    /// Returns `false` (and does nothing) if a compaction is already in
    /// flight or there is nothing to drain.
    pub fn begin_compaction(&mut self) -> bool {
        if self.migration.is_some() || self.generations.len() < 2 {
            return false;
        }
        let sources: Vec<u64> = self.generations[..self.generations.len() - 1]
            .iter()
            .map(|g| g.id)
            .collect();
        self.migration = Some(self.rebuild_migration(sources));
        true
    }

    /// Builds deterministic migration state for `source_ids`: the
    /// worklist is every key currently in a source roster, sorted by
    /// `(source id, key)`. Ids without a live generation are dropped.
    pub(crate) fn rebuild_migration(&self, source_ids: Vec<u64>) -> Migration {
        let live: Vec<u64> = source_ids
            .into_iter()
            .filter(|id| self.generations.iter().any(|g| g.id == *id))
            .collect();
        let mut worklist: Vec<(u64, Vec<u8>)> = Vec::new();
        for gen in &self.generations {
            if live.contains(&gen.id) {
                worklist.extend(gen.roster.keys().map(|k| (gen.id, k.clone())));
            }
        }
        worklist.sort_unstable();
        Migration {
            source_ids: live,
            worklist,
            cursor: 0,
        }
    }

    /// Migrates up to `max_keys` keys from the draining generations into
    /// the active one, returning how many keys actually moved. Each key
    /// is inserted into the target *before* it is removed from its
    /// source, so a query racing the step (in a wrapper that interleaves
    /// them) never observes the key absent. When the worklist is
    /// exhausted, the drained source generations are dropped from the
    /// stack and the compaction completes. Returns `0` once idle.
    pub fn step_compaction(&mut self, max_keys: usize) -> usize {
        let Some(mut migration) = self.migration.take() else {
            return 0;
        };
        let mut moved = 0usize;
        while moved < max_keys && migration.cursor < migration.worklist.len() {
            let (source_id, key) = migration.worklist[migration.cursor].clone();
            migration.cursor += 1;
            let Some(source_idx) = self.generations.iter().position(|g| g.id == source_id) else {
                continue;
            };
            // Re-read the live multiplicity at move time: removals since
            // the worklist snapshot may have drained this key.
            let count = match self.generations[source_idx].roster.get(&key) {
                Some(&c) if c > 0 => c,
                _ => continue,
            };
            // Copy-then-drain: the key lives in both generations for the
            // duration of this step, never in neither.
            for _ in 0..count {
                let active = self.active_mut();
                active
                    .filter
                    .insert_bytes_cost(&key)
                    .expect("resilient insert is lossless");
                *active.roster.entry(key.clone()).or_insert(0) += 1;
            }
            let source = &mut self.generations[source_idx];
            for _ in 0..count {
                source
                    .filter
                    .remove_bytes_cost(&key)
                    .expect("roster key must be removable from its generation");
            }
            source.roster.remove(&key);
            moved += 1;
            self.migrated_keys += 1;
        }
        if migration.cursor >= migration.worklist.len() {
            // Drained: drop the source generations and finish.
            self.generations
                .retain(|g| !migration.source_ids.contains(&g.id));
            debug_assert!(!self.generations.is_empty());
            self.compactions += 1;
        } else {
            self.migration = Some(migration);
        }
        moved
    }

    /// Computes the next-generation sizing from the active generation
    /// and the policy's growth factor.
    fn growth_spec(&self) -> ScaleSpec {
        let active = self.active();
        let grow = |v: u64| -> u64 {
            let scaled = (v as f64 * self.policy.growth).ceil();
            (scaled as u64).max(v.saturating_add(1))
        };
        let word = u64::from(self.base.w);
        let memory_bits = grow(active.memory_bits).div_ceil(word) * word;
        ScaleSpec {
            memory_bits,
            expected_items: grow(active.expected_items),
        }
    }

    /// Post-insert capacity trigger: probes the active generation's
    /// health every `check_interval` inserts (or immediately after a
    /// fresh spill), feeds it through the hysteresis latch, and on a
    /// rising edge either scales inline (auto) or parks a pending plan
    /// for the caller (manual).
    fn after_insert(&mut self) {
        self.inserts_since_check += 1;
        let spilled_now = self.active().filter.spilled_inserts();
        let due = self.inserts_since_check >= self.policy.check_interval
            || spilled_now > self.last_spilled;
        if due {
            self.inserts_since_check = 0;
            self.last_spilled = spilled_now;
            let health = self.active().filter.health();
            let was = self.latched;
            self.latched = self.policy.update(was, &health);
            if self.latched && self.generations.len() < self.policy.max_generations {
                let spec = self.growth_spec();
                if self.auto {
                    if self.apply_scale(&spec).is_ok() {
                        self.begin_compaction();
                    }
                } else if self.pending_scale.is_none() {
                    self.pending_scale = Some(spec);
                }
            }
        }
        if self.auto && self.migration.is_some() {
            self.step_compaction(AUTO_STEP_KEYS);
        }
    }
}

impl<H: Hasher128> Filter for ElasticMpcbf<H> {
    /// ORs the query across the stack, newest generation first (the
    /// newest holds the hottest keys); the cost sums every consulted
    /// generation, stopping at the first hit.
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut total = OpCost::zero();
        for gen in self.generations.iter().rev() {
            let (hit, cost) = gen.filter.contains_bytes_cost(key);
            total = total.add(cost);
            if hit {
                return (true, total);
            }
        }
        (false, total)
    }

    /// Lossless insert into the active generation, followed by the
    /// capacity trigger (and, in auto mode, a bounded compaction step).
    /// The reported cost is the insert's own; trigger probes and
    /// migration work are host-side bookkeeping outside the paper's
    /// word-access model.
    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let active = self.active_mut();
        let cost = active.filter.insert_bytes_cost(key)?;
        *active.roster.entry(key.to_vec()).or_insert(0) += 1;
        self.after_insert();
        Ok(cost)
    }

    fn memory_bits(&self) -> u64 {
        self.generations
            .iter()
            .map(|g| g.filter.memory_bits())
            .sum()
    }

    fn num_hashes(&self) -> u32 {
        self.base.k
    }
}

impl<H: Hasher128> CountingFilter for ElasticMpcbf<H> {
    /// Removes one copy of `key` from the newest generation whose roster
    /// holds it. The roster check is exact, so a remove can never
    /// decrement a generation that does not hold the key — the stacked
    /// equivalent of the resilient spill drain.
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let Some(idx) = self
            .generations
            .iter()
            .rposition(|g| g.roster.contains_key(key))
        else {
            return Err(FilterError::NotPresent);
        };
        let gen = &mut self.generations[idx];
        let cost = gen.filter.remove_bytes_cost(key)?;
        match gen.roster.get_mut(key) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                gen.roster.remove(key);
            }
        }
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> MpcbfConfig {
        MpcbfConfig::builder()
            .memory_bits(32_768)
            .expected_items(500)
            .hashes(3)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn grows_under_overload_with_zero_false_negatives() {
        let mut f: ElasticMpcbf = ElasticMpcbf::new(small_config(3));
        for i in 0..8_000u64 {
            f.insert(&i).unwrap();
        }
        assert!(f.scale_events() > 0, "10x overload must scale");
        for i in 0..8_000u64 {
            assert!(f.contains(&i), "false negative for {i} after scaling");
        }
        assert_eq!(f.items(), 8_000);
        assert!(f.fpr_envelope().is_finite());
        assert_eq!(f.verify(), Ok(()));
    }

    #[test]
    fn compaction_drains_sealed_generations() {
        let mut f: ElasticMpcbf = ElasticMpcbf::new(small_config(5));
        for i in 0..6_000u64 {
            f.insert(&i).unwrap();
        }
        // Push any in-flight migration to completion.
        while f.compacting() {
            f.step_compaction(1024);
        }
        assert!(f.compactions() > 0, "auto mode must have compacted");
        for i in 0..6_000u64 {
            assert!(f.contains(&i));
        }
        assert_eq!(f.items(), 6_000);
        // Idle stepping is a no-op.
        assert_eq!(f.step_compaction(64), 0);
    }

    #[test]
    fn removals_route_to_the_owning_generation() {
        let mut f: ElasticMpcbf = ElasticMpcbf::new(small_config(7));
        for i in 0..4_000u64 {
            f.insert(&i).unwrap();
        }
        assert!(f.generation_count() > 1, "need a real stack for this test");
        for i in 0..4_000u64 {
            f.remove(&i).unwrap();
        }
        assert_eq!(f.items(), 0);
        assert_eq!(f.remove(&0u64), Err(FilterError::NotPresent));
    }

    #[test]
    fn duplicate_copies_survive_migration() {
        let mut f: ElasticMpcbf = ElasticMpcbf::new(small_config(11));
        for _ in 0..3 {
            f.insert(&"hot").unwrap();
        }
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        while f.compacting() {
            f.step_compaction(1024);
        }
        for _ in 0..3 {
            f.remove(&"hot").unwrap();
        }
        assert_eq!(f.remove(&"hot"), Err(FilterError::NotPresent));
    }

    #[test]
    fn manual_mode_parks_a_plan_instead_of_scaling() {
        let mut f: ElasticMpcbf =
            ElasticMpcbf::manual(small_config(13), CapacityPolicy::default()).unwrap();
        for i in 0..6_000u64 {
            f.insert(&i).unwrap();
        }
        assert_eq!(f.generation_count(), 1, "manual mode never scales inline");
        let spec = f.scale_plan().expect("overload must park a plan");
        assert!(spec.memory_bits > 32_768);
        f.apply_scale(&spec).unwrap();
        assert_eq!(f.generation_count(), 2);
        assert_eq!(f.scale_plan(), None, "apply clears the plan");
        assert!(f.begin_compaction());
        assert!(!f.begin_compaction(), "one compaction at a time");
        while f.step_compaction(512) > 0 {}
        assert_eq!(f.generation_count(), 1);
        for i in 0..6_000u64 {
            assert!(f.contains(&i));
        }
    }

    #[test]
    fn envelope_shrinks_when_compaction_finishes() {
        let mut f: ElasticMpcbf =
            ElasticMpcbf::manual(small_config(17), CapacityPolicy::default()).unwrap();
        for i in 0..6_000u64 {
            f.insert(&i).unwrap();
        }
        let spec = f.scale_plan().unwrap();
        f.apply_scale(&spec).unwrap();
        f.begin_compaction();
        let stacked = f.fpr_envelope();
        while f.step_compaction(512) > 0 {}
        // One right-sized generation bounds tighter than the saturated
        // stack did (the drained generation's term vanished).
        assert!(
            f.fpr_envelope() < stacked,
            "post-compaction envelope {} must beat stacked {}",
            f.fpr_envelope(),
            stacked
        );
    }

    #[test]
    fn removals_during_migration_stay_consistent() {
        let mut f: ElasticMpcbf =
            ElasticMpcbf::manual(small_config(19), CapacityPolicy::default()).unwrap();
        for i in 0..4_000u64 {
            f.insert(&i).unwrap();
        }
        let spec = f.scale_plan().unwrap();
        f.apply_scale(&spec).unwrap();
        f.begin_compaction();
        f.step_compaction(100);
        // Remove a slice spanning migrated and unmigrated keys mid-flight.
        for i in 0..2_000u64 {
            f.remove(&i).unwrap();
        }
        while f.step_compaction(512) > 0 {}
        for i in 0..2_000u64 {
            assert!(!f.contains(&i) || f.fpr_envelope() > 0.0); // may false-positive, never crash
            assert_eq!(f.remove(&i), Err(FilterError::NotPresent));
        }
        for i in 2_000..4_000u64 {
            assert!(f.contains(&i), "unremoved key {i} must survive");
        }
        assert_eq!(f.items(), 2_000);
    }

    #[test]
    fn generation_infos_report_the_stack() {
        let mut f: ElasticMpcbf = ElasticMpcbf::new(small_config(23));
        for i in 0..2_000u64 {
            f.insert(&i).unwrap();
        }
        let infos = f.generation_infos();
        assert_eq!(infos.len(), f.generation_count());
        assert_eq!(infos.iter().map(|g| g.items).sum::<u64>(), f.items());
        let ids: Vec<u64> = infos.iter().map(|g| g.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "stack is ordered oldest-first");
    }
}
