//! Streaming bulk build: cache-bucketed staging for billion-key ingest.
//!
//! The scalar insert path pays one *random* read-modify-write per probed
//! word. While the filter fits in cache that is the paper's one-access
//! ideal; past L3 it becomes a DRAM-latency (and, on virtual machines, a
//! page-walk) wall — every key stalls on a cold line. This module
//! rebuilds construction as a **staging pipeline** that converts those
//! random writes into near-linear memory traffic:
//!
//! ```text
//! key ─hash─▶ packed entry ─▶ L1 bucket ─▶ L2 bucket ─▶ L3 region ─▶ sweep
//!             (one u64)        (hot, 32KB)   (2MB)        (word range)
//! ```
//!
//! * **L1**: up to 64 buckets of 64 entries, indexed by the high bits of
//!   the target word — appends land in a cache-resident array.
//! * **L2**: up to 64 coarser buckets of 4096 entries. A full L1 bucket
//!   is spilled into its enclosing L2 bucket with one contiguous copy.
//! * **L3**: one bucket per *region* (a `2^s3 ≤ 32768`-word aligned
//!   range, so the region's words occupy at most 256 KB and stay
//!   cache-resident during a sweep), all striped through one flat
//!   lazily-faulted slab sized off the expected load so that in the
//!   common case a region buckets *every* one of its entries. A full L2
//!   bucket is split-appended by region; a full region bucket is
//!   **flushed** as one sweep over the region's words.
//!
//! The sweep itself has two tiers. A region's *first* sweep lands on
//! all-empty words, so it skips incremental increments entirely:
//! [`construct_entries`] histograms each word's slot counts (arrival
//! order, exact admission bookkeeping) and then serialises each word's
//! canonical encoding in one pass — the words are written once,
//! sequentially, never read. A region swept *again* (its bucket
//! overflowed mid-stream — only when pushes exceed the sizing hint) is
//! dirty, and [`apply_entries`] replays its entries in arrival order
//! through a statically inlined counter walk. No sort in that walk:
//! within a region every word access is a cache hit anyway, and arrival
//! order keeps same-word entries apart so their dependent walks
//! overlap.
//!
//! # Why sweeps preserve HCBF semantics
//!
//! Two facts about [`HcbfWord`] make out-of-order application exact:
//!
//! 1. **Every increment costs exactly one bit** (`used_bits = b1 +
//!    popcount`), so a word accepts increments while `total_count + need
//!    ≤ W::BITS − b1`. Whether a *sequential* insert succeeds therefore
//!    depends only on per-word running totals, never on bit layout — and
//!    the all-or-nothing rollback erases refused keys entirely.
//! 2. **The word encoding is canonical in the counter multiset**: any
//!    order of admitted increments produces bit-identical words.
//!
//! So it suffices to reproduce the sequential *admission decisions*; the
//! increments themselves may then be applied in any order. Two staging
//! modes cover all shapes:
//!
//! * **Deferred** (`g == 1` and the entry fits a `u64`): a key stages one
//!   packed entry `word ‖ k×slot` and admission is decided *at flush
//!   time* from the word's running total. This is exact because every
//!   bucket level preserves per-word arrival order (each word travels one
//!   FIFO bucket chain), and with `g = 1` admission is word-local.
//! * **Admitted** (`g ≥ 2`, or when the caller must learn refusals at
//!   push time, e.g. the resilient spill): a per-word occupancy array
//!   decides admission *at push time* in global arrival order — the exact
//!   sequential criterion "every distinct probed word still fits the
//!   key's whole need" — and only admitted probes are staged, so flushes
//!   apply unconditionally in any order.
//!
//! Refused keys count one `overflow` each, admitted keys one item, both
//! identical to the scalar loop — the `bulk_equivalence` suite pins
//! bit-for-bit equality across all three filter families.
//!
//! # Parallel finish
//!
//! [`BulkBuilder::finish_with`] drains L1/L2 into L3 and hands the caller
//! disjoint [`RegionJob`]s — each owns a region's staged entries *and*
//! the mutable word slice it sweeps — so an executor (see
//! `mpcbf-concurrent`) can run regions on scoped threads with no locks
//! and no false sharing. Regions are independent even in deferred mode
//! because admission is word-local there.

use crate::config::MpcbfConfig;
use crate::hcbf::HcbfWord;
use crate::mpcbf::Mpcbf;
use crate::plan::PlanBuffer;
use crate::resilient::ResilientMpcbf;
use crate::{split_hashes, GROUP_SALT, WORD_SALT};
use mpcbf_bitvec::{advise_huge_slice, AlignedVec};
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use std::marker::PhantomData;
use std::sync::Arc;

/// L1 geometry: up to `2^L1_REGION_BITS` hot buckets of `L1_CAP`
/// entries — 64 × 64 × 8 B = 32 KB flat, sized to stay resident in L1d
/// so the per-key append never leaves the first cache level.
const L1_REGION_BITS: u32 = 6;
const L1_CAP: usize = 64;

/// L2 geometry: up to `2^L2_REGION_BITS` buckets of `L2_CAP` entries.
const L2_REGION_BITS: u32 = 6;
const L2_CAP: usize = 4096;

/// L3 regions span at most `2^L3_REGION_BITS` words (a 256 KB window
/// of the filter), so every word a flush's sweep probes stays resident
/// in L2 — and each L2-bucket spill fans out over few region tails,
/// keeping the append streams long and TLB-friendly on huge builds.
const L3_REGION_BITS: u32 = 15;

/// Fallback region-bucket density (staged entries per region word) when
/// the caller gives no expected-key hint. [`BulkStage::with_expected`]
/// sizes the density off the expected load instead, with head-room, so
/// that in the common case a region buckets *every* one of its entries
/// and flushes exactly once — onto still-empty words, where the sweep
/// can construct each word directly instead of walking increments
/// (see [`construct_entries`]). A bucket that does overflow mid-stream
/// flushes early and its region falls back to the incremental walk;
/// only speed is lost, never exactness.
const L3_MIN_DENSITY: usize = 2;

/// In-word slot indices are `< b1 ≤ 63`, so six bits pack one.
const SLOT_BITS: u32 = 6;

/// Staging counters (spill/flush activity; admission totals live on the
/// built filter as `items()` / `overflows()`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkStats {
    /// Keys pushed into the builder.
    pub keys: u64,
    /// Full L1 buckets spilled into L2.
    pub l1_spills: u64,
    /// Full L2 buckets split-appended into L3 regions.
    pub l2_spills: u64,
    /// Region sweeps executed (mid-stream and final).
    pub flushes: u64,
}

/// How admission is decided (see the module docs).
enum Mode {
    /// `g == 1`: entries carry the whole key, refusal decided at flush.
    Deferred,
    /// Per-word occupancy decides refusal at push time; only admitted
    /// probes are staged.
    Admitted { admit: Vec<u8> },
}

/// The staging hierarchy over one word array: routes packed probe
/// entries through L1/L2/L3 cache buckets and flushes full regions as
/// cache-resident sweeps.
///
/// This is the building block shared by [`BulkBuilder`] (one `Mpcbf`
/// word array) and the sharded builder in `mpcbf-concurrent` (one stage
/// per shard sub-filter). The caller owns the words and passes them to
/// every call that may flush.
pub struct BulkStage {
    l: u64,
    k: u32,
    g: u32,
    b1: u32,
    /// Increment capacity of one word: `W::BITS − b1`.
    cap: u32,
    mode: Mode,
    /// Word-field shift of a packed entry (`6k` deferred, `6` admitted).
    word_shift: u32,
    /// Region shifts: `word >> sN` = bucket index at level N.
    s1: u32,
    s2: u32,
    s3: u32,
    l1: Vec<u64>,
    l1_len: Vec<u8>,
    l2: Vec<u64>,
    l2_len: Vec<u16>,
    /// One flat hugepage-advised slab holding every region bucket at a
    /// fixed `l3_cap`-entry stride (bucket `r3` = slab
    /// `[r3·l3_cap, r3·l3_cap + l3_len[r3])`). Flat beats a
    /// vec-of-vecs twice over: the zeroed allocation is faulted in
    /// lazily, and one `madvise(MADV_HUGEPAGE)` covers all the tails —
    /// the random 8-byte appends of the L2 split are exactly the access
    /// pattern 4 KB pages punish with a TLB miss each. A plain `Vec`,
    /// deliberately: `vec![0u64; n]` rides `calloc`'s untouched zero
    /// pages, where a cache-aligned allocation would eagerly `memset`
    /// the worst-case gigabytes (see [`advise_huge_slice`]).
    l3: Vec<u64>,
    l3_len: Vec<u32>,
    l3_cap: usize,
    /// Regions already swept at least once. A fresh region's words are
    /// still all-empty (the stage's contract: it owns every write to the
    /// word array), so its first sweep may *construct* words from slot
    /// histograms; a dirty region must take the incremental walk.
    dirty: Vec<bool>,
    /// Histogram scratch reused across this stage's own sweeps.
    scratch: SweepScratch,
    items: u64,
    refused: u64,
    stats: BulkStats,
}

/// Bits needed to index `l` words (0 for `l == 1`).
fn index_bits(l: u64) -> u32 {
    64 - (l - 1).leading_zeros()
}

impl BulkStage {
    /// A stage over an `l`-word array with the given probe shape,
    /// picking deferred staging when the shape allows it.
    ///
    /// # Panics
    /// Panics if `l == 0`, `k` or `g` are out of the planner's range, or
    /// `b1` is not in `1..64`.
    pub fn new(l: u64, k: u32, g: u32, b1: u32) -> Self {
        let deferred = g == 1 && SLOT_BITS * k + index_bits(l) <= 64;
        Self::with_mode(l, k, g, b1, deferred, L3_MIN_DENSITY)
    }

    /// [`BulkStage::new`] with region buckets sized for `expected` keys:
    /// 1.5× the expected entries-per-word plus one, so a region ingests
    /// its whole expected share without a mid-stream flush and the final
    /// sweep lands on still-empty words, unlocking direct word
    /// construction (see [`construct_entries`]).
    pub fn with_expected(l: u64, k: u32, g: u32, b1: u32, expected: u64) -> Self {
        let deferred = g == 1 && SLOT_BITS * k + index_bits(l) <= 64;
        let epw = expected.div_ceil(l.max(1)) as usize;
        let density = (epw + epw / 2 + 1).clamp(L3_MIN_DENSITY, 128);
        Self::with_mode(l, k, g, b1, deferred, density)
    }

    /// A stage that always decides admission at push time, for callers
    /// that must observe refusals per key (the resilient spill path).
    pub fn admitted(l: u64, k: u32, g: u32, b1: u32) -> Self {
        Self::with_mode(l, k, g, b1, false, L3_MIN_DENSITY)
    }

    /// [`BulkStage::admitted`] with expectation-sized region buckets
    /// (`k` staged probes per key — admitted entries carry one probe
    /// each, unlike the one-entry-per-key deferred packing).
    pub fn admitted_with_expected(l: u64, k: u32, g: u32, b1: u32, expected: u64) -> Self {
        let epw = (expected.saturating_mul(u64::from(k))).div_ceil(l.max(1)) as usize;
        let density = (epw + epw / 2 + 1).clamp(L3_MIN_DENSITY, 128);
        Self::with_mode(l, k, g, b1, false, density)
    }

    fn with_mode(l: u64, k: u32, g: u32, b1: u32, deferred: bool, density: usize) -> Self {
        assert!(l >= 1, "empty word array");
        assert!((1..=64).contains(&k) && g >= 1 && g <= k, "probe shape");
        assert!((1..64).contains(&b1), "b1 = {b1} out of 1..64");
        let wb = index_bits(l);
        let s1 = wb.saturating_sub(L1_REGION_BITS);
        let s2 = wb.saturating_sub(L2_REGION_BITS);
        let s3 = wb.min(L3_REGION_BITS);
        let r1 = l.div_ceil(1 << s1) as usize;
        let r2 = l.div_ceil(1 << s2) as usize;
        let r3 = l.div_ceil(1 << s3) as usize;
        let (mode, word_shift) = if deferred {
            (Mode::Deferred, SLOT_BITS * k)
        } else {
            (
                Mode::Admitted {
                    admit: vec![0u8; l as usize],
                },
                SLOT_BITS,
            )
        };
        BulkStage {
            l,
            k,
            g,
            b1,
            cap: 64 - b1,
            mode,
            word_shift,
            s1,
            s2,
            s3,
            l1: vec![0; r1 * L1_CAP],
            l1_len: vec![0; r1],
            l2: vec![0; r2 * L2_CAP],
            l2_len: vec![0; r2],
            l3: {
                let mut slab = vec![0u64; r3 * (density << s3)];
                advise_huge_slice(&mut slab);
                slab
            },
            l3_len: vec![0; r3],
            l3_cap: density << s3,
            dirty: vec![false; r3],
            scratch: SweepScratch::new(),
            items: 0,
            refused: 0,
            stats: BulkStats::default(),
        }
    }

    /// True when admission is decided at flush time.
    pub fn is_deferred(&self) -> bool {
        matches!(self.mode, Mode::Deferred)
    }

    /// Keys admitted so far. Exact only after the stage is drained
    /// (deferred refusals are discovered at flush time).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Keys refused so far (same caveat as [`BulkStage::items`]).
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Spill/flush counters.
    pub fn stats(&self) -> BulkStats {
        self.stats
    }

    /// Hashes and stages one probe digest (the full 128-bit digest for a
    /// plain filter, the low 112 bits for a shard sub-filter). Returns
    /// `false` iff the key was refused — only ever at push time in
    /// admitted mode; deferred mode always returns `true` and tallies
    /// refusals during flushes.
    #[inline]
    pub fn push_digest(&mut self, words: &mut [HcbfWord<u64>], digest: u128) -> bool {
        self.stats.keys += 1;
        let mut picker = DoubleHasher::with_salt(digest, WORD_SALT, self.l);
        if matches!(self.mode, Mode::Deferred) {
            let word = picker.next_index() as u64;
            let mut inner = DoubleHasher::with_salt(digest, GROUP_SALT, self.b1 as u64);
            let mut entry = word << self.word_shift;
            for j in 0..self.k {
                entry |= (inner.next_index() as u64) << (SLOT_BITS * j);
            }
            self.route(words, entry);
            true
        } else {
            let mut probe_words = [0u32; 64];
            let mut slots = [0u32; 64];
            let mut cursor = 0usize;
            for t in 0..self.g {
                let word = picker.next_index() as u32;
                let k_t = split_hashes(self.k, self.g, t);
                let mut inner =
                    DoubleHasher::with_salt(digest, GROUP_SALT ^ u64::from(t), self.b1 as u64);
                for _ in 0..k_t {
                    probe_words[cursor] = word;
                    slots[cursor] = inner.next_index() as u32;
                    cursor += 1;
                }
            }
            self.stage_admitted(words, &probe_words[..cursor], &slots[..cursor])
        }
    }

    /// Hashes and stages a whole chunk of probe digests, returning how
    /// many were admitted so far (see [`BulkStage::push_digest`] for the
    /// deferred-mode caveat). Behaves exactly like pushing each digest
    /// singly, but keeps the deferred hot loop inside one call — the
    /// per-key entry point costs a cross-crate call per key, which at
    /// streaming rates is a measurable fraction of the budget.
    pub fn push_digests(&mut self, words: &mut [HcbfWord<u64>], digests: &[u128]) -> u64 {
        if matches!(self.mode, Mode::Deferred) {
            self.stats.keys += digests.len() as u64;
            if self.k == 3 {
                // Unrolled MPCBF-1 shape: three probe draws, no slot loop.
                for &digest in digests {
                    let mut picker = DoubleHasher::with_salt(digest, WORD_SALT, self.l);
                    let word = picker.next_index() as u64;
                    let mut inner = DoubleHasher::with_salt(digest, GROUP_SALT, self.b1 as u64);
                    let entry = (word << self.word_shift)
                        | (inner.next_index() as u64)
                        | ((inner.next_index() as u64) << SLOT_BITS)
                        | ((inner.next_index() as u64) << (2 * SLOT_BITS));
                    self.route(words, entry);
                }
            } else {
                for &digest in digests {
                    let mut picker = DoubleHasher::with_salt(digest, WORD_SALT, self.l);
                    let word = picker.next_index() as u64;
                    let mut inner = DoubleHasher::with_salt(digest, GROUP_SALT, self.b1 as u64);
                    let mut entry = word << self.word_shift;
                    for j in 0..self.k {
                        entry |= (inner.next_index() as u64) << (SLOT_BITS * j);
                    }
                    self.route(words, entry);
                }
            }
            digests.len() as u64
        } else {
            let mut admitted = 0u64;
            for &digest in digests {
                admitted += u64::from(self.push_digest(words, digest));
            }
            admitted
        }
    }

    /// Stages one pre-planned key: `plan_words` are its `g` target words
    /// and `slots` its `k` in-word positions, both in
    /// [`PlanBuffer`] layout (group `t` owns the next
    /// `split_hashes(k, g, t)` slots). Same contract as
    /// [`BulkStage::push_digest`].
    #[inline]
    pub fn push_planned(
        &mut self,
        words: &mut [HcbfWord<u64>],
        plan_words: &[u32],
        slots: &[u32],
    ) -> bool {
        debug_assert_eq!(plan_words.len(), self.g as usize);
        debug_assert_eq!(slots.len(), self.k as usize);
        self.stats.keys += 1;
        if matches!(self.mode, Mode::Deferred) {
            let mut entry = u64::from(plan_words[0]) << self.word_shift;
            for (j, &slot) in slots.iter().enumerate() {
                entry |= u64::from(slot) << (SLOT_BITS * j as u32);
            }
            self.route(words, entry);
            true
        } else {
            let mut probe_words = [0u32; 64];
            let mut cursor = 0usize;
            for t in 0..self.g {
                let k_t = split_hashes(self.k, self.g, t);
                for _ in 0..k_t {
                    probe_words[cursor] = plan_words[t as usize];
                    cursor += 1;
                }
            }
            self.stage_admitted(words, &probe_words[..cursor], slots)
        }
    }

    /// Admitted-mode admission: the key needs `probe_words.iter().count()`
    /// increments spread over its distinct words; admit iff every
    /// distinct word still has room for its whole share — exactly the
    /// sequential criterion (rollback makes partial application
    /// unobservable, and each increment costs one bit).
    fn stage_admitted(
        &mut self,
        words: &mut [HcbfWord<u64>],
        probe_words: &[u32],
        slots: &[u32],
    ) -> bool {
        let Mode::Admitted { admit } = &mut self.mode else {
            unreachable!("stage_admitted called in deferred mode");
        };
        // Per-distinct-word need (k ≤ 64, g typically ≤ 4 — a scan wins).
        let mut distinct = [0u32; 64];
        let mut need = [0u8; 64];
        let mut n = 0usize;
        for &w in probe_words {
            match distinct[..n].iter().position(|&d| d == w) {
                Some(i) => need[i] += 1,
                None => {
                    distinct[n] = w;
                    need[n] = 1;
                    n += 1;
                }
            }
        }
        for i in 0..n {
            if u32::from(admit[distinct[i] as usize]) + u32::from(need[i]) > self.cap {
                self.refused += 1;
                return false;
            }
        }
        for i in 0..n {
            admit[distinct[i] as usize] += need[i];
        }
        self.items += 1;
        for (&w, &slot) in probe_words.iter().zip(slots) {
            let entry = (u64::from(w) << SLOT_BITS) | u64::from(slot);
            self.route(words, entry);
        }
        true
    }

    /// Appends one packed entry to its L1 bucket, spilling on overflow.
    #[inline]
    fn route(&mut self, words: &mut [HcbfWord<u64>], entry: u64) {
        let r1 = ((entry >> self.word_shift) >> self.s1) as usize;
        let len = self.l1_len[r1] as usize;
        self.l1[r1 * L1_CAP + len] = entry;
        self.l1_len[r1] = (len + 1) as u8;
        if len + 1 == L1_CAP {
            self.spill_l1(words, r1);
        }
    }

    /// Copies L1 bucket `r1` into its enclosing L2 bucket (one
    /// contiguous move; `s2 ≥ s1` makes the destination unique).
    /// Out-of-line: runs once per `L1_CAP` pushes — keeping it out of
    /// the inlined hot path lets the append loop stay tight.
    #[inline(never)]
    fn spill_l1(&mut self, words: &mut [HcbfWord<u64>], r1: usize) {
        let n = self.l1_len[r1] as usize;
        if n == 0 {
            return;
        }
        self.stats.l1_spills += 1;
        let r2 = r1 >> (self.s2 - self.s1);
        if self.l2_len[r2] as usize + n > L2_CAP {
            self.spill_l2(words, r2);
        }
        let dst = r2 * L2_CAP + self.l2_len[r2] as usize;
        let src = r1 * L1_CAP;
        self.l2[dst..dst + n].copy_from_slice(&self.l1[src..src + n]);
        self.l2_len[r2] += n as u16;
        self.l1_len[r1] = 0;
    }

    /// Splits L2 bucket `r2` into its regions' L3 buckets, flushing any
    /// region bucket that reaches the density cap.
    fn spill_l2(&mut self, words: &mut [HcbfWord<u64>], r2: usize) {
        let n = self.l2_len[r2] as usize;
        if n == 0 {
            return;
        }
        self.stats.l2_spills += 1;
        for i in 0..n {
            let entry = self.l2[r2 * L2_CAP + i];
            let r3 = ((entry >> self.word_shift) >> self.s3) as usize;
            let len = self.l3_len[r3] as usize;
            self.l3[r3 * self.l3_cap + len] = entry;
            self.l3_len[r3] = (len + 1) as u32;
            if len + 1 == self.l3_cap {
                self.flush_region(words, r3);
            }
        }
        self.l2_len[r2] = 0;
    }

    /// Applies region `r3`'s staged entries as one cache-resident sweep:
    /// direct word construction on the region's first sweep (its words
    /// are still empty), the incremental walk afterwards.
    fn flush_region(&mut self, words: &mut [HcbfWord<u64>], r3: usize) {
        let len = self.l3_len[r3] as usize;
        if len == 0 {
            return;
        }
        self.stats.flushes += 1;
        let base = (r3 as u64) << self.s3;
        let rw = ((1u64 << self.s3).min(self.l - base)) as usize;
        let region = &mut words[base as usize..base as usize + rw];
        let deferred = self.is_deferred().then_some(self.k);
        let start = r3 * self.l3_cap;
        let entries = &self.l3[start..start + len];
        let fresh = !std::mem::replace(&mut self.dirty[r3], true);
        let (items, refused) = if fresh {
            construct_entries(
                entries,
                region,
                base,
                self.word_shift,
                deferred,
                self.b1,
                self.cap,
                &mut self.scratch,
            )
        } else {
            apply_entries(
                entries,
                region,
                base,
                self.word_shift,
                deferred,
                self.b1,
                self.cap,
            )
        };
        self.items += items;
        self.refused += refused;
        self.l3_len[r3] = 0;
    }

    /// Drains every bucket level and sweeps every region, completing the
    /// build against `words` on the calling thread.
    pub fn finish_into(&mut self, words: &mut [HcbfWord<u64>]) {
        let mut jobs = self.finish_jobs(words);
        let mut scratch = SweepScratch::new();
        for job in &mut jobs {
            job.run_with(&mut scratch);
        }
        self.absorb_jobs(&jobs);
    }

    /// Drains L1 and L2 into the region buckets, then hands out one
    /// [`RegionJob`] per non-empty region. Jobs own disjoint word slices
    /// and may run on different threads; afterwards pass them to
    /// [`BulkStage::absorb_jobs`] to fold their admission tallies back.
    pub fn finish_jobs<'w>(&mut self, words: &'w mut [HcbfWord<u64>]) -> Vec<RegionJob<'w>> {
        for r1 in 0..self.l1_len.len() {
            self.spill_l1(words, r1);
        }
        for r2 in 0..self.l2_len.len() {
            self.spill_l2(words, r2);
        }
        let deferred = self.is_deferred().then_some(self.k);
        // Freeze the slab behind an `Arc` so every job can read its own
        // bucket range while the jobs run on different threads; the
        // stage keeps going afterwards with an empty slab (it is fully
        // drained — nothing routes to L3 after the spills above).
        let slab = Arc::new(std::mem::take(&mut self.l3));
        let mut jobs = Vec::new();
        let mut rest = words;
        for r3 in 0..self.l3_len.len() {
            let base = (r3 as u64) << self.s3;
            let rw = ((1u64 << self.s3).min(self.l - base)) as usize;
            let (region, tail) = rest.split_at_mut(rw);
            rest = tail;
            let len = self.l3_len[r3] as usize;
            if len == 0 {
                continue;
            }
            self.l3_len[r3] = 0;
            self.stats.flushes += 1;
            jobs.push(RegionJob {
                slab: slab.clone(),
                start: r3 * self.l3_cap,
                len,
                region,
                base,
                word_shift: self.word_shift,
                deferred,
                fresh: !std::mem::replace(&mut self.dirty[r3], true),
                b1: self.b1,
                cap: self.cap,
                items: 0,
                refused: 0,
            });
        }
        jobs
    }

    /// Folds executed jobs' admission tallies into the stage totals.
    pub fn absorb_jobs(&mut self, jobs: &[RegionJob<'_>]) {
        for job in jobs {
            self.items += job.items;
            self.refused += job.refused;
        }
    }
}

/// One region's final sweep, detached from the stage so an executor can
/// run disjoint regions on scoped threads: owns the staged entries and
/// the mutable word slice they target.
pub struct RegionJob<'w> {
    /// The stage's frozen staging slab, shared read-only between jobs;
    /// this job's entries are `slab[start..start + len]`.
    slab: Arc<Vec<u64>>,
    start: usize,
    len: usize,
    region: &'w mut [HcbfWord<u64>],
    base: u64,
    word_shift: u32,
    deferred: Option<u32>,
    /// True when this region has never been swept: its words are still
    /// empty, so the sweep may construct them from slot histograms.
    fresh: bool,
    b1: u32,
    cap: u32,
    /// Keys admitted by this sweep (deferred mode only).
    pub items: u64,
    /// Keys refused by this sweep (deferred mode only).
    pub refused: u64,
}

impl RegionJob<'_> {
    /// Staged entries this job will apply.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the job has nothing to apply.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Applies the region's entries. Idempotence is *not* provided —
    /// run once.
    pub fn run(&mut self) {
        self.run_with(&mut SweepScratch::new());
    }

    /// [`RegionJob::run`] with caller-owned histogram scratch, so an
    /// executor draining many jobs on one thread allocates it once.
    pub fn run_with(&mut self, scratch: &mut SweepScratch) {
        let entries = &self.slab[self.start..self.start + self.len];
        let (items, refused) = if self.fresh {
            construct_entries(
                entries,
                &mut *self.region,
                self.base,
                self.word_shift,
                self.deferred,
                self.b1,
                self.cap,
                scratch,
            )
        } else {
            apply_entries(
                entries,
                &mut *self.region,
                self.base,
                self.word_shift,
                self.deferred,
                self.b1,
                self.cap,
            )
        };
        self.items += items;
        self.refused += refused;
        self.len = 0;
    }
}

/// Applies `entries` to their region in staged (arrival) order as one
/// cache-resident sweep, returning the (items, refused) admission tally
/// — nonzero only in deferred mode, where each entry is one whole key
/// and admission is decided here against the word's running total. The
/// bucket hierarchy appends FIFO at every level, so a bucket holds each
/// word's entries in arrival order and the tally matches the scalar
/// loop exactly. No sort: the region spans at most `2^L3_REGION_BITS`
/// words, small enough that every probed word stays cache-hot, and
/// applying in bucket order lets the walks of neighbouring entries
/// overlap (sorting by word was measured slower — it puts same-word
/// entries back to back, serialising their dependent hierarchy walks,
/// and pays three extra passes over the entries to boot).
fn apply_entries(
    entries: &[u64],
    region: &mut [HcbfWord<u64>],
    base: u64,
    word_shift: u32,
    deferred: Option<u32>,
    b1: u32,
    cap: u32,
) -> (u64, u64) {
    let mut items = 0u64;
    let mut refused = 0u64;
    // Warm the region's cachelines with one linear pass before the
    // random-order sweep: the words have been cold since this region's
    // previous flush, and a bandwidth-bound stream beats ~one
    // latency-bound DRAM miss per line scattered through the sweep.
    // (One load per 64-byte line; `black_box` keeps the pass alive.)
    if entries.len() >= region.len() / 4 {
        let mut warm = 0u64;
        for word in region.iter().step_by(8) {
            warm ^= u64::from(word.total_count());
        }
        std::hint::black_box(warm);
    }
    match deferred {
        // `k == 3` is the classic MPCBF-1 shape (and the bench config);
        // unrolling it drops the per-slot loop counter and lets the
        // three dependent walks schedule as straight-line code.
        Some(3) => {
            for &e in entries {
                let w = ((e >> word_shift) - base) as usize;
                // Work on a register-held copy: the `k` dependent walks
                // then never round-trip through the store buffer.
                let mut word = region[w];
                if word.total_count() + 3 > cap {
                    refused += 1;
                    continue;
                }
                word.increment_inline((e & 0x3f) as u32, b1)
                    .expect("capacity checked against the running total");
                word.increment_inline(((e >> SLOT_BITS) & 0x3f) as u32, b1)
                    .expect("capacity checked against the running total");
                word.increment_inline(((e >> (2 * SLOT_BITS)) & 0x3f) as u32, b1)
                    .expect("capacity checked against the running total");
                region[w] = word;
                items += 1;
            }
        }
        Some(k) => {
            for &e in entries {
                let w = ((e >> word_shift) - base) as usize;
                let mut word = region[w];
                if word.total_count() + k > cap {
                    refused += 1;
                    continue;
                }
                for j in 0..k {
                    let slot = ((e >> (SLOT_BITS * j)) & 0x3f) as u32;
                    word.increment_inline(slot, b1)
                        .expect("capacity checked against the running total");
                }
                region[w] = word;
                items += 1;
            }
        }
        None => {
            for &e in entries {
                let w = ((e >> word_shift) - base) as usize;
                let slot = (e & 0x3f) as u32;
                region[w]
                    .increment_inline(slot, b1)
                    .expect("entry was admitted at push time");
            }
        }
    }
    (items, refused)
}

/// Reusable per-thread scratch for [`construct_entries`]: slot
/// histograms for every word of one region (≤ `2^L3_REGION_BITS` words,
/// so ≤ 2 MB of counts — cache-resident through a sweep). Kept all-zero
/// between sweeps: the serialisation pass re-zeroes exactly the rows it
/// consumed, so reuse costs nothing.
pub struct SweepScratch {
    /// Per word: running increment total (admission bookkeeping).
    totals: Vec<u8>,
    /// Per word: bitmap of touched slots. A word's 64 slot counts span
    /// exactly one cache line, and the bitmap lets serialisation visit
    /// only the populated ones.
    mask: Vec<u64>,
    /// Per word × 64 slots: the count histogram (counts ≤ `cap` < 64).
    counts: Vec<u8>,
}

impl SweepScratch {
    /// Empty scratch; grows on first use.
    pub fn new() -> Self {
        SweepScratch {
            totals: Vec::new(),
            mask: Vec::new(),
            counts: Vec::new(),
        }
    }

    fn ensure(&mut self, words: usize) {
        if self.totals.len() < words {
            self.totals.resize(words, 0);
            self.mask.resize(words, 0);
            self.counts.resize(words * 64, 0);
        }
    }
}

impl Default for SweepScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// [`apply_entries`] for a region whose words are **all still empty**
/// (its first sweep): instead of walking `k` dependent carried-rank
/// increments per key, histogram the slot counts per word and emit each
/// word's canonical encoding in one serialisation pass.
///
/// Exactness rests on the same two invariants as the walk (see the
/// module docs): admission depends only on per-word running totals —
/// reproduced here entry-by-entry in arrival order — and the HCBF word
/// encoding is canonical in the counter multiset, so building the final
/// multiset directly yields bit-identical words. The encoding itself
/// follows the level layout: level 1 is the slot bitmap; level `j ≥ 2`
/// holds one bit per chain that reached depth `j − 1`, in ascending
/// slot order (children are allocated in rank order, which inductively
/// preserves slot order), set iff the chain continues to depth `j`.
///
/// The payoff over the walk is structural: the entry pass touches three
/// resident scratch lines per key instead of executing ~`k` serial
/// 20-to-40-cycle rank walks, and the region's words are *written once,
/// sequentially* — never read, never warmed.
#[allow(clippy::too_many_arguments)]
fn construct_entries(
    entries: &[u64],
    region: &mut [HcbfWord<u64>],
    base: u64,
    word_shift: u32,
    deferred: Option<u32>,
    b1: u32,
    cap: u32,
    scratch: &mut SweepScratch,
) -> (u64, u64) {
    scratch.ensure(region.len());
    let SweepScratch {
        totals,
        mask,
        counts,
    } = scratch;
    let mut items = 0u64;
    let mut refused = 0u64;
    match deferred {
        // The unrolled MPCBF-1 shape, mirroring `apply_entries`.
        Some(3) => {
            for &e in entries {
                let w = ((e >> word_shift) - base) as usize;
                let t = u32::from(totals[w]);
                if t + 3 > cap {
                    refused += 1;
                    continue;
                }
                totals[w] = (t + 3) as u8;
                items += 1;
                let (s0, s1, s2) = (
                    (e & 0x3f) as usize,
                    ((e >> SLOT_BITS) & 0x3f) as usize,
                    ((e >> (2 * SLOT_BITS)) & 0x3f) as usize,
                );
                let row = w * 64;
                counts[row + s0] += 1;
                counts[row + s1] += 1;
                counts[row + s2] += 1;
                mask[w] |= (1 << s0) | (1 << s1) | (1 << s2);
            }
        }
        Some(k) => {
            for &e in entries {
                let w = ((e >> word_shift) - base) as usize;
                let t = u32::from(totals[w]);
                if t + k > cap {
                    refused += 1;
                    continue;
                }
                totals[w] = (t + k) as u8;
                items += 1;
                let row = w * 64;
                for j in 0..k {
                    let s = ((e >> (SLOT_BITS * j)) & 0x3f) as usize;
                    counts[row + s] += 1;
                    mask[w] |= 1 << s;
                }
            }
        }
        // Admitted mode: one pre-admitted probe per entry, no tally.
        None => {
            for &e in entries {
                let w = ((e >> word_shift) - base) as usize;
                let s = (e & 0x3f) as usize;
                counts[w * 64 + s] += 1;
                mask[w] |= 1 << s;
            }
        }
    }
    // Serialise: one sequential pass over the region, writing only
    // populated words and re-zeroing their scratch rows behind itself.
    for (w, word) in region.iter_mut().enumerate() {
        let m = mask[w];
        if m == 0 {
            continue;
        }
        mask[w] = 0;
        totals[w] = 0;
        let row = w * 64;
        // Chains in ascending slot order, consuming the histogram.
        let mut chain = [0u8; 64];
        let mut n = 0usize;
        let mut rest = m;
        while rest != 0 {
            let s = rest.trailing_zeros() as usize;
            chain[n] = counts[row + s];
            counts[row + s] = 0;
            n += 1;
            rest &= rest - 1;
        }
        // Level 1 is the slot bitmap itself; level j ≥ 2 appends one
        // bit per chain of depth ≥ j − 1, set iff depth ≥ j.
        let mut bits = m;
        let mut pos = b1;
        let mut j = 2u8;
        while n > 0 {
            let mut kept = 0usize;
            for i in 0..n {
                let c = chain[i];
                if c >= j {
                    bits |= 1 << pos;
                    chain[kept] = c;
                    kept += 1;
                }
                pos += 1;
            }
            n = kept;
            j += 1;
        }
        debug_assert!(word.is_empty(), "construct sweep over a non-empty word");
        *word = HcbfWord::from_raw(bits);
    }
    (items, refused)
}

/// Streaming bulk builder for [`Mpcbf`]: push keys (singly or in
/// batches), then [`BulkBuilder::finish`] into a filter bit-for-bit
/// identical to a scalar insert loop over the same key stream.
///
/// ```
/// use mpcbf_core::{BulkBuilder, MpcbfConfig};
///
/// let config = MpcbfConfig::builder()
///     .memory_bits(1 << 20)
///     .expected_items(10_000)
///     .hashes(3)
///     .build()
///     .unwrap();
/// let mut builder: BulkBuilder = BulkBuilder::new(config);
/// for i in 0..10_000u64 {
///     builder.push(&i.to_le_bytes());
/// }
/// let filter = builder.finish();
/// // Every key is accounted for: admitted or (rarely) refused by a
/// // full word — exactly as the scalar insert loop would tally them.
/// assert_eq!(filter.items() + filter.overflows(), 10_000);
/// ```
pub struct BulkBuilder<H: Hasher128 = Murmur3> {
    config: MpcbfConfig,
    seed: u64,
    words: AlignedVec<HcbfWord<u64>>,
    stage: BulkStage,
    plans: PlanBuffer,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> BulkBuilder<H> {
    /// A builder for the configuration's shape (64-bit words).
    ///
    /// # Panics
    /// Panics if the configuration derives a non-64-bit word.
    pub fn new(config: MpcbfConfig) -> Self {
        let expected = config.expected_items();
        Self::with_stage(config, |s| {
            BulkStage::with_expected(s.0, s.1, s.2, s.3, expected)
        })
    }

    /// A builder whose stage always resolves admission at push time (the
    /// resilient bulk path needs per-key refusal feedback).
    fn admitted(config: MpcbfConfig) -> Self {
        let expected = config.expected_items();
        Self::with_stage(config, |s| {
            BulkStage::admitted_with_expected(s.0, s.1, s.2, s.3, expected)
        })
    }

    fn with_stage(
        config: MpcbfConfig,
        make: impl FnOnce((u64, u32, u32, u32)) -> BulkStage,
    ) -> Self {
        let shape = config.shape();
        assert_eq!(shape.w, 64, "bulk build requires 64-bit words");
        BulkBuilder {
            seed: config.seed(),
            // Hugepage-advised before the eager fill: at bulk scale the
            // word array runs to gigabytes, where 4 KB-fault churn costs
            // more than the fill itself — and the final sweeps write it
            // at scattered offsets.
            words: AlignedVec::filled_huge(shape.l as usize, HcbfWord::new()),
            stage: make((shape.l, shape.k, shape.g, shape.b1)),
            plans: PlanBuffer::new(),
            config,
            _hasher: PhantomData,
        }
    }

    /// Stages one key. Returns `false` iff the key is already known to
    /// be refused (admitted-mode stages only; deferred stages tally
    /// refusals at flush time and always return `true` here).
    pub fn push(&mut self, key: &[u8]) -> bool {
        let digest = H::hash128(self.seed, key);
        self.stage.push_digest(self.words.as_mut_slice(), digest)
    }

    /// Stages a chunk of keys through the tight digest loop
    /// ([`BulkStage::push_digests`]); the streaming entry point for
    /// ingest at rate. Digests are buffered in `plans`' scratch-free
    /// sibling: a plain reusable vector owned by the stage caller would
    /// do, but hashing into a local buffer per chunk keeps the API
    /// allocation-free for the common 8 Ki-key chunk size.
    pub fn push_chunk<K: AsRef<[u8]>>(&mut self, keys: &[K]) {
        let mut digests = [0u128; 256];
        for block in keys.chunks(digests.len()) {
            for (slot, key) in digests.iter_mut().zip(block) {
                *slot = H::hash128(self.seed, key.as_ref());
            }
            self.stage
                .push_digests(self.words.as_mut_slice(), &digests[..block.len()]);
        }
    }

    /// Stages a batch, hashing through the shared [`PlanBuffer`]
    /// pipeline (one planning pass, then staged appends).
    pub fn push_batch(&mut self, keys: &[&[u8]]) {
        let shape = self.config.shape();
        self.plans.plan_partitioned(
            keys.iter().map(|key| H::hash128(self.seed, key)),
            shape.l,
            shape.k,
            shape.g,
            u64::from(shape.b1),
        );
        for i in 0..self.plans.keys() {
            self.stage.push_planned(
                self.words.as_mut_slice(),
                self.plans.words_of(i),
                self.plans.slots_of(i),
            );
        }
    }

    /// Staging counters so far.
    pub fn stats(&self) -> BulkStats {
        self.stage.stats()
    }

    /// True when this builder's stage defers admission to flush time
    /// (see [`BulkStage::is_deferred`]).
    pub fn is_deferred(&self) -> bool {
        self.stage.is_deferred()
    }

    /// Completes the build on the calling thread.
    pub fn finish(self) -> Mpcbf<u64, H> {
        self.finish_with(|jobs| {
            let mut scratch = SweepScratch::new();
            for job in jobs {
                job.run_with(&mut scratch);
            }
        })
    }

    /// Completes the build through a caller-supplied executor: the
    /// closure receives one [`RegionJob`] per non-empty region (disjoint
    /// word slices — safe to run on scoped threads) and must run each
    /// exactly once. `mpcbf-concurrent` provides the threaded executor.
    pub fn finish_with(mut self, exec: impl for<'w> FnOnce(&mut [RegionJob<'w>])) -> Mpcbf<u64, H> {
        let mut jobs = self.stage.finish_jobs(self.words.as_mut_slice());
        exec(&mut jobs);
        self.stage.absorb_jobs(&jobs);
        drop(jobs);
        Mpcbf::from_bulk_parts(
            self.config,
            self.words,
            self.stage.items(),
            self.stage.refused(),
        )
    }
}

/// Bulk builder for [`ResilientMpcbf`]: keys the main shape refuses are
/// spilled losslessly at push time (gate + exact map), in arrival order,
/// exactly as the scalar resilient insert would.
pub struct ResilientBulkBuilder<H: Hasher128 = Murmur3> {
    builder: BulkBuilder<H>,
    resilient: ResilientMpcbf<H>,
}

impl<H: Hasher128> ResilientBulkBuilder<H> {
    /// A builder for the configuration's shape.
    pub fn new(config: MpcbfConfig) -> Self {
        ResilientBulkBuilder {
            builder: BulkBuilder::admitted(config),
            resilient: ResilientMpcbf::new(config),
        }
    }

    /// Stages one key; a refused key is spilled immediately (the build
    /// is lossless — this never fails).
    pub fn push(&mut self, key: &[u8]) {
        if !self.builder.push(key) {
            self.resilient.bulk_spill_insert(key);
        }
    }

    /// Staging counters so far.
    pub fn stats(&self) -> BulkStats {
        self.builder.stats()
    }

    /// Completes the build on the calling thread.
    pub fn finish(self) -> ResilientMpcbf<H> {
        let ResilientBulkBuilder {
            builder,
            mut resilient,
        } = self;
        resilient.bulk_replace_main(builder.finish());
        resilient
    }

    /// Completes the build through a caller-supplied executor (see
    /// [`BulkBuilder::finish_with`]).
    pub fn finish_with(self, exec: impl for<'w> FnOnce(&mut [RegionJob<'w>])) -> ResilientMpcbf<H> {
        let ResilientBulkBuilder {
            builder,
            mut resilient,
        } = self;
        resilient.bulk_replace_main(builder.finish_with(exec));
        resilient
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Filter;

    fn config(memory: u64, items: u64, k: u32, g: u32, seed: u64) -> MpcbfConfig {
        MpcbfConfig::builder()
            .memory_bits(memory)
            .expected_items(items)
            .hashes(k)
            .accesses(g)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn keys(n: u64, salt: u64) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("bulk-{salt}-{i}").into_bytes())
            .collect()
    }

    #[test]
    fn deferred_mode_selected_for_g1() {
        let c = config(1 << 20, 10_000, 3, 1, 7);
        let b: BulkBuilder = BulkBuilder::new(c);
        assert!(b.stage.is_deferred());
        let c = config(1 << 20, 10_000, 3, 2, 7);
        let b: BulkBuilder = BulkBuilder::new(c);
        assert!(!b.stage.is_deferred());
    }

    #[test]
    fn bulk_equals_sequential_g1() {
        let c = config(1 << 20, 50_000, 3, 1, 11);
        let keys = keys(50_000, 1);
        let mut seq: Mpcbf<u64> = Mpcbf::new(c);
        for k in &keys {
            let _ = seq.insert_bytes(k);
        }
        let mut bulk: BulkBuilder = BulkBuilder::new(c);
        for k in &keys {
            bulk.push(k);
        }
        let built = bulk.finish();
        assert_eq!(built.raw_words(), seq.raw_words());
        assert_eq!(built.items(), seq.items());
        assert_eq!(built.overflows(), seq.overflows());
    }

    #[test]
    fn bulk_equals_sequential_g2_with_overflow_pressure() {
        // A deliberately overfull shape so refusals actually occur.
        let c = config(4_096, 600, 4, 2, 3);
        let keys = keys(600, 2);
        let mut seq: Mpcbf<u64> = Mpcbf::new(c);
        for k in &keys {
            let _ = seq.insert_bytes(k);
        }
        let mut bulk: BulkBuilder = BulkBuilder::new(c);
        for k in &keys {
            bulk.push(k);
        }
        let built = bulk.finish();
        assert!(seq.overflows() > 0, "test premise: shape must saturate");
        assert_eq!(built.raw_words(), seq.raw_words());
        assert_eq!(built.items(), seq.items());
        assert_eq!(built.overflows(), seq.overflows());
    }

    #[test]
    fn batch_push_matches_scalar_push() {
        let c = config(1 << 18, 10_000, 3, 1, 5);
        let keys = keys(10_000, 3);
        let mut scalar: BulkBuilder = BulkBuilder::new(c);
        for k in &keys {
            scalar.push(k);
        }
        let mut batched: BulkBuilder = BulkBuilder::new(c);
        let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for chunk in views.chunks(777) {
            batched.push_batch(chunk);
        }
        assert_eq!(scalar.finish().raw_words(), batched.finish().raw_words());
    }

    #[test]
    fn resilient_bulk_is_lossless() {
        // Push past the configured capacity so the spill path engages.
        let c = config(2_048, 400, 3, 1, 9);
        let keys = keys(1_200, 4);
        let mut seq: ResilientMpcbf = ResilientMpcbf::new(c);
        for k in &keys {
            seq.insert_bytes(k).unwrap();
        }
        let mut bulk: ResilientBulkBuilder = ResilientBulkBuilder::new(c);
        for k in &keys {
            bulk.push(k);
        }
        let built = bulk.finish();
        assert!(seq.spilled_inserts() > 0, "test premise: must spill");
        assert_eq!(built.items(), seq.items());
        assert_eq!(built.spilled_inserts(), seq.spilled_inserts());
        assert_eq!(built.spill_occupancy(), seq.spill_occupancy());
        assert_eq!(built.main().raw_words(), seq.main().raw_words());
        for k in &keys {
            assert!(built.contains_bytes(k), "lost a key in bulk build");
        }
    }

    #[test]
    fn duplicate_keys_mid_stream() {
        let c = config(8_192, 1_000, 3, 1, 13);
        let mut keys = keys(500, 5);
        // Interleave a hot key 200 times.
        for i in 0..200 {
            keys.insert(i * 2, b"hot-key".to_vec());
        }
        let mut seq: Mpcbf<u64> = Mpcbf::new(c);
        for k in &keys {
            let _ = seq.insert_bytes(k);
        }
        let mut bulk: BulkBuilder = BulkBuilder::new(c);
        for k in &keys {
            bulk.push(k);
        }
        let built = bulk.finish();
        assert_eq!(built.raw_words(), seq.raw_words());
        assert_eq!(built.overflows(), seq.overflows());
    }

    /// Splitmix-style scrambler for deterministic pseudo-random tests.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e9b5);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    #[test]
    fn construct_matches_walk_on_fresh_regions() {
        // Differential: on an all-empty region, the histogram
        // construction must emit bit-identical words and tallies to the
        // incremental walk, including under overflow pressure.
        for (k, b1, rw, n) in [
            (3u32, 55u32, 64usize, 2_000usize),
            (4, 40, 16, 1_500),
            (1, 60, 8, 400),
        ] {
            let word_shift = SLOT_BITS * k;
            let entries: Vec<u64> = (0..n)
                .map(|i| {
                    let r = mix(i as u64 ^ u64::from(k) << 32);
                    let mut e = (r % rw as u64) << word_shift;
                    for j in 0..k {
                        e |= ((r >> (8 + 6 * j)) % u64::from(b1)) << (SLOT_BITS * j);
                    }
                    e
                })
                .collect();
            let cap = 64 - b1;
            let mut walked = vec![HcbfWord::<u64>::new(); rw];
            let walk_tally = apply_entries(&entries, &mut walked, 0, word_shift, Some(k), b1, cap);
            let mut constructed = vec![HcbfWord::<u64>::new(); rw];
            let mut scratch = SweepScratch::new();
            let built_tally = construct_entries(
                &entries,
                &mut constructed,
                0,
                word_shift,
                Some(k),
                b1,
                cap,
                &mut scratch,
            );
            assert_eq!(walk_tally, built_tally, "tallies diverged (k={k}, b1={b1})");
            assert_eq!(walked, constructed, "words diverged (k={k}, b1={b1})");
            // Scratch self-cleans: a second, different sweep through the
            // same scratch must stay exact.
            let mut again = vec![HcbfWord::<u64>::new(); rw];
            let mut reference = vec![HcbfWord::<u64>::new(); rw];
            let half = &entries[..n / 2];
            apply_entries(half, &mut reference, 0, word_shift, Some(k), b1, cap);
            construct_entries(
                half,
                &mut again,
                0,
                word_shift,
                Some(k),
                b1,
                cap,
                &mut scratch,
            );
            assert_eq!(reference, again, "reused scratch diverged (k={k}, b1={b1})");
        }
    }

    #[test]
    fn construct_matches_walk_in_admitted_mode() {
        let b1 = 50u32;
        let rw = 32usize;
        // Admitted-mode entries: one probe each, pre-admitted — cap the
        // per-word load below capacity while generating.
        let mut load = vec![0u32; rw];
        let mut entries = Vec::new();
        for i in 0..4_000u64 {
            let r = mix(i);
            let w = (r % rw as u64) as usize;
            if load[w] + 1 > 64 - b1 {
                continue;
            }
            load[w] += 1;
            entries.push(((w as u64) << SLOT_BITS) | ((r >> 8) % u64::from(b1)));
        }
        let mut walked = vec![HcbfWord::<u64>::new(); rw];
        apply_entries(&entries, &mut walked, 0, SLOT_BITS, None, b1, 64 - b1);
        let mut constructed = vec![HcbfWord::<u64>::new(); rw];
        let mut scratch = SweepScratch::new();
        construct_entries(
            &entries,
            &mut constructed,
            0,
            SLOT_BITS,
            None,
            b1,
            64 - b1,
            &mut scratch,
        );
        assert_eq!(walked, constructed);
    }

    #[test]
    fn overfull_push_falls_back_to_walk_and_stays_exact() {
        // A hot key repeated far past one word's capacity drives its
        // bucket chain through mid-stream region flushes; every later
        // sweep of that region must take the incremental-walk path
        // (dirty region) — still bit-exact, refusals included.
        let c = config(4_096, 500, 3, 1, 29);
        let mut keys = keys(500, 7);
        keys.extend(std::iter::repeat_n(b"molten-key".to_vec(), 9_000));
        let mut seq: Mpcbf<u64> = Mpcbf::new(c);
        for k in &keys {
            let _ = seq.insert_bytes(k);
        }
        let mut bulk: BulkBuilder = BulkBuilder::new(c);
        for k in &keys {
            bulk.push(k);
        }
        assert!(
            bulk.stats().flushes > 0,
            "test premise: overfull push must flush mid-stream"
        );
        let built = bulk.finish();
        assert_eq!(built.raw_words(), seq.raw_words());
        assert_eq!(built.items(), seq.items());
        assert_eq!(built.overflows(), seq.overflows());
    }

    #[test]
    fn finish_with_jobs_matches_sequential_finish() {
        let c = config(1 << 20, 40_000, 3, 1, 17);
        let keys = keys(40_000, 6);
        let mut a: BulkBuilder = BulkBuilder::new(c);
        let mut b: BulkBuilder = BulkBuilder::new(c);
        for k in &keys {
            a.push(k);
            b.push(k);
        }
        let seq = a.finish();
        // Run jobs in reverse order — admission must be region-local.
        let rev = b.finish_with(|jobs| {
            for job in jobs.iter_mut().rev() {
                job.run();
            }
        });
        assert_eq!(seq.raw_words(), rev.raw_words());
        assert_eq!(seq.items(), rev.items());
    }
}
