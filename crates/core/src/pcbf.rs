//! PCBF-1 / PCBF-g: the naïve partitioned CBF (§III.A).
//!
//! The counter vector is split into `l` words of `w` bits (`w/4` four-bit
//! counters each). An element hashes to `g` words and to `k/g` counters
//! inside each, so updates cost `g` memory accesses — but, with flat
//! counters, the effective membership range per word is only `w/4`
//! positions, which is why PCBF's FPR *trails* the standard CBF (Fig. 2).
//! MPCBF (same partitioning, hierarchical counters) removes exactly this
//! penalty.

use crate::metrics::{OpCost, WordTouches};
use crate::plan::{distinct_words, PlanBuffer, SMALL_BATCH};
use crate::traits::{CountingFilter, Filter};
use crate::{split_hashes, ConfigError, FilterError, GROUP_SALT, WORD_SALT};
use mpcbf_bitvec::CounterVec;
use mpcbf_hash::mix::bits_for;
use mpcbf_hash::{DoubleHasher, Hasher128, Murmur3};
use std::marker::PhantomData;

/// A partitioned CBF with `g` memory accesses per operation.
///
/// ```
/// use mpcbf_core::{CountingFilter, Filter, Pcbf};
/// use mpcbf_hash::Murmur3;
///
/// let mut pcbf = Pcbf::<Murmur3>::pcbf1(1024, 64, 3, 7);
/// pcbf.insert(&"flow").unwrap();
/// let (hit, cost) = pcbf.contains_bytes_cost(b"flow");
/// assert!(hit);
/// assert_eq!(cost.word_accesses, 1); // the whole point of PCBF-1
/// pcbf.remove(&"flow").unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Pcbf<H: Hasher128 = Murmur3> {
    /// All words' counters, concatenated: word `i` owns counters
    /// `[i·(w/4), (i+1)·(w/4))`.
    counters: CounterVec,
    l: usize,
    w: u32,
    counters_per_word: u32,
    k: u32,
    g: u32,
    seed: u64,
    items: u64,
    _hasher: PhantomData<H>,
}

impl<H: Hasher128> Pcbf<H> {
    /// Creates a PCBF-g over `l` words of `w` bits.
    ///
    /// # Panics
    /// Panics unless `l ≥ 2`, `w` is a multiple of 4 in `16..=512`,
    /// `1 ≤ g ≤ k ≤ 64` and `g ≤ 8`; use [`Pcbf::try_new`] to handle
    /// untrusted shapes as errors.
    pub fn new(l: usize, w: u32, k: u32, g: u32, seed: u64) -> Self {
        match Self::try_new(l, w, k, g, seed) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`Pcbf::new`]: validates the shape and
    /// returns a [`ConfigError`] instead of panicking.
    pub fn try_new(l: usize, w: u32, k: u32, g: u32, seed: u64) -> Result<Self, ConfigError> {
        if l < 2 {
            return Err(ConfigError::InsufficientMemory {
                detail: "need at least two words".into(),
            });
        }
        if !(16..=512).contains(&w) || !w.is_multiple_of(4) {
            return Err(ConfigError::BadGeometry {
                detail: format!("word size {w} must be a multiple of 4 in 16..=512"),
            });
        }
        if !(1..=64).contains(&k) {
            return Err(ConfigError::BadHashCount { k });
        }
        if g < 1 || g > k || g > 8 {
            return Err(ConfigError::BadAccessCount { g });
        }
        let cpw = w / 4;
        Ok(Pcbf {
            counters: CounterVec::new(l * cpw as usize, 4),
            l,
            w,
            counters_per_word: cpw,
            k,
            g,
            seed,
            items: 0,
            _hasher: PhantomData,
        })
    }

    /// Creates a PCBF-g sized to a memory budget (`l = memory_bits / w`).
    pub fn with_memory(memory_bits: u64, w: u32, k: u32, g: u32, seed: u64) -> Self {
        Self::new((memory_bits / u64::from(w)) as usize, w, k, g, seed)
    }

    /// Fallible counterpart of [`Pcbf::with_memory`].
    pub fn try_with_memory(
        memory_bits: u64,
        w: u32,
        k: u32,
        g: u32,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if w == 0 {
            return Err(ConfigError::BadGeometry {
                detail: "word size must be nonzero".into(),
            });
        }
        Self::try_new((memory_bits / u64::from(w)) as usize, w, k, g, seed)
    }

    /// Convenience: PCBF-1.
    pub fn pcbf1(l: usize, w: u32, k: u32, seed: u64) -> Self {
        Self::new(l, w, k, 1, seed)
    }

    /// Number of words.
    pub fn words(&self) -> usize {
        self.l
    }

    /// Word size in bits.
    pub fn word_bits(&self) -> u32 {
        self.w
    }

    /// Memory accesses per update.
    pub fn accesses(&self) -> u32 {
        self.g
    }

    /// Net insertions currently stored.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Value of counter `slot` within `word` (tests/diagnostics).
    pub fn counter(&self, word: usize, slot: u32) -> u64 {
        self.counters
            .get(word * self.counters_per_word as usize + slot as usize)
    }

    /// Visits each hashed (word, counter-index) pair; `visit` returns
    /// `false` to short-circuit. Returns (words evaluated, slots evaluated).
    #[inline]
    fn for_each_slot(&self, key: &[u8], mut visit: impl FnMut(usize, usize) -> bool) -> (u32, u32) {
        let digest = H::hash128(self.seed, key);
        let mut word_picker = DoubleHasher::with_salt(digest, WORD_SALT, self.l as u64);
        let mut words_eval = 0u32;
        let mut slots_eval = 0u32;
        'outer: for t in 0..self.g {
            let word = word_picker.next_index();
            words_eval += 1;
            let k_t = split_hashes(self.k, self.g, t);
            let mut inner = DoubleHasher::with_salt(
                digest,
                GROUP_SALT ^ u64::from(t),
                u64::from(self.counters_per_word),
            );
            for _ in 0..k_t {
                let slot = inner.next_index();
                slots_eval += 1;
                if !visit(word, word * self.counters_per_word as usize + slot) {
                    break 'outer;
                }
            }
        }
        (words_eval, slots_eval)
    }

    #[inline]
    fn cost(&self, words_eval: u32, slots_eval: u32, touches: &WordTouches) -> OpCost {
        OpCost {
            word_accesses: touches.count(),
            hash_bits: words_eval * bits_for(self.l as u64)
                + slots_eval * bits_for(u64::from(self.counters_per_word)),
        }
    }

    /// Stage 1 of the batch pipeline: hash every key into the caller's
    /// [`PlanBuffer`] (word selector over `l`, per-group slot streams over
    /// `w/4` counters — the same streams as [`Pcbf::for_each_slot`]),
    /// with zero allocation once the buffer is warm.
    fn plan_into(&self, keys: &[&[u8]], plans: &mut PlanBuffer) {
        plans.plan_partitioned(
            keys.iter().map(|key| H::hash128(self.seed, key)),
            self.l as u64,
            self.k,
            self.g,
            u64::from(self.counters_per_word),
        );
    }

    /// The fused batch paths' cost for a replayed plan prefix: distinct
    /// evaluated words plus the evaluated address bits.
    #[inline]
    fn planned_cost(
        &self,
        plans: &PlanBuffer,
        i: usize,
        words_eval: u32,
        slots_eval: u32,
    ) -> OpCost {
        OpCost {
            word_accesses: distinct_words(&plans.words_of(i)[..words_eval as usize]),
            hash_bits: words_eval * bits_for(self.l as u64)
                + slots_eval * bits_for(u64::from(self.counters_per_word)),
        }
    }

    /// Global counter index of `slot` within `word`.
    #[inline]
    fn slot_index(&self, word: usize, slot: u32) -> usize {
        word * self.counters_per_word as usize + slot as usize
    }
}

impl<H: Hasher128> Filter for Pcbf<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let mut touches = WordTouches::new();
        let mut member = true;
        let (we, se) = self.for_each_slot(key, |word, idx| {
            touches.touch(word);
            if self.counters.is_set(idx) {
                true
            } else {
                member = false;
                false
            }
        });
        (member, self.cost(we, se, &touches))
    }

    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        let mut touches = WordTouches::new();
        let mut slots = [0usize; 64];
        let mut n = 0usize;
        let (we, se) = self.for_each_slot(key, |word, idx| {
            touches.touch(word);
            slots[n] = idx;
            n += 1;
            true
        });
        for &idx in &slots[..n] {
            self.counters.increment(idx);
        }
        self.items += 1;
        Ok(self.cost(we, se, &touches))
    }

    fn memory_bits(&self) -> u64 {
        (self.l as u64) * u64::from(self.w)
    }

    fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Batch query via the fused pipeline with a fresh plan buffer; hold
    /// a [`PlanBuffer`] and call [`Filter::contains_batch_with`] to skip
    /// the per-call allocation.
    fn contains_batch_cost(&self, keys: &[&[u8]]) -> (Vec<bool>, OpCost) {
        self.contains_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused batch query: probe in scalar order off the buffer's plans
    /// with identical short-circuit accounting. Batches below
    /// [`SMALL_BATCH`] degrade to the scalar loop.
    fn contains_batch_with(&self, keys: &[&[u8]], plans: &mut PlanBuffer) -> (Vec<bool>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut hits = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                let (hit, cost) = self.contains_bytes_cost(key);
                hits.push(hit);
                total = total.add(cost);
            }
            return (hits, total);
        }
        self.plan_into(keys, plans);
        let mut hits = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let mut words_eval = 0u32;
            let mut slots_eval = 0u32;
            let mut member = true;
            'groups: for (word, probes) in plans.groups_of(i) {
                words_eval += 1;
                for &slot in probes {
                    slots_eval += 1;
                    if !self.counters.is_set(self.slot_index(word, slot)) {
                        member = false;
                        break 'groups;
                    }
                }
            }
            hits.push(member);
            total = total.add(self.planned_cost(plans, i, words_eval, slots_eval));
        }
        (hits, total)
    }

    /// Batch insert via the fused pipeline with a fresh plan buffer; hold
    /// a [`PlanBuffer`] and call [`Filter::insert_batch_with`] to skip the
    /// per-call allocation.
    fn insert_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.insert_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused batch insert: increments applied strictly in key order off
    /// the buffer's plans. Batches below [`SMALL_BATCH`] degrade to the
    /// scalar loop.
    fn insert_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut results = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                match self.insert_bytes_cost(key) {
                    Ok(cost) => {
                        total = total.add(cost);
                        results.push(Ok(()));
                    }
                    Err(e) => results.push(Err(e)),
                }
            }
            return (results, total);
        }
        self.plan_into(keys, plans);
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            for (word, probes) in plans.groups_of(i) {
                for &slot in probes {
                    self.counters.increment(self.slot_index(word, slot));
                }
            }
            self.items += 1;
            total = total.add(self.planned_cost(plans, i, self.g, self.k));
            results.push(Ok(()));
        }
        (results, total)
    }
}

impl<H: Hasher128> CountingFilter for Pcbf<H> {
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        // Presence check first: refuse deletes of absent elements.
        let mut present = true;
        self.for_each_slot(key, |_, idx| {
            if self.counters.is_set(idx) {
                true
            } else {
                present = false;
                false
            }
        });
        if !present {
            return Err(FilterError::NotPresent);
        }
        let mut touches = WordTouches::new();
        let mut slots = [0usize; 64];
        let mut n = 0usize;
        let (we, se) = self.for_each_slot(key, |word, idx| {
            touches.touch(word);
            slots[n] = idx;
            n += 1;
            true
        });
        for &idx in &slots[..n] {
            self.counters.decrement(idx);
        }
        self.items = self.items.saturating_sub(1);
        Ok(self.cost(we, se, &touches))
    }

    /// Batch remove via the fused pipeline with a fresh plan buffer; hold
    /// a [`PlanBuffer`] and call [`CountingFilter::remove_batch_with`] to
    /// skip the per-call allocation.
    fn remove_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.remove_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Fused batch remove: per key, the same unmetered presence pass as
    /// the scalar path, then metered decrements in key order off the
    /// buffer's plans. Batches below [`SMALL_BATCH`] degrade to the
    /// scalar loop.
    fn remove_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        if keys.len() < SMALL_BATCH {
            let mut results = Vec::with_capacity(keys.len());
            let mut total = OpCost::zero();
            for key in keys {
                match self.remove_bytes_cost(key) {
                    Ok(cost) => {
                        total = total.add(cost);
                        results.push(Ok(()));
                    }
                    Err(e) => results.push(Err(e)),
                }
            }
            return (results, total);
        }
        self.plan_into(keys, plans);
        let mut results = Vec::with_capacity(keys.len());
        let mut total = OpCost::zero();
        for i in 0..keys.len() {
            let present = plans.groups_of(i).all(|(word, probes)| {
                probes
                    .iter()
                    .all(|&slot| self.counters.is_set(self.slot_index(word, slot)))
            });
            if !present {
                results.push(Err(FilterError::NotPresent));
                continue;
            }
            for (word, probes) in plans.groups_of(i) {
                for &slot in probes {
                    self.counters.decrement(self.slot_index(word, slot));
                }
            }
            self.items = self.items.saturating_sub(1);
            total = total.add(self.planned_cost(plans, i, self.g, self.k));
            results.push(Ok(()));
        }
        (results, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pcbf1_and_pcbf2() {
        for g in [1u32, 2] {
            let mut f = Pcbf::<Murmur3>::new(4096, 64, 3, g, 1);
            for i in 0..1000u64 {
                f.insert(&i).unwrap();
            }
            for i in 0..1000u64 {
                assert!(f.contains(&i), "g={g}: false negative {i}");
            }
            for i in 0..500u64 {
                f.remove(&i).unwrap();
            }
            for i in 500..1000u64 {
                assert!(f.contains(&i), "g={g}: lost {i} after churn");
            }
        }
    }

    #[test]
    fn pcbf1_update_is_one_access() {
        let mut f = Pcbf::<Murmur3>::pcbf1(4096, 64, 3, 2);
        let cost = f.insert_bytes_cost(b"a").unwrap();
        assert_eq!(cost.word_accesses, 1);
        // Fig. 1 layout bandwidth: log2(l) + k·log2(w/4).
        assert_eq!(cost.hash_bits, 12 + 3 * 4);
    }

    #[test]
    fn pcbf2_update_is_two_accesses() {
        let mut f = Pcbf::<Murmur3>::new(4096, 64, 3, 2, 2);
        let cost = f.insert_bytes_cost(b"a").unwrap();
        assert!(cost.word_accesses <= 2);
        // Hash split: first word gets 2 hashes, second 1.
        assert_eq!(cost.hash_bits, 2 * 12 + 3 * 4);
    }

    #[test]
    fn delete_absent_is_rejected() {
        let mut f = Pcbf::<Murmur3>::pcbf1(1024, 64, 3, 3);
        assert_eq!(f.remove(&"ghost"), Err(FilterError::NotPresent));
    }

    #[test]
    fn fpr_worse_than_cbf_as_paper_shows() {
        // Fig. 2's empirical counterpart at small scale.
        use crate::cbf::Cbf;
        let big_m = 1_000_000u64;
        let n = 20_000u64;
        let mut cbf = Cbf::<Murmur3>::with_memory(big_m, 3, 9);
        let mut pcbf = Pcbf::<Murmur3>::with_memory(big_m, 64, 3, 1, 9);
        for i in 0..n {
            cbf.insert(&i).unwrap();
            pcbf.insert(&i).unwrap();
        }
        let trials = 200_000u64;
        let fp_cbf = (n..n + trials).filter(|i| cbf.contains(i)).count();
        let fp_pcbf = (n..n + trials).filter(|i| pcbf.contains(i)).count();
        assert!(
            fp_pcbf > fp_cbf,
            "PCBF-1 {fp_pcbf} should out-err CBF {fp_cbf}"
        );
    }

    #[test]
    fn memory_is_l_times_w() {
        let f = Pcbf::<Murmur3>::pcbf1(1000, 64, 3, 0);
        assert_eq!(f.memory_bits(), 64_000);
    }

    #[test]
    fn batch_matches_scalar_loop_including_removes() {
        for g in [1u32, 2] {
            let mut batch = Pcbf::<Murmur3>::new(4096, 64, 3, g, 17);
            let mut scalar = Pcbf::<Murmur3>::new(4096, 64, 3, g, 17);
            let keys: Vec<Vec<u8>> = (0..300u64).map(|i| i.to_le_bytes().to_vec()).collect();
            let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

            let (_, bi) = batch.insert_batch_cost(&views);
            let mut si = OpCost::zero();
            for k in &views {
                si = si.add(scalar.insert_bytes_cost(k).unwrap());
            }
            assert_eq!(bi, si, "g={g}");

            let mixed: Vec<Vec<u8>> = (150..450u64).map(|i| i.to_le_bytes().to_vec()).collect();
            let mixed_views: Vec<&[u8]> = mixed.iter().map(|k| k.as_slice()).collect();
            let (batch_res, br) = batch.remove_batch_cost(&mixed_views);
            let mut sr = OpCost::zero();
            for (i, k) in mixed_views.iter().enumerate() {
                match scalar.remove_bytes_cost(k) {
                    Ok(c) => {
                        sr = sr.add(c);
                        assert_eq!(batch_res[i], Ok(()), "g={g} key {i}");
                    }
                    Err(e) => assert_eq!(batch_res[i], Err(e), "g={g} key {i}"),
                }
            }
            assert_eq!(br, sr, "g={g}");
            assert_eq!(batch.items(), scalar.items(), "g={g}");
        }
    }

    #[test]
    fn try_new_reports_bad_shapes() {
        use crate::ConfigError;
        assert!(matches!(
            Pcbf::<Murmur3>::try_new(1, 64, 3, 1, 0),
            Err(ConfigError::InsufficientMemory { .. })
        ));
        assert!(matches!(
            Pcbf::<Murmur3>::try_new(16, 30, 3, 1, 0),
            Err(ConfigError::BadGeometry { .. })
        ));
        assert_eq!(
            Pcbf::<Murmur3>::try_new(16, 64, 65, 1, 0).err(),
            Some(ConfigError::BadHashCount { k: 65 })
        );
        assert_eq!(
            Pcbf::<Murmur3>::try_new(16, 64, 3, 9, 0).err(),
            Some(ConfigError::BadAccessCount { g: 9 })
        );
        assert!(matches!(
            Pcbf::<Murmur3>::try_with_memory(1000, 0, 3, 1, 0),
            Err(ConfigError::BadGeometry { .. })
        ));
        assert!(Pcbf::<Murmur3>::try_new(16, 64, 3, 2, 0).is_ok());
    }

    #[test]
    fn counter_accessor_sees_increments() {
        let mut f = Pcbf::<Murmur3>::pcbf1(16, 64, 3, 4);
        f.insert(&"z").unwrap();
        let total: u64 = (0..16)
            .flat_map(|w| (0..16).map(move |s| (w, s)))
            .map(|(w, s)| f.counter(w, s))
            .sum();
        assert_eq!(total, 3); // k increments landed somewhere
    }
}
