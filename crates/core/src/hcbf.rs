//! HCBF: the Hierarchical Counting Bloom Filter word codec (§III.B).
//!
//! One machine word stores a complete counting structure:
//!
//! * bits `[0, b1)` are the **first-level sub-vector** `v1` — the membership
//!   plane a query consults;
//! * the rest of the word holds the **hierarchy**: level `j+1` contains one
//!   bit (a *child slot*) for every set bit of level `j`, and levels are
//!   laid out contiguously.
//!
//! The counter value of position `p` is the length of the chain of ones
//! starting at `v1[p]`: the insert walk descends via ranked popcounts
//! ("the value returned by popcount(i) is used as an index to the bit in
//! the next level"), flips the first zero it meets, and splices a fresh
//! zero child slot into the next level, shifting the tail of the word
//! right by one (§III.B.1, Algorithm 1). Deletion is the exact mirror.
//!
//! Two consequences the paper builds on:
//!
//! 1. **Self-describing layout** — level sizes are derived purely from
//!    popcounts (`|v_{j+1}| = popcount(v_j)`), so no bits are spent on
//!    metadata and the total bits in use are simply
//!    `b1 + count_ones(word)`;
//! 2. **Pay-per-increment storage** — a counter of value `c` consumes
//!    exactly `c` hierarchy bits, so idle positions are free and the
//!    improved HCBF (§III.B.3) can maximise `b1 = w − k·n_max`.

use crate::FilterError;
use mpcbf_bitvec::{KernelOps, Word};
use mpcbf_hash::mix::bits_for;

/// Errors a single-word HCBF operation can report.
///
/// A word does not know its own index inside the enclosing filter, so its
/// errors are *word-local*; callers attach the real word index via
/// [`WordError::at`] at the point where the index is known. This makes a
/// fabricated index (the old `WordOverflow { word: 0 }` placeholder)
/// unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordError {
    /// The word has no spare hierarchy bit for another increment.
    Overflow,
    /// A decrement targeted a counter that is already zero.
    ZeroCounter,
}

impl WordError {
    /// Converts a word-local error into the filter-level error for the
    /// word at index `word`.
    #[inline]
    pub fn at(self, word: usize) -> FilterError {
        match self {
            WordError::Overflow => FilterError::WordOverflow { word },
            WordError::ZeroCounter => FilterError::NotPresent,
        }
    }
}

impl std::fmt::Display for WordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WordError::Overflow => write!(f, "word overflow: no hierarchy space left"),
            WordError::ZeroCounter => write!(f, "counter already zero"),
        }
    }
}

impl std::error::Error for WordError {}

/// Report returned by a successful increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementReport {
    /// The counter's new value (= the hierarchy depth reached).
    pub new_count: u32,
    /// Address bits consumed by the traversal below level 1
    /// (`Σ log2 |v_j|` over descended levels), for bandwidth metering.
    pub traversal_bits: u32,
}

/// Report returned by a successful decrement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecrementReport {
    /// The counter's new value.
    pub new_count: u32,
    /// Address bits consumed by the traversal below level 1.
    pub traversal_bits: u32,
}

/// One HCBF word.
///
/// The first-level size `b1` is a property of the enclosing filter (all
/// words share it, §III.B.2) and is passed to each operation rather than
/// stored per word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HcbfWord<W: Word> {
    bits: W,
}

impl<W: Word> HcbfWord<W> {
    /// An empty word (all counters zero).
    #[inline]
    pub fn new() -> Self {
        HcbfWord { bits: W::zero() }
    }

    /// The raw bit pattern.
    #[inline]
    pub fn raw(&self) -> &W {
        &self.bits
    }

    /// Reconstructs a word from a raw bit pattern (e.g. one read back from
    /// an atomic cell in the lock-free concurrent filter). The caller must
    /// only pass patterns previously produced by HCBF operations.
    #[inline]
    pub fn from_raw(bits: W) -> Self {
        HcbfWord { bits }
    }

    /// Membership test: is first-level bit `p` set? (The only part of the
    /// word a query reads — Eq. (4)'s central observation.)
    #[inline]
    pub fn query(&self, p: u32) -> bool {
        self.bits.bit(p)
    }

    /// Bits currently in use: `b1 + count_ones` (see module docs).
    #[inline]
    pub fn used_bits(&self, b1: u32) -> u32 {
        b1 + self.bits.count_ones()
    }

    /// Remaining hierarchy capacity in increments.
    #[inline]
    pub fn remaining_capacity(&self, b1: u32) -> u32 {
        W::BITS - self.used_bits(b1)
    }

    /// Sum of all counters in this word (= total increments stored).
    #[inline]
    pub fn total_count(&self) -> u32 {
        self.bits.count_ones()
    }

    /// True if no element occupies this word.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == W::zero()
    }

    /// Reads the counter value at first-level position `p`.
    ///
    /// Carried-rank walk: `rank(level_start)` is remembered from the
    /// previous iteration, so each level needs two masked popcounts
    /// instead of the four the naive `rank_range` pair would spend.
    pub fn counter(&self, p: u32, b1: u32) -> u32 {
        debug_assert!(p < b1);
        let mut level_start = 0u32;
        let mut level_size = b1;
        let mut pos = p;
        let mut count = 0u32;
        let mut r_start = 0u32; // rank(level_start), carried across levels
        loop {
            let gp = level_start + pos;
            if !self.bits.bit(gp) {
                return count;
            }
            count += 1;
            let child = self.bits.rank_hot(gp) - r_start;
            let next_start = level_start + level_size;
            let r_next = self.bits.rank_hot(next_start);
            level_start = next_start;
            level_size = r_next - r_start;
            r_start = r_next;
            pos = child;
        }
    }

    /// Increments the counter at first-level position `p`.
    ///
    /// Walks the chain of ones to its first zero, flips it, and splices a
    /// zero child slot into the next level. Fails with
    /// [`WordError::Overflow`] when the word has no spare bit, leaving the
    /// word unchanged; the caller maps it to the filter-level error via
    /// [`WordError::at`] with the real word index.
    pub fn increment(&mut self, p: u32, b1: u32) -> Result<IncrementReport, WordError> {
        debug_assert!(p < b1 && b1 <= W::BITS);
        // Capacity: inserting always consumes exactly one bit.
        if self.used_bits(b1) >= W::BITS {
            return Err(WordError::Overflow);
        }
        let mut level_start = 0u32;
        let mut level_size = b1;
        let mut pos = p;
        let mut depth = 1u32;
        let mut traversal_bits = 0u32;
        let mut r_start = 0u32; // rank(level_start), carried across levels
        loop {
            let gp = level_start + pos;
            let child = self.bits.rank_hot(gp) - r_start;
            let next_start = level_start + level_size;
            if !self.bits.bit(gp) {
                // First zero on the chain: flip it, give it a child slot.
                self.bits.set_bit(gp);
                self.bits.insert_zero_hot(next_start + child);
                return Ok(IncrementReport {
                    new_count: depth,
                    traversal_bits,
                });
            }
            let r_next = self.bits.rank_hot(next_start);
            let next_size = r_next - r_start;
            level_start = next_start;
            level_size = next_size;
            r_start = r_next;
            pos = child;
            depth += 1;
            traversal_bits += bits_for(u64::from(next_size));
        }
    }

    /// Portable baseline for [`HcbfWord::increment`]: the naive
    /// `rank_range`-per-level walk with no kernel dispatch. Kept verbatim
    /// for differential tests pinning the hot walk bit-identical.
    pub fn increment_reference(&mut self, p: u32, b1: u32) -> Result<IncrementReport, WordError> {
        debug_assert!(p < b1 && b1 <= W::BITS);
        if self.used_bits(b1) >= W::BITS {
            return Err(WordError::Overflow);
        }
        let mut level_start = 0u32;
        let mut level_size = b1;
        let mut pos = p;
        let mut depth = 1u32;
        let mut traversal_bits = 0u32;
        loop {
            let gp = level_start + pos;
            let child = self.bits.rank_range(level_start, gp);
            let next_start = level_start + level_size;
            if !self.bits.bit(gp) {
                self.bits.set_bit(gp);
                self.bits.insert_zero(next_start + child);
                return Ok(IncrementReport {
                    new_count: depth,
                    traversal_bits,
                });
            }
            let next_size = self.bits.rank_range(level_start, next_start);
            level_start = next_start;
            level_size = next_size;
            pos = child;
            depth += 1;
            traversal_bits += bits_for(u64::from(next_size));
        }
    }

    /// Decrements the counter at first-level position `p`.
    ///
    /// Walks to the deepest one on the chain, removes its (zero) child
    /// slot and clears the bit — the mirror of [`HcbfWord::increment`].
    /// Fails with [`WordError::ZeroCounter`] if the counter is zero,
    /// leaving the word unchanged.
    pub fn decrement(&mut self, p: u32, b1: u32) -> Result<DecrementReport, WordError> {
        debug_assert!(p < b1 && b1 <= W::BITS);
        if !self.bits.bit(p) {
            return Err(WordError::ZeroCounter);
        }
        let mut level_start = 0u32;
        let mut level_size = b1;
        let mut pos = p;
        let mut depth = 1u32;
        let mut traversal_bits = 0u32;
        let mut r_start = 0u32; // rank(level_start), carried across levels
        loop {
            let gp = level_start + pos;
            let child = self.bits.rank_hot(gp) - r_start;
            let next_start = level_start + level_size;
            let child_gp = next_start + child;
            if !self.bits.bit(child_gp) {
                // `gp` is the deepest one: drop its child slot, clear it.
                self.bits.remove_bit_hot(child_gp);
                self.bits.clear_bit(gp);
                return Ok(DecrementReport {
                    new_count: depth - 1,
                    traversal_bits,
                });
            }
            let r_next = self.bits.rank_hot(next_start);
            let next_size = r_next - r_start;
            level_start = next_start;
            level_size = next_size;
            r_start = r_next;
            pos = child;
            depth += 1;
            traversal_bits += bits_for(u64::from(next_size));
        }
    }

    /// [`HcbfWord::increment`] through a batch-resolved kernel bundle
    /// ([`mpcbf_bitvec::Kernel::batch`]): the same carried-rank walk, but
    /// dispatch rides the bundle tag resolved once per batch instead of
    /// the cached atomic load every primitive pays. Bit-identical to
    /// [`HcbfWord::increment`] by the routed-tier differential tests.
    pub fn increment_routed(
        &mut self,
        p: u32,
        b1: u32,
        ops: &KernelOps,
    ) -> Result<IncrementReport, WordError> {
        debug_assert!(p < b1 && b1 <= W::BITS);
        if self.used_bits(b1) >= W::BITS {
            return Err(WordError::Overflow);
        }
        let mut level_start = 0u32;
        let mut level_size = b1;
        let mut pos = p;
        let mut depth = 1u32;
        let mut traversal_bits = 0u32;
        let mut r_start = 0u32; // rank(level_start), carried across levels
        loop {
            let gp = level_start + pos;
            let child = self.bits.rank_routed(gp, ops) - r_start;
            let next_start = level_start + level_size;
            if !self.bits.bit(gp) {
                self.bits.set_bit(gp);
                self.bits.insert_zero_routed(next_start + child, ops);
                return Ok(IncrementReport {
                    new_count: depth,
                    traversal_bits,
                });
            }
            let r_next = self.bits.rank_routed(next_start, ops);
            let next_size = r_next - r_start;
            level_start = next_start;
            level_size = next_size;
            r_start = r_next;
            pos = child;
            depth += 1;
            traversal_bits += bits_for(u64::from(next_size));
        }
    }

    /// [`HcbfWord::increment`] with every primitive statically inlined:
    /// the bulk sweep's walk. A sweep applies millions of staged
    /// increments back to back, and at that rate the per-primitive
    /// indirect call of the routed tier costs more than any accelerated
    /// kernel saves — the portable primitives inline to two or three
    /// instructions each. Bit-identical to [`HcbfWord::increment`] and
    /// [`HcbfWord::increment_routed`]: same carried-rank walk over the
    /// same primitives, differing only in dispatch.
    #[inline]
    pub fn increment_inline(&mut self, p: u32, b1: u32) -> Result<IncrementReport, WordError> {
        debug_assert!(p < b1 && b1 <= W::BITS);
        if self.used_bits(b1) >= W::BITS {
            return Err(WordError::Overflow);
        }
        let mut level_start = 0u32;
        let mut level_size = b1;
        let mut pos = p;
        let mut depth = 1u32;
        let mut traversal_bits = 0u32;
        let mut r_start = 0u32; // rank(level_start), carried across levels
        loop {
            let gp = level_start + pos;
            let child = self.bits.rank(gp) - r_start;
            let next_start = level_start + level_size;
            if !self.bits.bit(gp) {
                self.bits.set_bit(gp);
                self.bits.insert_zero(next_start + child);
                return Ok(IncrementReport {
                    new_count: depth,
                    traversal_bits,
                });
            }
            let r_next = self.bits.rank(next_start);
            let next_size = r_next - r_start;
            level_start = next_start;
            level_size = next_size;
            r_start = r_next;
            pos = child;
            depth += 1;
            traversal_bits += bits_for(u64::from(next_size));
        }
    }

    /// [`HcbfWord::decrement`] through a batch-resolved kernel bundle;
    /// see [`HcbfWord::increment_routed`].
    pub fn decrement_routed(
        &mut self,
        p: u32,
        b1: u32,
        ops: &KernelOps,
    ) -> Result<DecrementReport, WordError> {
        debug_assert!(p < b1 && b1 <= W::BITS);
        if !self.bits.bit(p) {
            return Err(WordError::ZeroCounter);
        }
        let mut level_start = 0u32;
        let mut level_size = b1;
        let mut pos = p;
        let mut depth = 1u32;
        let mut traversal_bits = 0u32;
        let mut r_start = 0u32; // rank(level_start), carried across levels
        loop {
            let gp = level_start + pos;
            let child = self.bits.rank_routed(gp, ops) - r_start;
            let next_start = level_start + level_size;
            let child_gp = next_start + child;
            if !self.bits.bit(child_gp) {
                self.bits.remove_bit_routed(child_gp, ops);
                self.bits.clear_bit(gp);
                return Ok(DecrementReport {
                    new_count: depth - 1,
                    traversal_bits,
                });
            }
            let r_next = self.bits.rank_routed(next_start, ops);
            let next_size = r_next - r_start;
            level_start = next_start;
            level_size = next_size;
            r_start = r_next;
            pos = child;
            depth += 1;
            traversal_bits += bits_for(u64::from(next_size));
        }
    }

    /// Portable baseline for [`HcbfWord::decrement`]; see
    /// [`HcbfWord::increment_reference`].
    pub fn decrement_reference(&mut self, p: u32, b1: u32) -> Result<DecrementReport, WordError> {
        debug_assert!(p < b1 && b1 <= W::BITS);
        if !self.bits.bit(p) {
            return Err(WordError::ZeroCounter);
        }
        let mut level_start = 0u32;
        let mut level_size = b1;
        let mut pos = p;
        let mut depth = 1u32;
        let mut traversal_bits = 0u32;
        loop {
            let gp = level_start + pos;
            let child = self.bits.rank_range(level_start, gp);
            let next_start = level_start + level_size;
            let child_gp = next_start + child;
            if !self.bits.bit(child_gp) {
                self.bits.remove_bit(child_gp);
                self.bits.clear_bit(gp);
                return Ok(DecrementReport {
                    new_count: depth - 1,
                    traversal_bits,
                });
            }
            let next_size = self.bits.rank_range(level_start, next_start);
            level_start = next_start;
            level_size = next_size;
            pos = child;
            depth += 1;
            traversal_bits += bits_for(u64::from(next_size));
        }
    }

    /// Batched membership for one word: checks the first-level positions
    /// in `probes` in order, stopping at the first zero (the scalar query
    /// short-circuit). Returns the verdict and how many positions were
    /// evaluated, for bandwidth metering.
    ///
    /// This is deliberately the plain portable short-circuit loop — the
    /// same walk the scalar path runs. An earlier gather-all-bits-then-
    /// `trailing_zeros` variant measured *slower* (it always evaluates the
    /// whole chunk while real workloads short-circuit early), and the BMI2
    /// kernels never help here: a query touches no rank/insert/remove
    /// primitive at all. Per-op kernel routing therefore pins query walks
    /// to portable; batching wins come from the plan/interleave layers
    /// above, not from this loop.
    #[inline]
    pub fn query_all(&self, probes: &[u32]) -> (bool, u32) {
        let mut evaluated = 0u32;
        for &p in probes {
            evaluated += 1;
            if !self.bits.bit(p) {
                return (false, evaluated);
            }
        }
        (true, evaluated)
    }

    /// Portable baseline for [`HcbfWord::query_all`]: the short-circuiting
    /// scalar loop, kept for differential tests of the metering contract.
    #[inline]
    pub fn query_all_reference(&self, probes: &[u32]) -> (bool, u32) {
        let mut evaluated = 0u32;
        for &p in probes {
            evaluated += 1;
            if !self.query(p) {
                return (false, evaluated);
            }
        }
        (true, evaluated)
    }

    /// Applies [`HcbfWord::increment`] to every position in order,
    /// all-or-nothing: on the first overflow the word is rolled back to
    /// its state before this call and the error returned. On success,
    /// returns the summed traversal bits of all increments.
    pub fn increment_all(&mut self, probes: &[u32], b1: u32) -> Result<u32, WordError> {
        let mut traversal_bits = 0u32;
        for (i, &p) in probes.iter().enumerate() {
            match self.increment(p, b1) {
                Ok(r) => traversal_bits += r.traversal_bits,
                Err(e) => {
                    for &q in probes[..i].iter().rev() {
                        self.decrement(q, b1)
                            .expect("rollback of a fresh increment cannot fail");
                    }
                    return Err(e);
                }
            }
        }
        Ok(traversal_bits)
    }

    /// Applies [`HcbfWord::decrement`] to every position in order,
    /// all-or-nothing: on the first zero counter the word is rolled back
    /// and [`WordError::ZeroCounter`] returned. On success, returns the
    /// summed traversal bits of all decrements.
    pub fn decrement_all(&mut self, probes: &[u32], b1: u32) -> Result<u32, WordError> {
        let mut traversal_bits = 0u32;
        for (i, &p) in probes.iter().enumerate() {
            match self.decrement(p, b1) {
                Ok(r) => traversal_bits += r.traversal_bits,
                Err(e) => {
                    for &q in probes[..i].iter().rev() {
                        self.increment(q, b1)
                            .expect("rollback of a fresh decrement cannot fail");
                    }
                    return Err(e);
                }
            }
        }
        Ok(traversal_bits)
    }

    /// [`HcbfWord::increment_all`] through a batch-resolved kernel bundle:
    /// the all-or-nothing contract with every walk (including rollback)
    /// routed via `ops`. The batch insert path resolves routing once and
    /// drives every word through this.
    pub fn increment_all_routed(
        &mut self,
        probes: &[u32],
        b1: u32,
        ops: &KernelOps,
    ) -> Result<u32, WordError> {
        let mut traversal_bits = 0u32;
        for (i, &p) in probes.iter().enumerate() {
            match self.increment_routed(p, b1, ops) {
                Ok(r) => traversal_bits += r.traversal_bits,
                Err(e) => {
                    for &q in probes[..i].iter().rev() {
                        self.decrement_routed(q, b1, ops)
                            .expect("rollback of a fresh increment cannot fail");
                    }
                    return Err(e);
                }
            }
        }
        Ok(traversal_bits)
    }

    /// [`HcbfWord::decrement_all`] through a batch-resolved kernel bundle;
    /// see [`HcbfWord::increment_all_routed`].
    pub fn decrement_all_routed(
        &mut self,
        probes: &[u32],
        b1: u32,
        ops: &KernelOps,
    ) -> Result<u32, WordError> {
        let mut traversal_bits = 0u32;
        for (i, &p) in probes.iter().enumerate() {
            match self.decrement_routed(p, b1, ops) {
                Ok(r) => traversal_bits += r.traversal_bits,
                Err(e) => {
                    for &q in probes[..i].iter().rev() {
                        self.increment_routed(q, b1, ops)
                            .expect("rollback of a fresh decrement cannot fail");
                    }
                    return Err(e);
                }
            }
        }
        Ok(traversal_bits)
    }

    /// Portable baseline for [`HcbfWord::increment_all`]: the same
    /// all-or-nothing contract driven entirely by the reference walks.
    pub fn increment_all_reference(&mut self, probes: &[u32], b1: u32) -> Result<u32, WordError> {
        let mut traversal_bits = 0u32;
        for (i, &p) in probes.iter().enumerate() {
            match self.increment_reference(p, b1) {
                Ok(r) => traversal_bits += r.traversal_bits,
                Err(e) => {
                    for &q in probes[..i].iter().rev() {
                        self.decrement_reference(q, b1)
                            .expect("rollback of a fresh increment cannot fail");
                    }
                    return Err(e);
                }
            }
        }
        Ok(traversal_bits)
    }

    /// Portable baseline for [`HcbfWord::decrement_all`]; see
    /// [`HcbfWord::increment_all_reference`].
    pub fn decrement_all_reference(&mut self, probes: &[u32], b1: u32) -> Result<u32, WordError> {
        let mut traversal_bits = 0u32;
        for (i, &p) in probes.iter().enumerate() {
            match self.decrement_reference(p, b1) {
                Ok(r) => traversal_bits += r.traversal_bits,
                Err(e) => {
                    for &q in probes[..i].iter().rev() {
                        self.increment_reference(q, b1)
                            .expect("rollback of a fresh decrement cannot fail");
                    }
                    return Err(e);
                }
            }
        }
        Ok(traversal_bits)
    }

    /// The sizes of all non-empty levels, starting with `b1`.
    pub fn level_sizes(&self, b1: u32) -> Vec<u32> {
        let mut sizes = vec![b1];
        let mut level_start = 0u32;
        let mut level_size = b1;
        loop {
            let next = self.bits.rank_range(level_start, level_start + level_size);
            if next == 0 {
                break;
            }
            sizes.push(next);
            level_start += level_size;
            level_size = next;
        }
        sizes
    }

    /// Structural invariant check, used by property tests:
    ///
    /// 1. levels fit in the word: `b1 + count_ones ≤ W::BITS`;
    /// 2. all bits beyond the used region are zero;
    /// 3. level sizes satisfy `|v_{j+1}| = popcount(v_j)` by construction
    ///    (verified by re-walking the layout).
    pub fn check_invariants(&self, b1: u32) -> Result<(), String> {
        let used = self.used_bits(b1);
        if used > W::BITS {
            return Err(format!("used bits {used} exceed word width {}", W::BITS));
        }
        if !self.bits.is_zero_from(used) {
            return Err(format!("dirty bits beyond used region (used = {used})"));
        }
        // Walking the level layout must consume exactly `used` bits: every
        // level beyond v1 is counted by count_ones, so the walk's total
        // must equal b1 + count_ones.
        let walked: u32 = self.level_sizes(b1).iter().sum();
        if walked != used {
            return Err(format!(
                "level walk covered {walked} bits but used_bits says {used}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H64 = HcbfWord<u64>;
    type H16 = HcbfWord<u16>;

    #[test]
    fn empty_word_counters_are_zero() {
        let w = H64::new();
        for p in 0..40 {
            assert_eq!(w.counter(p, 40), 0);
            assert!(!w.query(p));
        }
        assert_eq!(w.used_bits(40), 40);
        assert!(w.check_invariants(40).is_ok());
    }

    #[test]
    fn single_increment_sets_membership() {
        let mut w = H64::new();
        let r = w.increment(5, 40).unwrap();
        assert_eq!(r.new_count, 1);
        assert!(w.query(5));
        assert_eq!(w.counter(5, 40), 1);
        assert_eq!(w.used_bits(40), 41);
        assert!(w.check_invariants(40).is_ok());
    }

    #[test]
    fn repeated_increments_deepen_the_chain() {
        let mut w = H64::new();
        for expect in 1..=6u32 {
            let r = w.increment(3, 40).unwrap();
            assert_eq!(r.new_count, expect);
            assert_eq!(w.counter(3, 40), expect);
            assert!(w.check_invariants(40).is_ok());
        }
        assert_eq!(w.total_count(), 6);
        assert_eq!(w.used_bits(40), 46);
    }

    #[test]
    fn decrement_mirrors_increment_exactly() {
        let mut w = H64::new();
        let positions = [0u32, 3, 3, 17, 39, 3, 17, 0, 0];
        let mut snapshots = vec![*w.raw()];
        for &p in &positions {
            w.increment(p, 40).unwrap();
            snapshots.push(*w.raw());
        }
        for &p in positions.iter().rev() {
            snapshots.pop();
            w.decrement(p, 40).unwrap();
            assert_eq!(
                w.raw(),
                snapshots.last().unwrap(),
                "mismatch after removing {p}"
            );
            assert!(w.check_invariants(40).is_ok());
        }
        assert!(w.is_empty());
    }

    #[test]
    fn counters_match_an_oracle_multiset() {
        let mut w = H64::new();
        let mut oracle = [0u32; 40];
        // Deterministic xorshift to mix increments and decrements.
        let mut s = 0x2545_f491_4f6c_dd1du64;
        let mut rand = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..2000 {
            let p = (rand() % 40) as u32;
            if rand() % 3 == 0 && oracle[p as usize] > 0 {
                w.decrement(p, 40).unwrap();
                oracle[p as usize] -= 1;
            } else if w.remaining_capacity(40) > 0 {
                w.increment(p, 40).unwrap();
                oracle[p as usize] += 1;
            }
            // Occasionally drain to keep capacity available.
            if w.remaining_capacity(40) == 0 {
                for p in 0..40u32 {
                    while oracle[p as usize] > 0 {
                        w.decrement(p, 40).unwrap();
                        oracle[p as usize] -= 1;
                    }
                }
            }
        }
        for p in 0..40u32 {
            assert_eq!(w.counter(p, 40), oracle[p as usize], "counter {p}");
        }
        assert!(w.check_invariants(40).is_ok());
    }

    #[test]
    fn paper_fig3_example() {
        // Fig. 3(b): w = 16, k = 3, n_max = 2 ⇒ b1 = 16 − 6 = 10.
        // x0 hashes to first-level bits {0, 2, 4}; x5 to {4, 6, 8}.
        let b1 = 10;
        let mut w = H16::new();
        for p in [0u32, 2, 4] {
            w.increment(p, b1).unwrap();
        }
        for p in [4u32, 6, 8] {
            w.increment(p, b1).unwrap();
        }
        // Counters: positions 0,2,6,8 → 1; position 4 → 2.
        assert_eq!(w.counter(0, b1), 1);
        assert_eq!(w.counter(2, b1), 1);
        assert_eq!(w.counter(4, b1), 2);
        assert_eq!(w.counter(6, b1), 1);
        assert_eq!(w.counter(8, b1), 1);
        // "The improved HCBF can fill the whole word and there is no
        //  remainder": 10 + 6 increments = 16 bits used.
        assert_eq!(w.used_bits(b1), 16);
        assert_eq!(w.remaining_capacity(b1), 0);
        // Level sizes: v1 = 10, v2 = popcount(v1) = 5, v3 = 1.
        assert_eq!(w.level_sizes(b1), vec![10, 5, 1]);
        assert!(w.check_invariants(b1).is_ok());
    }

    #[test]
    fn overflow_is_detected_and_harmless() {
        let b1 = 10;
        let mut w = H16::new();
        for _ in 0..6 {
            w.increment(0, b1).unwrap();
        }
        let before = *w.raw();
        assert_eq!(w.increment(1, b1), Err(WordError::Overflow));
        assert_eq!(*w.raw(), before, "failed increment must not mutate");
        assert_eq!(w.counter(0, b1), 6);
    }

    #[test]
    fn word_errors_map_to_filter_errors_with_real_index() {
        assert_eq!(
            WordError::Overflow.at(17),
            FilterError::WordOverflow { word: 17 }
        );
        assert_eq!(WordError::ZeroCounter.at(3), FilterError::NotPresent);
    }

    #[test]
    fn decrement_of_zero_counter_errors() {
        let mut w = H64::new();
        assert_eq!(w.decrement(7, 40), Err(WordError::ZeroCounter));
        w.increment(6, 40).unwrap();
        assert_eq!(w.decrement(7, 40), Err(WordError::ZeroCounter));
        assert_eq!(w.counter(6, 40), 1);
    }

    #[test]
    fn deep_single_chain_uses_whole_hierarchy() {
        // All capacity on one counter: counter = w − b1.
        let b1 = 40u32;
        let mut w = H64::new();
        for i in 1..=24u32 {
            assert_eq!(w.increment(9, b1).unwrap().new_count, i);
        }
        assert!(w.increment(9, b1).is_err());
        assert_eq!(w.counter(9, b1), 24);
        assert_eq!(w.level_sizes(b1).len(), 25); // v1 + 24 unary levels
        assert!(w.check_invariants(b1).is_ok());
    }

    #[test]
    fn traversal_bits_grow_with_depth() {
        let mut w = H64::new();
        let r1 = w.increment(0, 40).unwrap();
        assert_eq!(r1.traversal_bits, 0); // landed at level 1
        w.increment(1, 40).unwrap();
        w.increment(2, 40).unwrap();
        let r2 = w.increment(0, 40).unwrap(); // descends into level 2 (size 3)
        assert_eq!(r2.new_count, 2);
        assert_eq!(r2.traversal_bits, 2); // log2(3) → 2 bits
    }

    #[test]
    fn interleaved_positions_keep_sibling_counters_intact() {
        let mut w = H64::new();
        for p in 0..10u32 {
            w.increment(p, 40).unwrap();
        }
        for _ in 0..5 {
            w.increment(4, 40).unwrap();
        }
        for p in 0..10u32 {
            let expect = if p == 4 { 6 } else { 1 };
            assert_eq!(w.counter(p, 40), expect, "counter {p}");
        }
        w.decrement(4, 40).unwrap();
        for p in 0..10u32 {
            let expect = if p == 4 { 5 } else { 1 };
            assert_eq!(w.counter(p, 40), expect, "counter {p} after decrement");
        }
    }

    #[test]
    fn query_all_short_circuits_like_scalar() {
        let mut w = H64::new();
        for p in [2u32, 4, 9] {
            w.increment(p, 40).unwrap();
        }
        assert_eq!(w.query_all(&[2, 4, 9]), (true, 3));
        assert_eq!(w.query_all(&[2, 5, 9]), (false, 2)); // stops at the zero
        assert_eq!(w.query_all(&[7]), (false, 1));
        assert_eq!(w.query_all(&[]), (true, 0));
    }

    #[test]
    fn routed_walks_match_hot_walks() {
        // Both bundles of one batch resolution must yield bit-identical
        // words and reports to the dispatched hot walks, step for step.
        let bk = mpcbf_bitvec::Kernel::batch();
        for ops in [bk.query, bk.update] {
            let mut hot = H64::new();
            let mut routed = H64::new();
            let mut s = 0x9e37_79b9_7f4a_7c15u64;
            let mut rand = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for _ in 0..3_000 {
                let p = (rand() % 40) as u32;
                if rand() % 3 == 0 {
                    let a = hot.decrement(p, 40);
                    let b = routed.decrement_routed(p, 40, &ops);
                    assert_eq!(a, b);
                } else if hot.remaining_capacity(40) > 0 {
                    let a = hot.increment(p, 40);
                    let b = routed.increment_routed(p, 40, &ops);
                    assert_eq!(a, b);
                }
                assert_eq!(hot.raw(), routed.raw());
            }
        }
    }

    #[test]
    fn routed_batches_match_plain_batches() {
        let bk = mpcbf_bitvec::Kernel::batch();
        let probes = [3u32, 3, 17, 0, 9];
        let mut plain = H64::new();
        let mut routed = H64::new();
        assert_eq!(
            plain.increment_all(&probes, 40),
            routed.increment_all_routed(&probes, 40, &bk.update)
        );
        assert_eq!(plain.raw(), routed.raw());
        assert_eq!(
            plain.decrement_all(&probes, 40),
            routed.decrement_all_routed(&probes, 40, &bk.update)
        );
        assert_eq!(plain.raw(), routed.raw());
        // Rollback on failure is routed too and leaves the word intact.
        let mut w = H16::new();
        for _ in 0..4 {
            w.increment(0, 10).unwrap();
        }
        let before = *w.raw();
        assert_eq!(
            w.increment_all_routed(&[1, 2, 3], 10, &bk.update),
            Err(WordError::Overflow)
        );
        assert_eq!(*w.raw(), before);
    }

    #[test]
    fn increment_all_matches_sequential_increments() {
        let mut batch = H64::new();
        let mut scalar = H64::new();
        let probes = [3u32, 3, 17, 0];
        let mut expect_bits = 0;
        for &p in &probes {
            expect_bits += scalar.increment(p, 40).unwrap().traversal_bits;
        }
        assert_eq!(batch.increment_all(&probes, 40).unwrap(), expect_bits);
        assert_eq!(batch.raw(), scalar.raw());
    }

    #[test]
    fn increment_all_rolls_back_on_overflow() {
        let b1 = 10;
        let mut w = H16::new();
        for _ in 0..4 {
            w.increment(0, b1).unwrap();
        }
        let before = *w.raw();
        // Capacity is 6; 3 more increments cannot all fit.
        assert_eq!(w.increment_all(&[1, 2, 3], b1), Err(WordError::Overflow));
        assert_eq!(*w.raw(), before, "failed batch must not mutate");
    }

    #[test]
    fn decrement_all_mirrors_and_rolls_back() {
        let mut w = H64::new();
        for p in [5u32, 5, 8] {
            w.increment(p, 40).unwrap();
        }
        let before = *w.raw();
        // Position 9 is empty: the whole batch must be undone.
        assert_eq!(w.decrement_all(&[5, 8, 9], 40), Err(WordError::ZeroCounter));
        assert_eq!(*w.raw(), before);
        // A valid batch drains exactly the inserted multiset.
        w.decrement_all(&[5, 5, 8], 40).unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn works_at_u128_width() {
        let mut w: HcbfWord<u128> = HcbfWord::new();
        let b1 = 100; // capacity: 128 − 100 = 28 increments
        for p in (0..100).step_by(10) {
            w.increment(p, b1).unwrap();
            w.increment(p, b1).unwrap();
        }
        for p in (0..100).step_by(10) {
            assert_eq!(w.counter(p, b1), 2);
        }
        assert!(w.check_invariants(b1).is_ok());
    }
}
