//! Saturation-safe MPCBF: overflow spillover into a bounded side
//! structure.
//!
//! The paper sizes HCBF words with the Eq.-(11) heuristic so that word
//! overflow "never" happens *on the expected workload*. Production
//! traffic is skewed: a hot key or an adversarial burst can saturate a
//! word, and a bare [`Mpcbf`] then refuses the insert. That is the
//! honest answer for a data structure, but the wrong one for a system —
//! callers at a packet-processing fast path rarely have a recovery
//! story for "the filter is full right here".
//!
//! [`ResilientMpcbf`] keeps the paper's filter as the fast path and adds
//! a two-part **spill** for the overflow tail:
//!
//! * a small plain [`Cbf`] (the *gate*) sized at a fraction of the main
//!   filter, giving metered, constant-time negative checks for spilled
//!   keys, and
//! * an exact key→multiplicity map holding the spilled copies, so
//!   spilled membership is *exact* (no false positives from the spill
//!   beyond the gate's short-circuit, and never a false negative).
//!
//! Inserts that overflow the main filter are absorbed by the spill, so
//! insertion becomes lossless under saturation; removes drain spilled
//! copies first (the spill holds the *latest* copies of a hot key);
//! queries consult main-then-spill. The overflow tail is by construction
//! small — the heuristic makes overflow rare — so the exact map stays
//! bounded in practice; [`ResilientMpcbf::health`] reports its size so
//! operators can see when a workload has outgrown the shape.
//!
//! Cost accounting: main-filter and gate accesses are metered exactly
//! like every other filter; the exact-map lookup is *not* metered (it is
//! a host-side hash map, not part of the paper's word-access model) and
//! its memory is likewise excluded from [`Filter::memory_bits`].

use crate::cbf::Cbf;
use crate::config::MpcbfConfig;
use crate::metrics::{HealthReport, OpCost};
use crate::mpcbf::Mpcbf;
use crate::plan::PlanBuffer;
use crate::scrub::{FilterSeal, ScrubReport};
use crate::traits::{CountingFilter, Filter};
use crate::FilterError;
use mpcbf_hash::{Hasher128, Murmur3};
use std::collections::HashMap;

/// Salt mixed into the spill gate's seed so its hash streams are
/// independent of the main filter's.
const SPILL_SALT: u64 = 0x5350_494c_4c5f_4342; // "SPILL_CB"

/// Spill gate size as a divisor of the main filter's memory.
const SPILL_FRACTION: u64 = 16;

/// Minimum spill gate size in bits, so tiny test shapes still get a
/// functional gate.
const MIN_SPILL_BITS: u64 = 4096;

/// Borrowed decomposition for the codec: main filter, spill gate,
/// exact spill map, and the lifetime spilled-insert counter.
pub(crate) type SpillParts<'a, H> = (
    &'a Mpcbf<u64, H>,
    &'a Cbf<H>,
    &'a HashMap<Vec<u8>, u32>,
    u64,
);

/// An [`Mpcbf`] that absorbs word overflows into a bounded spill
/// structure instead of refusing inserts.
///
/// ```
/// use mpcbf_core::{CountingFilter, Filter, MpcbfConfig, ResilientMpcbf};
///
/// // A deliberately tiny shape that a plain MPCBF would saturate.
/// let config = MpcbfConfig::builder()
///     .memory_bits(256)
///     .expected_items(1000)
///     .hashes(3)
///     .n_max(1)
///     .seed(5)
///     .build()
///     .unwrap();
/// let mut filter: ResilientMpcbf = ResilientMpcbf::new(config);
/// for i in 0..200u64 {
///     filter.insert(&i).unwrap(); // never refuses
/// }
/// assert!((0..200u64).all(|i| filter.contains(&i)));
/// assert!(filter.health().is_spilling());
/// ```
#[derive(Debug, Clone)]
pub struct ResilientMpcbf<H: Hasher128 = Murmur3> {
    main: Mpcbf<u64, H>,
    /// Fast negative checks for spilled keys (metered like any filter).
    gate: Cbf<H>,
    /// Authoritative multiplicities of the spilled copies.
    exact: HashMap<Vec<u8>, u32>,
    /// Sum of all multiplicities in `exact`.
    spill_occupancy: u64,
    /// Lifetime count of inserts routed to the spill.
    spilled_inserts: u64,
}

impl<H: Hasher128> ResilientMpcbf<H> {
    /// Creates a resilient filter from a validated configuration: the
    /// main [`Mpcbf`] uses the configuration as-is, the spill gate gets
    /// `1/16` of the main memory (at least 4096 bits) and an independent
    /// seed.
    pub fn new(config: MpcbfConfig) -> Self {
        let main: Mpcbf<u64, H> = Mpcbf::new(config);
        let shape = main.shape();
        let spill_bits = (shape.l * u64::from(shape.w) / SPILL_FRACTION).max(MIN_SPILL_BITS);
        let gate = Cbf::with_memory(spill_bits, shape.k, main.seed() ^ SPILL_SALT);
        ResilientMpcbf {
            main,
            gate,
            exact: HashMap::new(),
            spill_occupancy: 0,
            spilled_inserts: 0,
        }
    }

    /// The wrapped main filter (read-only).
    pub fn main(&self) -> &Mpcbf<u64, H> {
        &self.main
    }

    /// Distinct keys currently living in the spill.
    pub fn spill_keys(&self) -> u64 {
        self.exact.len() as u64
    }

    /// Total multiplicity currently stored in the spill.
    pub fn spill_occupancy(&self) -> u64 {
        self.spill_occupancy
    }

    /// Lifetime count of inserts absorbed by the spill.
    pub fn spilled_inserts(&self) -> u64 {
        self.spilled_inserts
    }

    /// Net elements stored across main filter and spill.
    pub fn items(&self) -> u64 {
        self.main.items() + self.spill_occupancy
    }

    /// Analytic false-positive envelope at the current occupancy.
    ///
    /// This is Eq. (8)/(9) evaluated for the main filter's shape at its
    /// *current* item count. The spill contributes no term: spilled
    /// membership is decided by the exact map (the gate only
    /// short-circuits negatives), so the spill can never produce a false
    /// positive. The envelope therefore rises with occupancy but stays
    /// finite even when the shape is saturated — exactly the quantity an
    /// elastic wrapper sums across generations to bound its stacked FPR.
    pub fn fpr_envelope(&self) -> f64 {
        let shape = self.main.shape();
        mpcbf_analysis::mpcbf::fpr_mpcbf_g_b1(
            self.main.items(),
            shape.l,
            shape.k,
            shape.g,
            shape.b1,
        )
    }

    /// Saturation snapshot of the whole structure: the main filter's
    /// fill/overflow figures plus the spill's occupancy.
    pub fn health(&self) -> HealthReport {
        let mut h = self.main.health();
        h.spill_keys = self.spill_keys();
        h.spill_occupancy = self.spill_occupancy;
        h.spilled_inserts = self.spilled_inserts;
        h
    }

    /// Structural self-check over both storages. Spill-gate damage is
    /// reported with its segment index offset by the main filter's
    /// segment count (segments `0..main` are the main word array,
    /// `main..` the gate), matching [`ResilientMpcbf::scrub`].
    pub fn verify(&self) -> Result<(), FilterError> {
        self.main.verify()?;
        self.gate.verify().map_err(|e| match e {
            FilterError::CorruptionDetected { segment } => FilterError::CorruptionDetected {
                segment: self.main.seal().segments() + segment,
            },
            other => other,
        })
    }

    /// Checksums both storages for later [`ResilientMpcbf::scrub`] passes.
    pub fn seal(&self) -> ResilientSeal {
        ResilientSeal {
            main: self.main.seal(),
            gate: self.gate.seal(),
        }
    }

    /// Scrubs both storages against `seal`, returning one merged report.
    /// Segments `0..main_segments` cover the main word array; gate
    /// segments follow, offset by `main_segments`.
    ///
    /// # Panics
    /// Panics if `seal` was taken from a differently-shaped filter.
    pub fn scrub(&self, seal: &ResilientSeal) -> ScrubReport {
        let main_segments = seal.main.segments();
        let mut report = self.main.scrub(&seal.main);
        let gate_report = self.gate.scrub(&seal.gate);
        report.segments_checked = main_segments + gate_report.segments_checked;
        report.merge(ScrubReport::new(
            report.segments_checked,
            gate_report
                .corrupt_segments
                .iter()
                .map(|s| main_segments + s)
                .collect(),
        ));
        report
    }

    /// Fault-injection hook: flips bits in the main filter's word `word`.
    pub fn corrupt_main_word_xor(&mut self, word: usize, mask: u64) {
        self.main.corrupt_word_xor(word, mask);
    }

    /// Fault-injection hook: flips bits in the spill gate's limb `limb`.
    pub fn corrupt_gate_limb_xor(&mut self, limb: usize, mask: u64) {
        self.gate.corrupt_limb_xor(limb, mask);
    }

    /// Routes one key into the spill (gate + exact map), metering the
    /// gate insert.
    fn spill_insert(&mut self, key: &[u8]) -> OpCost {
        let cost = self
            .gate
            .insert_bytes_cost(key)
            .expect("CBF insert cannot fail");
        *self.exact.entry(key.to_vec()).or_insert(0) += 1;
        self.spill_occupancy += 1;
        self.spilled_inserts += 1;
        cost
    }

    /// Drains one spilled copy of `key`; the caller has already checked
    /// the exact map holds at least one.
    fn spill_remove(&mut self, key: &[u8]) -> OpCost {
        let cost = self
            .gate
            .remove_bytes_cost(key)
            .expect("spill gate tracks the exact map");
        match self.exact.get_mut(key) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.exact.remove(key);
            }
            None => unreachable!("spill_remove called without a spilled copy"),
        }
        self.spill_occupancy -= 1;
        cost
    }

    /// Decomposes the filter for the codec: main filter, spill gate,
    /// exact spill map, and the lifetime spilled-insert counter.
    pub(crate) fn spill_parts(&self) -> SpillParts<'_, H> {
        (&self.main, &self.gate, &self.exact, self.spilled_inserts)
    }

    /// Spills a key the bulk builder's main-shape admission refused
    /// (the `bulk::ResilientBulkBuilder` push path). Spill structures
    /// commute per key, so spilling at push time reproduces the scalar
    /// insert's spill state exactly.
    pub(crate) fn bulk_spill_insert(&mut self, key: &[u8]) {
        let _ = self.spill_insert(key);
    }

    /// Installs the bulk-built main filter (the builder's admission
    /// decisions match the scalar insert, so the pair stays coherent).
    pub(crate) fn bulk_replace_main(&mut self, main: Mpcbf<u64, H>) {
        self.main = main;
    }

    /// Rebuilds a filter from codec-validated parts; `spill_occupancy`
    /// is recomputed from the map so it can never disagree with it.
    pub(crate) fn from_spill_parts(
        main: Mpcbf<u64, H>,
        gate: Cbf<H>,
        exact: HashMap<Vec<u8>, u32>,
        spilled_inserts: u64,
    ) -> Self {
        let spill_occupancy = exact.values().map(|&c| u64::from(c)).sum();
        ResilientMpcbf {
            main,
            gate,
            exact,
            spill_occupancy,
            spilled_inserts,
        }
    }

    /// True if the spill currently holds a copy of `key`, with the gate
    /// consulted first for a metered short-circuit.
    fn spill_contains_cost(&self, key: &[u8]) -> (bool, OpCost) {
        if self.spill_occupancy == 0 {
            return (false, OpCost::zero());
        }
        let (gate_hit, cost) = self.gate.contains_bytes_cost(key);
        let hit = gate_hit && self.exact.contains_key(key);
        (hit, cost)
    }
}

impl<H: Hasher128> Filter for ResilientMpcbf<H> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        let (hit, cost) = self.main.contains_bytes_cost(key);
        if hit {
            return (true, cost);
        }
        let (spill_hit, spill_cost) = self.spill_contains_cost(key);
        (spill_hit, cost.add(spill_cost))
    }

    /// Lossless insert: the main filter first; a word overflow routes the
    /// key into the spill instead of surfacing an error. The reported
    /// cost is the successful path's (the gate insert, for spilled keys —
    /// a refused main insert rolls back and meters nothing, exactly like
    /// a bare [`Mpcbf`]).
    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        match self.main.insert_bytes_cost(key) {
            Ok(cost) => Ok(cost),
            Err(FilterError::WordOverflow { .. }) => Ok(self.spill_insert(key)),
            Err(e) => Err(e),
        }
    }

    fn memory_bits(&self) -> u64 {
        self.main.memory_bits() + self.gate.memory_bits()
    }

    fn num_hashes(&self) -> u32 {
        self.main.num_hashes()
    }

    /// Pipelined batch query: the main filter's batch pass runs first,
    /// then every miss consults the spill — observationally identical to
    /// the scalar loop.
    fn contains_batch_cost(&self, keys: &[&[u8]]) -> (Vec<bool>, OpCost) {
        self.contains_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Buffer-reusing twin: the scratch is threaded through to the main
    /// filter's fused batch pass; the spill pass is unchanged.
    fn contains_batch_with(&self, keys: &[&[u8]], plans: &mut PlanBuffer) -> (Vec<bool>, OpCost) {
        let (mut hits, mut total) = self.main.contains_batch_with(keys, plans);
        for (hit, key) in hits.iter_mut().zip(keys) {
            if !*hit {
                let (spill_hit, spill_cost) = self.spill_contains_cost(key);
                *hit = spill_hit;
                total = total.add(spill_cost);
            }
        }
        (hits, total)
    }

    /// Pipelined batch insert: the main filter applies the whole batch
    /// with its per-key rollback, then each refused key is routed to the
    /// spill in key order — the exact state a scalar loop produces.
    fn insert_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.insert_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Buffer-reusing twin of [`Self::insert_batch_cost`].
    fn insert_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        let (mut results, mut total) = self.main.insert_batch_with(keys, plans);
        for (result, key) in results.iter_mut().zip(keys) {
            if matches!(result, Err(FilterError::WordOverflow { .. })) {
                total = total.add(self.spill_insert(key));
                *result = Ok(());
            }
        }
        (results, total)
    }
}

impl<H: Hasher128> CountingFilter for ResilientMpcbf<H> {
    /// Removes one copy of `key`, draining spilled copies first (the
    /// spill holds the latest copies of a hot key); only when the spill
    /// has none does the main filter see the remove.
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        if self.exact.contains_key(key) {
            return Ok(self.spill_remove(key));
        }
        self.main.remove_bytes_cost(key)
    }

    /// Pipelined batch remove: keys are partitioned in order between
    /// spill-routed and main-routed (respecting in-batch duplicates
    /// draining the spill), the spill removes apply directly, and the
    /// main subset goes through the main filter's pipelined batch pass.
    /// The final state and per-key results match the scalar loop exactly.
    fn remove_batch_cost(&mut self, keys: &[&[u8]]) -> (Vec<Result<(), FilterError>>, OpCost) {
        self.remove_batch_with(keys, &mut PlanBuffer::new())
    }

    /// Buffer-reusing twin of [`Self::remove_batch_cost`].
    fn remove_batch_with(
        &mut self,
        keys: &[&[u8]],
        plans: &mut PlanBuffer,
    ) -> (Vec<Result<(), FilterError>>, OpCost) {
        // Partition in key order, simulating the spill drain so in-batch
        // duplicates of a spilled key route correctly: the first `count`
        // copies go to the spill, the rest to the main filter.
        let mut pending: HashMap<&[u8], u32> = HashMap::new();
        let mut main_keys: Vec<&[u8]> = Vec::new();
        let mut route_to_spill = vec![false; keys.len()];
        for (i, key) in keys.iter().enumerate() {
            let available = self.exact.get(*key).copied().unwrap_or(0);
            let drained = pending.entry(*key).or_insert(0);
            if *drained < available {
                *drained += 1;
                route_to_spill[i] = true;
            } else {
                main_keys.push(*key);
            }
        }

        let mut total = OpCost::zero();
        let mut spill_results: Vec<OpCost> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if route_to_spill[i] {
                let cost = self.spill_remove(key);
                total = total.add(cost);
                spill_results.push(cost);
            }
        }
        let (main_results, main_total) = if main_keys.is_empty() {
            (Vec::new(), OpCost::zero())
        } else {
            self.main.remove_batch_with(&main_keys, plans)
        };
        total = total.add(main_total);

        // Splice per-key results back into input order.
        let mut main_iter = main_results.into_iter();
        let results = route_to_spill
            .iter()
            .map(|&spilled| {
                if spilled {
                    Ok(())
                } else {
                    main_iter.next().expect("one main result per main key")
                }
            })
            .collect();
        (results, total)
    }
}

/// Paired checksums of a [`ResilientMpcbf`]'s two storages, taken by
/// [`ResilientMpcbf::seal`] and consumed by [`ResilientMpcbf::scrub`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientSeal {
    /// Seal over the main filter's word array.
    pub main: FilterSeal,
    /// Seal over the spill gate's counter limbs.
    pub gate: FilterSeal,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> MpcbfConfig {
        // 4 words of capacity 3 increments each: overflows guaranteed.
        MpcbfConfig::builder()
            .memory_bits(256)
            .expected_items(1000)
            .hashes(3)
            .n_max(1)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn roomy_config(seed: u64) -> MpcbfConfig {
        MpcbfConfig::builder()
            .memory_bits(1_000_000)
            .expected_items(10_000)
            .hashes(3)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn absorbs_forced_overflows_with_zero_false_negatives() {
        let mut f: ResilientMpcbf = ResilientMpcbf::new(tiny_config(5));
        for i in 0..200u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..200u64 {
            assert!(f.contains(&i), "false negative for {i} under saturation");
        }
        let h = f.health();
        assert!(h.is_spilling(), "tiny shape must have spilled");
        assert!(h.overflows > 0);
        assert_eq!(h.spilled_inserts, f.spilled_inserts());
        assert_eq!(f.items(), 200);

        // Drain everything: spill and main both empty out.
        for i in 0..200u64 {
            f.remove(&i).unwrap();
        }
        assert_eq!(f.items(), 0);
        assert_eq!(f.spill_occupancy(), 0);
        assert_eq!(f.spill_keys(), 0);
        assert!(f.main().word_loads().iter().all(|&c| c == 0));
    }

    #[test]
    fn hot_key_copies_drain_in_reverse() {
        let mut f: ResilientMpcbf = ResilientMpcbf::new(tiny_config(7));
        // Hammer one key until copies spill.
        for _ in 0..50 {
            f.insert(&"hot").unwrap();
        }
        assert!(f.spill_occupancy() > 0, "50 copies must overflow one word");
        let spilled = f.spill_occupancy();
        // Removes drain the spilled copies first...
        for _ in 0..spilled {
            f.remove(&"hot").unwrap();
        }
        assert_eq!(f.spill_occupancy(), 0);
        assert!(f.contains(&"hot"), "main-filter copies remain");
        // ...then the main filter's.
        for _ in 0..(50 - spilled) {
            f.remove(&"hot").unwrap();
        }
        assert!(!f.contains(&"hot"));
        assert_eq!(f.remove(&"hot"), Err(FilterError::NotPresent));
    }

    #[test]
    fn never_spills_on_a_healthy_shape() {
        let mut f: ResilientMpcbf = ResilientMpcbf::new(roomy_config(1));
        for i in 0..5_000u64 {
            f.insert(&i).unwrap();
        }
        let h = f.health();
        assert!(!h.is_spilling());
        assert_eq!(h.overflows, 0);
        assert_eq!(h.spilled_inserts, 0);
    }

    #[test]
    fn batch_matches_scalar_loop_under_saturation() {
        let mut batch: ResilientMpcbf = ResilientMpcbf::new(tiny_config(11));
        let mut scalar: ResilientMpcbf = ResilientMpcbf::new(tiny_config(11));
        // Duplicates included so in-batch spill drains are exercised.
        let keys: Vec<Vec<u8>> = (0..120u64)
            .map(|i| (i % 40).to_le_bytes().to_vec())
            .collect();
        let views: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

        let (batch_res, bi) = batch.insert_batch_cost(&views);
        let mut si = OpCost::zero();
        for k in &views {
            si = si.add(scalar.insert_bytes_cost(k).unwrap());
        }
        assert!(batch_res.iter().all(|r| r.is_ok()), "inserts are lossless");
        assert_eq!(bi, si);
        assert_eq!(batch.main().raw_words(), scalar.main().raw_words());
        assert_eq!(batch.spill_occupancy(), scalar.spill_occupancy());

        let probes: Vec<Vec<u8>> = (0..80u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let probe_views: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
        let (batch_hits, bq) = batch.contains_batch_cost(&probe_views);
        let mut sq = OpCost::zero();
        for (i, k) in probe_views.iter().enumerate() {
            let (hit, cost) = scalar.contains_bytes_cost(k);
            assert_eq!(hit, batch_hits[i], "key {i}");
            sq = sq.add(cost);
        }
        assert_eq!(bq, sq);

        // Mixed removes: present keys (some spilled, with duplicates) and
        // absent ones.
        let mixed: Vec<Vec<u8>> = (20..60u64)
            .flat_map(|i| [i.to_le_bytes().to_vec(), i.to_le_bytes().to_vec()])
            .collect();
        let mixed_views: Vec<&[u8]> = mixed.iter().map(|k| k.as_slice()).collect();
        let (batch_rres, br) = batch.remove_batch_cost(&mixed_views);
        let mut sr = OpCost::zero();
        for (i, k) in mixed_views.iter().enumerate() {
            match scalar.remove_bytes_cost(k) {
                Ok(c) => {
                    sr = sr.add(c);
                    assert_eq!(batch_rres[i], Ok(()), "key {i}");
                }
                Err(e) => assert_eq!(batch_rres[i], Err(e), "key {i}"),
            }
        }
        assert_eq!(br, sr);
        assert_eq!(batch.main().raw_words(), scalar.main().raw_words());
        assert_eq!(batch.spill_occupancy(), scalar.spill_occupancy());
        assert_eq!(batch.items(), scalar.items());
    }

    #[test]
    fn scrub_localises_damage_in_either_storage() {
        let mut f: ResilientMpcbf = ResilientMpcbf::new(tiny_config(13));
        for i in 0..100u64 {
            f.insert(&i).unwrap();
        }
        assert_eq!(f.verify(), Ok(()));
        let seal = f.seal();
        assert!(f.scrub(&seal).is_clean());

        // Damage the main word array: segment 0 (4 words).
        f.corrupt_main_word_xor(2, 1 << 33);
        let report = f.scrub(&seal);
        assert_eq!(report.corrupt_segments, vec![0]);
        f.corrupt_main_word_xor(2, 1 << 33);

        // Damage the spill gate: reported past the main segment range.
        f.corrupt_gate_limb_xor(10, 1 << 7);
        let report = f.scrub(&seal);
        assert_eq!(report.corrupt_segments, vec![seal.main.segments()]);
        f.corrupt_gate_limb_xor(10, 1 << 7);
        assert!(f.scrub(&seal).is_clean());
    }

    #[test]
    fn memory_includes_gate_but_not_exact_map() {
        let f: ResilientMpcbf = ResilientMpcbf::new(roomy_config(3));
        assert_eq!(
            f.memory_bits(),
            f.main().memory_bits() + (f.main().memory_bits() / 16).max(4096)
        );
    }
}
