//! The MapReduce execution engine.
//!
//! Faithful to the Hadoop dataflow the paper runs on (§V): inputs are
//! split across map tasks; each map task emits `(key, value)` pairs into
//! hash partitions; the shuffle hands each partition to a reduce task,
//! which sorts by key, groups, and reduces. Everything is in-process and
//! multi-threaded with crossbeam scoped threads; Hadoop's counters and
//! per-phase wall times are measured so the join harness can report the
//! quantities Table IV tracks.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Number of parallel map tasks.
    pub map_tasks: usize,
    /// Number of parallel reduce tasks (= shuffle partitions).
    pub reduce_tasks: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        JobConfig {
            map_tasks: cores,
            reduce_tasks: cores.max(2) / 2,
        }
    }
}

impl JobConfig {
    /// A single-threaded configuration (deterministic output order).
    pub fn sequential() -> Self {
        JobConfig {
            map_tasks: 1,
            reduce_tasks: 1,
        }
    }
}

/// Hadoop-style job counters plus phase wall times.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobStats {
    /// Records fed to map tasks.
    pub map_input_records: u64,
    /// Key-value pairs emitted by map tasks ("Map output records" —
    /// the column Table IV reports). Counted *before* any combiner runs.
    pub map_output_records: u64,
    /// Records actually crossing the shuffle (= map outputs unless a
    /// combiner shrank them).
    pub shuffled_records: u64,
    /// Approximate bytes crossing the shuffle
    /// (`shuffled_records × size_of::<(K, V)>()`).
    pub shuffle_bytes: u64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: u64,
    /// Records fed to reducers (= map outputs that survived the shuffle).
    pub reduce_input_records: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
    /// Wall time of the map phase.
    pub map_wall: Duration,
    /// Wall time of shuffle + sort + reduce.
    pub reduce_wall: Duration,
    /// End-to-end wall time.
    pub total_wall: Duration,
}

/// The per-map-task emitter: partitions emitted pairs by key hash.
pub struct Emitter<K, V> {
    partitions: Vec<Vec<(K, V)>>,
    emitted: u64,
}

impl<K: Hash, V> Emitter<K, V> {
    fn new(reduce_tasks: usize) -> Self {
        Emitter {
            partitions: (0..reduce_tasks).map(|_| Vec::new()).collect(),
            emitted: 0,
        }
    }

    /// Emits one key-value pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let p = (h.finish() % self.partitions.len() as u64) as usize;
        self.partitions[p].push((key, value));
        self.emitted += 1;
    }

    /// Pairs emitted so far by this task.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Runs a MapReduce job.
///
/// * `inputs` — the input records; they are split into `map_tasks` chunks.
/// * `mapper` — called once per input record with the task's [`Emitter`].
/// * `reducer` — called once per distinct key with all its values
///   (sorted-key order within a partition) and an output sink.
///
/// Returns the concatenated reducer outputs (ordered by partition, then by
/// key within each partition) and the job statistics.
pub fn run_job<I, K, V, O, M, R>(
    config: &JobConfig,
    inputs: Vec<I>,
    mapper: M,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Send,
    K: Ord + Hash + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(I, &mut Emitter<K, V>) + Sync,
    R: Fn(&K, Vec<V>, &mut Vec<O>) + Sync,
{
    run_job_with_combiner(
        config,
        inputs,
        mapper,
        None::<fn(&K, Vec<V>) -> Vec<V>>,
        reducer,
    )
}

/// [`run_job`] with an optional map-side **combiner** — Hadoop's standard
/// shuffle-volume optimisation: each map task sorts and pre-aggregates its
/// own output per key before the shuffle, so commutative-associative
/// reductions (counts, sums) ship one record per key per mapper instead
/// of one per input record.
///
/// The combiner receives a key and that mapper's values for it and
/// returns the (usually shorter) value list to shuffle. Correctness
/// contract is Hadoop's: the reducer must produce the same result whether
/// or not the combiner ran (the tests verify this for the engine).
pub fn run_job_with_combiner<I, K, V, O, M, C, R>(
    config: &JobConfig,
    inputs: Vec<I>,
    mapper: M,
    combiner: Option<C>,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Send,
    K: Ord + Hash + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(I, &mut Emitter<K, V>) + Sync,
    C: Fn(&K, Vec<V>) -> Vec<V> + Sync,
    R: Fn(&K, Vec<V>, &mut Vec<O>) + Sync,
{
    assert!(config.map_tasks >= 1 && config.reduce_tasks >= 1);
    let total_start = Instant::now();
    let mut stats = JobStats {
        map_input_records: inputs.len() as u64,
        ..JobStats::default()
    };

    // ---- Map phase -------------------------------------------------------
    let map_start = Instant::now();
    let n_inputs = inputs.len();
    let chunk = n_inputs.div_ceil(config.map_tasks).max(1);

    // Each map task consumes one chunk and returns its partitioned output.
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(config.map_tasks);
    {
        let mut it = inputs.into_iter();
        loop {
            let c: Vec<I> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
    }

    let reduce_tasks = config.reduce_tasks;
    let mapper = &mapper;
    let combiner = combiner.as_ref();
    let map_outputs: Vec<Emitter<K, V>> = crossbeam::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move |_| {
                    let mut em = Emitter::new(reduce_tasks);
                    for record in c {
                        mapper(record, &mut em);
                    }
                    // Map-side combine: sort + group + pre-aggregate each
                    // partition locally before anything crosses the shuffle.
                    if let Some(combine) = combiner {
                        for part in &mut em.partitions {
                            let mut input = std::mem::take(part);
                            input.sort_by(|a, b| a.0.cmp(&b.0));
                            let mut it = input.into_iter().peekable();
                            while let Some((key, first)) = it.next() {
                                let mut values = vec![first];
                                while let Some((k, _)) = it.peek() {
                                    if *k == key {
                                        values.push(it.next().expect("peeked").1);
                                    } else {
                                        break;
                                    }
                                }
                                for v in combine(&key, values) {
                                    // Re-emission stays in the same
                                    // partition (same key, same hash).
                                    part.push((key.clone(), v));
                                }
                            }
                        }
                    }
                    em
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map task panicked"))
            .collect()
    })
    .expect("map scope");
    stats.map_wall = map_start.elapsed();

    // ---- Shuffle ---------------------------------------------------------
    let reduce_start = Instant::now();
    let pair_bytes = std::mem::size_of::<(K, V)>() as u64;
    let mut partitions: Vec<Vec<(K, V)>> = (0..reduce_tasks).map(|_| Vec::new()).collect();
    for em in map_outputs {
        stats.map_output_records += em.emitted;
        for (p, mut pairs) in em.partitions.into_iter().enumerate() {
            stats.shuffled_records += pairs.len() as u64;
            partitions[p].append(&mut pairs);
        }
    }
    stats.shuffle_bytes = stats.shuffled_records * pair_bytes;
    stats.reduce_input_records = stats.shuffled_records;

    // ---- Sort + reduce ---------------------------------------------------
    let reducer = &reducer;
    let results: Vec<(Vec<O>, u64)> = crossbeam::scope(|s| {
        let handles: Vec<_> = partitions
            .into_iter()
            .map(|mut part| {
                s.spawn(move |_| {
                    part.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut out = Vec::new();
                    let mut groups = 0u64;
                    let mut it = part.into_iter().peekable();
                    while let Some((key, first_val)) = it.next() {
                        let mut values = vec![first_val];
                        while let Some((k, _)) = it.peek() {
                            if *k == key {
                                values.push(it.next().expect("peeked").1);
                            } else {
                                break;
                            }
                        }
                        groups += 1;
                        reducer(&key, values, &mut out);
                    }
                    (out, groups)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduce task panicked"))
            .collect()
    })
    .expect("reduce scope");

    let mut outputs = Vec::new();
    for (mut out, groups) in results {
        stats.reduce_input_groups += groups;
        stats.reduce_output_records += out.len() as u64;
        outputs.append(&mut out);
    }
    stats.reduce_wall = reduce_start.elapsed();
    stats.total_wall = total_start.elapsed();
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical word count, exercised at several parallelism levels.
    fn word_count(config: &JobConfig) -> Vec<(String, u64)> {
        let docs = vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog".to_string(),
        ];
        let (mut out, stats) = run_job(
            config,
            docs,
            |doc: String, em: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    em.emit(w.to_string(), 1);
                }
            },
            |k: &String, vs: Vec<u64>, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.iter().sum()));
            },
        );
        assert_eq!(stats.map_input_records, 3);
        assert_eq!(stats.map_output_records, 10);
        assert_eq!(stats.reduce_input_records, 10);
        out.sort();
        out
    }

    #[test]
    fn word_count_is_correct_at_any_parallelism() {
        let expected = vec![
            ("brown".to_string(), 1),
            ("dog".to_string(), 2),
            ("fox".to_string(), 1),
            ("lazy".to_string(), 1),
            ("quick".to_string(), 2),
            ("the".to_string(), 3),
        ];
        assert_eq!(word_count(&JobConfig::sequential()), expected);
        assert_eq!(
            word_count(&JobConfig {
                map_tasks: 4,
                reduce_tasks: 3
            }),
            expected
        );
        assert_eq!(
            word_count(&JobConfig {
                map_tasks: 8,
                reduce_tasks: 1
            }),
            expected
        );
    }

    #[test]
    fn empty_input_runs_cleanly() {
        let (out, stats) = run_job(
            &JobConfig::default(),
            Vec::<u64>::new(),
            |x, em: &mut Emitter<u64, u64>| em.emit(x, x),
            |k, vs, out: &mut Vec<u64>| out.push(*k + vs.len() as u64),
        );
        assert!(out.is_empty());
        assert_eq!(stats.map_input_records, 0);
        assert_eq!(stats.reduce_input_groups, 0);
    }

    #[test]
    fn group_counts_match_distinct_keys() {
        let inputs: Vec<u64> = (0..1000).collect();
        let (_, stats) = run_job(
            &JobConfig {
                map_tasks: 4,
                reduce_tasks: 4,
            },
            inputs,
            |x, em: &mut Emitter<u64, ()>| em.emit(x % 37, ()),
            |_, _, _: &mut Vec<()>| {},
        );
        assert_eq!(stats.reduce_input_groups, 37);
        assert_eq!(stats.map_output_records, 1000);
        assert!(stats.shuffle_bytes > 0);
    }

    #[test]
    fn reducer_sees_all_values_of_a_key() {
        let inputs: Vec<u32> = (0..100).collect();
        let (out, _) = run_job(
            &JobConfig {
                map_tasks: 3,
                reduce_tasks: 2,
            },
            inputs,
            |x, em: &mut Emitter<u32, u32>| em.emit(x % 10, x),
            |k, vs, out: &mut Vec<(u32, u32)>| {
                out.push((*k, vs.len() as u32));
            },
        );
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&(_, c)| c == 10));
    }

    #[test]
    fn combiner_preserves_results_and_shrinks_shuffle() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let config = JobConfig {
            map_tasks: 4,
            reduce_tasks: 2,
        };
        let mapper = |x: u64, em: &mut Emitter<u64, u64>| em.emit(x % 25, 1);
        let reducer = |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
            out.push((*k, vs.iter().sum()));
        };
        let (mut plain, s_plain) = run_job(&config, inputs.clone(), mapper, reducer);
        let (mut combined, s_comb) = run_job_with_combiner(
            &config,
            inputs,
            mapper,
            Some(|_: &u64, vs: Vec<u64>| vec![vs.iter().sum::<u64>()]),
            reducer,
        );
        plain.sort();
        combined.sort();
        assert_eq!(plain, combined, "combiner changed the result");
        // Pre-combine map outputs are identical; shuffled records shrink
        // to ≤ keys × map_tasks.
        assert_eq!(s_plain.map_output_records, s_comb.map_output_records);
        assert_eq!(s_plain.shuffled_records, 10_000);
        assert!(
            s_comb.shuffled_records <= 25 * 4,
            "{}",
            s_comb.shuffled_records
        );
        assert!(s_comb.shuffle_bytes < s_plain.shuffle_bytes);
    }

    #[test]
    fn combiner_that_expands_is_allowed() {
        // A (weird but legal) combiner that re-emits everything.
        let inputs: Vec<u64> = (0..100).collect();
        let (out, stats) = run_job_with_combiner(
            &JobConfig::sequential(),
            inputs,
            |x: u64, em: &mut Emitter<u64, u64>| em.emit(x % 10, x),
            Some(|_: &u64, vs: Vec<u64>| vs),
            |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, usize)>| out.push((*k, vs.len())),
        );
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&(_, c)| c == 10));
        assert_eq!(stats.shuffled_records, 100);
    }

    #[test]
    fn stats_time_fields_are_populated() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let (_, stats) = run_job(
            &JobConfig::default(),
            inputs,
            |x, em: &mut Emitter<u64, u64>| em.emit(x % 100, x),
            |_, vs, out: &mut Vec<u64>| out.push(vs.iter().sum()),
        );
        assert!(stats.total_wall >= stats.map_wall);
        assert!(stats.total_wall >= stats.reduce_wall);
    }
}
