//! Reduce-side join with optional filter pushdown (§V, Fig. 13, Table IV).
//!
//! "The map function tags a key-value pair and produces `<k', tag>,
//! <v', tag>` as the output; the reduce function first separates a list of
//! all values associated with each join key into two sets according to the
//! tag, and then performs a cross-product between values in these sets."
//!
//! With pushdown, a filter built from the smaller (left) input is
//! broadcast to map tasks, which drop right-side records whose key fails
//! the membership test — each dropped record is one fewer map output and
//! that much less shuffle traffic. A false positive lets a matchless
//! record through (wasted shuffle but correct output); false negatives
//! cannot happen, so the join result is *identical* with and without any
//! filter — a property the tests pin down.

use crate::engine::{run_job, Emitter, JobConfig, JobStats};
use mpcbf_core::{Filter, PlanBuffer};
use mpcbf_hash::Key;
use std::collections::HashSet;
use std::hash::Hash;
use std::time::Instant;

/// Object-safe membership test used by the map-side pushdown.
pub trait KeyFilter: Sync {
    /// Approximate membership of `key` (false positives allowed,
    /// false negatives not).
    fn test(&self, key: &[u8]) -> bool;

    /// Batched membership test; must answer exactly like `keys.len()`
    /// calls to [`KeyFilter::test`]. The default does precisely that, so
    /// existing custom implementations keep working; filter-backed
    /// implementations override it with the fused batch probe (hash all
    /// into the plan buffer, then probe).
    fn test_batch(&self, keys: &[&[u8]]) -> Vec<bool> {
        keys.iter().map(|k| self.test(k)).collect()
    }

    /// [`KeyFilter::test_batch`] against a caller-held [`PlanBuffer`], so
    /// a chunked pre-pass plans every chunk into the same scratch. The
    /// default ignores the buffer; reuse must be answer-identical.
    fn test_batch_with(&self, keys: &[&[u8]], _plans: &mut PlanBuffer) -> Vec<bool> {
        self.test_batch(keys)
    }
}

impl<F: Filter + Sync> KeyFilter for F {
    #[inline]
    fn test(&self, key: &[u8]) -> bool {
        self.contains_bytes(key)
    }

    #[inline]
    fn test_batch(&self, keys: &[&[u8]]) -> Vec<bool> {
        self.contains_batch_cost(keys).0
    }

    #[inline]
    fn test_batch_with(&self, keys: &[&[u8]], plans: &mut PlanBuffer) -> Vec<bool> {
        self.contains_batch_with(keys, plans).0
    }
}

/// Keys per batched pushdown probe: large enough to amortise the hash
/// stage, small enough to stay cache-resident.
const PUSHDOWN_BATCH: usize = 256;

/// Join configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinConfig {
    /// The underlying engine configuration.
    pub job: JobConfig,
}

/// Statistics of one join run — the Table IV columns plus supporting data.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JoinStats {
    /// Engine counters (map outputs, shuffle bytes, wall times).
    pub job: JobStats,
    /// Right-side records dropped by the pushdown filter.
    pub filtered_out: u64,
    /// Right-side records that passed the filter but had no left match
    /// (shuffled in vain — the numerator of the join FPR).
    pub false_positives: u64,
    /// Right-side records with no left match (the FPR denominator).
    pub matchless_records: u64,
    /// Joined output rows.
    pub output_rows: u64,
}

impl JoinStats {
    /// The join false-positive rate Table IV reports: of the records that
    /// a perfect filter would have dropped, the fraction that slipped
    /// through.
    pub fn join_fpr(&self) -> f64 {
        if self.matchless_records == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.matchless_records as f64
        }
    }
}

/// A tagged value travelling through the shuffle.
#[derive(Debug, Clone)]
enum Tagged<A, B> {
    Left(A),
    Right(B),
}

/// Runs a reduce-side equi-join of `left ⋈ right` on their keys.
///
/// `filter`, if provided, is applied map-side to right-side records (the
/// paper's pushdown). Returns the joined rows and the statistics.
pub fn reduce_side_join<K, A, B>(
    config: &JoinConfig,
    left: Vec<(K, A)>,
    right: Vec<(K, B)>,
    filter: Option<&dyn KeyFilter>,
) -> (Vec<(K, A, B)>, JoinStats)
where
    K: Key + Ord + Hash + Clone + Send + Sync,
    A: Clone + Send + Sync,
    B: Clone + Send + Sync,
{
    let start = Instant::now();
    // Ground truth for FPR accounting (cheap relative to the join itself).
    let left_keys: HashSet<&K> = left.iter().map(|(k, _)| k).collect();
    let matchless = right.iter().filter(|(k, _)| !left_keys.contains(k)).count() as u64;
    let right_total = right.len() as u64;

    // Pushdown runs as a batched pre-pass: probe the right side's keys in
    // chunks through the filter's fused batch pipeline (one hash stage,
    // one probe stage per chunk) and keep only a bitmap. One plan buffer
    // serves every chunk, so the pre-pass stops allocating after the
    // first chunk.
    let pass: Option<Vec<bool>> = filter.map(|f| {
        let owned: Vec<_> = right.iter().map(|(k, _)| k.key_bytes()).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        let mut out = Vec::with_capacity(views.len());
        let mut plans = PlanBuffer::new();
        for chunk in views.chunks(PUSHDOWN_BATCH) {
            out.extend(f.test_batch_with(chunk, &mut plans));
        }
        out
    });

    // Tag inputs. Left records always shuffle (the small side); right
    // records carry their index into the pushdown bitmap.
    enum In<K, A, B> {
        L(K, A),
        R(usize, K, B),
    }
    let inputs: Vec<In<K, A, B>> = left
        .into_iter()
        .map(|(k, a)| In::L(k, a))
        .chain(
            right
                .into_iter()
                .enumerate()
                .map(|(i, (k, b))| In::R(i, k, b)),
        )
        .collect();

    let (rows, job) = run_job(
        &config.job,
        inputs,
        |record: In<K, A, B>, em: &mut Emitter<K, Tagged<A, B>>| match record {
            In::L(k, a) => em.emit(k, Tagged::Left(a)),
            In::R(i, k, b) => {
                if pass.as_ref().is_none_or(|p| p[i]) {
                    em.emit(k, Tagged::Right(b));
                }
            }
        },
        |k: &K, values: Vec<Tagged<A, B>>, out: &mut Vec<(K, A, B)>| {
            let mut lefts = Vec::new();
            let mut rights = Vec::new();
            for v in values {
                match v {
                    Tagged::Left(a) => lefts.push(a),
                    Tagged::Right(b) => rights.push(b),
                }
            }
            for a in &lefts {
                for b in &rights {
                    out.push((k.clone(), a.clone(), b.clone()));
                }
            }
        },
    );

    let left_outputs = job.map_output_records.saturating_sub(0);
    // Right-side map outputs = total map outputs − left records (all left
    // records are emitted unconditionally).
    let left_records = job.map_input_records - right_total;
    let right_emitted = job.map_output_records - left_records;
    let _ = left_outputs;
    let filtered_out = right_total - right_emitted;
    // Matched right records always pass (no false negatives), so the
    // matchless records that slipped through are:
    let matched = right_total - matchless;
    let false_positives = right_emitted - matched;

    let mut stats = JoinStats {
        job,
        filtered_out,
        false_positives,
        matchless_records: matchless,
        output_rows: rows.len() as u64,
    };
    stats.job.total_wall = start.elapsed();
    (rows, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::{Cbf, Mpcbf1, MpcbfConfig};

    #[allow(clippy::type_complexity)]
    fn sample_tables() -> (Vec<(u32, u16)>, Vec<(u32, u32)>) {
        // Left: 100 keys with payloads; right: 1000 records, 30% matching.
        let left: Vec<(u32, u16)> = (0..100u32).map(|k| (k, (k % 50) as u16)).collect();
        let right: Vec<(u32, u32)> = (0..1000u32)
            .map(|i| {
                let k = if i % 10 < 3 { i % 100 } else { 1_000 + i };
                (k, i)
            })
            .collect();
        (left, right)
    }

    fn join_rows_set(rows: &[(u32, u16, u32)]) -> HashSet<(u32, u16, u32)> {
        rows.iter().copied().collect()
    }

    #[test]
    fn join_matches_nested_loop_oracle() {
        let (left, right) = sample_tables();
        let mut oracle = HashSet::new();
        for (lk, a) in &left {
            for (rk, b) in &right {
                if lk == rk {
                    oracle.insert((*lk, *a, *b));
                }
            }
        }
        let (rows, stats) = reduce_side_join(&JoinConfig::default(), left, right, None);
        assert_eq!(join_rows_set(&rows), oracle);
        assert_eq!(stats.filtered_out, 0);
        assert_eq!(stats.output_rows, rows.len() as u64);
    }

    #[test]
    fn pushdown_never_changes_the_result() {
        let (left, right) = sample_tables();
        let mut cbf = Cbf::<mpcbf_hash::Murmur3>::new(4096, 3, 7);
        for (k, _) in &left {
            cbf.insert(k).unwrap();
        }
        let (rows_plain, _) =
            reduce_side_join(&JoinConfig::default(), left.clone(), right.clone(), None);
        let (rows_filtered, stats) =
            reduce_side_join(&JoinConfig::default(), left, right, Some(&cbf));
        assert_eq!(join_rows_set(&rows_plain), join_rows_set(&rows_filtered));
        assert!(
            stats.filtered_out > 0,
            "filter should drop matchless records"
        );
    }

    #[test]
    fn filter_reduces_map_outputs() {
        let (left, right) = sample_tables();
        let mut mp = Mpcbf1::new(
            MpcbfConfig::builder()
                .memory_bits(100_000)
                .expected_items(100)
                .hashes(3)
                .build()
                .unwrap(),
        );
        for (k, _) in &left {
            mp.insert(k).unwrap();
        }
        let (_, plain) =
            reduce_side_join(&JoinConfig::default(), left.clone(), right.clone(), None);
        let (_, filt) = reduce_side_join(&JoinConfig::default(), left, right, Some(&mp));
        assert!(
            filt.job.map_output_records < plain.job.map_output_records,
            "{} !< {}",
            filt.job.map_output_records,
            plain.job.map_output_records
        );
        assert!(filt.job.shuffle_bytes < plain.job.shuffle_bytes);
    }

    #[test]
    fn batched_pushdown_equals_scalar_pushdown() {
        // A wrapper hiding the filter's batch override, forcing the
        // default loop-over-`test` path of `KeyFilter::test_batch`.
        struct ScalarOnly<'a>(&'a dyn KeyFilter);
        impl KeyFilter for ScalarOnly<'_> {
            fn test(&self, key: &[u8]) -> bool {
                self.0.test(key)
            }
        }
        let (left, right) = sample_tables();
        let mut mp = Mpcbf1::new(
            MpcbfConfig::builder()
                .memory_bits(100_000)
                .expected_items(100)
                .hashes(3)
                .build()
                .unwrap(),
        );
        for (k, _) in &left {
            mp.insert(k).unwrap();
        }
        let (rows_b, stats_b) = reduce_side_join(
            &JoinConfig::default(),
            left.clone(),
            right.clone(),
            Some(&mp),
        );
        let (rows_s, stats_s) =
            reduce_side_join(&JoinConfig::default(), left, right, Some(&ScalarOnly(&mp)));
        assert_eq!(join_rows_set(&rows_b), join_rows_set(&rows_s));
        assert_eq!(stats_b.filtered_out, stats_s.filtered_out);
        assert_eq!(stats_b.false_positives, stats_s.false_positives);
    }

    #[test]
    fn fpr_accounting_is_exact_for_a_perfect_filter() {
        struct Perfect(HashSet<Vec<u8>>);
        impl KeyFilter for Perfect {
            fn test(&self, key: &[u8]) -> bool {
                self.0.contains(key)
            }
        }
        let (left, right) = sample_tables();
        let perfect = Perfect(
            left.iter()
                .map(|(k, _)| k.key_bytes().as_slice().to_vec())
                .collect(),
        );
        let (_, stats) = reduce_side_join(&JoinConfig::default(), left, right, Some(&perfect));
        assert_eq!(stats.false_positives, 0);
        assert_eq!(stats.join_fpr(), 0.0);
        assert_eq!(stats.filtered_out, stats.matchless_records);
    }

    #[test]
    fn fpr_accounting_is_exact_for_a_pass_all_filter() {
        struct PassAll;
        impl KeyFilter for PassAll {
            fn test(&self, _: &[u8]) -> bool {
                true
            }
        }
        let (left, right) = sample_tables();
        let (_, stats) = reduce_side_join(&JoinConfig::default(), left, right, Some(&PassAll));
        assert_eq!(stats.filtered_out, 0);
        assert_eq!(stats.false_positives, stats.matchless_records);
        assert_eq!(stats.join_fpr(), 1.0);
    }

    #[test]
    fn empty_sides_are_fine() {
        let (rows, stats) = reduce_side_join::<u32, u16, u32>(
            &JoinConfig::default(),
            Vec::new(),
            vec![(1, 2), (3, 4)],
            None,
        );
        assert!(rows.is_empty());
        assert_eq!(stats.matchless_records, 2);
        let (rows, _) = reduce_side_join::<u32, u16, u32>(
            &JoinConfig::default(),
            vec![(1, 9)],
            Vec::new(),
            None,
        );
        assert!(rows.is_empty());
    }
}
