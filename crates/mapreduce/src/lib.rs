//! A miniature MapReduce engine with Bloom-filter-pushdown joins (§V).
//!
//! The paper's final experiment embeds MPCBF in Hadoop to accelerate
//! **reduce-side joins**: a filter built from the smaller input is
//! broadcast to every map task (via DistributedCache), and mappers drop
//! records whose join key fails the membership test — shrinking the
//! shuffle, which dominates join cost. Table IV reports, per filter:
//! the join false-positive rate, the number of map outputs, and the total
//! execution time.
//!
//! Hadoop itself is a cluster system we neither need nor can ship, so this
//! crate implements the same *programming model* in-process, faithfully
//! enough that Table IV's quantities are measured rather than modelled:
//!
//! * [`engine`] — input splits, parallel map tasks (crossbeam scoped
//!   threads), hash partitioning, a sort-based shuffle, parallel reduce
//!   tasks, and per-phase counters/timings (the Hadoop counter set);
//! * [`cache`] — the DistributedCache analog: a byte-accounted broadcast
//!   of read-only side data (here: the filter) to all map tasks;
//! * [`join`] — reduce-side join with tagged values and an optional
//!   filter pushdown, plus the ground-truth accounting (join FPR, map
//!   outputs saved) Table IV needs.
//!
//! Absolute seconds differ from the paper's 3-node cluster, but the
//! relative ordering — CBF < MPCBF-1 < MPCBF-2 in filtering power, and
//! fewer map outputs ⇒ faster joins — is reproduced by measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod join;

pub use cache::Broadcast;
pub use engine::{run_job, Emitter, JobConfig, JobStats};
pub use join::{reduce_side_join, JoinConfig, JoinStats, KeyFilter};
