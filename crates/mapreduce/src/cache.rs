//! The DistributedCache analog.
//!
//! In the paper's Hadoop setup, the filter built from the smaller join
//! input is "broadcasted to all map task nodes via DistributedCache,
//! avoiding the network overhead for moving the file" (§V). In-process
//! that broadcast is an [`std::sync::Arc`]; what still matters for the
//! evaluation is *how many bytes* would travel to each node — a CBF
//! broadcast costs its full counter vector, an MPCBF the same `M` bits —
//! so [`Broadcast`] carries explicit byte accounting.

use std::sync::Arc;

/// A read-only blob shared with every map task, with byte accounting.
#[derive(Debug, Clone)]
pub struct Broadcast<T> {
    value: Arc<T>,
    bytes: u64,
}

impl<T> Broadcast<T> {
    /// Wraps `value`, recording that shipping it to one node would cost
    /// `bytes` bytes.
    pub fn new(value: T, bytes: u64) -> Self {
        Broadcast {
            value: Arc::new(value),
            bytes,
        }
    }

    /// The shared value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Bytes shipped per receiving node.
    pub fn bytes_per_node(&self) -> u64 {
        self.bytes
    }

    /// Total broadcast cost for `nodes` receivers.
    pub fn total_bytes(&self, nodes: u64) -> u64 {
        self.bytes * nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let b = Broadcast::new(vec![1u8, 2, 3], 4_000_000 / 8);
        assert_eq!(b.get().len(), 3);
        assert_eq!(b.bytes_per_node(), 500_000);
        assert_eq!(b.total_bytes(3), 1_500_000);
    }

    #[test]
    fn clones_share_the_value() {
        let b = Broadcast::new(String::from("filter"), 10);
        let c = b.clone();
        assert!(std::ptr::eq(b.get(), c.get()));
    }
}
