//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is generated from a seed and describes a reproducible
//! campaign of injected defects: in-memory bit flips (for the scrub
//! drills), poisoned shards (for the concurrent epoch-scrub drills),
//! dropped and duplicated batch operations (delivery faults the
//! differential oracle must notice), hot keys hammered far past a
//! word's capacity (forcing overflow so the spillover path has real work),
//! and seeded crash points (kill-switch sites for the durability drills).
//!
//! The plan is *pure data* — it names structure-agnostic *hints* (a word
//! hint, a shard hint, an op-stream index hint) that the consumer reduces
//! modulo its own geometry. The same seed therefore drives the same
//! campaign against any filter shape, and a failing seed reported by CI
//! reproduces locally with no shrinking step.
//!
//! The harness contract is detection, not tolerance: every injected
//! defect must be *caught* by the matching check — flips by
//! `scrub()`/`verify()`, stream faults by the oracle's population
//! accounting — while hot-key overflows must be *absorbed* by
//! `ResilientMpcbf` with zero false negatives. The campaign itself lives
//! in the bench crate's `stress --faults <seed>` mode; this module only
//! describes it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The seeds every fault/durability drill campaign runs under — the
/// single source of truth shared by `stress --faults`, `stress
/// --drill-matrix`, and the CI matrix in `.github/workflows/ci.yml`
/// (a test below pins the workflow file to this list so they cannot
/// drift apart).
pub const DRILL_SEEDS: [u64; 5] = [1, 7, 42, 1337, 4242];

/// One injected defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR `mask` into the word selected by `word_hint % word_count`
    /// (a sequential filter's scrub drill).
    FlipBit {
        /// Reduced modulo the target's word count.
        word_hint: u64,
        /// Nonzero XOR mask.
        mask: u64,
    },
    /// XOR `mask` into one word of one shard of a sharded filter
    /// (the epoch-scrub drill).
    PoisonShard {
        /// Reduced modulo the target's shard count.
        shard_hint: u64,
        /// Reduced modulo the shard's word count.
        word_hint: u64,
        /// Nonzero XOR mask.
        mask: u64,
    },
    /// Silently drop the operation at `op_hint % stream_len` from a batch
    /// stream (a lost update the oracle must notice).
    DropOp {
        /// Reduced modulo the perturbed stream's length.
        op_hint: u64,
    },
    /// Deliver the operation at `op_hint % stream_len` twice (a replayed
    /// update the oracle must notice).
    DuplicateOp {
        /// Reduced modulo the perturbed stream's length.
        op_hint: u64,
    },
    /// Insert one key `copies` times — far past a single word's counter
    /// capacity, forcing `WordOverflow` so the spill path engages.
    HotKey {
        /// The key value (consumers insert its little-endian bytes).
        key: u64,
        /// How many copies to insert (always > 64, past any word budget).
        copies: u32,
    },
    /// Crash the process (via the durability kill switch) at a seeded
    /// point: `site_hint` is reduced modulo the number of kill sites,
    /// `op_hint` modulo the op stream length picks *when*, and
    /// `byte_hint` seeds the torn-write byte budget for the
    /// mid-write sites.
    CrashPoint {
        /// Reduced modulo the consumer's kill-site count.
        site_hint: u64,
        /// Reduced modulo the drill's op stream length.
        op_hint: u64,
        /// Seeds the torn-write byte budget (reduced modulo frame size).
        byte_hint: u64,
    },
}

/// How many faults of each kind [`FaultPlan::generate`] draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMix {
    /// `Fault::FlipBit` count.
    pub bit_flips: usize,
    /// `Fault::PoisonShard` count.
    pub poisoned_shards: usize,
    /// `Fault::DropOp` count.
    pub dropped_ops: usize,
    /// `Fault::DuplicateOp` count.
    pub duplicated_ops: usize,
    /// `Fault::HotKey` count.
    pub hot_keys: usize,
    /// `Fault::CrashPoint` count (durability kill-point drills).
    pub crash_points: usize,
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            bit_flips: 4,
            poisoned_shards: 3,
            dropped_ops: 5,
            duplicated_ops: 3,
            hot_keys: 2,
            crash_points: 3,
        }
    }
}

/// A seeded, reproducible fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The generating seed (kept for reporting).
    pub seed: u64,
    /// Every injected defect, in generation order.
    pub faults: Vec<Fault>,
}

/// What [`FaultPlan::perturb_stream`] did to a stream, so the harness
/// knows the exact population divergence the oracle must detect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamFaultLog {
    /// Operations silently dropped.
    pub dropped: usize,
    /// Operations delivered twice.
    pub duplicated: usize,
}

impl StreamFaultLog {
    /// Net length change of the perturbed stream
    /// (`duplicated − dropped`).
    pub fn delta(&self) -> i64 {
        self.duplicated as i64 - self.dropped as i64
    }

    /// True if no stream fault was applied.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0 && self.duplicated == 0
    }
}

impl FaultPlan {
    /// Draws a plan from `seed` with the given mix. Same seed + same mix
    /// ⇒ identical plan, on every platform (the in-tree `StdRng` is
    /// portable and versioned).
    pub fn generate(seed: u64, mix: FaultMix) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        let nonzero_mask = |rng: &mut StdRng| -> u64 {
            loop {
                let m: u64 = rng.gen();
                if m != 0 {
                    return m;
                }
            }
        };
        for _ in 0..mix.bit_flips {
            faults.push(Fault::FlipBit {
                word_hint: rng.gen(),
                mask: nonzero_mask(&mut rng),
            });
        }
        for _ in 0..mix.poisoned_shards {
            faults.push(Fault::PoisonShard {
                shard_hint: rng.gen(),
                word_hint: rng.gen(),
                mask: nonzero_mask(&mut rng),
            });
        }
        for _ in 0..mix.dropped_ops {
            faults.push(Fault::DropOp { op_hint: rng.gen() });
        }
        for _ in 0..mix.duplicated_ops {
            faults.push(Fault::DuplicateOp { op_hint: rng.gen() });
        }
        for _ in 0..mix.hot_keys {
            faults.push(Fault::HotKey {
                key: rng.gen(),
                copies: 65 + rng.gen_range(0..64u32),
            });
        }
        // Crash points are drawn LAST so that plans generated by older
        // mixes (without crash points) keep their draws bit-identical.
        for _ in 0..mix.crash_points {
            faults.push(Fault::CrashPoint {
                site_hint: rng.gen(),
                op_hint: rng.gen(),
                byte_hint: rng.gen(),
            });
        }
        FaultPlan { seed, faults }
    }

    /// The bit flips, as `(word_hint, mask)` pairs.
    pub fn flips(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            Fault::FlipBit { word_hint, mask } => Some((word_hint, mask)),
            _ => None,
        })
    }

    /// The shard poisonings, as `(shard_hint, word_hint, mask)` triples.
    pub fn poisonings(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            Fault::PoisonShard {
                shard_hint,
                word_hint,
                mask,
            } => Some((shard_hint, word_hint, mask)),
            _ => None,
        })
    }

    /// The hot keys, as `(key, copies)` pairs.
    pub fn hot_keys(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            Fault::HotKey { key, copies } => Some((key, copies)),
            _ => None,
        })
    }

    /// The crash points, as `(site_hint, op_hint, byte_hint)` triples.
    pub fn crash_points(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            Fault::CrashPoint {
                site_hint,
                op_hint,
                byte_hint,
            } => Some((site_hint, op_hint, byte_hint)),
            _ => None,
        })
    }

    /// Applies the plan's drop/duplicate faults to an operation stream,
    /// returning the perturbed stream and a log of what changed.
    ///
    /// Hints are reduced modulo the *original* length, so the same plan
    /// perturbs the same positions regardless of application order; drops
    /// win over duplicates on a position targeted by both. An empty
    /// stream is returned untouched.
    pub fn perturb_stream<K: Clone>(&self, ops: &[K]) -> (Vec<K>, StreamFaultLog) {
        let mut log = StreamFaultLog::default();
        if ops.is_empty() {
            return (Vec::new(), log);
        }
        let n = ops.len() as u64;
        let mut action = vec![1u8; ops.len()]; // copies to deliver per op
        for f in &self.faults {
            match *f {
                Fault::DropOp { op_hint } => action[(op_hint % n) as usize] = 0,
                Fault::DuplicateOp { op_hint } => {
                    let i = (op_hint % n) as usize;
                    if action[i] != 0 {
                        action[i] = 2;
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::with_capacity(ops.len() + 4);
        for (op, &copies) in ops.iter().zip(&action) {
            match copies {
                0 => log.dropped += 1,
                1 => out.push(op.clone()),
                _ => {
                    out.push(op.clone());
                    out.push(op.clone());
                    log.duplicated += 1;
                }
            }
        }
        (out, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(42, FaultMix::default());
        let b = FaultPlan::generate(42, FaultMix::default());
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, FaultMix::default());
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn mix_counts_are_respected() {
        let mix = FaultMix {
            bit_flips: 2,
            poisoned_shards: 1,
            dropped_ops: 3,
            duplicated_ops: 4,
            hot_keys: 5,
            crash_points: 6,
        };
        let plan = FaultPlan::generate(7, mix);
        assert_eq!(plan.flips().count(), 2);
        assert_eq!(plan.poisonings().count(), 1);
        assert_eq!(plan.hot_keys().count(), 5);
        assert_eq!(plan.crash_points().count(), 6);
        assert_eq!(
            plan.faults.len(),
            2 + 1 + 3 + 4 + 5 + 6,
            "every fault is materialised"
        );
    }

    #[test]
    fn crash_points_do_not_disturb_earlier_draws() {
        // Crash points are appended after every other kind, so turning
        // them off must reproduce the exact prefix an older plan drew.
        let with = FaultPlan::generate(42, FaultMix::default());
        let without = FaultPlan::generate(
            42,
            FaultMix {
                crash_points: 0,
                ..FaultMix::default()
            },
        );
        assert_eq!(
            &with.faults[..without.faults.len()],
            &without.faults[..],
            "pre-crash-point draws must stay bit-identical"
        );
    }

    #[test]
    fn ci_matrix_uses_the_shared_drill_seeds() {
        // The CI workflow hardcodes its seed matrix in YAML; pin it to
        // DRILL_SEEDS so the two cannot drift apart silently.
        let workflow = match std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../.github/workflows/ci.yml"
        )) {
            Ok(text) => text,
            // Packaged builds (no repo checkout) skip the pin.
            Err(_) => return,
        };
        let want = format!(
            "seed: [{}]",
            DRILL_SEEDS
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(
            workflow.contains(&want),
            "ci.yml seed matrix must match DRILL_SEEDS ({want})"
        );
    }

    #[test]
    fn masks_are_nonzero_and_hot_keys_exceed_word_capacity() {
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, FaultMix::default());
            for (_, mask) in plan.flips() {
                assert_ne!(mask, 0);
            }
            for (_, _, mask) in plan.poisonings() {
                assert_ne!(mask, 0);
            }
            for (_, copies) in plan.hot_keys() {
                // A 64-bit word can never hold 65 increments of one key,
                // whatever b1 is: overflow is guaranteed.
                assert!(copies > 64);
            }
        }
    }

    #[test]
    fn perturb_stream_logs_exact_divergence() {
        let plan = FaultPlan::generate(9, FaultMix::default());
        let ops: Vec<u64> = (0..1_000).collect();
        let (out, log) = plan.perturb_stream(&ops);
        assert!(!log.is_clean());
        assert_eq!(
            out.len() as i64,
            ops.len() as i64 + log.delta(),
            "perturbed length must match the log"
        );
        // Determinism: applying the same plan twice gives the same stream.
        let (out2, log2) = plan.perturb_stream(&ops);
        assert_eq!(out, out2);
        assert_eq!(log, log2);
    }

    #[test]
    fn perturb_preserves_order_of_survivors() {
        let plan = FaultPlan::generate(11, FaultMix::default());
        let ops: Vec<u64> = (0..500).collect();
        let (out, _) = plan.perturb_stream(&ops);
        let mut last = None;
        for &v in &out {
            if let Some(prev) = last {
                assert!(v >= prev, "survivors must stay in order");
            }
            last = Some(v);
        }
    }

    #[test]
    fn empty_stream_is_untouched() {
        let plan = FaultPlan::generate(13, FaultMix::default());
        let (out, log) = plan.perturb_stream::<u64>(&[]);
        assert!(out.is_empty());
        assert!(log.is_clean());
    }

    #[test]
    fn no_stream_faults_means_identity() {
        let mix = FaultMix {
            dropped_ops: 0,
            duplicated_ops: 0,
            ..FaultMix::default()
        };
        let plan = FaultPlan::generate(17, mix);
        let ops: Vec<u64> = (0..100).collect();
        let (out, log) = plan.perturb_stream(&ops);
        assert_eq!(out, ops);
        assert!(log.is_clean());
    }
}
