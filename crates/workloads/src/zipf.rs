//! A Zipf(α) sampler over ranks `1..=n`.
//!
//! Internet flow sizes are classically heavy-tailed; the flow-trace
//! generator uses this distribution to apportion the paper's 5.59 M trace
//! records over 292 K unique flows. Implemented as an explicit inverse-CDF
//! table (built once, O(n) memory, O(log n) per sample) — simple, exact,
//! and fast enough for tens of millions of samples.

use rand::Rng;

/// Zipf distribution with exponent `alpha` over `{1, …, n}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Probability mass of `rank` (1-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&rank));
        if rank == 1 {
            self.cdf[0]
        } else {
            self.cdf[rank - 1] - self.cdf[rank - 2]
        }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // index with cdf >= u; +1 converts to a 1-based rank.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Deterministically apportions `total` items over the ranks in
    /// proportion to the PMF (largest-remainder rounding), returning the
    /// per-rank counts. Every rank receives at least one item if
    /// `total >= n`: each rank is seeded with one item and the remaining
    /// `total − n` are apportioned by largest remainder, so heavy-tailed
    /// shapes cannot starve tail ranks. (Largest-remainder alone hands out
    /// only `total − Σfloor` leftovers, leaving tail ranks with
    /// `pmf · total < 1` at zero.)
    pub fn apportion(&self, total: u64) -> Vec<u64> {
        let n = self.cdf.len();
        // The documented minimum: with enough items to go around, every
        // rank starts at one and only the surplus is distributed.
        let base = u64::from(total >= n as u64);
        let surplus = total - base * n as u64;
        let mut counts: Vec<u64> = Vec::with_capacity(n);
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
        let mut assigned = base * n as u64;
        for rank in 1..=n {
            let exact = self.pmf(rank) * surplus as f64;
            let floor = exact.floor() as u64;
            counts.push(base + floor);
            assigned += floor;
            remainders.push((rank - 1, exact - exact.floor()));
        }
        // Hand out the leftover items to the largest remainders.
        let mut leftover = total.saturating_sub(assigned);
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
        for (idx, _) in remainders {
            if leftover == 0 {
                break;
            }
            counts[idx] += 1;
            leftover -= 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.1);
        let sum: f64 = (1..=1000).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(100, 1.2);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(50));
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 1..=10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 50];
        let trials = 200_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for r in [1usize, 2, 5, 10] {
            let expected = z.pmf(r) * trials as f64;
            let got = counts[r - 1] as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt() + 10.0,
                "rank {r}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn apportion_totals_exactly() {
        let z = Zipf::new(292_363, 1.1);
        let counts = z.apportion(5_585_633);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 5_585_633);
        // Heavy head: top rank gets far more than the mean.
        assert!(counts[0] > 10 * (5_585_633 / 292_363));
    }

    #[test]
    fn apportion_feeds_every_tail_rank() {
        // Regression: with a heavy tail, pmf(n) · total < 1 for the last
        // ranks, so pure largest-remainder rounding left them at zero
        // despite the documented "at least one item if total >= n".
        let z = Zipf::new(1_000, 2.0);
        let counts = z.apportion(1_000);
        assert_eq!(counts.iter().sum::<u64>(), 1_000);
        assert!(
            counts.iter().all(|&c| c >= 1),
            "tail rank starved: last counts = {:?}",
            &counts[990..]
        );
        // The head must still dominate after seeding the minimum.
        let z = Zipf::new(10_000, 1.5);
        let counts = z.apportion(100_000);
        assert_eq!(counts.iter().sum::<u64>(), 100_000);
        assert!(counts[9_999] >= 1);
        assert!(counts[0] > counts[9_999] * 100);
    }

    #[test]
    fn apportion_small_total() {
        let z = Zipf::new(10, 1.0);
        let counts = z.apportion(3);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
