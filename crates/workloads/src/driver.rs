//! Batch protocol driver: replays workload protocols through the
//! batch-first query pipeline.
//!
//! The generators in this crate produce *pure data* — key streams, churn
//! periods, Zipf-shaped query mixes. This module is the bridge to a
//! filter: each protocol phase is chunked into fixed-size batches and
//! driven through the batch API ([`Filter::insert_batch_with`],
//! [`Filter::contains_batch_with`], [`CountingFilter::remove_batch_with`]),
//! which plans hash → probe per chunk into one [`PlanBuffer`] held across
//! the whole phase, so a replay stops allocating after its first chunk.
//! The batch ops are equivalence-tested against the scalar loop, so a
//! batched replay observes exactly the hits, failures and costs a scalar
//! replay would — harnesses can switch between the two and compare
//! throughput only.

use crate::churn::ChurnPlan;
use crate::faults::{FaultPlan, StreamFaultLog};
use crate::flowtrace::FlowTrace;
use crate::synthetic::SyntheticWorkload;
use mpcbf_core::metrics::{OpCost, OpSink};
use mpcbf_core::{CountingFilter, Filter, PlanBuffer};
use mpcbf_hash::Key;

/// Default keys per batch: large enough to amortise the hash stage and
/// keep several word walks in flight, small enough to stay cache-resident.
pub const DEFAULT_BATCH: usize = 64;

/// Aggregate outcome of a batched replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverReport {
    /// Insertions attempted.
    pub inserts: u64,
    /// Insertions refused (word overflow).
    pub insert_failures: u64,
    /// Deletions attempted.
    pub deletes: u64,
    /// Deletions refused (element not present).
    pub delete_failures: u64,
    /// Membership queries issued.
    pub queries: u64,
    /// Queries answered positively.
    pub hits: u64,
    /// Positive answers to queries the workload's membership oracle knows
    /// to be non-members (only counted when an oracle is supplied).
    pub false_positives: u64,
    /// Summed [`OpCost`] across every batched operation.
    pub cost: OpCost,
}

fn insert_batched_inner<F: Filter, K: Key>(
    filter: &mut F,
    keys: &[K],
    batch: usize,
    report: &mut DriverReport,
    sink: Option<&dyn OpSink>,
) {
    let mut plans = PlanBuffer::new();
    for chunk in keys.chunks(batch.max(1)) {
        let owned: Vec<_> = chunk.iter().map(Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        let (results, cost) = match sink {
            Some(sink) => filter.insert_batch_metered(&views, sink),
            None => filter.insert_batch_with(&views, &mut plans),
        };
        report.inserts += results.len() as u64;
        report.insert_failures += results.iter().filter(|r| r.is_err()).count() as u64;
        report.cost = report.cost.add(cost);
    }
}

/// Inserts `keys` in `batch`-sized chunks.
pub fn insert_batched<F: Filter, K: Key>(
    filter: &mut F,
    keys: &[K],
    batch: usize,
    report: &mut DriverReport,
) {
    insert_batched_inner(filter, keys, batch, report, None);
}

/// [`insert_batched`], additionally streaming every batch's
/// [`OpCost`]/latency into `sink`.
pub fn insert_batched_metered<F: Filter, K: Key>(
    filter: &mut F,
    keys: &[K],
    batch: usize,
    report: &mut DriverReport,
    sink: &dyn OpSink,
) {
    insert_batched_inner(filter, keys, batch, report, Some(sink));
}

fn remove_batched_inner<F: CountingFilter, K: Key>(
    filter: &mut F,
    keys: &[K],
    batch: usize,
    report: &mut DriverReport,
    sink: Option<&dyn OpSink>,
) {
    let mut plans = PlanBuffer::new();
    for chunk in keys.chunks(batch.max(1)) {
        let owned: Vec<_> = chunk.iter().map(Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        let (results, cost) = match sink {
            Some(sink) => filter.remove_batch_metered(&views, sink),
            None => filter.remove_batch_with(&views, &mut plans),
        };
        report.deletes += results.len() as u64;
        report.delete_failures += results.iter().filter(|r| r.is_err()).count() as u64;
        report.cost = report.cost.add(cost);
    }
}

/// Removes `keys` in `batch`-sized chunks.
pub fn remove_batched<F: CountingFilter, K: Key>(
    filter: &mut F,
    keys: &[K],
    batch: usize,
    report: &mut DriverReport,
) {
    remove_batched_inner(filter, keys, batch, report, None);
}

/// [`remove_batched`], additionally streaming every batch's
/// [`OpCost`]/latency into `sink`.
pub fn remove_batched_metered<F: CountingFilter, K: Key>(
    filter: &mut F,
    keys: &[K],
    batch: usize,
    report: &mut DriverReport,
    sink: &dyn OpSink,
) {
    remove_batched_inner(filter, keys, batch, report, Some(sink));
}

fn query_batched_inner<F: Filter, K: Key>(
    filter: &F,
    keys: &[K],
    is_member: Option<&[bool]>,
    batch: usize,
    report: &mut DriverReport,
    sink: Option<&dyn OpSink>,
) {
    if let Some(oracle) = is_member {
        assert_eq!(oracle.len(), keys.len(), "oracle must be parallel to keys");
    }
    let batch = batch.max(1);
    let mut plans = PlanBuffer::new();
    for (c, chunk) in keys.chunks(batch).enumerate() {
        let owned: Vec<_> = chunk.iter().map(Key::key_bytes).collect();
        let views: Vec<&[u8]> = owned.iter().map(|b| b.as_slice()).collect();
        let (answers, cost) = match sink {
            Some(sink) => filter.contains_batch_metered(&views, sink),
            None => filter.contains_batch_with(&views, &mut plans),
        };
        report.queries += answers.len() as u64;
        report.hits += answers.iter().filter(|&&a| a).count() as u64;
        if let Some(oracle) = is_member {
            let truth = &oracle[c * batch..c * batch + chunk.len()];
            report.false_positives += answers
                .iter()
                .zip(truth)
                .filter(|&(&a, &m)| a && !m)
                .count() as u64;
        }
        report.cost = report.cost.add(cost);
    }
}

/// Queries `keys` in `batch`-sized chunks. `is_member`, when given, must
/// be parallel to `keys`; positives on known non-members are counted as
/// false positives.
pub fn query_batched<F: Filter, K: Key>(
    filter: &F,
    keys: &[K],
    is_member: Option<&[bool]>,
    batch: usize,
    report: &mut DriverReport,
) {
    query_batched_inner(filter, keys, is_member, batch, report, None);
}

/// [`query_batched`], additionally streaming every batch's
/// [`OpCost`]/latency into `sink`.
pub fn query_batched_metered<F: Filter, K: Key>(
    filter: &F,
    keys: &[K],
    is_member: Option<&[bool]>,
    batch: usize,
    report: &mut DriverReport,
    sink: &dyn OpSink,
) {
    query_batched_inner(filter, keys, is_member, batch, report, Some(sink));
}

fn churn_batched_inner<F: CountingFilter, K: Key>(
    filter: &mut F,
    plan: &ChurnPlan<K>,
    batch: usize,
    report: &mut DriverReport,
    sink: Option<&dyn OpSink>,
) {
    for period in &plan.periods {
        remove_batched_inner(filter, &period.deletes, batch, report, sink);
        insert_batched_inner(filter, &period.inserts, batch, report, sink);
    }
}

/// Replays a [`ChurnPlan`]: per period, batched deletes then batched
/// inserts — the paper's update-period protocol (§IV.A).
pub fn churn_batched<F: CountingFilter, K: Key>(
    filter: &mut F,
    plan: &ChurnPlan<K>,
    batch: usize,
    report: &mut DriverReport,
) {
    churn_batched_inner(filter, plan, batch, report, None);
}

/// [`churn_batched`], additionally streaming every batch's
/// [`OpCost`]/latency into `sink`.
pub fn churn_batched_metered<F: CountingFilter, K: Key>(
    filter: &mut F,
    plan: &ChurnPlan<K>,
    batch: usize,
    report: &mut DriverReport,
    sink: &dyn OpSink,
) {
    churn_batched_inner(filter, plan, batch, report, Some(sink));
}

/// Replays the §IV.A synthetic protocol: insert the test set, run the
/// query stream (with FPR accounting against the workload's oracle), then
/// the churn periods.
pub fn replay_synthetic<F: CountingFilter>(
    filter: &mut F,
    workload: &SyntheticWorkload,
    batch: usize,
) -> DriverReport {
    replay_synthetic_inner(filter, workload, batch, None)
}

/// [`replay_synthetic`], additionally streaming every batch's
/// [`OpCost`]/latency into `sink` — the telemetry-backed replay used by
/// the bench validation harness and the CLI's `--telemetry` mode.
pub fn replay_synthetic_metered<F: CountingFilter>(
    filter: &mut F,
    workload: &SyntheticWorkload,
    batch: usize,
    sink: &dyn OpSink,
) -> DriverReport {
    replay_synthetic_inner(filter, workload, batch, Some(sink))
}

fn replay_synthetic_inner<F: CountingFilter>(
    filter: &mut F,
    workload: &SyntheticWorkload,
    batch: usize,
    sink: Option<&dyn OpSink>,
) -> DriverReport {
    let mut report = DriverReport::default();
    insert_batched_inner(filter, &workload.test_set, batch, &mut report, sink);
    query_batched_inner(
        filter,
        &workload.queries,
        Some(&workload.is_member),
        batch,
        &mut report,
        sink,
    );
    churn_batched_inner(filter, &workload.churn, batch, &mut report, sink);
    report
}

/// Replays the §IV.D flow-trace protocol: insert the test set, stream the
/// Zipf-shaped record queries, then the churn periods.
pub fn replay_flowtrace<F: CountingFilter>(
    filter: &mut F,
    trace: &FlowTrace,
    batch: usize,
) -> DriverReport {
    replay_flowtrace_inner(filter, trace, batch, None)
}

/// [`replay_flowtrace`], additionally streaming every batch's
/// [`OpCost`]/latency into `sink`.
pub fn replay_flowtrace_metered<F: CountingFilter>(
    filter: &mut F,
    trace: &FlowTrace,
    batch: usize,
    sink: &dyn OpSink,
) -> DriverReport {
    replay_flowtrace_inner(filter, trace, batch, Some(sink))
}

fn replay_flowtrace_inner<F: CountingFilter>(
    filter: &mut F,
    trace: &FlowTrace,
    batch: usize,
    sink: Option<&dyn OpSink>,
) -> DriverReport {
    let mut report = DriverReport::default();
    insert_batched_inner(filter, &trace.test_set, batch, &mut report, sink);
    query_batched_inner(filter, &trace.records, None, batch, &mut report, sink);
    churn_batched_inner(filter, &trace.churn, batch, &mut report, sink);
    report
}

/// Replays the §IV.A synthetic protocol with a [`FaultPlan`] perturbing
/// the *insert* stream (operations dropped or delivered twice before the
/// filter sees them), modelling delivery faults between a workload
/// producer and the filter. Queries and churn replay unperturbed.
///
/// The returned [`StreamFaultLog`] is the ground truth the caller's
/// oracle must reconstruct: the filter's population diverges from the
/// clean replay by exactly `log.delta()` insertions, so a harness that
/// compares `items()` (or `total_load`) against the oracle detects every
/// injected drop and duplicate.
pub fn replay_synthetic_faulty<F: CountingFilter>(
    filter: &mut F,
    workload: &SyntheticWorkload,
    batch: usize,
    plan: &FaultPlan,
) -> (DriverReport, StreamFaultLog) {
    let mut report = DriverReport::default();
    let (perturbed, log) = plan.perturb_stream(&workload.test_set);
    insert_batched(filter, &perturbed, batch, &mut report);
    query_batched(filter, &workload.queries, None, batch, &mut report);
    churn_batched(filter, &workload.churn, batch, &mut report);
    (report, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultMix;
    use crate::flowtrace::FlowTraceSpec;
    use crate::synthetic::SyntheticSpec;
    use mpcbf_core::{Mpcbf1, MpcbfConfig};

    fn filter() -> Mpcbf1 {
        Mpcbf1::new(
            MpcbfConfig::builder()
                .memory_bits(200_000)
                .expected_items(2_000)
                .hashes(3)
                .seed(9)
                .build()
                .unwrap(),
        )
    }

    /// Replays the synthetic protocol one key at a time via the scalar
    /// API, producing the same report shape for comparison.
    fn replay_synthetic_scalar(filter: &mut Mpcbf1, w: &SyntheticWorkload) -> DriverReport {
        let mut r = DriverReport::default();
        for k in &w.test_set {
            r.inserts += 1;
            match filter.insert_bytes_cost(k.key_bytes().as_slice()) {
                Ok(c) => r.cost = r.cost.add(c),
                Err(_) => r.insert_failures += 1,
            }
        }
        for (k, &m) in w.queries.iter().zip(&w.is_member) {
            let (hit, c) = filter.contains_bytes_cost(k.key_bytes().as_slice());
            r.queries += 1;
            r.hits += u64::from(hit);
            r.false_positives += u64::from(hit && !m);
            r.cost = r.cost.add(c);
        }
        for period in &w.churn.periods {
            for k in &period.deletes {
                r.deletes += 1;
                match filter.remove_bytes_cost(k.key_bytes().as_slice()) {
                    Ok(c) => r.cost = r.cost.add(c),
                    Err(_) => r.delete_failures += 1,
                }
            }
            for k in &period.inserts {
                r.inserts += 1;
                match filter.insert_bytes_cost(k.key_bytes().as_slice()) {
                    Ok(c) => r.cost = r.cost.add(c),
                    Err(_) => r.insert_failures += 1,
                }
            }
        }
        r
    }

    #[test]
    fn batched_synthetic_replay_matches_scalar_replay() {
        let spec = SyntheticSpec {
            periods: 2,
            ..SyntheticSpec::default()
        }
        .scaled_down(100);
        let w = SyntheticWorkload::generate(&spec);
        let mut scalar_f = filter();
        let scalar = replay_synthetic_scalar(&mut scalar_f, &w);
        for &batch in &[1usize, 8, 64, 512] {
            let mut batched_f = filter();
            let batched = replay_synthetic(&mut batched_f, &w, batch);
            assert_eq!(batched, scalar, "divergence at batch size {batch}");
            assert_eq!(batched_f.items(), scalar_f.items());
            assert_eq!(batched_f.raw_words(), scalar_f.raw_words());
        }
    }

    #[test]
    fn flowtrace_replay_runs_and_accounts() {
        let spec = FlowTraceSpec {
            periods: 1,
            ..FlowTraceSpec::default()
        }
        .scaled_down(500);
        let t = FlowTrace::generate(&spec);
        let mut f = Mpcbf1::new(
            MpcbfConfig::builder()
                .memory_bits(100_000)
                .expected_items(1_000)
                .hashes(3)
                .seed(4)
                .build()
                .unwrap(),
        );
        let r = replay_flowtrace(&mut f, &t, DEFAULT_BATCH);
        assert_eq!(r.queries, t.records.len() as u64);
        // Every inserted flow's records must hit (no false negatives).
        assert!(r.hits >= 1);
        assert_eq!(
            r.inserts,
            (t.test_set.len() + t.churn.total_inserts()) as u64
        );
        assert_eq!(r.deletes, t.churn.total_deletes() as u64);
        assert!(r.cost.word_accesses > 0 && r.cost.hash_bits > 0);
    }

    #[test]
    fn faulty_replay_diverges_by_exactly_the_log() {
        use crate::faults::FaultPlan;
        // No churn: after the insert phase the filter population must
        // diverge from a clean replay by exactly the logged delta, which
        // is what an oracle comparing populations would detect.
        let spec = SyntheticSpec {
            periods: 0,
            ..SyntheticSpec::default()
        }
        .scaled_down(100);
        let w = SyntheticWorkload::generate(&spec);
        let mix = FaultMix {
            bit_flips: 0,
            poisoned_shards: 0,
            dropped_ops: 4,
            duplicated_ops: 2,
            hot_keys: 0,
            crash_points: 0,
        };
        let plan = FaultPlan::generate(0xFEED, mix);

        let mut clean_f = filter();
        let clean = replay_synthetic(&mut clean_f, &w, DEFAULT_BATCH);
        let mut faulty_f = filter();
        let (faulty, log) = replay_synthetic_faulty(&mut faulty_f, &w, DEFAULT_BATCH, &plan);

        assert!(!log.is_clean(), "default positions must actually perturb");
        assert_eq!(
            faulty.inserts as i64,
            clean.inserts as i64 + log.delta(),
            "insert attempts shift by the logged delta"
        );
        assert_eq!(
            faulty_f.items() as i64,
            clean_f.items() as i64 + log.delta(),
            "population shift is exactly the injected divergence"
        );
        // Reproducibility: the same seed yields the same divergence.
        let mut again_f = filter();
        let (again, log2) = replay_synthetic_faulty(&mut again_f, &w, DEFAULT_BATCH, &plan);
        assert_eq!((again, log2), (faulty, log));
        assert_eq!(again_f.raw_words(), faulty_f.raw_words());
    }

    #[test]
    fn metered_replay_streams_exactly_the_report() {
        use mpcbf_core::metrics::OpKind;
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Test sink: tallies ops and summed cost per kind.
        #[derive(Default)]
        struct TallySink {
            ops: [AtomicU64; 3],
            accesses: AtomicU64,
            hash_bits: AtomicU64,
        }
        impl OpSink for TallySink {
            fn record_batch(&self, kind: OpKind, ops: u64, cost: OpCost, _nanos: u64) {
                self.ops[kind as usize].fetch_add(ops, Ordering::Relaxed);
                self.accesses
                    .fetch_add(u64::from(cost.word_accesses), Ordering::Relaxed);
                self.hash_bits
                    .fetch_add(u64::from(cost.hash_bits), Ordering::Relaxed);
            }
        }

        let spec = SyntheticSpec {
            periods: 2,
            ..SyntheticSpec::default()
        }
        .scaled_down(100);
        let w = SyntheticWorkload::generate(&spec);

        let mut plain_f = filter();
        let plain = replay_synthetic(&mut plain_f, &w, DEFAULT_BATCH);
        let sink = TallySink::default();
        let mut metered_f = filter();
        let metered = replay_synthetic_metered(&mut metered_f, &w, DEFAULT_BATCH, &sink);

        // Metering must be a pure observer: identical report and state.
        assert_eq!(metered, plain);
        assert_eq!(metered_f.raw_words(), plain_f.raw_words());
        // And the sink must have seen exactly the replayed operations.
        assert_eq!(
            sink.ops[OpKind::Query as usize].load(Ordering::Relaxed),
            plain.queries
        );
        assert_eq!(
            sink.ops[OpKind::Insert as usize].load(Ordering::Relaxed),
            plain.inserts
        );
        assert_eq!(
            sink.ops[OpKind::Remove as usize].load(Ordering::Relaxed),
            plain.deletes
        );
        assert_eq!(
            sink.accesses.load(Ordering::Relaxed),
            u64::from(plain.cost.word_accesses)
        );
        assert_eq!(
            sink.hash_bits.load(Ordering::Relaxed),
            u64::from(plain.cost.hash_bits)
        );
    }

    #[test]
    fn oracle_length_mismatch_panics() {
        let w = SyntheticWorkload::generate(&SyntheticSpec::default().scaled_down(1_000));
        let f = filter();
        let mut r = DriverReport::default();
        let bad_oracle = vec![true; w.queries.len() + 1];
        let result = std::panic::catch_unwind(|| {
            let mut r2 = DriverReport::default();
            query_batched(&f, &w.queries, Some(&bad_oracle), 64, &mut r2);
        });
        assert!(result.is_err());
        query_batched(&f, &w.queries, Some(&w.is_member), 64, &mut r);
        assert_eq!(r.queries, w.queries.len() as u64);
    }
}
