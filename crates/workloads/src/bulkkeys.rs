//! Deterministic streaming key source for bulk-ingest drills.
//!
//! [`BulkKeys`] generates `n` distinct 16-byte keys from a seed without
//! ever materialising the whole set — `bench_bulk` walks 10^8 keys in
//! fixed-size chunks, and the CLI `--synthetic` spec and the equivalence
//! suite replay the *same* stream, so a filter bulk-built by one tool is
//! comparable bit-for-bit with one built by another.

/// A deterministic stream of distinct 16-byte keys.
///
/// Key `i` is `splitmix64(seed ^ i) ‖ i` (little-endian): the first half
/// decorrelates nearby indices, the second guarantees distinctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkKeys {
    seed: u64,
    n: u64,
}

/// Bytes in one generated key.
pub const BULK_KEY_LEN: usize = 16;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl BulkKeys {
    /// A stream of `n` distinct keys drawn from `seed`.
    pub fn new(seed: u64, n: u64) -> Self {
        BulkKeys { seed, n }
    }

    /// Stream length.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The `i`-th key of the stream (`i < n`).
    pub fn key(&self, i: u64) -> [u8; BULK_KEY_LEN] {
        debug_assert!(i < self.n);
        let mut out = [0u8; BULK_KEY_LEN];
        out[..8].copy_from_slice(&splitmix64(self.seed ^ i).to_le_bytes());
        out[8..].copy_from_slice(&i.to_le_bytes());
        out
    }

    /// Calls `f` for every key in order, buffering at most `chunk` keys
    /// at a time (so a 10^8-key walk needs a few megabytes, not tens of
    /// gigabytes). `f` receives each chunk as borrowed key slices.
    pub fn for_each_chunk(&self, chunk: usize, mut f: impl FnMut(&[[u8; BULK_KEY_LEN]])) {
        let chunk = chunk.max(1);
        let mut buf: Vec<[u8; BULK_KEY_LEN]> = Vec::with_capacity(chunk);
        let mut i = 0u64;
        while i < self.n {
            buf.clear();
            let end = (i + chunk as u64).min(self.n);
            while i < end {
                buf.push(self.key(i));
                i += 1;
            }
            f(&buf);
        }
    }

    /// Materialises the whole stream (tests and small CLI runs only).
    pub fn collect(&self) -> Vec<[u8; BULK_KEY_LEN]> {
        (0..self.n).map(|i| self.key(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let a = BulkKeys::new(42, 10_000);
        let b = BulkKeys::new(42, 10_000);
        let set: HashSet<_> = a.collect().into_iter().collect();
        assert_eq!(set.len(), 10_000);
        for i in [0u64, 1, 9_999] {
            assert_eq!(a.key(i), b.key(i));
        }
        assert_ne!(BulkKeys::new(43, 10).key(0), a.key(0));
    }

    #[test]
    fn chunked_walk_covers_the_stream_in_order() {
        let keys = BulkKeys::new(7, 1_000);
        let mut seen = Vec::new();
        keys.for_each_chunk(77, |chunk| {
            for k in chunk {
                seen.push(*k);
            }
        });
        assert_eq!(seen, keys.collect());
    }
}
