//! Capacity-ramp plans: phased key-growth streams, as pure data.
//!
//! The elastic filter's contract is exercised by *growth*, not steady
//! state: a stream that starts at the provisioned capacity and climbs
//! to a multiple of it, with membership checkpoints along the way. A
//! [`RampSpec`] captures that shape independently of any filter — each
//! phase carries the fresh keys to insert, and the cumulative live set
//! after a phase is every key of every phase so far (the ramp never
//! deletes). Harnesses replay the phases in order, sampling the FPR
//! gauge and sweeping the live set for false negatives between phases.
//!
//! Keys are deterministic and collision-free by construction (a seed
//! tag plus a monotone counter), so the same spec replays identically
//! across the stress drill, the elastic benchmark, and CI.

/// One ramp phase: the fresh keys that take the cumulative population
/// to `target_items`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RampPhase {
    /// Cumulative live population once this phase's keys are inserted.
    pub target_items: u64,
    /// Fresh keys to insert (disjoint from every other phase).
    pub keys: Vec<Vec<u8>>,
}

/// A phased growth stream from `base_items` to
/// `base_items * overload_factor`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RampSpec {
    /// The provisioned capacity the ramp starts from (phase 0 fills
    /// exactly this many keys).
    pub base_items: u64,
    /// Final population as a multiple of `base_items` (the paper-style
    /// 10x overload is `10`).
    pub overload_factor: u64,
    /// Phases after the fill: cumulative targets are evenly spaced
    /// between `base_items` and `base_items * overload_factor`.
    pub ramp_phases: usize,
    /// Folded into every key so independent ramps never collide.
    pub seed: u64,
}

impl RampSpec {
    /// A 10x ramp in 9 steps over `base_items` provisioned capacity.
    pub fn tenfold(base_items: u64, seed: u64) -> Self {
        RampSpec {
            base_items,
            overload_factor: 10,
            ramp_phases: 9,
            seed,
        }
    }

    /// Final cumulative population.
    pub fn final_items(&self) -> u64 {
        self.base_items * self.overload_factor.max(1)
    }

    /// Materialises the phases: phase 0 fills to `base_items`, then
    /// `ramp_phases` phases climb evenly to `final_items()`. Keys are
    /// `seed (LE) | counter (LE)` — 16 bytes, unique across the ramp.
    pub fn phases(&self) -> Vec<RampPhase> {
        let base = self.base_items.max(1);
        let last = self.final_items().max(base);
        let steps = self.ramp_phases.max(1) as u64;
        let mut targets = vec![base];
        for i in 1..=steps {
            let t = base + (last - base) * i / steps;
            if t > *targets.last().expect("targets non-empty") {
                targets.push(t);
            }
        }
        let mut counter = 0u64;
        let mut phases = Vec::with_capacity(targets.len());
        for target in targets {
            let mut keys = Vec::with_capacity((target - counter) as usize);
            while counter < target {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&self.seed.to_le_bytes());
                key[8..].copy_from_slice(&counter.to_le_bytes());
                keys.push(key.to_vec());
                counter += 1;
            }
            phases.push(RampPhase {
                target_items: target,
                keys,
            });
        }
        phases
    }

    /// Keys that are never inserted by this ramp — the probe set for
    /// empirical FPR measurement. Drawn from the counter range past
    /// `final_items()`, so they are disjoint from every phase.
    pub fn negative_probes(&self, count: usize) -> Vec<Vec<u8>> {
        let start = self.final_items();
        (0..count as u64)
            .map(|i| {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&(!self.seed).to_le_bytes());
                key[8..].copy_from_slice(&(start + i).to_le_bytes());
                key.to_vec()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tenfold_ramp_targets_and_key_uniqueness() {
        let spec = RampSpec::tenfold(1_000, 42);
        let phases = spec.phases();
        assert_eq!(phases.first().map(|p| p.target_items), Some(1_000));
        assert_eq!(phases.last().map(|p| p.target_items), Some(10_000));
        let mut seen = HashSet::new();
        let mut cumulative = 0u64;
        for phase in &phases {
            cumulative += phase.keys.len() as u64;
            assert_eq!(cumulative, phase.target_items, "phases are cumulative");
            for key in &phase.keys {
                assert!(seen.insert(key.clone()), "duplicate ramp key");
            }
        }
        for probe in spec.negative_probes(500) {
            assert!(!seen.contains(&probe), "probe collides with a ramp key");
        }
    }

    #[test]
    fn degenerate_specs_stay_sane() {
        let flat = RampSpec {
            base_items: 10,
            overload_factor: 1,
            ramp_phases: 4,
            seed: 7,
        };
        let phases = flat.phases();
        assert_eq!(phases.len(), 1, "no growth: just the fill phase");
        assert_eq!(phases[0].target_items, 10);

        let tiny = RampSpec {
            base_items: 1,
            overload_factor: 3,
            ramp_phases: 10,
            seed: 8,
        };
        let phases = tiny.phases();
        assert_eq!(phases.last().map(|p| p.target_items), Some(3));
        let total: u64 = phases.iter().map(|p| p.keys.len() as u64).sum();
        assert_eq!(total, 3);
    }
}
