//! Update-period ("churn") plans, as pure data.
//!
//! The paper exercises every counting filter with update periods: delete a
//! fixed fraction of the live set, insert the same number of fresh keys, so
//! the population stays constant while counters move (§IV.A). A
//! [`ChurnPlan`] captures those periods independently of any filter type;
//! harnesses replay it against whichever [`CountingFilter`] they measure.
//!
//! [`CountingFilter`]: https://docs.rs/mpcbf-core

/// One update period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPeriod<K> {
    /// Keys to delete (all currently live).
    pub deletes: Vec<K>,
    /// Fresh keys to insert afterwards.
    pub inserts: Vec<K>,
}

/// A sequence of update periods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPlan<K> {
    /// The periods, applied in order.
    pub periods: Vec<ChurnPeriod<K>>,
}

impl<K> ChurnPlan<K> {
    /// An empty plan.
    pub fn empty() -> Self {
        ChurnPlan {
            periods: Vec::new(),
        }
    }

    /// Total delete operations across all periods.
    pub fn total_deletes(&self) -> usize {
        self.periods.iter().map(|p| p.deletes.len()).sum()
    }

    /// Total insert operations across all periods.
    pub fn total_inserts(&self) -> usize {
        self.periods.iter().map(|p| p.inserts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let plan = ChurnPlan {
            periods: vec![
                ChurnPeriod {
                    deletes: vec![1, 2],
                    inserts: vec![3, 4],
                },
                ChurnPeriod {
                    deletes: vec![5],
                    inserts: vec![6],
                },
            ],
        };
        assert_eq!(plan.total_deletes(), 3);
        assert_eq!(plan.total_inserts(), 3);
    }

    #[test]
    fn empty_plan() {
        let plan: ChurnPlan<u64> = ChurnPlan::empty();
        assert_eq!(plan.total_deletes(), 0);
        assert_eq!(plan.total_inserts(), 0);
    }
}
