//! Workload generators for the MPCBF evaluation (§IV–§V).
//!
//! Three dataset families drive the paper's experiments; all are generated
//! deterministically from seeds so every figure is reproducible bit-for-bit:
//!
//! * [`synthetic`] — the §IV.A synthetic sets: five-byte strings drawn from
//!   `[a-zA-Z]`, a 100 K-element test set, a 1 M-element query set with an
//!   80 % membership ratio, and churn periods that delete and re-insert
//!   20 % of the set;
//! * [`flowtrace`] — a **synthetic stand-in for the CAIDA Equinix-Chicago
//!   2011 traces** (which are not redistributable): an IPv4 flow trace with
//!   the paper's exact aggregate statistics (5 585 633 records, 292 363
//!   unique src/dst 2-tuples) and a heavy-tailed (Zipf) flow-size
//!   distribution, which is the property that matters to a filter — the
//!   substitution is documented in `DESIGN.md`;
//! * [`patents`] — an **NBER-shaped patent-citation dataset** standing in
//!   for `cite75_99.txt`/`pat63_99.txt` in the MapReduce reduce-side-join
//!   experiment (Table IV), matching the original's key cardinalities and
//!   match rate.
//!
//! [`churn`] provides the paper's update-period driver as pure data (which
//! keys to delete/insert per period), so any filter can replay it; and
//! [`zipf`] implements the Zipf sampler the trace generator uses.
//!
//! [`driver`] replays these protocols through the batch-first pipeline:
//! it chunks each phase into fixed-size batches and drives them through
//! the filters' `*_batch_cost` operations, with results identical to a
//! scalar replay.
//!
//! [`faults`] adds seeded, reproducible fault-injection plans (bit flips,
//! poisoned shards, dropped/duplicated batch ops, forced-overflow hot
//! keys) that the stress harness replays against the scrub/spillover
//! machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulkkeys;
pub mod churn;
pub mod driver;
pub mod faults;
pub mod flowtrace;
pub mod patents;
pub mod ramp;
pub mod synthetic;
pub mod zipf;

pub use bulkkeys::{BulkKeys, BULK_KEY_LEN};
pub use churn::ChurnPlan;
pub use driver::{
    replay_flowtrace, replay_synthetic, replay_synthetic_faulty, DriverReport, DEFAULT_BATCH,
};
pub use faults::{Fault, FaultMix, FaultPlan, StreamFaultLog, DRILL_SEEDS};
pub use flowtrace::{FlowTrace, FlowTraceSpec};
pub use patents::{PatentDataset, PatentSpec};
pub use ramp::{RampPhase, RampSpec};
pub use synthetic::{SyntheticSpec, SyntheticWorkload};
