//! A synthetic IPv4 flow trace with the aggregate statistics of the
//! paper's CAIDA Equinix-Chicago 2011 dataset (§IV.A, §IV.D).
//!
//! The real traces are not redistributable, so this module generates a
//! stand-in that preserves every property the filters can observe:
//!
//! * **5 585 633 trace records over 292 363 unique flows** (a flow is the
//!   src/dst IPv4 2-tuple) at full scale;
//! * a heavy-tailed per-flow record count (Zipf, α ≈ 1.1 — the classic
//!   Internet flow-size shape), so the query stream's hit pattern
//!   concentrates on hot flows as a real trace's does;
//! * a 200 K-flow test set sampled uniformly from the unique flows, with
//!   churn periods of 40 K deletes + 40 K fresh-flow inserts.
//!
//! Since keys are hashed, their actual addresses are irrelevant — only the
//! multiset structure matters, which is matched exactly. See `DESIGN.md`
//! ("Substitutions") for the full argument.

use crate::churn::{ChurnPeriod, ChurnPlan};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A flow key: (source IPv4, destination IPv4).
pub type FlowKey = (u32, u32);

/// Parameters of the trace generator; defaults are the paper's full scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowTraceSpec {
    /// Total trace records (paper: 5 585 633).
    pub total_records: u64,
    /// Unique flows in the trace (paper: 292 363).
    pub unique_flows: usize,
    /// Flows inserted into the filters (paper: 200 000).
    pub test_set: usize,
    /// Flows deleted/re-inserted per update period (paper: 40 000).
    pub churn_per_period: usize,
    /// Number of update periods.
    pub periods: usize,
    /// Zipf exponent for per-flow record counts.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlowTraceSpec {
    fn default() -> Self {
        FlowTraceSpec {
            total_records: 5_585_633,
            unique_flows: 292_363,
            test_set: 200_000,
            churn_per_period: 40_000,
            periods: 1,
            alpha: 1.1,
            seed: 0x4341_4944_4132_3031, // "CAIDA201"
        }
    }
}

impl FlowTraceSpec {
    /// A scaled-down copy (sizes divided by `factor`), for tests.
    pub fn scaled_down(mut self, factor: u64) -> Self {
        assert!(factor >= 1);
        self.total_records = (self.total_records / factor).max(1);
        self.unique_flows = ((self.unique_flows as u64 / factor).max(1)) as usize;
        self.test_set = ((self.test_set as u64 / factor).max(1)) as usize;
        self.churn_per_period = ((self.churn_per_period as u64 / factor).max(1)) as usize;
        // Keep the invariant test_set <= unique_flows.
        self.test_set = self.test_set.min(self.unique_flows);
        self
    }
}

/// The generated trace.
#[derive(Debug, Clone)]
pub struct FlowTrace {
    /// The unique flows, hottest first.
    pub flows: Vec<FlowKey>,
    /// The full record stream (each entry is one packet/flow-record),
    /// fed to the filters as the query set.
    pub records: Vec<FlowKey>,
    /// The flows inserted into the filters before querying.
    pub test_set: Vec<FlowKey>,
    /// Churn plan (deletes from the test set, fresh-flow inserts).
    pub churn: ChurnPlan<FlowKey>,
}

impl FlowTrace {
    /// Generates the trace for `spec`, deterministically from its seed.
    pub fn generate(spec: &FlowTraceSpec) -> Self {
        assert!(spec.test_set <= spec.unique_flows);
        assert!(spec.total_records >= spec.unique_flows as u64);
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // Unique flow keys (random IPv4 pairs, deduplicated).
        let mut seen: HashSet<FlowKey> = HashSet::with_capacity(spec.unique_flows * 2);
        let fresh_flow = |rng: &mut StdRng, seen: &mut HashSet<FlowKey>| -> FlowKey {
            loop {
                let f = (rng.gen::<u32>(), rng.gen::<u32>());
                if seen.insert(f) {
                    return f;
                }
            }
        };
        let flows: Vec<FlowKey> = (0..spec.unique_flows)
            .map(|_| fresh_flow(&mut rng, &mut seen))
            .collect();

        // Zipf record counts, hottest flow first; every flow appears at
        // least once so the unique-flow count is exact.
        let zipf = Zipf::new(spec.unique_flows, spec.alpha);
        let mut counts = zipf.apportion(spec.total_records - spec.unique_flows as u64);
        for c in &mut counts {
            *c += 1;
        }

        // Expand and shuffle into an arrival order.
        let mut records = Vec::with_capacity(spec.total_records as usize);
        for (flow, &count) in flows.iter().zip(&counts) {
            for _ in 0..count {
                records.push(*flow);
            }
        }
        records.shuffle(&mut rng);

        // Test set: uniform sample of unique flows (paper: "200K unique
        // flows randomly selected from the traces").
        let mut test_set = flows.clone();
        test_set.shuffle(&mut rng);
        test_set.truncate(spec.test_set);

        // Churn periods.
        let mut live = test_set.clone();
        let mut periods = Vec::with_capacity(spec.periods);
        for _ in 0..spec.periods {
            let del = spec.churn_per_period.min(live.len());
            let mut deletes = Vec::with_capacity(del);
            for _ in 0..del {
                let idx = rng.gen_range(0..live.len());
                deletes.push(live.swap_remove(idx));
            }
            let inserts: Vec<FlowKey> = (0..del).map(|_| fresh_flow(&mut rng, &mut seen)).collect();
            live.extend_from_slice(&inserts);
            periods.push(ChurnPeriod { deletes, inserts });
        }

        FlowTrace {
            flows,
            records,
            test_set,
            churn: ChurnPlan { periods },
        }
    }
}

/// Errors from parsing an external trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// A line did not have two comma/whitespace-separated fields.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A field was not a parseable IPv4 address or u32.
    BadAddress {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::BadLine { line } => {
                write!(f, "line {line}: expected `src,dst` or `src dst`")
            }
            TraceParseError::BadAddress { line } => {
                write!(f, "line {line}: field is neither dotted IPv4 nor u32")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Parses one address field: dotted-quad IPv4 or a bare `u32`.
fn parse_addr(field: &str, line: usize) -> Result<u32, TraceParseError> {
    if let Ok(v) = field.parse::<u32>() {
        return Ok(v);
    }
    if let Ok(ip) = field.parse::<std::net::Ipv4Addr>() {
        return Ok(u32::from(ip));
    }
    Err(TraceParseError::BadAddress { line })
}

/// Parses a real flow trace from text — one record per line,
/// `src,dst` or `src dst`, addresses as dotted IPv4 or raw u32 —
/// so licensed CAIDA-style data can replace the synthetic stand-in
/// (`#`-prefixed lines and blank lines are skipped).
///
/// The returned records preserve file order; combine with
/// [`FlowTrace::from_records`] to derive the full workload.
pub fn parse_trace_records(text: &str) -> Result<Vec<FlowKey>, TraceParseError> {
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(|ch: char| ch == ',' || ch.is_whitespace());
        let src = fields.next().filter(|f| !f.is_empty());
        let dst = fields.next().filter(|f| !f.is_empty());
        match (src, dst) {
            (Some(s), Some(d)) => {
                records.push((parse_addr(s, line)?, parse_addr(d, line)?));
            }
            _ => return Err(TraceParseError::BadLine { line }),
        }
    }
    Ok(records)
}

impl FlowTrace {
    /// Builds a workload from an externally supplied record stream (e.g.
    /// parsed real traces): extracts the unique flows, samples a test set
    /// of `test_set` flows and `periods` churn periods using `seed`.
    pub fn from_records(
        records: Vec<FlowKey>,
        test_set: usize,
        churn_per_period: usize,
        periods: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen: HashSet<FlowKey> = HashSet::new();
        let mut flows = Vec::new();
        for r in &records {
            if seen.insert(*r) {
                flows.push(*r);
            }
        }
        let mut test = flows.clone();
        test.shuffle(&mut rng);
        test.truncate(test_set.min(flows.len()));

        let fresh_flow = |rng: &mut StdRng, seen: &mut HashSet<FlowKey>| -> FlowKey {
            loop {
                let f = (rng.gen::<u32>(), rng.gen::<u32>());
                if seen.insert(f) {
                    return f;
                }
            }
        };
        let mut live = test.clone();
        let mut churn_periods = Vec::with_capacity(periods);
        for _ in 0..periods {
            let del = churn_per_period.min(live.len());
            let mut deletes = Vec::with_capacity(del);
            for _ in 0..del {
                let idx = rng.gen_range(0..live.len());
                deletes.push(live.swap_remove(idx));
            }
            let inserts: Vec<FlowKey> = (0..del).map(|_| fresh_flow(&mut rng, &mut seen)).collect();
            live.extend_from_slice(&inserts);
            churn_periods.push(ChurnPeriod { deletes, inserts });
        }
        FlowTrace {
            flows,
            records,
            test_set: test,
            churn: ChurnPlan {
                periods: churn_periods,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlowTraceSpec {
        FlowTraceSpec::default().scaled_down(200)
    }

    #[test]
    fn parses_mixed_formats() {
        let text = "# comment\n10.0.0.1,10.0.0.2\n16909060 84281096\n\n1.2.3.4\t5.6.7.8\n";
        let recs = parse_trace_records(text).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], (0x0A00_0001, 0x0A00_0002));
        assert_eq!(recs[1], (16_909_060, 84_281_096));
        assert_eq!(recs[2], (0x0102_0304, 0x0506_0708));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(
            parse_trace_records("1.2.3.4,5.6.7.8\nonly-one-field\n"),
            Err(TraceParseError::BadLine { line: 2 })
        );
        assert_eq!(
            parse_trace_records("1.2.3.4,not-an-ip\n"),
            Err(TraceParseError::BadAddress { line: 1 })
        );
        let _ = TraceParseError::BadLine { line: 2 }.to_string();
    }

    #[test]
    fn from_records_builds_a_consistent_workload() {
        let records: Vec<FlowKey> = (0..1000u32).map(|i| (i % 100, i % 37)).collect();
        let t = FlowTrace::from_records(records.clone(), 50, 10, 2, 9);
        assert_eq!(t.records, records);
        let uniq: HashSet<_> = records.iter().collect();
        assert_eq!(t.flows.len(), uniq.len());
        assert_eq!(t.test_set.len(), 50);
        assert_eq!(t.churn.periods.len(), 2);
        // Churn inserts are flows not present in the trace.
        for p in &t.churn.periods {
            for i in &p.inserts {
                assert!(!uniq.contains(i));
            }
        }
    }

    #[test]
    fn counts_match_spec() {
        let spec = small();
        let t = FlowTrace::generate(&spec);
        assert_eq!(t.flows.len(), spec.unique_flows);
        assert_eq!(t.records.len(), spec.total_records as usize);
        assert_eq!(t.test_set.len(), spec.test_set);
    }

    #[test]
    fn every_unique_flow_appears() {
        let t = FlowTrace::generate(&small());
        let in_trace: HashSet<_> = t.records.iter().collect();
        assert_eq!(in_trace.len(), t.flows.len());
    }

    #[test]
    fn record_distribution_is_heavy_tailed() {
        let t = FlowTrace::generate(&small());
        let mut counts: std::collections::HashMap<FlowKey, u64> = Default::default();
        for r in &t.records {
            *counts.entry(*r).or_default() += 1;
        }
        let mut sizes: Vec<u64> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        // Top 1% of flows should carry well over 1% of traffic.
        let top = sizes.len() / 100 + 1;
        let head: u64 = sizes[..top].iter().sum();
        let total: u64 = sizes.iter().sum();
        assert!(
            head as f64 / total as f64 > 0.05,
            "head share {}",
            head as f64 / total as f64
        );
    }

    #[test]
    fn test_set_is_subset_of_flows() {
        let t = FlowTrace::generate(&small());
        let all: HashSet<_> = t.flows.iter().collect();
        assert!(t.test_set.iter().all(|f| all.contains(f)));
        let uniq: HashSet<_> = t.test_set.iter().collect();
        assert_eq!(uniq.len(), t.test_set.len(), "test set must be unique");
    }

    #[test]
    fn churn_inserts_are_fresh_flows() {
        let mut spec = small();
        spec.periods = 2;
        let t = FlowTrace::generate(&spec);
        let all: HashSet<_> = t.flows.iter().collect();
        for p in &t.churn.periods {
            for i in &p.inserts {
                assert!(!all.contains(i), "churn insert reused a trace flow");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = FlowTrace::generate(&small());
        let b = FlowTrace::generate(&small());
        assert_eq!(a.records, b.records);
        assert_eq!(a.test_set, b.test_set);
    }
}
