//! The §IV.A synthetic workload.
//!
//! "We synthesize a test set and a query set, each containing five-byte
//! strings; each string is randomly generated from the alphabet
//! `{a–z, A–Z}`. The test set contains 100K unique strings that are
//! inserted into the filters, while the query set contains 1M strings, of
//! which 80% belongs to the test set. During an update period, 20K strings
//! are deleted from the filters, and another 20K strings are inserted,
//! maintaining a constant number of strings in the filters."

use crate::churn::{ChurnPeriod, ChurnPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A five-byte synthetic string key.
pub type StrKey = [u8; 5];

const ALPHABET: &[u8; 52] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Parameters of the synthetic workload; defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Unique strings inserted into the filters (paper: 100 000).
    pub test_set: usize,
    /// Query-set size (paper: 1 000 000).
    pub queries: usize,
    /// Fraction of queries drawn from the test set (paper: 0.8).
    pub member_ratio: f64,
    /// Strings deleted and re-inserted per update period (paper: 20 000).
    pub churn_per_period: usize,
    /// Number of update periods to generate.
    pub periods: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            test_set: 100_000,
            queries: 1_000_000,
            member_ratio: 0.8,
            churn_per_period: 20_000,
            periods: 1,
            seed: 0x5943_4e54_4845_5449, // "SYNTHETI"
        }
    }
}

impl SyntheticSpec {
    /// A scaled-down copy (sizes divided by `factor`, minimum 1), for
    /// fast tests and CI-sized benches.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor >= 1);
        self.test_set = (self.test_set / factor).max(1);
        self.queries = (self.queries / factor).max(1);
        self.churn_per_period = (self.churn_per_period / factor).max(1);
        self
    }
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    /// Unique strings to insert before querying.
    pub test_set: Vec<StrKey>,
    /// The query stream (`member_ratio` of them are members).
    pub queries: Vec<StrKey>,
    /// Which queries are true members (parallel to `queries`), so FPR can
    /// be computed without a second membership oracle.
    pub is_member: Vec<bool>,
    /// The churn plan for the update periods.
    pub churn: ChurnPlan<StrKey>,
}

impl SyntheticWorkload {
    /// Generates the workload for `spec`, deterministically from its seed.
    pub fn generate(spec: &SyntheticSpec) -> Self {
        assert!(
            (0.0..=1.0).contains(&spec.member_ratio),
            "member_ratio out of range"
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut seen: HashSet<StrKey> = HashSet::with_capacity(spec.test_set * 2);

        let fresh_unique = |rng: &mut StdRng, seen: &mut HashSet<StrKey>| -> StrKey {
            loop {
                let k = random_key(rng);
                if seen.insert(k) {
                    return k;
                }
            }
        };

        let test_set: Vec<StrKey> = (0..spec.test_set)
            .map(|_| fresh_unique(&mut rng, &mut seen))
            .collect();

        // Non-member queries must not collide with the test set (or with
        // future churn inserts), otherwise FPR accounting is polluted.
        let mut queries = Vec::with_capacity(spec.queries);
        let mut is_member = Vec::with_capacity(spec.queries);
        for _ in 0..spec.queries {
            if rng.gen_bool(spec.member_ratio) && !test_set.is_empty() {
                queries.push(test_set[rng.gen_range(0..test_set.len())]);
                is_member.push(true);
            } else {
                queries.push(fresh_unique(&mut rng, &mut seen));
                is_member.push(false);
            }
        }

        // Churn periods: delete a random sample of the live set, insert the
        // same number of fresh strings (constant filter population).
        let mut live = test_set.clone();
        let mut periods = Vec::with_capacity(spec.periods);
        for _ in 0..spec.periods {
            let del = spec.churn_per_period.min(live.len());
            let mut deletes = Vec::with_capacity(del);
            for _ in 0..del {
                let idx = rng.gen_range(0..live.len());
                deletes.push(live.swap_remove(idx));
            }
            let inserts: Vec<StrKey> = (0..del)
                .map(|_| fresh_unique(&mut rng, &mut seen))
                .collect();
            live.extend_from_slice(&inserts);
            periods.push(ChurnPeriod { deletes, inserts });
        }

        SyntheticWorkload {
            test_set,
            queries,
            is_member,
            churn: ChurnPlan { periods },
        }
    }
}

#[inline]
fn random_key(rng: &mut StdRng) -> StrKey {
    let mut k = [0u8; 5];
    for b in &mut k {
        *b = ALPHABET[rng.gen_range(0..ALPHABET.len())];
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SyntheticSpec {
        SyntheticSpec::default().scaled_down(100)
    }

    #[test]
    fn shapes_match_spec() {
        let spec = small_spec();
        let w = SyntheticWorkload::generate(&spec);
        assert_eq!(w.test_set.len(), spec.test_set);
        assert_eq!(w.queries.len(), spec.queries);
        assert_eq!(w.is_member.len(), spec.queries);
        assert_eq!(w.churn.periods.len(), 1);
        assert_eq!(w.churn.periods[0].deletes.len(), spec.churn_per_period);
        assert_eq!(w.churn.periods[0].inserts.len(), spec.churn_per_period);
    }

    #[test]
    fn test_set_is_unique() {
        let w = SyntheticWorkload::generate(&small_spec());
        let set: HashSet<_> = w.test_set.iter().collect();
        assert_eq!(set.len(), w.test_set.len());
    }

    #[test]
    fn alphabet_is_respected() {
        let w = SyntheticWorkload::generate(&small_spec());
        for k in w.test_set.iter().chain(w.queries.iter()) {
            for &b in k {
                assert!(b.is_ascii_alphabetic(), "byte {b} not alphabetic");
            }
        }
    }

    #[test]
    fn member_flags_are_accurate() {
        let w = SyntheticWorkload::generate(&small_spec());
        let set: HashSet<_> = w.test_set.iter().collect();
        for (q, &m) in w.queries.iter().zip(&w.is_member) {
            assert_eq!(set.contains(q), m);
        }
    }

    #[test]
    fn member_ratio_close_to_spec() {
        let mut spec = SyntheticSpec::default().scaled_down(10);
        spec.queries = 100_000;
        let w = SyntheticWorkload::generate(&spec);
        let members = w.is_member.iter().filter(|&&m| m).count() as f64;
        let ratio = members / w.queries.len() as f64;
        assert!((ratio - 0.8).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn churn_preserves_population_and_freshness() {
        let mut spec = small_spec();
        spec.periods = 3;
        let w = SyntheticWorkload::generate(&spec);
        let mut live: HashSet<_> = w.test_set.iter().copied().collect();
        for p in &w.churn.periods {
            for d in &p.deletes {
                assert!(live.remove(d), "deleting something not live");
            }
            for i in &p.inserts {
                assert!(live.insert(*i), "churn insert collided");
            }
        }
        assert_eq!(live.len(), w.test_set.len());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SyntheticWorkload::generate(&small_spec());
        let b = SyntheticWorkload::generate(&small_spec());
        assert_eq!(a.test_set, b.test_set);
        assert_eq!(a.queries, b.queries);
        let mut spec = small_spec();
        spec.seed ^= 1;
        let c = SyntheticWorkload::generate(&spec);
        assert_ne!(a.test_set, c.test_set);
    }
}
