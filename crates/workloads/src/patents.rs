//! An NBER-shaped patent-citation dataset for the MapReduce reduce-side
//! join experiment (§V, Table IV).
//!
//! The paper joins the NBER citation file `cite75_99.txt` (16 522 438
//! `(citing, cited)` records) against a key set of 71 661 patents drawn
//! from `pat63_99.txt`. The original files are third-party data, so this
//! generator produces a dataset with the same *join-relevant* shape:
//!
//! * the same key cardinalities (citation rows, distinct patent keys);
//! * a configurable **match rate** — the fraction of citation rows whose
//!   `cited` patent is in the key set, which determines how many map
//!   outputs a perfect filter could drop (the quantity Table IV measures);
//! * Zipf-skewed citation popularity (famous patents are cited often).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A patent identifier (NBER ids are 7-digit numbers).
pub type PatentId = u32;

/// One citation record: `citing` cites `cited`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Citation {
    /// The citing patent.
    pub citing: PatentId,
    /// The cited patent.
    pub cited: PatentId,
}

/// A patent-side record carrying join payload (grant year).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patent {
    /// The patent id (the join key).
    pub id: PatentId,
    /// Grant year (payload carried through the join).
    pub year: u16,
}

/// Parameters; defaults are the paper's full NBER scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatentSpec {
    /// Citation records (paper: 16 522 438).
    pub citations: u64,
    /// Patents in the join key set (paper: 71 661).
    pub key_patents: usize,
    /// Pool of patent ids citations can reference (superset of the keys).
    pub universe: usize,
    /// Fraction of citations whose `cited` end is in the key set.
    pub match_rate: f64,
    /// Zipf exponent for citation popularity.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PatentSpec {
    fn default() -> Self {
        PatentSpec {
            citations: 16_522_438,
            key_patents: 71_661,
            universe: 3_000_000,
            match_rate: 0.25,
            alpha: 1.05,
            seed: 0x4e42_4552_5041_5431, // "NBERPAT1"
        }
    }
}

impl PatentSpec {
    /// A scaled-down copy for tests and CI-sized runs.
    pub fn scaled_down(mut self, factor: u64) -> Self {
        assert!(factor >= 1);
        self.citations = (self.citations / factor).max(1);
        self.key_patents = ((self.key_patents as u64 / factor).max(1)) as usize;
        self.universe = ((self.universe as u64 / factor).max(16)) as usize;
        self.key_patents = self.key_patents.min(self.universe);
        self
    }
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct PatentDataset {
    /// The patent-side table (the smaller join input, used to build the
    /// filter broadcast via the DistributedCache analog).
    pub patents: Vec<Patent>,
    /// The citation-side table (the large input that gets filtered).
    pub citations: Vec<Citation>,
}

impl PatentDataset {
    /// Generates the dataset for `spec`, deterministically from its seed.
    pub fn generate(spec: &PatentSpec) -> Self {
        assert!(spec.key_patents <= spec.universe);
        assert!((0.0..=1.0).contains(&spec.match_rate));
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // Patent ids: a shuffled prefix of the universe gives the key set.
        // Ids start at 1_000_000 to resemble NBER's 7-digit numbering.
        let mut ids: Vec<PatentId> = (0..spec.universe as u32).map(|i| 1_000_000 + i).collect();
        ids.shuffle(&mut rng);
        let key_ids = &ids[..spec.key_patents];
        let nonkey_ids = &ids[spec.key_patents..];

        let patents: Vec<Patent> = key_ids
            .iter()
            .map(|&id| Patent {
                id,
                year: rng.gen_range(1963..=1999),
            })
            .collect();

        // Citation popularity over the key set is Zipf-skewed; non-matching
        // citations reference the rest of the universe uniformly.
        let zipf = Zipf::new(spec.key_patents.max(1), spec.alpha);
        let mut citations = Vec::with_capacity(spec.citations as usize);
        for _ in 0..spec.citations {
            let citing = 1_000_000 + rng.gen_range(0..spec.universe as u32);
            let cited = if rng.gen_bool(spec.match_rate) || nonkey_ids.is_empty() {
                key_ids[zipf.sample(&mut rng) - 1]
            } else {
                nonkey_ids[rng.gen_range(0..nonkey_ids.len())]
            };
            citations.push(Citation { citing, cited });
        }

        PatentDataset { patents, citations }
    }

    /// The fraction of citations whose `cited` end is a key patent
    /// (ground truth for Table IV's filtering-effectiveness numbers).
    pub fn true_match_rate(&self) -> f64 {
        let keys: std::collections::HashSet<PatentId> = self.patents.iter().map(|p| p.id).collect();
        let hits = self
            .citations
            .iter()
            .filter(|c| keys.contains(&c.cited))
            .count();
        hits as f64 / self.citations.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PatentSpec {
        PatentSpec::default().scaled_down(500)
    }

    #[test]
    fn cardinalities_match_spec() {
        let spec = small();
        let d = PatentDataset::generate(&spec);
        assert_eq!(d.patents.len(), spec.key_patents);
        assert_eq!(d.citations.len(), spec.citations as usize);
    }

    #[test]
    fn key_ids_are_unique() {
        let d = PatentDataset::generate(&small());
        let set: std::collections::HashSet<_> = d.patents.iter().map(|p| p.id).collect();
        assert_eq!(set.len(), d.patents.len());
    }

    #[test]
    fn match_rate_is_close() {
        let mut spec = small();
        spec.citations = 50_000;
        let d = PatentDataset::generate(&spec);
        let rate = d.true_match_rate();
        assert!(
            (rate - spec.match_rate).abs() < 0.02,
            "rate {rate} vs spec {}",
            spec.match_rate
        );
    }

    #[test]
    fn years_in_nber_range() {
        let d = PatentDataset::generate(&small());
        assert!(d.patents.iter().all(|p| (1963..=1999).contains(&p.year)));
    }

    #[test]
    fn citation_popularity_is_skewed() {
        let mut spec = small();
        spec.citations = 50_000;
        spec.match_rate = 1.0; // all citations hit the key set
        let d = PatentDataset::generate(&spec);
        let mut counts: std::collections::HashMap<PatentId, u64> = Default::default();
        for c in &d.citations {
            *counts.entry(c.cited).or_default() += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = spec.citations as f64 / counts.len() as f64;
        assert!(max as f64 > 5.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn deterministic() {
        let a = PatentDataset::generate(&small());
        let b = PatentDataset::generate(&small());
        assert_eq!(a.citations.len(), b.citations.len());
        assert_eq!(a.citations[..50], b.citations[..50]);
    }
}
