//! The [`Word`] trait: a fixed-width bit container supporting the in-word
//! operations HCBF performs.
//!
//! HCBF (§III.B) treats one machine word as a little dynamic structure:
//! levels are contiguous bit ranges, navigation uses *ranked popcounts*
//! (number of ones below a position within a level), and every counter
//! increment inserts one zero bit into the middle of the word, shifting the
//! tail right. The trait below is the minimal algebra for that.
//!
//! Each primitive exists in two tiers: the plain methods (`rank`,
//! `insert_zero`, …) are the portable baseline, branch-free via
//! [`Word::mask_below`]; the `_hot` methods default to the baseline but are
//! overridden for the widths with runtime-dispatched kernels
//! ([`crate::kernel`]) — `u64` and the wide words lower to
//! `BZHI`/`PDEP`/`PEXT` on CPUs that have them. The two tiers are proven
//! bit-identical by differential property tests, so the hot path may be
//! swapped per process without any observable difference.

use crate::kernel;
use core::fmt::Debug;

/// A fixed-width bit container.
///
/// Bit positions run from `0` (least significant) to `Self::BITS - 1`.
/// All range arguments are half-open `[a, b)` and clamped to the width by
/// contract — callers must pass positions `≤ Self::BITS`.
pub trait Word: Copy + Clone + Eq + Debug + Default + Send + Sync + 'static {
    /// Width of the word in bits.
    const BITS: u32;

    /// The all-zeros word.
    fn zero() -> Self;

    /// All ones strictly below bit `i`; `i ≥ Self::BITS` saturates to the
    /// all-ones word (the same contract as x86's `BZHI` mask). Every
    /// position-masking primitive below is defined in terms of this, so no
    /// implementation ever computes `(1 << i) - 1` with `i` at the width —
    /// the shift hazard the old `rank` carried.
    fn mask_below(i: u32) -> Self;

    /// Tests bit `i`.
    fn bit(&self, i: u32) -> bool;

    /// Sets bit `i` to one.
    fn set_bit(&mut self, i: u32);

    /// Clears bit `i` to zero.
    fn clear_bit(&mut self, i: u32);

    /// Number of one bits in the whole word.
    fn count_ones(&self) -> u32;

    /// Number of one bits strictly below position `i` (i.e. in `[0, i)`).
    fn rank(&self, i: u32) -> u32;

    /// Number of one bits in `[a, b)`.
    #[inline]
    fn rank_range(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a <= b && b <= Self::BITS);
        self.rank(b) - self.rank(a)
    }

    /// Inserts a zero bit at `pos`: bits in `[pos, BITS-1)` move up one
    /// position, the former top bit is discarded, and bit `pos` becomes 0.
    ///
    /// HCBF guarantees the discarded bit is always zero (capacity is checked
    /// before inserting); [`Word::is_zero_from`] lets callers verify.
    fn insert_zero(&mut self, pos: u32);

    /// Removes the bit at `pos`: bits in `(pos, BITS)` move down one
    /// position and the top bit becomes 0.
    fn remove_bit(&mut self, pos: u32);

    /// True if every bit in `[pos, BITS)` is zero.
    fn is_zero_from(&self, pos: u32) -> bool;

    /// Position of the highest set bit, if any.
    fn highest_set_bit(&self) -> Option<u32>;

    /// Total number of bits in use, i.e. `highest_set_bit() + 1` (0 if none).
    #[inline]
    fn used_bits(&self) -> u32 {
        self.highest_set_bit().map_or(0, |b| b + 1)
    }

    /// [`Word::rank`] through the runtime-dispatched kernel. Bit-identical
    /// to the baseline; only the instruction sequence may differ.
    #[inline]
    fn rank_hot(&self, i: u32) -> u32 {
        self.rank(i)
    }

    /// [`Word::rank_range`] through the runtime-dispatched kernel.
    #[inline]
    fn rank_range_hot(&self, a: u32, b: u32) -> u32 {
        self.rank_range(a, b)
    }

    /// [`Word::insert_zero`] through the runtime-dispatched kernel.
    #[inline]
    fn insert_zero_hot(&mut self, pos: u32) {
        self.insert_zero(pos);
    }

    /// [`Word::remove_bit`] through the runtime-dispatched kernel.
    #[inline]
    fn remove_bit_hot(&mut self, pos: u32) {
        self.remove_bit(pos);
    }

    /// [`Word::rank`] through a batch-resolved kernel bundle
    /// ([`Kernel::batch`](crate::Kernel::batch)): dispatch rides the
    /// bundle's tag in a register instead of re-loading the cached atomic
    /// on every probe. Defaults to the portable baseline; widths with
    /// accelerated kernels override.
    #[inline]
    fn rank_routed(&self, i: u32, ops: &kernel::KernelOps) -> u32 {
        let _ = ops;
        self.rank(i)
    }

    /// [`Word::rank_range`] through a batch-resolved kernel bundle.
    #[inline]
    fn rank_range_routed(&self, a: u32, b: u32, ops: &kernel::KernelOps) -> u32 {
        let _ = ops;
        self.rank_range(a, b)
    }

    /// [`Word::insert_zero`] through a batch-resolved kernel bundle.
    #[inline]
    fn insert_zero_routed(&mut self, pos: u32, ops: &kernel::KernelOps) {
        let _ = ops;
        self.insert_zero(pos);
    }

    /// [`Word::remove_bit`] through a batch-resolved kernel bundle.
    #[inline]
    fn remove_bit_routed(&mut self, pos: u32, ops: &kernel::KernelOps) {
        let _ = ops;
        self.remove_bit(pos);
    }
}

macro_rules! impl_word_for_prim {
    ($($t:ty => { $($hot:item)* }),* $(,)?) => {$(
        impl Word for $t {
            const BITS: u32 = <$t>::BITS;

            #[inline]
            fn zero() -> Self { 0 }

            #[inline]
            fn mask_below(i: u32) -> Self {
                // Branch-free for every in-range i: both shifts stay in
                // 0..BITS. The compare handles the i == BITS saturation
                // the old `(1 << i) - 1` form could not express.
                if i >= Self::BITS {
                    <$t>::MAX
                } else {
                    (<$t>::MAX >> 1) >> (Self::BITS - 1 - i)
                }
            }

            #[inline]
            fn bit(&self, i: u32) -> bool {
                debug_assert!(i < Self::BITS);
                (self >> i) & 1 == 1
            }

            #[inline]
            fn set_bit(&mut self, i: u32) {
                debug_assert!(i < Self::BITS);
                *self |= 1 << i;
            }

            #[inline]
            fn clear_bit(&mut self, i: u32) {
                debug_assert!(i < Self::BITS);
                *self &= !(1 << i);
            }

            #[inline]
            fn count_ones(&self) -> u32 {
                <$t>::count_ones(*self)
            }

            #[inline]
            fn rank(&self, i: u32) -> u32 {
                (*self & Self::mask_below(i)).count_ones()
            }

            #[inline]
            fn rank_range(&self, a: u32, b: u32) -> u32 {
                debug_assert!(a <= b && b <= Self::BITS);
                if a >= Self::BITS {
                    // Only reachable as the empty range [BITS, BITS).
                    return 0;
                }
                ((*self >> a) & Self::mask_below(b - a)).count_ones()
            }

            #[inline]
            fn insert_zero(&mut self, pos: u32) {
                debug_assert!(pos < Self::BITS);
                let low = *self & Self::mask_below(pos);
                *self = ((*self ^ low) << 1) | low;
            }

            #[inline]
            fn remove_bit(&mut self, pos: u32) {
                debug_assert!(pos < Self::BITS);
                let low_mask = Self::mask_below(pos);
                let low = *self & low_mask;
                *self = ((*self >> 1) & !low_mask) | low;
            }

            #[inline]
            fn is_zero_from(&self, pos: u32) -> bool {
                debug_assert!(pos <= Self::BITS);
                *self & !Self::mask_below(pos) == 0
            }

            #[inline]
            fn highest_set_bit(&self) -> Option<u32> {
                if *self == 0 {
                    None
                } else {
                    Some(Self::BITS - 1 - self.leading_zeros())
                }
            }

            $($hot)*
        }
    )*};
}

impl_word_for_prim!(
    u16 => {},
    u32 => {},
    // The paper's main word width carries the runtime-dispatched kernels:
    // BZHI + POPCNT ranks and single-instruction PDEP/PEXT hierarchy
    // shifts on CPUs with BMI2, the portable baseline elsewhere.
    u64 => {
        #[inline]
        fn rank_hot(&self, i: u32) -> u32 {
            kernel::rank_u64(*self, i)
        }

        #[inline]
        fn rank_range_hot(&self, a: u32, b: u32) -> u32 {
            kernel::rank_range_u64(*self, a, b)
        }

        #[inline]
        fn insert_zero_hot(&mut self, pos: u32) {
            *self = kernel::insert_zero_u64(*self, pos);
        }

        #[inline]
        fn remove_bit_hot(&mut self, pos: u32) {
            *self = kernel::remove_bit_u64(*self, pos);
        }

        #[inline]
        fn rank_routed(&self, i: u32, ops: &kernel::KernelOps) -> u32 {
            kernel::rank_u64_routed(*self, i, ops)
        }

        #[inline]
        fn rank_range_routed(&self, a: u32, b: u32, ops: &kernel::KernelOps) -> u32 {
            kernel::rank_range_u64_routed(*self, a, b, ops)
        }

        #[inline]
        fn insert_zero_routed(&mut self, pos: u32, ops: &kernel::KernelOps) {
            *self = kernel::insert_zero_u64_routed(*self, pos, ops);
        }

        #[inline]
        fn remove_bit_routed(&mut self, pos: u32, ops: &kernel::KernelOps) {
            *self = kernel::remove_bit_u64_routed(*self, pos, ops);
        }
    },
    u128 => {},
);

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basic<W: Word>() {
        let mut w = W::zero();
        assert_eq!(w.count_ones(), 0);
        assert_eq!(w.highest_set_bit(), None);
        assert!(w.is_zero_from(0));

        w.set_bit(0);
        w.set_bit(W::BITS - 1);
        w.set_bit(W::BITS / 2);
        assert!(w.bit(0) && w.bit(W::BITS - 1) && w.bit(W::BITS / 2));
        assert_eq!(w.count_ones(), 3);
        assert_eq!(w.highest_set_bit(), Some(W::BITS - 1));
        assert_eq!(w.used_bits(), W::BITS);
        assert_eq!(w.rank(W::BITS), 3);
        assert_eq!(w.rank(1), 1);
        assert_eq!(w.rank_range(1, W::BITS - 1), 1);

        w.clear_bit(W::BITS / 2);
        assert_eq!(w.count_ones(), 2);
        assert!(!w.bit(W::BITS / 2));
    }

    #[test]
    fn basic_ops_all_widths() {
        check_basic::<u16>();
        check_basic::<u32>();
        check_basic::<u64>();
        check_basic::<u128>();
    }

    fn check_mask_below<W: Word>() {
        assert_eq!(W::mask_below(0), W::zero());
        for i in 0..=W::BITS {
            let mask = W::mask_below(i);
            assert_eq!(mask.count_ones(), i, "popcount of mask_below({i})");
            assert!(mask.is_zero_from(i), "mask_below({i}) has high bits");
        }
        // Saturation beyond the width.
        assert_eq!(W::mask_below(W::BITS + 1), W::mask_below(W::BITS));
        assert_eq!(W::mask_below(u32::MAX), W::mask_below(W::BITS));
    }

    #[test]
    fn mask_below_all_widths() {
        check_mask_below::<u16>();
        check_mask_below::<u32>();
        check_mask_below::<u64>();
        check_mask_below::<u128>();
    }

    fn check_hot_matches_plain<W: Word>() {
        // Drive a nontrivial pattern through plain and hot tiers in
        // lockstep; every intermediate state must agree bit-for-bit.
        let mut plain = W::zero();
        for i in (0..W::BITS).step_by(3) {
            plain.set_bit(i);
        }
        plain.clear_bit(W::BITS - 1);
        let mut hot = plain;
        for pos in 0..W::BITS - 1 {
            assert_eq!(plain.rank_hot(pos), plain.rank(pos), "rank_hot({pos})");
            assert_eq!(
                plain.rank_range_hot(pos / 2, pos),
                plain.rank_range(pos / 2, pos)
            );
            plain.insert_zero(pos);
            hot.insert_zero_hot(pos);
            assert_eq!(plain, hot, "insert_zero at {pos}");
            plain.remove_bit(pos);
            hot.remove_bit_hot(pos);
            assert_eq!(plain, hot, "remove_bit at {pos}");
        }
    }

    #[test]
    fn hot_tier_matches_plain_tier() {
        check_hot_matches_plain::<u16>();
        check_hot_matches_plain::<u32>();
        check_hot_matches_plain::<u64>();
        check_hot_matches_plain::<u128>();
    }

    fn check_routed_matches_plain<W: Word>() {
        // Both bundles of a batch resolution must be bit-identical to the
        // plain tier at every step.
        let bk = crate::Kernel::batch();
        for ops in [bk.query, bk.update] {
            let mut plain = W::zero();
            for i in (0..W::BITS).step_by(3) {
                plain.set_bit(i);
            }
            plain.clear_bit(W::BITS - 1);
            let mut routed = plain;
            for pos in 0..W::BITS - 1 {
                assert_eq!(plain.rank_routed(pos, &ops), plain.rank(pos));
                assert_eq!(
                    plain.rank_range_routed(pos / 2, pos, &ops),
                    plain.rank_range(pos / 2, pos)
                );
                plain.insert_zero(pos);
                routed.insert_zero_routed(pos, &ops);
                assert_eq!(plain, routed, "insert_zero_routed at {pos}");
                plain.remove_bit(pos);
                routed.remove_bit_routed(pos, &ops);
                assert_eq!(plain, routed, "remove_bit_routed at {pos}");
            }
        }
    }

    #[test]
    fn routed_tier_matches_plain_tier() {
        check_routed_matches_plain::<u16>();
        check_routed_matches_plain::<u64>();
        check_routed_matches_plain::<u128>();
        check_routed_matches_plain::<crate::W256>();
        check_routed_matches_plain::<crate::W512>();
    }

    fn check_insert_remove_roundtrip<W: Word>() {
        // Build a pattern, insert a zero everywhere, remove it, compare.
        let mut base = W::zero();
        for i in (0..W::BITS).step_by(3) {
            base.set_bit(i);
        }
        // Keep the top bit clear so insert_zero loses nothing.
        base.clear_bit(W::BITS - 1);
        for pos in 0..W::BITS - 1 {
            let mut w = base;
            w.insert_zero(pos);
            assert!(!w.bit(pos), "inserted bit must be zero at {pos}");
            w.remove_bit(pos);
            assert_eq!(w, base, "round-trip failed at pos {pos}");
        }
    }

    #[test]
    fn insert_remove_roundtrip_all_widths() {
        check_insert_remove_roundtrip::<u16>();
        check_insert_remove_roundtrip::<u32>();
        check_insert_remove_roundtrip::<u64>();
        check_insert_remove_roundtrip::<u128>();
    }

    #[test]
    fn insert_zero_shifts_tail_up() {
        let mut w: u64 = 0b1011;
        w.insert_zero(1);
        assert_eq!(w, 0b10101);
        let mut w: u64 = 0b1;
        w.insert_zero(0);
        assert_eq!(w, 0b10);
    }

    #[test]
    fn remove_bit_shifts_tail_down() {
        let mut w: u64 = 0b10101;
        w.remove_bit(1);
        assert_eq!(w, 0b1011);
        let mut w: u64 = 0b10;
        w.remove_bit(0);
        assert_eq!(w, 0b1);
    }

    #[test]
    fn rank_is_prefix_popcount() {
        let w: u64 = 0b1101_0110;
        assert_eq!(w.rank(0), 0);
        assert_eq!(w.rank(1), 0);
        assert_eq!(w.rank(2), 1);
        assert_eq!(w.rank(3), 2);
        assert_eq!(w.rank(8), 5);
        assert_eq!(w.rank(64), 5);
    }

    #[test]
    fn is_zero_from_boundaries() {
        let mut w = u32::zero();
        w.set_bit(5);
        assert!(!w.is_zero_from(0));
        assert!(!w.is_zero_from(5));
        assert!(w.is_zero_from(6));
        assert!(w.is_zero_from(32));
    }

    #[test]
    fn insert_zero_at_top_discards() {
        let mut w: u16 = 0xFFFF;
        w.insert_zero(15);
        assert_eq!(w, 0x7FFF); // top bit replaced by the inserted zero
    }
}
