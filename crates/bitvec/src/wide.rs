//! [`WideWord`]: words wider than 128 bits, built from 64-bit limbs.
//!
//! The paper evaluates w = 16…64 (one CPU word), but its analysis (Eq. 5 and
//! Fig. 5) predicts further FPR gains with wider "words" fetched per memory
//! access — e.g. a 512-bit DDR burst or cache line. `WideWord<N>` gives the
//! harness those points: `WideWord<4>` = 256 bits, `WideWord<8>` = 512 bits.

use crate::kernel;
use crate::word::Word;

/// A `64·N`-bit word stored as `N` little-endian 64-bit limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideWord<const N: usize> {
    limbs: [u64; N],
}

impl<const N: usize> Default for WideWord<N> {
    #[inline]
    fn default() -> Self {
        WideWord { limbs: [0; N] }
    }
}

impl<const N: usize> WideWord<N> {
    /// Builds a wide word from limbs (limb 0 holds bits 0–63).
    #[inline]
    pub fn from_limbs(limbs: [u64; N]) -> Self {
        WideWord { limbs }
    }

    /// The underlying limbs.
    #[inline]
    pub fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    #[inline]
    fn split(i: u32) -> (usize, u32) {
        ((i / 64) as usize, i % 64)
    }
}

impl<const N: usize> Word for WideWord<N> {
    const BITS: u32 = 64 * N as u32;

    #[inline]
    fn zero() -> Self {
        Self::default()
    }

    #[inline]
    fn mask_below(i: u32) -> Self {
        let mut limbs = [0u64; N];
        let i = i.min(Self::BITS);
        let (limb, off) = Self::split(i.min(Self::BITS - 1));
        let full = if i == Self::BITS { N } else { limb };
        limbs[..full].fill(u64::MAX);
        if full < N {
            limbs[limb] = kernel::mask_below_u64(off);
        }
        WideWord { limbs }
    }

    #[inline]
    fn bit(&self, i: u32) -> bool {
        debug_assert!(i < Self::BITS);
        let (limb, off) = Self::split(i);
        (self.limbs[limb] >> off) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, i: u32) {
        debug_assert!(i < Self::BITS);
        let (limb, off) = Self::split(i);
        self.limbs[limb] |= 1 << off;
    }

    #[inline]
    fn clear_bit(&mut self, i: u32) {
        debug_assert!(i < Self::BITS);
        let (limb, off) = Self::split(i);
        self.limbs[limb] &= !(1 << off);
    }

    #[inline]
    fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    #[inline]
    fn rank(&self, i: u32) -> u32 {
        debug_assert!(i <= Self::BITS);
        if i == Self::BITS {
            return self.count_ones();
        }
        let (limb, off) = Self::split(i);
        let mut ones = 0;
        for l in &self.limbs[..limb] {
            ones += l.count_ones();
        }
        ones + (self.limbs[limb] & kernel::mask_below_u64(off)).count_ones()
    }

    fn insert_zero(&mut self, pos: u32) {
        debug_assert!(pos < Self::BITS);
        let (limb, off) = Self::split(pos);
        let low_mask = kernel::mask_below_u64(off);
        let low = self.limbs[limb] & low_mask;
        let high = self.limbs[limb] & !low_mask;
        let mut carry = high >> 63;
        self.limbs[limb] = (high << 1) | low;
        for l in &mut self.limbs[limb + 1..] {
            let next_carry = *l >> 63;
            *l = (*l << 1) | carry;
            carry = next_carry;
        }
    }

    fn remove_bit(&mut self, pos: u32) {
        debug_assert!(pos < Self::BITS);
        let (limb, off) = Self::split(pos);
        let mut carry = 0u64;
        for j in (limb + 1..N).rev() {
            let next_carry = self.limbs[j] & 1;
            self.limbs[j] = (self.limbs[j] >> 1) | (carry << 63);
            carry = next_carry;
        }
        let low_mask = kernel::mask_below_u64(off);
        let low = self.limbs[limb] & low_mask;
        let high = (self.limbs[limb] >> 1) & !low_mask;
        self.limbs[limb] = high | low | (carry << 63);
    }

    #[inline]
    fn is_zero_from(&self, pos: u32) -> bool {
        debug_assert!(pos <= Self::BITS);
        if pos == Self::BITS {
            return true;
        }
        let (limb, off) = Self::split(pos);
        if self.limbs[limb] >> off != 0 {
            return false;
        }
        self.limbs[limb + 1..].iter().all(|&l| l == 0)
    }

    #[inline]
    fn highest_set_bit(&self) -> Option<u32> {
        for (j, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return Some(j as u32 * 64 + 63 - l.leading_zeros());
            }
        }
        None
    }

    // Hot tier: whole limbs use plain POPCNT either way; the boundary limb
    // goes through the runtime-dispatched kernel (BZHI/PDEP/PEXT on BMI2).

    #[inline]
    fn rank_hot(&self, i: u32) -> u32 {
        debug_assert!(i <= Self::BITS);
        if i == Self::BITS {
            return self.count_ones();
        }
        let (limb, off) = Self::split(i);
        let mut ones = 0;
        for l in &self.limbs[..limb] {
            ones += l.count_ones();
        }
        ones + kernel::rank_u64(self.limbs[limb], off)
    }

    #[inline]
    fn rank_range_hot(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a <= b && b <= Self::BITS);
        let (la, _) = Self::split(a.min(Self::BITS - 1));
        let (lb, _) = Self::split(b.min(Self::BITS - 1));
        if la == lb && b < Self::BITS {
            // Both ends in one limb: a single masked popcount.
            let off = la as u32 * 64;
            return kernel::rank_range_u64(self.limbs[la], a - off, b - off);
        }
        self.rank_hot(b) - self.rank_hot(a)
    }

    #[inline]
    fn insert_zero_hot(&mut self, pos: u32) {
        debug_assert!(pos < Self::BITS);
        let (limb, off) = Self::split(pos);
        // PDEP discards the boundary limb's top bit, so capture the carry
        // before the kernel call.
        let mut carry = self.limbs[limb] >> 63;
        self.limbs[limb] = kernel::insert_zero_u64(self.limbs[limb], off);
        for l in &mut self.limbs[limb + 1..] {
            let next_carry = *l >> 63;
            *l = (*l << 1) | carry;
            carry = next_carry;
        }
    }

    #[inline]
    fn remove_bit_hot(&mut self, pos: u32) {
        debug_assert!(pos < Self::BITS);
        let (limb, off) = Self::split(pos);
        let mut carry = 0u64;
        for j in (limb + 1..N).rev() {
            let next_carry = self.limbs[j] & 1;
            self.limbs[j] = (self.limbs[j] >> 1) | (carry << 63);
            carry = next_carry;
        }
        self.limbs[limb] = kernel::remove_bit_u64(self.limbs[limb], off) | (carry << 63);
    }

    // Routed tier: the same boundary-limb structure as the hot tier, but
    // dispatched on a batch-resolved bundle tag instead of the cached
    // atomic, so a whole batch of walks costs one detection load total.

    #[inline]
    fn rank_routed(&self, i: u32, ops: &kernel::KernelOps) -> u32 {
        debug_assert!(i <= Self::BITS);
        if i == Self::BITS {
            return self.count_ones();
        }
        let (limb, off) = Self::split(i);
        let mut ones = 0;
        for l in &self.limbs[..limb] {
            ones += l.count_ones();
        }
        ones + kernel::rank_u64_routed(self.limbs[limb], off, ops)
    }

    #[inline]
    fn rank_range_routed(&self, a: u32, b: u32, ops: &kernel::KernelOps) -> u32 {
        debug_assert!(a <= b && b <= Self::BITS);
        let (la, _) = Self::split(a.min(Self::BITS - 1));
        let (lb, _) = Self::split(b.min(Self::BITS - 1));
        if la == lb && b < Self::BITS {
            let off = la as u32 * 64;
            return kernel::rank_range_u64_routed(self.limbs[la], a - off, b - off, ops);
        }
        self.rank_routed(b, ops) - self.rank_routed(a, ops)
    }

    #[inline]
    fn insert_zero_routed(&mut self, pos: u32, ops: &kernel::KernelOps) {
        debug_assert!(pos < Self::BITS);
        let (limb, off) = Self::split(pos);
        let mut carry = self.limbs[limb] >> 63;
        self.limbs[limb] = kernel::insert_zero_u64_routed(self.limbs[limb], off, ops);
        for l in &mut self.limbs[limb + 1..] {
            let next_carry = *l >> 63;
            *l = (*l << 1) | carry;
            carry = next_carry;
        }
    }

    #[inline]
    fn remove_bit_routed(&mut self, pos: u32, ops: &kernel::KernelOps) {
        debug_assert!(pos < Self::BITS);
        let (limb, off) = Self::split(pos);
        let mut carry = 0u64;
        for j in (limb + 1..N).rev() {
            let next_carry = self.limbs[j] & 1;
            self.limbs[j] = (self.limbs[j] >> 1) | (carry << 63);
            carry = next_carry;
        }
        self.limbs[limb] =
            kernel::remove_bit_u64_routed(self.limbs[limb], off, ops) | (carry << 63);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type W256 = WideWord<4>;

    #[test]
    fn width_constant() {
        assert_eq!(W256::BITS, 256);
        assert_eq!(WideWord::<8>::BITS, 512);
    }

    #[test]
    fn set_get_across_limbs() {
        let mut w = W256::zero();
        for i in [0u32, 63, 64, 127, 128, 191, 192, 255] {
            w.set_bit(i);
            assert!(w.bit(i));
        }
        assert_eq!(w.count_ones(), 8);
        assert_eq!(w.highest_set_bit(), Some(255));
        w.clear_bit(255);
        assert_eq!(w.highest_set_bit(), Some(192));
    }

    #[test]
    fn rank_across_limb_boundaries() {
        let mut w = W256::zero();
        w.set_bit(10);
        w.set_bit(63);
        w.set_bit(64);
        w.set_bit(130);
        assert_eq!(w.rank(0), 0);
        assert_eq!(w.rank(11), 1);
        assert_eq!(w.rank(64), 2);
        assert_eq!(w.rank(65), 3);
        assert_eq!(w.rank(131), 4);
        assert_eq!(w.rank(256), 4);
    }

    #[test]
    fn insert_zero_carries_across_limbs() {
        let mut w = W256::zero();
        w.set_bit(63); // top of limb 0
        w.insert_zero(0);
        assert!(!w.bit(63));
        assert!(w.bit(64)); // carried into limb 1
        assert_eq!(w.count_ones(), 1);
    }

    #[test]
    fn remove_bit_borrows_across_limbs() {
        let mut w = W256::zero();
        w.set_bit(64);
        w.remove_bit(0);
        assert!(w.bit(63));
        assert!(!w.bit(64));
        assert_eq!(w.count_ones(), 1);
    }

    #[test]
    fn insert_remove_roundtrip_random_patterns() {
        // Deterministic pseudo-random patterns, top bit kept clear.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut limbs = [0u64; 4];
            for l in &mut limbs {
                *l = next();
            }
            limbs[3] &= !(1 << 63);
            let base = W256::from_limbs(limbs);
            for pos in (0..255).step_by(7) {
                let mut w = base;
                w.insert_zero(pos);
                assert!(!w.bit(pos));
                // Tail above pos shifted up by one.
                for i in pos + 1..256 {
                    assert_eq!(w.bit(i), base.bit(i - 1), "pos={pos} i={i}");
                }
                w.remove_bit(pos);
                assert_eq!(w, base, "round-trip at pos {pos}");
            }
        }
    }

    #[test]
    fn matches_u128_semantics() {
        // WideWord<2> must behave exactly like u128.
        let mut wide = WideWord::<2>::zero();
        let mut narrow: u128 = 0;
        let ops: [(u8, u32); 12] = [
            (0, 5),
            (0, 77),
            (0, 127),
            (1, 40),
            (0, 64),
            (2, 63),
            (0, 100),
            (1, 0),
            (2, 90),
            (0, 3),
            (1, 127),
            (2, 1),
        ];
        for (op, pos) in ops {
            match op {
                0 => {
                    wide.set_bit(pos);
                    narrow.set_bit(pos);
                }
                1 => {
                    wide.insert_zero(pos.min(126));
                    narrow.insert_zero(pos.min(126));
                }
                _ => {
                    wide.remove_bit(pos);
                    narrow.remove_bit(pos);
                }
            }
            for i in 0..128 {
                assert_eq!(wide.bit(i), narrow.bit(i), "bit {i} after op {op}@{pos}");
            }
            assert_eq!(wide.rank(128), narrow.rank(128));
        }
    }

    #[test]
    fn is_zero_from_spans_limbs() {
        let mut w = W256::zero();
        w.set_bit(200);
        assert!(!w.is_zero_from(0));
        assert!(!w.is_zero_from(200));
        assert!(w.is_zero_from(201));
        assert!(w.is_zero_from(256));
    }
}
